//! Property-based tests for the TLB models.

use proptest::prelude::*;
use sat_tlb::{MainTlb, TlbEntry, TlbLookup};
use sat_types::{Asid, Domain, PageSize, Perms, Pfn, VirtAddr, PAGE_SIZE};

fn entry(page: u32, asid: Option<u8>) -> TlbEntry {
    TlbEntry {
        va_base: VirtAddr::new(page * PAGE_SIZE),
        size: PageSize::Small4K,
        asid: asid.map(Asid::new),
        pfn: Pfn::new(page + 0x1000),
        perms: Perms::RX,
        domain: Domain::USER,
    }
}

proptest! {
    /// After any insertion sequence, a lookup that hits returns an
    /// entry that actually matches (correct page, matching tag), and
    /// occupancy never exceeds capacity.
    #[test]
    fn lookups_only_return_matching_entries(
        inserts in prop::collection::vec((0u32..64, prop::option::of(1u8..8)), 1..200),
        probe_page in 0u32..64,
        probe_asid in 1u8..8,
    ) {
        let mut tlb = MainTlb::new(16);
        for (page, asid) in &inserts {
            tlb.insert(entry(*page, *asid), Asid::new(asid.unwrap_or(1)));
        }
        prop_assert!(tlb.occupancy() <= 16);
        let va = VirtAddr::new(probe_page * PAGE_SIZE + 0x123);
        if let TlbLookup::Hit(e) = tlb.lookup(va, Asid::new(probe_asid)) {
            prop_assert!(e.covers(va));
            prop_assert!(e.asid.is_none() || e.asid == Some(Asid::new(probe_asid)));
            // The translation is the one inserted for that page.
            prop_assert_eq!(e.pfn, Pfn::new(probe_page + 0x1000));
        }
    }

    /// flush_asid removes exactly the non-global entries of that ASID
    /// and nothing else.
    #[test]
    fn flush_asid_is_precise(
        inserts in prop::collection::vec((0u32..64, prop::option::of(1u8..6)), 1..64),
        victim in 1u8..6,
    ) {
        let mut tlb = MainTlb::new(128);
        for (page, asid) in &inserts {
            tlb.insert(entry(*page, *asid), Asid::new(asid.unwrap_or(1)));
        }
        tlb.flush_asid(Asid::new(victim));
        for (page, asid) in &inserts {
            let va = VirtAddr::new(page * PAGE_SIZE);
            match asid {
                Some(a) if *a == victim => {
                    // Only a global entry may still serve this VA.
                    if let Some(e) = tlb.probe(va, Asid::new(victim)) {
                        prop_assert!(e.is_global());
                    }
                }
                Some(a) => {
                    prop_assert!(tlb.probe(va, Asid::new(*a)).is_some());
                }
                None => {
                    prop_assert!(tlb.probe(va, Asid::new(victim)).is_some());
                }
            }
        }
    }

    /// flush_va_all_asids removes every entry covering the address —
    /// global or not — and leaves other pages alone.
    #[test]
    fn flush_va_removes_all_matches(
        pages in prop::collection::btree_set(0u32..32, 2..20),
        victim_idx in 0usize..20,
    ) {
        let pages: Vec<u32> = pages.into_iter().collect();
        let victim = pages[victim_idx % pages.len()];
        let mut tlb = MainTlb::new(128);
        for (i, &p) in pages.iter().enumerate() {
            let asid = if i % 3 == 0 { None } else { Some((i % 5 + 1) as u8) };
            tlb.insert(entry(p, asid), Asid::new(1));
        }
        tlb.flush_va_all_asids(VirtAddr::new(victim * PAGE_SIZE));
        for a in 1..8u8 {
            prop_assert!(tlb.probe(VirtAddr::new(victim * PAGE_SIZE), Asid::new(a)).is_none());
        }
        // Some other page must survive (we inserted >= 2 pages).
        let survivor = pages.iter().find(|&&p| p != victim).copied().unwrap();
        let found = (0..8u8).any(|a| {
            tlb.probe(VirtAddr::new(survivor * PAGE_SIZE), Asid::new(a)).is_some()
        });
        prop_assert!(found, "survivor page {survivor} vanished");
    }

    /// A global entry serves every ASID; a tagged entry serves only
    /// its own.
    #[test]
    fn global_matching_semantics(page in 0u32..64, owner in 1u8..250, other in 1u8..250) {
        prop_assume!(owner != other);
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(page, Some(owner)), Asid::new(owner));
        prop_assert!(tlb.probe(VirtAddr::new(page * PAGE_SIZE), Asid::new(other)).is_none());
        tlb.insert(entry(page, None), Asid::new(owner));
        prop_assert!(tlb.probe(VirtAddr::new(page * PAGE_SIZE), Asid::new(other)).is_some());
    }
}
