//! Differential tests: the index-accelerated TLB models vs the
//! linear-scan reference models.
//!
//! `MainTlb`/`MicroTlb` (crate::index-backed) and
//! `RefMainTlb`/`RefMicroTlb` (the original linear scans, kept as the
//! executable specification in `crate::reference`) are driven with
//! identical randomized operation sequences. Every operation's return
//! value must agree, and after the sequence the statistics, occupancy
//! counters, and a full probe sweep must agree — i.e. the indexes are
//! pure acceleration with zero observable behaviour change, including
//! round-robin victim choice and first-match (minimum-slot) winners.

use proptest::prelude::*;
use sat_tlb::{MainTlb, MicroTlb, RefMainTlb, RefMicroTlb, TlbEntry};
use sat_types::{Asid, Domain, PageSize, Perms, Pfn, VirtAddr, VpnRange, PAGE_SIZE};

/// Small page space so inserts collide, overlap across sizes, and
/// force evictions at the capacities used below.
const PAGES: u32 = 64;

fn entry(page: u32, asid: Option<u8>, size_sel: u8) -> TlbEntry {
    // Mostly 4K pages with a sprinkling of larger sizes, so the
    // cross-size overlap paths (a 64K entry shadowing 4K pages and
    // vice versa) get real coverage.
    let size = match size_sel {
        0..=7 => PageSize::Small4K,
        8 => PageSize::Large64K,
        _ => PageSize::Section1M,
    };
    TlbEntry {
        va_base: VirtAddr::new(page * PAGE_SIZE),
        size,
        asid: asid.map(Asid::new),
        pfn: Pfn::new(page + 0x1000),
        perms: Perms::RX,
        domain: if size_sel == 9 {
            Domain::KERNEL
        } else {
            Domain::USER
        },
    }
}

/// One randomized operation: (opcode, page, optional entry ASID,
/// acting ASID, page-size selector).
type Op = (u8, u32, Option<u8>, u8, u8);

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            0u8..10,
            0u32..PAGES,
            prop::option::of(1u8..6),
            1u8..6,
            0u8..10,
        ),
        1..300,
    )
}

/// The flush range an op encodes: starts at `page`, width scales with
/// the size selector so ranges span from one page to most of the
/// 64-page space (crossing 64K/1M entry boundaries).
fn op_range(page: u32, size_sel: u8) -> VpnRange {
    VpnRange::new(page, page + 1 + u32::from(size_sel) * 7)
}

proptest! {
    /// The indexed main TLB is observably identical to the linear
    /// reference under arbitrary operation sequences.
    #[test]
    fn main_tlb_matches_linear_reference(ops in op_strategy()) {
        let mut idx = MainTlb::new(16);
        let mut reference = RefMainTlb::new(16);
        for (op, page, easid, asid, size_sel) in ops {
            let va = VirtAddr::new(page * PAGE_SIZE + 0x123);
            let acting = Asid::new(asid);
            match op {
                0 => {
                    prop_assert_eq!(idx.lookup(va, acting), reference.lookup(va, acting));
                }
                1 => {
                    let e = entry(page, easid, size_sel);
                    idx.insert(e, acting);
                    reference.insert(e, acting);
                }
                2 => prop_assert_eq!(idx.flush_all(), reference.flush_all()),
                3 => prop_assert_eq!(idx.flush_asid(acting), reference.flush_asid(acting)),
                4 => prop_assert_eq!(idx.flush_va(va, acting), reference.flush_va(va, acting)),
                5 => prop_assert_eq!(
                    idx.flush_va_all_asids(va),
                    reference.flush_va_all_asids(va)
                ),
                6 => prop_assert_eq!(idx.flush_non_global(), reference.flush_non_global()),
                7 => prop_assert_eq!(
                    idx.flush_page(acting, page),
                    reference.flush_page(acting, page)
                ),
                8 => {
                    let range = op_range(page, size_sel);
                    prop_assert_eq!(
                        idx.flush_range(acting, range),
                        reference.flush_range(acting, range)
                    );
                }
                _ => {
                    prop_assert_eq!(idx.probe(va, acting), reference.probe(va, acting));
                }
            }
            prop_assert_eq!(idx.occupancy(), reference.occupancy());
            prop_assert_eq!(idx.global_occupancy(), reference.global_occupancy());
        }
        prop_assert_eq!(idx.stats(), reference.stats());
        // Full probe sweep: every (page, asid) cell agrees, so the
        // resident entry *set* (and each cell's first-match winner) is
        // identical, not just the cells the random ops happened to
        // touch.
        for page in 0..PAGES {
            for asid in 1..6u8 {
                let va = VirtAddr::new(page * PAGE_SIZE);
                prop_assert_eq!(idx.probe(va, Asid::new(asid)), reference.probe(va, Asid::new(asid)));
            }
        }
    }

    /// The indexed micro-TLB is observably identical to the linear
    /// reference under arbitrary operation sequences.
    #[test]
    fn micro_tlb_matches_linear_reference(ops in op_strategy()) {
        let mut idx = MicroTlb::new(8);
        let mut reference = RefMicroTlb::new(8);
        for (op, page, easid, _asid, size_sel) in ops {
            let va = VirtAddr::new(page * PAGE_SIZE + 0x123);
            match op {
                0..=2 => {
                    prop_assert_eq!(idx.lookup(va), reference.lookup(va));
                }
                3..=5 => {
                    let e = entry(page, easid, size_sel);
                    idx.insert(e);
                    reference.insert(e);
                }
                6 => {
                    idx.flush();
                    reference.flush();
                }
                7 => {
                    idx.flush_va(va);
                    reference.flush_va(va);
                }
                _ => {
                    let range = op_range(page, size_sel);
                    idx.flush_range(range);
                    reference.flush_range(range);
                }
            }
            prop_assert_eq!(idx.occupancy(), reference.occupancy());
        }
        prop_assert_eq!(idx.stats(), reference.stats());
        // Lookup sweep (applied to both, so the stat counters stay in
        // lockstep): the resident entry set and per-page winners agree.
        for page in 0..PAGES {
            let va = VirtAddr::new(page * PAGE_SIZE);
            prop_assert_eq!(idx.lookup(va), reference.lookup(va));
        }
        prop_assert_eq!(idx.stats(), reference.stats());
    }
}

/// Both models agree that a range flush only removes entries tagged
/// with the flushed ASID: global entries inside the range survive in
/// each, and the survivors are identical.
#[test]
fn globals_survive_range_flush_in_both_models() {
    let mut idx = MainTlb::new(16);
    let mut reference = RefMainTlb::new(16);
    for page in 0..8u32 {
        let tagged = entry(page, Some(3), 0);
        let global = entry(page + 16, None, 0);
        idx.insert(tagged, Asid::new(3));
        reference.insert(tagged, Asid::new(3));
        idx.insert(global, Asid::new(3));
        reference.insert(global, Asid::new(3));
    }
    // A range covering every resident page: only the 8 tagged entries
    // die; all 8 globals survive in both models.
    let range = VpnRange::new(0, 32);
    assert_eq!(idx.flush_range(Asid::new(3), range), 8);
    assert_eq!(reference.flush_range(Asid::new(3), range), 8);
    assert_eq!(idx.occupancy(), reference.occupancy());
    assert_eq!(idx.global_occupancy(), 8);
    assert_eq!(reference.global_occupancy(), 8);
    for page in 0..32u32 {
        let va = VirtAddr::new(page * PAGE_SIZE);
        assert_eq!(
            idx.probe(va, Asid::new(3)),
            reference.probe(va, Asid::new(3))
        );
    }
    assert_eq!(idx.stats(), reference.stats());
}

/// Range and page flushes at full occupancy (every slot valid, the
/// round-robin victim mid-array) stay in lockstep, including the
/// free-slot bookkeeping the next inserts depend on.
#[test]
fn range_flush_at_capacity_matches_reference() {
    let mut idx = MainTlb::new(8);
    let mut reference = RefMainTlb::new(8);
    // Overfill: 12 inserts into 8 slots forces evictions, so both
    // models are at capacity with the victim cursor advanced.
    for page in 0..12u32 {
        let e = entry(page, Some((page % 3 + 1) as u8), 0);
        idx.insert(e, Asid::new(1));
        reference.insert(e, Asid::new(1));
    }
    assert_eq!(idx.occupancy(), 8);
    assert_eq!(reference.occupancy(), 8);
    assert_eq!(
        idx.flush_range(Asid::new(1), VpnRange::new(0, 12)),
        reference.flush_range(Asid::new(1), VpnRange::new(0, 12))
    );
    assert_eq!(
        idx.flush_page(Asid::new(2), 10),
        reference.flush_page(Asid::new(2), 10)
    );
    assert_eq!(idx.occupancy(), reference.occupancy());
    // Refill after the flush: freed slots are claimed in the same
    // order in both models.
    for page in 20..26u32 {
        let e = entry(page, Some(4), 0);
        idx.insert(e, Asid::new(4));
        reference.insert(e, Asid::new(4));
    }
    for page in 0..32u32 {
        for asid in 1..6u8 {
            let va = VirtAddr::new(page * PAGE_SIZE);
            assert_eq!(
                idx.probe(va, Asid::new(asid)),
                reference.probe(va, Asid::new(asid)),
                "page {page} asid {asid}"
            );
        }
    }
    assert_eq!(idx.stats(), reference.stats());
}
