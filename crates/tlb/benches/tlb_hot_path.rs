//! Hot-path microbenchmarks for the TLB models.
//!
//! Every case runs twice: once against the index-accelerated
//! implementation (`MainTlb`/`MicroTlb`) and once against the linear
//! reference model (`RefMainTlb`/`RefMicroTlb`), so a run prints the
//! speedup the indexes buy at each occupancy. The headline cases are
//! the ones the simulator leans on: a lookup miss at full occupancy
//! (the linear model's worst case — it scans all 128 slots before
//! walking), and `flush_asid` (the per-fork TLB shootdown, previously
//! a full scan regardless of how many entries the ASID holds).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use sat_tlb::{MainTlb, MicroTlb, RefMainTlb, RefMicroTlb, TlbEntry};
use sat_types::{Asid, Domain, PageSize, Perms, Pfn, VirtAddr};

const CAPACITY: usize = 128;

fn entry(va: u32, asid: Option<u8>) -> TlbEntry {
    TlbEntry {
        va_base: VirtAddr::new(va),
        size: PageSize::Small4K,
        asid: asid.map(Asid::new),
        pfn: Pfn::new(va >> 12),
        perms: Perms::RX,
        domain: Domain::USER,
    }
}

/// Fills `n` slots with 4K entries spread over `asids` address spaces,
/// the shape a warm multi-process main TLB has in the simulator.
fn filled_main(n: usize, asids: u8) -> MainTlb {
    let mut tlb = MainTlb::new(CAPACITY);
    fill(&mut tlb, n, asids, |t, e, a| t.insert(e, a));
    tlb
}

fn filled_ref(n: usize, asids: u8) -> RefMainTlb {
    let mut tlb = RefMainTlb::new(CAPACITY);
    fill(&mut tlb, n, asids, |t, e, a| t.insert(e, a));
    tlb
}

fn fill<T>(tlb: &mut T, n: usize, asids: u8, mut insert: impl FnMut(&mut T, TlbEntry, Asid)) {
    for i in 0..n {
        let asid = (i as u8 % asids) + 1;
        let va = 0x1000_0000 + (i as u32) * 0x1000;
        insert(tlb, entry(va, Some(asid)), Asid::new(asid));
    }
}

fn main_tlb_benches(c: &mut Criterion) {
    // Lookup hit: the matching entry sits mid-array (slot 64), the
    // linear model's average case.
    {
        let mut group = c.benchmark_group("main_lookup_hit_mid");
        let mut tlb = filled_main(CAPACITY, 4);
        let va = VirtAddr::new(0x1000_0000 + 64 * 0x1000);
        let asid = Asid::new(1); // (64 % 4) + 1, the fill formula at i = 64
        group.bench_function("indexed", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(va), asid)))
        });
        let mut tlb = filled_ref(CAPACITY, 4);
        group.bench_function("reference", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(va), asid)))
        });
        group.finish();
    }

    // Lookup miss at full occupancy: the linear model scans all 128
    // slots before reporting the miss; the index probes four buckets.
    {
        let mut group = c.benchmark_group("main_lookup_miss_full");
        let miss = VirtAddr::new(0x7000_0000);
        let mut tlb = filled_main(CAPACITY, 4);
        group.bench_function("indexed", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(miss), Asid::new(1))))
        });
        let mut tlb = filled_ref(CAPACITY, 4);
        group.bench_function("reference", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(miss), Asid::new(1))))
        });
        group.finish();
    }

    // Insert over a duplicate: the refill after a permission change,
    // which must find and replace the existing entry for the tag.
    {
        let mut group = c.benchmark_group("main_insert_duplicate");
        let dup = entry(0x1000_0000 + 32 * 0x1000, Some(1));
        let mut tlb = filled_main(CAPACITY, 4);
        group.bench_function("indexed", |b| {
            b.iter(|| tlb.insert(black_box(dup), Asid::new(1)))
        });
        let mut tlb = filled_ref(CAPACITY, 4);
        group.bench_function("reference", |b| {
            b.iter(|| tlb.insert(black_box(dup), Asid::new(1)))
        });
        group.finish();
    }

    // flush_asid at varying occupancy: the per-fork shootdown. The
    // reference scans all 128 slots however many entries the ASID
    // holds; the index walks exactly the tag's chain. Each victim ASID
    // holds 4 entries — the multi-process steady state the paper's
    // scalability experiment produces, where dozens of address spaces
    // split the main TLB — so the indexed cost stays flat while the
    // reference scan grows with occupancy. Setup clones a pre-built
    // warm TLB so the measurement sees the simulator's cache-warm
    // state, not 128 inserts' worth of evicted lines.
    for &(occupancy, asids) in &[(16usize, 4u8), (64, 16), (128, 32)] {
        let mut group = c.benchmark_group(format!("main_flush_asid_occ{occupancy}"));
        let warm = filled_main(occupancy, asids);
        group.bench_function("indexed", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::SmallInput,
            )
        });
        let warm = filled_ref(occupancy, asids);
        group.bench_function("reference", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    // flush_asid at growing TLB capacity: the asymptotic claim. The
    // victim process holds 4 entries at every size — a process's TLB
    // footprint does not grow with TLB capacity — so the reference
    // shootdown costs O(capacity) while the indexed shootdown stays
    // O(footprint). At the Cortex-A9's 128 entries a warm linear scan
    // is already cheap; the gap opens as capacity grows (the repo's
    // what-if sweeps model larger shared TLBs).
    for &capacity in &[512usize, 2048] {
        let mut group = c.benchmark_group(format!("main_flush_asid_cap{capacity}"));
        // Asid 1 (the victim): 4 entries; the rest of the TLB belongs
        // to other address spaces.
        let fill_cap = |insert: &mut dyn FnMut(TlbEntry, Asid)| {
            for i in 0..capacity {
                let asid = if i < 4 { 1 } else { 2 + (i % 254) as u8 };
                let va = 0x1000_0000 + (i as u32) * 0x1000;
                insert(entry(va, Some(asid)), Asid::new(asid));
            }
        };
        let mut warm = MainTlb::new(capacity);
        fill_cap(&mut |e, a| {
            warm.insert(e, a);
        });
        group.bench_function("indexed", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::LargeInput,
            )
        });
        let mut warm = RefMainTlb::new(capacity);
        fill_cap(&mut |e, a| {
            warm.insert(e, a);
        });
        group.bench_function("reference", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

fn micro_tlb_benches(c: &mut Criterion) {
    // The micro-TLB pattern the simulator produces: a context switch
    // flushes, a few pages are touched repeatedly. Lookup hits
    // dominate everything else.
    let mut group = c.benchmark_group("micro_lookup_hit_warm");
    let touched: Vec<VirtAddr> = (0..8)
        .map(|i| VirtAddr::new(0x4000_0000 + i * 0x1000))
        .collect();
    let mut utlb = MicroTlb::new(32);
    for &va in &touched {
        utlb.insert(entry(va.raw(), Some(1)));
    }
    group.bench_function("indexed", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % touched.len();
            black_box(utlb.lookup(black_box(touched[i])))
        })
    });
    let mut utlb = RefMicroTlb::new(32);
    for &va in &touched {
        utlb.insert(entry(va.raw(), Some(1)));
    }
    group.bench_function("reference", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % touched.len();
            black_box(utlb.lookup(black_box(touched[i])))
        })
    });
    group.finish();
}

/// Observability-overhead probes: the same hot paths with the sat-obs
/// recorder left uninstalled (the default — the event call sites
/// compile to one predictable branch on a thread-local flag) and with
/// a recorder installed. `lookup` is deliberately uninstrumented, so
/// its two variants must be statistically indistinguishable — the
/// `sink_disabled` numbers here are the regression guard against the
/// un-instrumented baseline. `flush_asid` pays for event construction
/// and ring admission only under `sink_enabled`.
fn obs_overhead_benches(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("obs_lookup_miss_full");
        let miss = VirtAddr::new(0x7000_0000);
        let mut tlb = filled_main(CAPACITY, 4);
        group.bench_function("sink_disabled", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(miss), Asid::new(1))))
        });
        sat_obs::install(1 << 12);
        group.bench_function("sink_enabled", |b| {
            b.iter(|| black_box(tlb.lookup(black_box(miss), Asid::new(1))))
        });
        let _ = sat_obs::uninstall();
        group.finish();
    }
    {
        let mut group = c.benchmark_group("obs_flush_asid_occ64");
        let warm = filled_main(64, 16);
        group.bench_function("sink_disabled", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::SmallInput,
            )
        });
        sat_obs::install(1 << 12);
        group.bench_function("sink_enabled", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| black_box(tlb.flush_asid(Asid::new(1))),
                BatchSize::SmallInput,
            )
        });
        let _ = sat_obs::uninstall();
        group.finish();
    }
    {
        // The gauge sampling clock on the flush path: ticking a
        // Sampler per flush costs one increment + one branch when no
        // sample is due. `every_64` pays the publish + ring admission
        // on 1/64 of iterations; `sink_disabled` must stay within the
        // same guard as the uninstrumented baseline (the tick
        // short-circuits on the thread-local enabled flag).
        let mut group = c.benchmark_group("obs_flush_asid_gauges");
        let warm = filled_main(64, 16);
        let mut sampler = sat_obs::Sampler::new(64);
        group.bench_function("sink_disabled", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| {
                    black_box(tlb.flush_asid(Asid::new(1)));
                    sampler.tick(|| {
                        sat_obs::gauge_set("tlb.main.occupancy.c0", 64);
                    });
                },
                BatchSize::SmallInput,
            )
        });
        sat_obs::install(1 << 12);
        let mut sampler = sat_obs::Sampler::new(64);
        group.bench_function("every_64", |b| {
            b.iter_batched_ref(
                || warm.clone(),
                |tlb| {
                    black_box(tlb.flush_asid(Asid::new(1)));
                    sampler.tick(|| {
                        sat_obs::gauge_set("tlb.main.occupancy.c0", 64);
                    });
                },
                BatchSize::SmallInput,
            )
        });
        let _ = sat_obs::uninstall();
        group.finish();
    }
}

/// Cycle-charge tagging on the simulator's hottest path (every
/// `Machine::access` charges its stall cycles). With no recorder — or
/// a recorder installed but flow tracing off, the state every
/// experiment except `repro serve` runs in — `sat_obs::charge` must
/// cost two thread-local branches and nothing else: `sink_disabled`
/// and `tracing_off` are the regression guard against the
/// `uninstrumented` baseline, with a 2% hot-path budget. Only
/// `tracing_on` pays the per-cause counter bump and ring admission.
fn obs_charge_tagging_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_charge_tagging");
    let miss = VirtAddr::new(0x7000_0000);
    let mut tlb = filled_main(CAPACITY, 4);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| black_box(tlb.lookup(black_box(miss), Asid::new(1))))
    });
    group.bench_function("sink_disabled", |b| {
        b.iter(|| {
            let r = black_box(tlb.lookup(black_box(miss), Asid::new(1)));
            sat_obs::charge(0, sat_obs::ChargeCause::TlbStall, black_box(29));
            r
        })
    });
    sat_obs::install(1 << 12);
    group.bench_function("tracing_off", |b| {
        b.iter(|| {
            let r = black_box(tlb.lookup(black_box(miss), Asid::new(1)));
            sat_obs::charge(0, sat_obs::ChargeCause::TlbStall, black_box(29));
            r
        })
    });
    sat_obs::set_flow_tracing(true);
    group.bench_function("tracing_on", |b| {
        b.iter(|| {
            let r = black_box(tlb.lookup(black_box(miss), Asid::new(1)));
            sat_obs::charge(0, sat_obs::ChargeCause::TlbStall, black_box(29));
            r
        })
    });
    sat_obs::set_flow_tracing(false);
    let _ = sat_obs::uninstall();
    group.finish();
}

fn benches(c: &mut Criterion) {
    main_tlb_benches(c);
    micro_tlb_benches(c);
    obs_overhead_benches(c);
    obs_charge_tagging_benches(c);
}

criterion_group!(tlb_hot_path, benches);
criterion_main!(tlb_hot_path);
