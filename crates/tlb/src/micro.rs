//! The per-core micro-TLBs.
//!
//! Cortex-A9 cores front the main TLB with small, fully-associative
//! instruction and data micro-TLBs. They carry no ASID tags and are
//! flushed on every context switch — the reason the paper's
//! TLB-sharing benefit accrues in the *main* TLB.
//!
//! Like [`crate::main_tlb::MainTlb`], the model keeps a VA-page index
//! next to the slot array so `lookup` and `flush_va` touch only
//! candidate slots; ties resolve to the minimum slot number, matching
//! a linear first-match scan (see [`crate::index`]).

use sat_types::VirtAddr;

use crate::entry::TlbEntry;
use crate::index::{FreeSlots, VaIndex};

/// Reports a micro-TLB invalidation. Micro TLBs are untagged, so no
/// pid/ASID rides on the event; the reason comes from the caller's
/// scoped attribution, exactly as for the main TLB.
fn emit_micro_flush(scope: sat_obs::FlushScope, entries: usize) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Tlb,
            0,
            0,
            sat_obs::Payload::TlbFlush {
                scope,
                reason: sat_obs::current_flush_reason(),
                entries: entries as u64,
            },
        );
    }
}

/// A micro-TLB (instruction or data side).
pub struct MicroTlb {
    entries: Vec<Option<TlbEntry>>,
    victim: usize,
    hits: u64,
    misses: u64,
    /// Valid-entry count, maintained incrementally.
    valid: usize,
    /// VA page → candidate slots.
    va_index: VaIndex,
    /// Invalid slots, lowest first (the architectural fill order).
    free: FreeSlots,
    /// Scratch buffer for candidate collection (avoids a per-lookup
    /// allocation on the hot path).
    scratch: Vec<usize>,
}

/// Default micro-TLB capacity (Cortex-A9: 32 entries).
pub const MICRO_TLB_ENTRIES: usize = 32;

impl Default for MicroTlb {
    fn default() -> Self {
        MicroTlb::new(MICRO_TLB_ENTRIES)
    }
}

impl MicroTlb {
    /// Creates a micro-TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MicroTlb {
            entries: vec![None; capacity],
            victim: 0,
            hits: 0,
            misses: 0,
            valid: 0,
            va_index: VaIndex::new(capacity),
            free: FreeSlots::all(capacity),
            scratch: Vec::new(),
        }
    }

    /// Looks up `va`. Micro-TLB entries are not ASID-tagged; the
    /// flush-on-context-switch discipline makes that safe.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        // The index yields candidates (hash collisions included), so
        // coverage is re-checked; minimum slot = linear-scan winner.
        let entries = &self.entries;
        let mut best: Option<usize> = None;
        self.va_index.for_covering(va, |slot| {
            let entry = entries[slot].as_ref().expect("indexed slot is valid");
            if entry.covers(va) && best.is_none_or(|b| slot < b) {
                best = Some(slot);
            }
        });
        match best {
            Some(slot) => {
                self.hits += 1;
                Some(self.entries[slot].expect("indexed slot is valid"))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry (round-robin replacement). Unlike the main
    /// TLB, there is no duplicate scan: the micro-TLB only ever
    /// receives entries that just missed.
    pub fn insert(&mut self, entry: TlbEntry) {
        let slot = match self.free.claim_lowest() {
            Some(slot) => slot,
            None => {
                let slot = self.victim;
                self.victim = (self.victim + 1) % self.entries.len();
                let old = self.entries[slot].expect("full TLB has no invalid slots");
                self.va_index.remove(&old, slot);
                self.valid -= 1;
                slot
            }
        };
        self.entries[slot] = Some(entry);
        self.va_index.add(&entry, slot);
        self.valid += 1;
    }

    /// Flushes everything (performed on every context switch).
    pub fn flush(&mut self) {
        let n = self.valid;
        self.entries.iter_mut().for_each(|s| *s = None);
        self.va_index.clear();
        self.free.fill();
        self.valid = 0;
        // Micro-TLB flushes fire on *every* context switch; only the
        // ones that actually invalidate something are worth a trace
        // event. (Micro TLBs carry no `TlbStats`, so no conservation
        // invariant depends on the empty ones.)
        if n > 0 {
            emit_micro_flush(sat_obs::FlushScope::MicroAll, n);
        }
    }

    /// Invalidates entries covering `va` (kept coherent with main-TLB
    /// maintenance operations).
    pub fn flush_va(&mut self, va: VirtAddr) {
        // Collect first: clearing a slot mutates the chains the walk
        // is traversing.
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        let valid_before = self.valid;
        self.va_index.for_covering(va, |slot| candidates.push(slot));
        for &slot in &candidates {
            let entry = self.entries[slot].as_ref().expect("indexed slot is valid");
            // Candidates may be hash-collision neighbours; only clear
            // entries that actually cover `va`.
            if !entry.covers(va) {
                continue;
            }
            let entry = self.entries[slot].take().expect("indexed slot is valid");
            self.va_index.remove(&entry, slot);
            self.free.release(slot);
            self.valid -= 1;
        }
        self.scratch = candidates;
        let n = valid_before - self.valid;
        if n > 0 {
            emit_micro_flush(sat_obs::FlushScope::MicroVa, n);
        }
    }

    /// Invalidates entries overlapping the VPN range (kept coherent
    /// with main-TLB range maintenance). Micro entries are untagged,
    /// so every overlapping entry dies regardless of loader; the event
    /// reports `MicroVa` scope — architecturally this is a batch of
    /// per-VA micro invalidations, not a new primitive.
    pub fn flush_range(&mut self, range: sat_types::VpnRange) {
        let valid_before = self.valid;
        for slot in 0..self.entries.len() {
            let covers = self.entries[slot]
                .as_ref()
                .is_some_and(|e| e.overlaps_vpns(&range));
            if !covers {
                continue;
            }
            let entry = self.entries[slot].take().expect("slot is valid");
            self.va_index.remove(&entry, slot);
            self.free.release(slot);
            self.valid -= 1;
        }
        let n = valid_before - self.valid;
        if n > 0 {
            emit_micro_flush(sat_obs::FlushScope::MicroVa, n);
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Asid, Domain, PageSize, Perms, Pfn};

    fn entry(va: u32) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(va),
            size: PageSize::Small4K,
            asid: Some(Asid::new(1)),
            pfn: Pfn::new(va >> 12),
            perms: Perms::RX,
            domain: Domain::USER,
        }
    }

    #[test]
    fn lookup_insert_flush() {
        let mut utlb = MicroTlb::new(2);
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        utlb.insert(entry(0x1000));
        assert!(utlb.lookup(VirtAddr::new(0x1FFF)).is_some());
        utlb.flush();
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert_eq!(utlb.stats(), (1, 2));
    }

    #[test]
    fn flush_va_is_selective() {
        let mut utlb = MicroTlb::new(4);
        utlb.insert(entry(0x1000));
        utlb.insert(entry(0x2000));
        utlb.flush_va(VirtAddr::new(0x1234));
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert!(utlb.lookup(VirtAddr::new(0x2000)).is_some());
    }

    #[test]
    fn round_robin_when_full() {
        let mut utlb = MicroTlb::new(2);
        utlb.insert(entry(0x1000));
        utlb.insert(entry(0x2000));
        utlb.insert(entry(0x3000));
        assert_eq!(utlb.occupancy(), 2);
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert!(utlb.lookup(VirtAddr::new(0x3000)).is_some());
    }

    #[test]
    fn duplicate_inserts_resolve_to_first_slot() {
        // The micro-TLB performs no duplicate scan; when two slots
        // cover the same page, the lower slot wins the lookup — same
        // as a linear first-match scan.
        let mut utlb = MicroTlb::new(4);
        let mut a = entry(0x1000);
        a.perms = Perms::RX;
        let mut b = entry(0x1000);
        b.perms = Perms::R;
        utlb.insert(a);
        utlb.insert(b);
        assert_eq!(utlb.occupancy(), 2);
        assert_eq!(utlb.lookup(VirtAddr::new(0x1000)).unwrap().perms, Perms::RX);
        // flush_va removes every covering entry, not just the winner.
        utlb.flush_va(VirtAddr::new(0x1000));
        assert_eq!(utlb.occupancy(), 0);
    }
}
