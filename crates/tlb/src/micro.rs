//! The per-core micro-TLBs.
//!
//! Cortex-A9 cores front the main TLB with small, fully-associative
//! instruction and data micro-TLBs. They carry no ASID tags and are
//! flushed on every context switch — the reason the paper's
//! TLB-sharing benefit accrues in the *main* TLB.

use sat_types::VirtAddr;

use crate::entry::TlbEntry;

/// A micro-TLB (instruction or data side).
pub struct MicroTlb {
    entries: Vec<Option<TlbEntry>>,
    victim: usize,
    hits: u64,
    misses: u64,
}

/// Default micro-TLB capacity (Cortex-A9: 32 entries).
pub const MICRO_TLB_ENTRIES: usize = 32;

impl Default for MicroTlb {
    fn default() -> Self {
        MicroTlb::new(MICRO_TLB_ENTRIES)
    }
}

impl MicroTlb {
    /// Creates a micro-TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MicroTlb {
            entries: vec![None; capacity],
            victim: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `va`. Micro-TLB entries are not ASID-tagged; the
    /// flush-on-context-switch discipline makes that safe.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        for e in self.entries.iter().flatten() {
            if e.covers(va) {
                self.hits += 1;
                return Some(*e);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts an entry (round-robin replacement).
    pub fn insert(&mut self, entry: TlbEntry) {
        if let Some(idx) = self.entries.iter().position(|s| s.is_none()) {
            self.entries[idx] = Some(entry);
            return;
        }
        self.entries[self.victim] = Some(entry);
        self.victim = (self.victim + 1) % self.entries.len();
    }

    /// Flushes everything (performed on every context switch).
    pub fn flush(&mut self) {
        self.entries.iter_mut().for_each(|s| *s = None);
    }

    /// Invalidates entries covering `va` (kept coherent with main-TLB
    /// maintenance operations).
    pub fn flush_va(&mut self, va: VirtAddr) {
        for s in self.entries.iter_mut() {
            if s.as_ref().is_some_and(|e| e.covers(va)) {
                *s = None;
            }
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Asid, Domain, PageSize, Perms, Pfn};

    fn entry(va: u32) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(va),
            size: PageSize::Small4K,
            asid: Some(Asid::new(1)),
            pfn: Pfn::new(va >> 12),
            perms: Perms::RX,
            domain: Domain::USER,
        }
    }

    #[test]
    fn lookup_insert_flush() {
        let mut utlb = MicroTlb::new(2);
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        utlb.insert(entry(0x1000));
        assert!(utlb.lookup(VirtAddr::new(0x1FFF)).is_some());
        utlb.flush();
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert_eq!(utlb.stats(), (1, 2));
    }

    #[test]
    fn flush_va_is_selective() {
        let mut utlb = MicroTlb::new(4);
        utlb.insert(entry(0x1000));
        utlb.insert(entry(0x2000));
        utlb.flush_va(VirtAddr::new(0x1234));
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert!(utlb.lookup(VirtAddr::new(0x2000)).is_some());
    }

    #[test]
    fn round_robin_when_full() {
        let mut utlb = MicroTlb::new(2);
        utlb.insert(entry(0x1000));
        utlb.insert(entry(0x2000));
        utlb.insert(entry(0x3000));
        assert_eq!(utlb.occupancy(), 2);
        assert!(utlb.lookup(VirtAddr::new(0x1000)).is_none());
        assert!(utlb.lookup(VirtAddr::new(0x3000)).is_some());
    }
}
