//! The unified main TLB.
//!
//! Architecturally this is a flat array of tagged slots with
//! round-robin replacement (see the [`MainTlb`] docs). Since every
//! simulated fetch and data access funnels through [`MainTlb::lookup`],
//! the model keeps acceleration indexes next to the slot array — a
//! per-page-size VA map, per-tag slot lists, and a free-slot set — so
//! lookups and selective flushes touch only candidate slots instead of
//! scanning the whole array. The indexes never change *which* slot
//! wins: every path resolves ties by minimum slot number, which is the
//! entry a linear first-match scan returns, so observable behaviour
//! (hits, misses, evictions, flush counts, statistics) is identical to
//! the linear reference model in [`crate::reference`]. The
//! differential proptests in `tests/differential.rs` enforce that
//! equivalence.

use sat_types::{Asid, Domain, VirtAddr};

use crate::entry::TlbEntry;
use crate::index::{FreeSlots, TagIndex, VaIndex};

/// Reports a flush to the observability layer. The *reason* (which
/// kernel path issued the flush) comes from the caller's scoped
/// attribution ([`sat_obs::with_flush_reason`]); the TLB only knows
/// the scope and the invalidation count. Zero-entry flushes are
/// reported too: the conservation tests match event *counts* against
/// `TlbStats::full_flushes`, not just entry sums. The `enabled` gate
/// keeps the untraced path to a single predictable branch.
fn emit_flush(scope: sat_obs::FlushScope, asid: Option<Asid>, entries: usize) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Tlb,
            0,
            asid.map_or(0, |a| a.raw()),
            sat_obs::Payload::TlbFlush {
                scope,
                reason: sat_obs::current_flush_reason(),
                entries: entries as u64,
            },
        );
    }
}

/// Main-TLB statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (a table walk follows).
    pub misses: u64,
    /// Hits on *global* entries.
    pub global_hits: u64,
    /// Hits on a global entry that was loaded by a different process
    /// (ASID) than the one now hitting — translation reuse across
    /// address spaces, the paper's TLB-sharing win.
    pub cross_asid_hits: u64,
    /// Entries invalidated by flush operations.
    pub entries_flushed: u64,
    /// Full-TLB flush operations performed.
    pub full_flushes: u64,
    /// Valid entries evicted by replacement.
    pub evictions: u64,
    /// Flush requests a precise shootdown skipped because the target
    /// ASID was never resident here (bumped via
    /// [`MainTlb::note_avoided_flush`] by the machine layer — no TLB
    /// operation runs).
    pub avoided_flushes: u64,
}

impl TlbStats {
    /// Miss rate over all lookups, in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Result of a main-TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// The lookup hit; the matching entry is returned.
    Hit(TlbEntry),
    /// No entry matched; a page-table walk is required.
    Miss,
}

/// The unified main TLB (128 entries on Cortex-A9).
///
/// Modeled as fully associative with round-robin replacement; the real
/// A9 main TLB is 2-way set-associative, but the capacity and tagging
/// behaviour (ASID, global bit, per-entry domain) — the properties the
/// paper's mechanism depends on — are preserved.
///
/// To attribute cross-address-space reuse, each slot also remembers
/// the ASID of the process that *loaded* it (for global entries, the
/// architectural tag is "match everything", but the simulator keeps
/// the loader for statistics).
#[derive(Clone)]
pub struct MainTlb {
    entries: Vec<Option<(TlbEntry, Asid)>>,
    victim: usize,
    stats: TlbStats,
    /// Valid-entry count, maintained incrementally.
    valid: usize,
    /// Valid *global* entry count, maintained incrementally.
    global_valid: usize,
    /// VA page → candidate slots.
    va_index: VaIndex,
    /// Entry tag (`asid` field, `None` = global) → slots. Bounds the
    /// `insert` duplicate scan, `flush_asid`, and `flush_non_global`
    /// to candidate slots.
    tag_index: TagIndex,
    /// Invalid slots, lowest first (the architectural fill order).
    free: FreeSlots,
    /// Scratch buffer for candidate collection (avoids a per-lookup
    /// allocation on the hot path).
    scratch: Vec<usize>,
}

/// Default main-TLB capacity (Cortex-A9).
pub const MAIN_TLB_ENTRIES: usize = 128;

impl Default for MainTlb {
    fn default() -> Self {
        MainTlb::new(MAIN_TLB_ENTRIES)
    }
}

impl MainTlb {
    /// Creates a TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MainTlb {
            entries: vec![None; capacity],
            victim: 0,
            stats: TlbStats::default(),
            valid: 0,
            global_valid: 0,
            va_index: VaIndex::new(capacity),
            tag_index: TagIndex::new(capacity),
            free: FreeSlots::all(capacity),
            scratch: Vec::new(),
        }
    }

    /// Returns the statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Records that a precise shootdown skipped this TLB (the target
    /// ASID was never resident on its core). Pure accounting: contents
    /// and flush counters are untouched.
    pub fn note_avoided_flush(&mut self) {
        self.stats.avoided_flushes += 1;
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid
    }

    /// Counts valid global entries.
    pub fn global_occupancy(&self) -> usize {
        self.global_valid
    }

    /// Returns the lowest slot holding an entry that matches
    /// `(va, asid)` — the winner of a linear first-match scan. The
    /// index yields candidates, so the full match (coverage + ASID)
    /// is re-checked per slot.
    fn matching_slot(&self, va: VirtAddr, asid: Asid) -> Option<usize> {
        let entries = &self.entries;
        let mut best: Option<usize> = None;
        self.va_index.for_covering(va, |slot| {
            let (entry, _) = entries[slot].as_ref().expect("indexed slot is valid");
            if entry.matches(va, asid) && best.is_none_or(|b| slot < b) {
                best = Some(slot);
            }
        });
        best
    }

    /// Looks up `va` under `asid`, updating statistics.
    pub fn lookup(&mut self, va: VirtAddr, asid: Asid) -> TlbLookup {
        if let Some(slot) = self.matching_slot(va, asid) {
            let (entry, loader) = self.entries[slot].as_ref().expect("slot is valid");
            self.stats.hits += 1;
            if entry.is_global() {
                self.stats.global_hits += 1;
                // Cross-address-space reuse counts only user-space
                // entries: kernel-text entries are global on every
                // OS and would contaminate the sharing metric.
                if *loader != asid && entry.domain != Domain::KERNEL {
                    self.stats.cross_asid_hits += 1;
                }
            }
            return TlbLookup::Hit(*entry);
        }
        self.stats.misses += 1;
        TlbLookup::Miss
    }

    /// Probes for a matching entry without updating statistics.
    pub fn probe(&self, va: VirtAddr, asid: Asid) -> Option<TlbEntry> {
        self.matching_slot(va, asid)
            .map(|slot| self.entries[slot].expect("slot is valid").0)
    }

    /// Inserts an entry loaded by `loader`, replacing any entry that
    /// already covers the same page for the same tag, otherwise
    /// using round-robin replacement.
    pub fn insert(&mut self, entry: TlbEntry, loader: Asid) {
        // Invalidate duplicates first (hardware must never hold two
        // entries matching the same VA+ASID). Coverage is checked in
        // both directions so a large entry evicts the small entries
        // inside its range and vice versa. Only same-tag entries can
        // collide, so the scan is bounded to that tag's chain.
        let mut overlaps = std::mem::take(&mut self.scratch);
        overlaps.clear();
        {
            let entries = &self.entries;
            self.tag_index.for_tag(entry.asid, |slot| {
                let (e, _) = entries[slot].as_ref().expect("indexed slot is valid");
                if e.covers(entry.va_base) || entry.covers(e.va_base) {
                    overlaps.push(slot);
                }
            });
        }
        if !overlaps.is_empty() {
            // The linear scan replaces the first overlapping slot in
            // place and silently clears the rest.
            overlaps.sort_unstable();
            let target = overlaps[0];
            for &slot in overlaps.iter().skip(1) {
                self.clear_slot(slot);
            }
            let old = self.entries[target].expect("overlap slot is valid").0;
            self.va_index.remove(&old, target);
            if old.is_global() {
                self.global_valid -= 1;
            }
            // Same tag by construction, so the tag chain keeps its
            // registration for `target`.
            self.entries[target] = Some((entry, loader));
            self.va_index.add(&entry, target);
            if entry.is_global() {
                self.global_valid += 1;
            }
            self.scratch = overlaps;
            return;
        }
        self.scratch = overlaps;
        let slot = match self.free.claim_lowest() {
            Some(slot) => slot,
            None => {
                self.stats.evictions += 1;
                let slot = self.victim;
                self.victim = (self.victim + 1) % self.entries.len();
                let (old, _) = self.entries[slot].expect("full TLB has no invalid slots");
                self.detach(&old, slot);
                slot
            }
        };
        self.entries[slot] = Some((entry, loader));
        self.va_index.add(&entry, slot);
        self.tag_index.add(entry.asid, slot);
        self.valid += 1;
        if entry.is_global() {
            self.global_valid += 1;
        }
    }

    /// Invalidates everything. Returns the number of entries dropped.
    pub fn flush_all(&mut self) -> usize {
        let n = self.valid;
        self.entries.iter_mut().for_each(|s| *s = None);
        self.va_index.clear();
        self.tag_index.clear();
        self.free.fill();
        self.valid = 0;
        self.global_valid = 0;
        self.stats.entries_flushed += n as u64;
        self.stats.full_flushes += 1;
        emit_flush(sat_obs::FlushScope::All, None, n);
        n
    }

    /// Invalidates all non-global entries tagged with `asid` (the
    /// `TLBIASID` operation Linux uses for `flush_tlb_mm`).
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        // Collect first: clearing a slot mutates the chain the walk
        // is traversing.
        let mut slots = std::mem::take(&mut self.scratch);
        slots.clear();
        self.tag_index.for_tag(Some(asid), |slot| slots.push(slot));
        // The whole tag chain dies: drop its head once and reset each
        // slot's links write-only, instead of per-slot unlink surgery
        // on a chain that is being discarded anyway.
        self.tag_index.drop_tag(Some(asid));
        let n = slots.len();
        for &slot in &slots {
            let (entry, _) = self.entries[slot].take().expect("indexed slot is valid");
            self.va_index.remove(&entry, slot);
            self.tag_index.detach(slot);
            self.free.release(slot);
            self.valid -= 1;
            // Entries carrying an ASID tag are by definition
            // non-global, so `global_valid` is untouched.
            debug_assert!(!entry.is_global());
        }
        self.scratch = slots;
        self.stats.entries_flushed += n as u64;
        emit_flush(sat_obs::FlushScope::Asid, Some(asid), n);
        n
    }

    /// Invalidates every entry that covers `va`, regardless of ASID or
    /// global bit (the `TLBIMVAA` operation). This is what the paper's
    /// domain-fault handler uses to evict shared global entries that a
    /// non-zygote process stumbled on.
    pub fn flush_va_all_asids(&mut self, va: VirtAddr) -> usize {
        let n = self.flush_covering(va, |_| true);
        emit_flush(sat_obs::FlushScope::VaAllAsids, None, n);
        n
    }

    /// Invalidates entries covering `va` tagged `asid`, plus global
    /// entries covering `va` (the `TLBIMVA` operation).
    pub fn flush_va(&mut self, va: VirtAddr, asid: Asid) -> usize {
        let n = self.flush_covering(va, |e| e.is_global() || e.asid == Some(asid));
        emit_flush(sat_obs::FlushScope::Va, Some(asid), n);
        n
    }

    /// Invalidates the entries tagged `asid` whose mapping contains
    /// page `vpn` — a single-page `TLBIMVA` restricted to the ASID
    /// tag. Global entries survive; a caller that must invalidate a
    /// global mapping escalates to a global-class flush instead. O(1)
    /// through the VA-page→slot direct map.
    pub fn flush_page(&mut self, asid: Asid, vpn: u32) -> usize {
        let va = VirtAddr::new(vpn << sat_types::PAGE_SHIFT);
        let n = self.flush_covering(va, |e| e.asid == Some(asid));
        emit_flush(sat_obs::FlushScope::Page, Some(asid), n);
        n
    }

    /// Invalidates the entries tagged `asid` overlapping the VPN range
    /// (back-to-back `TLBIMVA`s in hardware). Global entries survive.
    /// Walks the ASID's tag chain, so the cost is bounded by that
    /// ASID's residency, not the range width.
    pub fn flush_range(&mut self, asid: Asid, range: sat_types::VpnRange) -> usize {
        // Collect first: clearing a slot mutates the chain the walk
        // is traversing.
        let mut slots = std::mem::take(&mut self.scratch);
        slots.clear();
        {
            let entries = &self.entries;
            self.tag_index.for_tag(Some(asid), |slot| {
                let (e, _) = entries[slot].as_ref().expect("indexed slot is valid");
                if e.overlaps_vpns(&range) {
                    slots.push(slot);
                }
            });
        }
        let n = slots.len();
        for &slot in &slots {
            self.clear_slot(slot);
        }
        self.scratch = slots;
        self.stats.entries_flushed += n as u64;
        emit_flush(sat_obs::FlushScope::Range, Some(asid), n);
        n
    }

    /// Invalidates all non-global entries (used when ASIDs are
    /// recycled).
    pub fn flush_non_global(&mut self) -> usize {
        let mut slots = std::mem::take(&mut self.scratch);
        slots.clear();
        self.tag_index.for_non_global(|slot| slots.push(slot));
        let n = slots.len();
        for &slot in &slots {
            self.clear_slot(slot);
        }
        self.scratch = slots;
        self.stats.entries_flushed += n as u64;
        emit_flush(sat_obs::FlushScope::NonGlobal, None, n);
        n
    }

    /// Invalidates the entries covering `va` that satisfy `pred`.
    fn flush_covering(&mut self, va: VirtAddr, pred: impl Fn(&TlbEntry) -> bool) -> usize {
        // Collect first: clearing a slot mutates the chains the walk
        // is traversing.
        let mut candidates = std::mem::take(&mut self.scratch);
        candidates.clear();
        self.va_index.for_covering(va, |slot| candidates.push(slot));
        let mut n = 0u64;
        for &slot in &candidates {
            let (entry, _) = self.entries[slot].as_ref().expect("indexed slot is valid");
            // Candidates may be hash-collision neighbours; re-check
            // coverage before applying the flush predicate.
            if entry.covers(va) && pred(entry) {
                self.clear_slot(slot);
                n += 1;
            }
        }
        self.scratch = candidates;
        self.stats.entries_flushed += n;
        n as usize
    }

    /// Invalidates `slot`, unregistering it everywhere.
    fn clear_slot(&mut self, slot: usize) {
        let (entry, _) = self.entries[slot].take().expect("cleared slot is valid");
        self.detach(&entry, slot);
        self.free.release(slot);
    }

    /// Removes `slot`'s registrations for `entry` from every index and
    /// decrements the occupancy counters (slot array and free set are
    /// the caller's responsibility).
    fn detach(&mut self, entry: &TlbEntry, slot: usize) {
        self.va_index.remove(entry, slot);
        self.tag_index.remove(entry.asid, slot);
        self.valid -= 1;
        if entry.is_global() {
            self.global_valid -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Domain, PageSize, Perms, Pfn};

    fn entry(va: u32, asid: Option<u8>) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(va),
            size: PageSize::Small4K,
            asid: asid.map(Asid::new),
            pfn: Pfn::new(va >> 12),
            perms: Perms::RX,
            domain: Domain::USER,
        }
    }

    #[test]
    fn hit_and_miss_update_stats() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        assert!(matches!(
            tlb.lookup(VirtAddr::new(0x1ABC), Asid::new(1)),
            TlbLookup::Hit(_)
        ));
        assert_eq!(
            tlb.lookup(VirtAddr::new(0x2000), Asid::new(1)),
            TlbLookup::Miss
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn global_entry_hits_across_asids_and_is_counted() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x5000, None), Asid::new(1));
        assert!(matches!(
            tlb.lookup(VirtAddr::new(0x5000), Asid::new(2)),
            TlbLookup::Hit(_)
        ));
        assert_eq!(tlb.stats().global_hits, 1);
        assert_eq!(tlb.stats().cross_asid_hits, 1);
        // Same-ASID global hit is not a cross-ASID hit.
        tlb.lookup(VirtAddr::new(0x5000), Asid::new(1));
        assert_eq!(tlb.stats().global_hits, 2);
        assert_eq!(tlb.stats().cross_asid_hits, 1);
    }

    #[test]
    fn insert_replaces_duplicate_tag() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        let mut updated = entry(0x1000, Some(1));
        updated.perms = Perms::R;
        tlb.insert(updated, Asid::new(1));
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(
            tlb.probe(VirtAddr::new(0x1000), Asid::new(1))
                .unwrap()
                .perms,
            Perms::R
        );
    }

    #[test]
    fn distinct_asids_occupy_distinct_slots() {
        // The duplication the paper eliminates: each process loads its
        // own copy of the same library translation.
        let mut tlb = MainTlb::new(8);
        for a in 1..=4 {
            tlb.insert(entry(0x8000, Some(a)), Asid::new(a));
        }
        assert_eq!(tlb.occupancy(), 4);
        // With the global bit, one entry serves all four.
        let mut shared = MainTlb::new(8);
        for a in 1..=4 {
            shared.insert(entry(0x8000, None), Asid::new(a));
        }
        assert_eq!(shared.occupancy(), 1);
    }

    #[test]
    fn round_robin_eviction_when_full() {
        let mut tlb = MainTlb::new(2);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x3000, Some(1)), Asid::new(1));
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.stats().evictions, 1);
        // 0x1000 was the round-robin victim.
        assert!(tlb.probe(VirtAddr::new(0x1000), Asid::new(1)).is_none());
    }

    #[test]
    fn flush_asid_spares_global_and_other_asids() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, Some(2)), Asid::new(2));
        tlb.insert(entry(0x3000, None), Asid::new(1));
        assert_eq!(tlb.flush_asid(Asid::new(1)), 1);
        assert!(tlb.probe(VirtAddr::new(0x2000), Asid::new(2)).is_some());
        assert!(tlb.probe(VirtAddr::new(0x3000), Asid::new(9)).is_some());
    }

    #[test]
    fn flush_va_all_asids_evicts_global_entries() {
        // The domain-fault handler path: a non-zygote process touched
        // a VA covered by a global zygote entry.
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x5000, None), Asid::new(1));
        tlb.insert(entry(0x5000, Some(7)), Asid::new(7));
        tlb.insert(entry(0x6000, None), Asid::new(1));
        assert_eq!(tlb.flush_va_all_asids(VirtAddr::new(0x5FFF)), 2);
        assert!(tlb.probe(VirtAddr::new(0x6000), Asid::new(3)).is_some());
    }

    #[test]
    fn flush_all_reports_count() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, None), Asid::new(1));
        assert_eq!(tlb.flush_all(), 2);
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().full_flushes, 1);
        assert_eq!(tlb.stats().entries_flushed, 2);
    }

    #[test]
    fn flush_non_global_spares_global() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, None), Asid::new(1));
        assert_eq!(tlb.flush_non_global(), 1);
        assert_eq!(tlb.global_occupancy(), 1);
    }

    #[test]
    fn flush_page_hits_only_the_asid_tagged_page() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x1000, Some(2)), Asid::new(2));
        tlb.insert(entry(0x1000, None), Asid::new(1));
        tlb.insert(entry(0x2000, Some(1)), Asid::new(1));
        assert_eq!(tlb.flush_page(Asid::new(1), 0x1), 1);
        assert!(tlb.probe(VirtAddr::new(0x1000), Asid::new(2)).is_some());
        assert!(
            tlb.probe(VirtAddr::new(0x1000), Asid::new(9)).is_some(),
            "global survives"
        );
        assert!(tlb.probe(VirtAddr::new(0x2000), Asid::new(1)).is_some());
        assert_eq!(tlb.occupancy(), 3);
    }

    #[test]
    fn flush_range_spares_globals_and_neighbours() {
        let mut tlb = MainTlb::new(16);
        for vpn in 0x10..0x18u32 {
            tlb.insert(entry(vpn << 12, Some(3)), Asid::new(3));
        }
        tlb.insert(entry(0x12 << 12, None), Asid::new(3));
        tlb.insert(entry(0x13 << 12, Some(4)), Asid::new(4));
        // Flush [0x12, 0x16): four ASID-3 pages die, the global and
        // the ASID-4 entry in range survive, as do out-of-range pages.
        assert_eq!(
            tlb.flush_range(Asid::new(3), sat_types::VpnRange::new(0x12, 0x16)),
            4
        );
        assert!(tlb.probe(VirtAddr::new(0x10 << 12), Asid::new(3)).is_some());
        assert!(tlb.probe(VirtAddr::new(0x17 << 12), Asid::new(3)).is_some());
        assert!(
            tlb.probe(VirtAddr::new(0x12 << 12), Asid::new(9)).is_some(),
            "global survives"
        );
        assert!(tlb.probe(VirtAddr::new(0x13 << 12), Asid::new(4)).is_some());
        assert!(tlb.probe(VirtAddr::new(0x14 << 12), Asid::new(3)).is_none());
    }

    #[test]
    fn flush_range_removes_large_pages_overlapping_the_range() {
        let mut tlb = MainTlb::new(8);
        let large = TlbEntry {
            va_base: VirtAddr::new(0x0001_0000),
            size: PageSize::Large64K,
            asid: Some(Asid::new(5)),
            pfn: Pfn::new(0x540),
            perms: Perms::RX,
            domain: Domain::USER,
        };
        tlb.insert(large, Asid::new(5));
        // The 64KB entry spans vpns 0x10..0x20; a range touching its
        // last page removes it.
        assert_eq!(
            tlb.flush_range(Asid::new(5), sat_types::VpnRange::new(0x1F, 0x40)),
            1
        );
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn mixed_page_sizes_index_correctly() {
        // A 64KB entry and a 4KB entry under different tags: lookups
        // resolve through different per-size maps, and the by-address
        // flush still removes both.
        let mut tlb = MainTlb::new(8);
        let large = TlbEntry {
            va_base: VirtAddr::new(0x0001_0000),
            size: PageSize::Large64K,
            asid: None,
            pfn: Pfn::new(0x540),
            perms: Perms::RX,
            domain: Domain::ZYGOTE,
        };
        tlb.insert(large, Asid::new(1));
        tlb.insert(entry(0x0001_2000, Some(4)), Asid::new(4));
        assert!(tlb
            .probe(VirtAddr::new(0x0001_F000), Asid::new(9))
            .is_some());
        // The 4KB entry sits at a lower slot? No: the large entry was
        // inserted first, so slot 0 wins for ASID 4 at 0x12000.
        assert_eq!(
            tlb.probe(VirtAddr::new(0x0001_2000), Asid::new(4))
                .unwrap()
                .size,
            PageSize::Large64K
        );
        assert_eq!(tlb.flush_va_all_asids(VirtAddr::new(0x0001_2345)), 2);
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn occupancy_counter_tracks_all_paths() {
        let mut tlb = MainTlb::new(4);
        assert_eq!(tlb.occupancy(), 0);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, None), Asid::new(2));
        assert_eq!((tlb.occupancy(), tlb.global_occupancy()), (2, 1));
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1)); // in-place dup
        assert_eq!(tlb.occupancy(), 2);
        tlb.flush_asid(Asid::new(1));
        assert_eq!((tlb.occupancy(), tlb.global_occupancy()), (1, 1));
        tlb.flush_all();
        assert_eq!((tlb.occupancy(), tlb.global_occupancy()), (0, 0));
    }
}
