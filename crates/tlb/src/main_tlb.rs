//! The unified main TLB.

use sat_types::{Asid, Domain, VirtAddr};

use crate::entry::TlbEntry;

/// Main-TLB statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (a table walk follows).
    pub misses: u64,
    /// Hits on *global* entries.
    pub global_hits: u64,
    /// Hits on a global entry that was loaded by a different process
    /// (ASID) than the one now hitting — translation reuse across
    /// address spaces, the paper's TLB-sharing win.
    pub cross_asid_hits: u64,
    /// Entries invalidated by flush operations.
    pub entries_flushed: u64,
    /// Full-TLB flush operations performed.
    pub full_flushes: u64,
    /// Valid entries evicted by replacement.
    pub evictions: u64,
}

impl TlbStats {
    /// Miss rate over all lookups, in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Result of a main-TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// The lookup hit; the matching entry is returned.
    Hit(TlbEntry),
    /// No entry matched; a page-table walk is required.
    Miss,
}

/// The unified main TLB (128 entries on Cortex-A9).
///
/// Modeled as fully associative with round-robin replacement; the real
/// A9 main TLB is 2-way set-associative, but the capacity and tagging
/// behaviour (ASID, global bit, per-entry domain) — the properties the
/// paper's mechanism depends on — are preserved.
///
/// To attribute cross-address-space reuse, each slot also remembers
/// the ASID of the process that *loaded* it (for global entries, the
/// architectural tag is "match everything", but the simulator keeps
/// the loader for statistics).
pub struct MainTlb {
    entries: Vec<Option<(TlbEntry, Asid)>>,
    victim: usize,
    stats: TlbStats,
}

/// Default main-TLB capacity (Cortex-A9).
pub const MAIN_TLB_ENTRIES: usize = 128;

impl Default for MainTlb {
    fn default() -> Self {
        MainTlb::new(MAIN_TLB_ENTRIES)
    }
}

impl MainTlb {
    /// Creates a TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MainTlb {
            entries: vec![None; capacity],
            victim: 0,
            stats: TlbStats::default(),
        }
    }

    /// Returns the statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Looks up `va` under `asid`, updating statistics.
    pub fn lookup(&mut self, va: VirtAddr, asid: Asid) -> TlbLookup {
        for slot in self.entries.iter().flatten() {
            let (entry, loader) = slot;
            if entry.matches(va, asid) {
                self.stats.hits += 1;
                if entry.is_global() {
                    self.stats.global_hits += 1;
                    // Cross-address-space reuse counts only user-space
                    // entries: kernel-text entries are global on every
                    // OS and would contaminate the sharing metric.
                    if *loader != asid && entry.domain != Domain::KERNEL {
                        self.stats.cross_asid_hits += 1;
                    }
                }
                return TlbLookup::Hit(*entry);
            }
        }
        self.stats.misses += 1;
        TlbLookup::Miss
    }

    /// Probes for a matching entry without updating statistics.
    pub fn probe(&self, va: VirtAddr, asid: Asid) -> Option<TlbEntry> {
        self.entries
            .iter()
            .flatten()
            .find(|(e, _)| e.matches(va, asid))
            .map(|(e, _)| *e)
    }

    /// Inserts an entry loaded by `loader`, replacing any entry that
    /// already covers the same page for the same tag, otherwise
    /// using round-robin replacement.
    pub fn insert(&mut self, entry: TlbEntry, loader: Asid) {
        // Invalidate duplicates first (hardware must never hold two
        // entries matching the same VA+ASID). Coverage is checked in
        // both directions so a large entry evicts the small entries
        // inside its range and vice versa.
        let tag_asid = entry.asid;
        let mut replaced = false;
        for slot in self.entries.iter_mut() {
            if slot.as_ref().is_some_and(|(e, _)| {
                e.asid == tag_asid && (e.covers(entry.va_base) || entry.covers(e.va_base))
            }) {
                if replaced {
                    *slot = None; // extra overlapping duplicate
                } else {
                    *slot = Some((entry, loader));
                    replaced = true;
                }
            }
        }
        if replaced {
            return;
        }
        if let Some(idx) = self.entries.iter().position(|s| s.is_none()) {
            self.entries[idx] = Some((entry, loader));
            return;
        }
        self.stats.evictions += 1;
        self.entries[self.victim] = Some((entry, loader));
        self.victim = (self.victim + 1) % self.entries.len();
    }

    /// Invalidates everything. Returns the number of entries dropped.
    pub fn flush_all(&mut self) -> usize {
        let n = self.occupancy();
        self.entries.iter_mut().for_each(|s| *s = None);
        self.stats.entries_flushed += n as u64;
        self.stats.full_flushes += 1;
        n
    }

    /// Invalidates all non-global entries tagged with `asid` (the
    /// `TLBIASID` operation Linux uses for `flush_tlb_mm`).
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.flush_where(|e, _| e.asid == Some(asid))
    }

    /// Invalidates every entry that covers `va`, regardless of ASID or
    /// global bit (the `TLBIMVAA` operation). This is what the paper's
    /// domain-fault handler uses to evict shared global entries that a
    /// non-zygote process stumbled on.
    pub fn flush_va_all_asids(&mut self, va: VirtAddr) -> usize {
        self.flush_where(|e, _| e.covers(va))
    }

    /// Invalidates entries covering `va` tagged `asid`, plus global
    /// entries covering `va` (the `TLBIMVA` operation).
    pub fn flush_va(&mut self, va: VirtAddr, asid: Asid) -> usize {
        self.flush_where(|e, _| e.covers(va) && (e.is_global() || e.asid == Some(asid)))
    }

    /// Invalidates all non-global entries (used when ASIDs are
    /// recycled).
    pub fn flush_non_global(&mut self) -> usize {
        self.flush_where(|e, _| !e.is_global())
    }

    /// Counts valid global entries.
    pub fn global_occupancy(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|(e, _)| e.is_global())
            .count()
    }

    fn flush_where(&mut self, pred: impl Fn(&TlbEntry, Asid) -> bool) -> usize {
        let mut n = 0;
        for slot in self.entries.iter_mut() {
            if let Some((e, loader)) = slot {
                if pred(e, *loader) {
                    *slot = None;
                    n += 1;
                }
            }
        }
        self.stats.entries_flushed += n as u64;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Domain, PageSize, Perms, Pfn};

    fn entry(va: u32, asid: Option<u8>) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(va),
            size: PageSize::Small4K,
            asid: asid.map(Asid::new),
            pfn: Pfn::new(va >> 12),
            perms: Perms::RX,
            domain: Domain::USER,
        }
    }

    #[test]
    fn hit_and_miss_update_stats() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        assert!(matches!(
            tlb.lookup(VirtAddr::new(0x1ABC), Asid::new(1)),
            TlbLookup::Hit(_)
        ));
        assert_eq!(tlb.lookup(VirtAddr::new(0x2000), Asid::new(1)), TlbLookup::Miss);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn global_entry_hits_across_asids_and_is_counted() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x5000, None), Asid::new(1));
        assert!(matches!(
            tlb.lookup(VirtAddr::new(0x5000), Asid::new(2)),
            TlbLookup::Hit(_)
        ));
        assert_eq!(tlb.stats().global_hits, 1);
        assert_eq!(tlb.stats().cross_asid_hits, 1);
        // Same-ASID global hit is not a cross-ASID hit.
        tlb.lookup(VirtAddr::new(0x5000), Asid::new(1));
        assert_eq!(tlb.stats().global_hits, 2);
        assert_eq!(tlb.stats().cross_asid_hits, 1);
    }

    #[test]
    fn insert_replaces_duplicate_tag() {
        let mut tlb = MainTlb::new(4);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        let mut updated = entry(0x1000, Some(1));
        updated.perms = Perms::R;
        tlb.insert(updated, Asid::new(1));
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.probe(VirtAddr::new(0x1000), Asid::new(1)).unwrap().perms, Perms::R);
    }

    #[test]
    fn distinct_asids_occupy_distinct_slots() {
        // The duplication the paper eliminates: each process loads its
        // own copy of the same library translation.
        let mut tlb = MainTlb::new(8);
        for a in 1..=4 {
            tlb.insert(entry(0x8000, Some(a)), Asid::new(a));
        }
        assert_eq!(tlb.occupancy(), 4);
        // With the global bit, one entry serves all four.
        let mut shared = MainTlb::new(8);
        for a in 1..=4 {
            shared.insert(entry(0x8000, None), Asid::new(a));
        }
        assert_eq!(shared.occupancy(), 1);
    }

    #[test]
    fn round_robin_eviction_when_full() {
        let mut tlb = MainTlb::new(2);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x3000, Some(1)), Asid::new(1));
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.stats().evictions, 1);
        // 0x1000 was the round-robin victim.
        assert!(tlb.probe(VirtAddr::new(0x1000), Asid::new(1)).is_none());
    }

    #[test]
    fn flush_asid_spares_global_and_other_asids() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, Some(2)), Asid::new(2));
        tlb.insert(entry(0x3000, None), Asid::new(1));
        assert_eq!(tlb.flush_asid(Asid::new(1)), 1);
        assert!(tlb.probe(VirtAddr::new(0x2000), Asid::new(2)).is_some());
        assert!(tlb.probe(VirtAddr::new(0x3000), Asid::new(9)).is_some());
    }

    #[test]
    fn flush_va_all_asids_evicts_global_entries() {
        // The domain-fault handler path: a non-zygote process touched
        // a VA covered by a global zygote entry.
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x5000, None), Asid::new(1));
        tlb.insert(entry(0x5000, Some(7)), Asid::new(7));
        tlb.insert(entry(0x6000, None), Asid::new(1));
        assert_eq!(tlb.flush_va_all_asids(VirtAddr::new(0x5FFF)), 2);
        assert!(tlb.probe(VirtAddr::new(0x6000), Asid::new(3)).is_some());
    }

    #[test]
    fn flush_all_reports_count() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, None), Asid::new(1));
        assert_eq!(tlb.flush_all(), 2);
        assert_eq!(tlb.occupancy(), 0);
        assert_eq!(tlb.stats().full_flushes, 1);
        assert_eq!(tlb.stats().entries_flushed, 2);
    }

    #[test]
    fn flush_non_global_spares_global() {
        let mut tlb = MainTlb::new(8);
        tlb.insert(entry(0x1000, Some(1)), Asid::new(1));
        tlb.insert(entry(0x2000, None), Asid::new(1));
        assert_eq!(tlb.flush_non_global(), 1);
        assert_eq!(tlb.global_occupancy(), 1);
    }
}
