//! TLB entries.

use sat_types::{Asid, Domain, PageSize, Perms, Pfn, PhysAddr, VirtAddr};

/// One TLB entry: a cached translation plus the tags the MMU checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEntry {
    /// Virtual address of the start of the mapped page.
    pub va_base: VirtAddr,
    /// Page size of the mapping.
    pub size: PageSize,
    /// ASID tag, or `None` for a *global* entry that matches in every
    /// address space.
    pub asid: Option<Asid>,
    /// Base frame of the translation.
    pub pfn: Pfn,
    /// Access permissions.
    pub perms: Perms,
    /// Domain the entry belongs to, checked against the DACR on every
    /// hit.
    pub domain: Domain,
}

impl TlbEntry {
    /// Returns `true` if this entry translates `va` under `asid`.
    ///
    /// A global entry (`asid == None`) ignores the current ASID — this
    /// is exactly the semantics of the ARM global bit the paper
    /// exploits to share entries across all zygote-like processes.
    pub fn matches(&self, va: VirtAddr, asid: Asid) -> bool {
        self.covers(va) && self.asid.is_none_or(|a| a == asid)
    }

    /// Returns `true` if the entry's page contains `va`, regardless of
    /// ASID (the match rule used when flushing by address).
    pub fn covers(&self, va: VirtAddr) -> bool {
        let mask = !(self.size.bytes() - 1);
        va.raw() & mask == self.va_base.raw() & mask
    }

    /// Returns `true` for global entries.
    pub fn is_global(&self) -> bool {
        self.asid.is_none()
    }

    /// Returns `true` if any 4KB page of the entry's mapping falls in
    /// `range` (the match rule for range-granular invalidation).
    pub fn overlaps_vpns(&self, range: &sat_types::VpnRange) -> bool {
        let pages = self.size.bytes() >> sat_types::PAGE_SHIFT;
        let mask = !(self.size.bytes() - 1);
        let first = (self.va_base.raw() & mask) >> sat_types::PAGE_SHIFT;
        first < range.end && range.start < first + pages
    }

    /// Translates an address within the entry's page. Base-plus-offset
    /// (mirroring `Translation::translate`): large-page bases from the
    /// promotion engine's contiguous-run allocator are not necessarily
    /// 64KB-aligned, so the low base bits carry information.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        let mask = self.size.bytes() - 1;
        PhysAddr::new(self.pfn.base().raw().wrapping_add(va.raw() & mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(asid: Option<Asid>) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(0x4000_0000),
            size: PageSize::Small4K,
            asid,
            pfn: Pfn::new(0x123),
            perms: Perms::RX,
            domain: Domain::ZYGOTE,
        }
    }

    #[test]
    fn asid_tagged_entry_matches_only_its_asid() {
        let e = entry(Some(Asid::new(5)));
        assert!(e.matches(VirtAddr::new(0x4000_0ABC), Asid::new(5)));
        assert!(!e.matches(VirtAddr::new(0x4000_0ABC), Asid::new(6)));
        assert!(!e.matches(VirtAddr::new(0x4000_1000), Asid::new(5)));
    }

    #[test]
    fn global_entry_matches_any_asid() {
        let e = entry(None);
        assert!(e.matches(VirtAddr::new(0x4000_0000), Asid::new(1)));
        assert!(e.matches(VirtAddr::new(0x4000_0FFF), Asid::new(200)));
        assert!(e.is_global());
    }

    #[test]
    fn large_page_coverage() {
        let e = TlbEntry {
            va_base: VirtAddr::new(0x0001_0000),
            size: PageSize::Large64K,
            asid: None,
            pfn: Pfn::new(0x540),
            perms: Perms::RX,
            domain: Domain::USER,
        };
        assert!(e.covers(VirtAddr::new(0x0001_FFFF)));
        assert!(!e.covers(VirtAddr::new(0x0002_0000)));
        assert_eq!(e.translate(VirtAddr::new(0x0001_2345)).raw(), 0x54_2345);
    }

    #[test]
    fn vpn_range_overlap_respects_page_size() {
        use sat_types::VpnRange;
        let small = entry(Some(Asid::new(1)));
        // 0x4000_0000 is vpn 0x40000.
        assert!(small.overlaps_vpns(&VpnRange::new(0x40000, 0x40001)));
        assert!(small.overlaps_vpns(&VpnRange::new(0x3FFF0, 0x40008)));
        assert!(!small.overlaps_vpns(&VpnRange::new(0x40001, 0x40010)));
        let large = TlbEntry {
            va_base: VirtAddr::new(0x0001_0000),
            size: PageSize::Large64K,
            asid: None,
            pfn: Pfn::new(0x540),
            perms: Perms::RX,
            domain: Domain::USER,
        };
        // The 64KB entry spans vpns 0x10..0x20; any of them overlaps.
        assert!(large.overlaps_vpns(&VpnRange::new(0x1F, 0x30)));
        assert!(!large.overlaps_vpns(&VpnRange::new(0x20, 0x30)));
        assert!(large.overlaps_vpns(&VpnRange::single(0x10)));
    }
}
