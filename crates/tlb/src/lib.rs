//! TLB model for the Cortex-A9 two-level TLB hierarchy.
//!
//! Each Cortex-A9 core has small micro-TLBs (instruction and data)
//! backed by a unified 128-entry main TLB. The micro-TLBs are flushed
//! on every context switch, which is why the paper's evaluation
//! focuses on the *main* TLB. Main-TLB entries are tagged with an
//! 8-bit ASID unless their *global* bit is set, in which case they
//! match in every address space — the hardware hook the paper uses to
//! share translations of zygote-preloaded shared code. Every entry
//! also carries a *domain* field; at access time the domain is checked
//! against the current DACR, and a mismatch raises a domain fault
//! (distinguishable in the FSR), which the paper's kernel uses to keep
//! non-zygote processes from consuming shared global entries.
//!
//! # Examples
//!
//! One global entry serves every address space; a tagged entry serves
//! only its own:
//!
//! ```
//! use sat_tlb::{MainTlb, TlbEntry, TlbLookup};
//! use sat_types::{Asid, Domain, PageSize, Perms, Pfn, VirtAddr};
//!
//! let mut tlb = MainTlb::new(8);
//! let entry = TlbEntry {
//!     va_base: VirtAddr::new(0x4000_0000),
//!     size: PageSize::Small4K,
//!     asid: None, // global
//!     pfn: Pfn::new(0x123),
//!     perms: Perms::RX,
//!     domain: Domain::ZYGOTE,
//! };
//! tlb.insert(entry, Asid::new(1));
//! // A different process (ASID 2) hits the same entry.
//! assert!(matches!(
//!     tlb.lookup(VirtAddr::new(0x4000_0ABC), Asid::new(2)),
//!     TlbLookup::Hit(_)
//! ));
//! assert_eq!(tlb.stats().cross_asid_hits, 1);
//! ```

#![forbid(unsafe_code)]

pub mod entry;
pub mod index;
pub mod main_tlb;
pub mod micro;
pub mod reference;

pub use entry::TlbEntry;
pub use main_tlb::{MainTlb, TlbLookup, TlbStats};
pub use micro::MicroTlb;
pub use reference::{RefMainTlb, RefMicroTlb};
