//! Slot indexes that make the TLB hot paths sub-linear.
//!
//! The TLB models keep their architectural state — a flat slot array
//! with round-robin replacement — untouched, and layer pure
//! acceleration structures next to it:
//!
//! * [`VaIndex`]: per-page-size direct-mapped tables from a
//!   size-aligned VA base to the slots holding an entry for that page,
//!   so `lookup`/`probe` and the by-address flushes visit only a
//!   handful of candidate slots (at most one table probe per page
//!   size) instead of scanning every slot.
//! * [`TagIndex`]: a flat ASID-tag table chaining the slots that carry
//!   each tag, bounding `insert`'s duplicate scan, `flush_asid`, and
//!   `flush_non_global` to candidate slots.
//! * [`FreeSlots`]: a bitmask of invalid slots, so the "lowest free
//!   slot" fill rule is a trailing-zeros scan over a couple of words.
//!
//! Three properties keep the indexes off the profile:
//!
//! 1. **No steady-state allocation.** Same-bucket and same-tag slots
//!    are chained through fixed `next`/`prev` arrays instead of
//!    per-bucket vectors.
//! 2. **O(1) full clear.** The simulated micro-TLBs are flushed on
//!    *every* context switch, so `clear` must cost nothing: it bumps
//!    an epoch instead of touching the tables, and readers ignore
//!    buckets stamped with an older epoch.
//! 3. **No general-purpose hash map.** The page tables are small
//!    fixed-size direct-mapped arrays (a TLB holds at most `capacity`
//!    entries, so collisions are rare and merely lengthen a chain);
//!    a probe is one multiply and one L1 load.
//!
//! Because distinct page keys can share a bucket, [`VaIndex`] visits
//! *candidate* slots: callers must confirm coverage against the entry
//! itself (`TlbEntry::covers`), exactly as the linear scan did.
//!
//! Neither structure influences *which* entry wins: callers take the
//! minimum slot number among candidates, which is exactly the entry a
//! linear first-match scan would have returned, so hit/miss/eviction
//! behaviour and statistics are bit-identical to the linear reference
//! model (`crate::reference`, enforced by the differential proptests).

use sat_types::{Asid, PageSize, VirtAddr};

use crate::entry::TlbEntry;

/// The four architectural page sizes, in probe order.
const SIZES: [PageSize; 4] = [
    PageSize::Small4K,
    PageSize::Large64K,
    PageSize::Section1M,
    PageSize::Super16M,
];

fn size_idx(size: PageSize) -> usize {
    match size {
        PageSize::Small4K => 0,
        PageSize::Large64K => 1,
        PageSize::Section1M => 2,
        PageSize::Super16M => 3,
    }
}

fn key(va: VirtAddr, size: PageSize) -> u32 {
    va.raw() & !(size.bytes() - 1)
}

const NIL: usize = usize::MAX;

/// 32-bit NIL used inside packed buckets.
const NIL32: u32 = u32::MAX;

/// A direct-mapped, epoch-validated bucket table. Each bucket packs
/// the epoch it was last written in (high 32 bits) and a chain head
/// slot (low 32 bits); buckets from older epochs read as empty.
#[derive(Clone)]
struct DirectMap {
    buckets: Vec<u64>,
    /// Right-shift applied to the 64-bit product to select a bucket
    /// (multiply-shift hashing with the high bits).
    shift: u32,
}

impl DirectMap {
    fn new(buckets: usize) -> Self {
        let len = buckets.next_power_of_two();
        DirectMap {
            buckets: vec![NIL32 as u64; len],
            shift: 64 - len.trailing_zeros(),
        }
    }

    #[inline]
    fn idx(&self, key: u32) -> usize {
        // Fibonacci hashing: the odd multiplier spreads page-aligned
        // keys over the high bits.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Chain head for `key` at `epoch`, or `NIL`.
    #[inline]
    fn head(&self, key: u32, epoch: u32) -> usize {
        let b = self.buckets[self.idx(key)];
        if (b >> 32) as u32 == epoch {
            let head = b as u32;
            if head == NIL32 {
                NIL
            } else {
                head as usize
            }
        } else {
            NIL
        }
    }

    #[inline]
    fn set_head(&mut self, key: u32, epoch: u32, head: usize) {
        let packed = if head == NIL { NIL32 } else { head as u32 };
        let idx = self.idx(key);
        self.buckets[idx] = ((epoch as u64) << 32) | packed as u64;
    }

    /// Forgets everything, for epoch-counter wraparound.
    fn reset(&mut self) {
        self.buckets.fill(NIL32 as u64);
    }
}

/// Per-page-size table from size-aligned VA base to the slots whose
/// entry *may* map that page (hash collisions add false candidates;
/// callers filter with [`TlbEntry::covers`]).
///
/// Each bucket stores only the *head* slot of a chain; slots hashing
/// to the same bucket are linked through the shared `next`/`prev`
/// arrays (a slot is in at most one chain, since it holds at most one
/// entry). Add and remove are O(1); a walk is O(chain length), a
/// handful at most.
#[derive(Clone)]
pub struct VaIndex {
    maps: [DirectMap; 4],
    /// Live registrations per size class, to skip probing sizes with
    /// no entries at all.
    counts: [usize; 4],
    /// Current epoch; buckets stamped with an older value are stale.
    epoch: u32,
    /// Chain links, u32 to halve the footprint the flush paths drag
    /// through the cache (a TLB never has 4 billion slots).
    next: Vec<u32>,
    prev: Vec<u32>,
}

impl VaIndex {
    /// An empty index for a TLB with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < NIL32 as usize);
        // 2x oversizing keeps 4K chains short without leaving L1. The
        // larger page sizes get small tables: 4K pages dominate every
        // simulated workload (the bigger sizes map a handful of kernel
        // sections), and a collision there only lengthens a chain the
        // covers-filter already handles.
        let buckets = (2 * capacity).max(8);
        let sparse = (capacity / 4).max(8);
        VaIndex {
            maps: [
                DirectMap::new(buckets),
                DirectMap::new(sparse),
                DirectMap::new(sparse),
                DirectMap::new(sparse),
            ],
            counts: [0; 4],
            epoch: 0,
            next: vec![NIL32; capacity],
            prev: vec![NIL32; capacity],
        }
    }

    /// Registers `slot` as holding `entry`.
    pub fn add(&mut self, entry: &TlbEntry, slot: usize) {
        let i = size_idx(entry.size);
        let k = key(entry.va_base, entry.size);
        let head = self.maps[i].head(k, self.epoch);
        self.prev[slot] = NIL32;
        self.next[slot] = if head == NIL { NIL32 } else { head as u32 };
        if head != NIL {
            self.prev[head] = slot as u32;
        }
        self.maps[i].set_head(k, self.epoch, slot);
        self.counts[i] += 1;
    }

    /// Unregisters `slot` (which held `entry`).
    pub fn remove(&mut self, entry: &TlbEntry, slot: usize) {
        let i = size_idx(entry.size);
        let (next, prev) = (self.next[slot], self.prev[slot]);
        if next != NIL32 {
            self.prev[next as usize] = prev;
        }
        if prev != NIL32 {
            self.next[prev as usize] = next;
        } else {
            // `slot` was the chain head.
            let k = key(entry.va_base, entry.size);
            let head = if next == NIL32 { NIL } else { next as usize };
            self.maps[i].set_head(k, self.epoch, head);
        }
        self.next[slot] = NIL32;
        self.prev[slot] = NIL32;
        self.counts[i] -= 1;
    }

    /// Calls `visit` with every *candidate* slot for `va` — every slot
    /// whose entry covers `va`, plus possibly a few hash-collision
    /// neighbours — in no particular order. Callers must confirm
    /// coverage against the entry and, for the linear-scan winner,
    /// take the minimum slot number. The index must not be mutated
    /// during the walk (the borrow checker enforces this).
    pub fn for_covering(&self, va: VirtAddr, mut visit: impl FnMut(usize)) {
        for (i, size) in SIZES.iter().enumerate() {
            if self.counts[i] == 0 {
                continue;
            }
            let mut slot = self.maps[i].head(key(va, *size), self.epoch);
            while slot != NIL {
                visit(slot);
                let n = self.next[slot];
                slot = if n == NIL32 { NIL } else { n as usize };
            }
        }
    }

    /// Drops every registration in O(1): readers ignore buckets from
    /// older epochs. Cheap enough to call on every simulated context
    /// switch.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: stale buckets from the previous epoch 0
            // would read as live again.
            for map in &mut self.maps {
                map.reset();
            }
        }
        self.counts = [0; 4];
    }
}

/// Map from entry tag (`asid` field, `None` = global) to the slots
/// carrying that tag, chained through fixed arrays like [`VaIndex`].
///
/// The tag space is tiny (256 ASIDs plus global), so the heads live in
/// a flat array — no hashing, no allocation on any operation, and the
/// same epoch trick makes `clear` O(1). Unlike [`VaIndex`], a tag
/// chain has no false candidates.
#[derive(Clone)]
pub struct TagIndex {
    /// Chain head per tag, packed like [`DirectMap`] buckets
    /// (epoch high, head slot low); index 0–255 are the ASIDs, 256 is
    /// global.
    heads: Vec<u64>,
    epoch: u32,
    /// Chain links, u32 like [`VaIndex`]'s.
    next: Vec<u32>,
    prev: Vec<u32>,
}

const GLOBAL_TAG: usize = 256;

fn tag_of(asid: Option<Asid>) -> usize {
    asid.map_or(GLOBAL_TAG, |a| a.0 as usize)
}

impl TagIndex {
    /// An empty index for a TLB with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < NIL32 as usize);
        TagIndex {
            heads: vec![NIL32 as u64; GLOBAL_TAG + 1],
            epoch: 0,
            next: vec![NIL32; capacity],
            prev: vec![NIL32; capacity],
        }
    }

    fn head(&self, tag: usize) -> usize {
        let b = self.heads[tag];
        let head = b as u32;
        if (b >> 32) as u32 == self.epoch && head != NIL32 {
            head as usize
        } else {
            NIL
        }
    }

    fn set_head(&mut self, tag: usize, head: usize) {
        let packed = if head == NIL { NIL32 } else { head as u32 };
        self.heads[tag] = ((self.epoch as u64) << 32) | packed as u64;
    }

    /// Registers `slot` as carrying tag `asid`.
    pub fn add(&mut self, asid: Option<Asid>, slot: usize) {
        let tag = tag_of(asid);
        let head = self.head(tag);
        self.prev[slot] = NIL32;
        self.next[slot] = if head == NIL { NIL32 } else { head as u32 };
        if head != NIL {
            self.prev[head] = slot as u32;
        }
        self.set_head(tag, slot);
    }

    /// Unregisters `slot` (which carried tag `asid`).
    pub fn remove(&mut self, asid: Option<Asid>, slot: usize) {
        let (next, prev) = (self.next[slot], self.prev[slot]);
        if next != NIL32 {
            self.prev[next as usize] = prev;
        }
        if prev != NIL32 {
            self.next[prev as usize] = next;
        } else {
            let head = if next == NIL32 { NIL } else { next as usize };
            self.set_head(tag_of(asid), head);
        }
        self.next[slot] = NIL32;
        self.prev[slot] = NIL32;
    }

    /// Drops tag `asid`'s whole chain in one head write. The caller
    /// owns resetting each chained slot's links ([`TagIndex::detach`])
    /// — cheaper than a per-slot [`TagIndex::remove`], which would
    /// re-stitch a chain that is being discarded anyway.
    pub fn drop_tag(&mut self, asid: Option<Asid>) {
        self.set_head(tag_of(asid), NIL);
    }

    /// Resets `slot`'s links after its chain was dropped wholesale via
    /// [`TagIndex::drop_tag`]. Write-only, no unlink reads.
    pub fn detach(&mut self, slot: usize) {
        self.next[slot] = NIL32;
        self.prev[slot] = NIL32;
    }

    /// Calls `visit` with every slot carrying tag `asid`, in no
    /// particular order. The index must not be mutated during the
    /// walk.
    pub fn for_tag(&self, asid: Option<Asid>, mut visit: impl FnMut(usize)) {
        let mut slot = self.head(tag_of(asid));
        while slot != NIL {
            visit(slot);
            let n = self.next[slot];
            slot = if n == NIL32 { NIL } else { n as usize };
        }
    }

    /// Calls `visit` with every slot carrying a non-global tag. 256
    /// head probes bound the cost regardless of occupancy.
    pub fn for_non_global(&self, mut visit: impl FnMut(usize)) {
        for tag in 0..GLOBAL_TAG {
            let mut slot = self.head(tag);
            while slot != NIL {
                visit(slot);
                let n = self.next[slot];
                slot = if n == NIL32 { NIL } else { n as usize };
            }
        }
    }

    /// Drops every registration in O(1) via the epoch.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: buckets stamped in the previous epoch-0 era
            // would read as live again.
            self.heads.fill(NIL32 as u64);
        }
    }
}

/// The set of invalid slots as a bitmask, so that the architectural
/// "fill the lowest invalid slot first" rule is a trailing-zeros scan
/// and a full flush is a refill — no allocation on either path.
#[derive(Clone)]
pub struct FreeSlots {
    words: Vec<u64>,
    capacity: usize,
}

impl FreeSlots {
    /// All of `0..capacity` free.
    pub fn all(capacity: usize) -> FreeSlots {
        let mut slots = FreeSlots {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        };
        slots.fill();
        slots
    }

    /// Resets to all free.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        let tail = self.capacity % 64;
        if tail != 0 {
            *self.words.last_mut().expect("capacity > 0") = (1u64 << tail) - 1;
        }
    }

    /// Marks `slot` free.
    pub fn release(&mut self, slot: usize) {
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Claims the lowest free slot, if any.
    pub fn claim_lowest(&mut self) -> Option<usize> {
        for (i, word) in self.words.iter_mut().enumerate() {
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1; // clear lowest set bit
                return Some(i * 64 + bit);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Domain, Perms, Pfn};

    fn entry(va: u32, size: PageSize) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr::new(va),
            size,
            asid: Some(Asid::new(1)),
            pfn: Pfn::new(va >> 12),
            perms: Perms::RX,
            domain: Domain::USER,
        }
    }

    /// Candidates that actually cover `va`, as callers filter them.
    fn covering(index: &VaIndex, entries: &[TlbEntry], va: u32) -> Vec<usize> {
        let mut out = Vec::new();
        index.for_covering(VirtAddr::new(va), |s| {
            if entries[s].covers(VirtAddr::new(va)) {
                out.push(s);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn chains_track_same_page_slots() {
        let mut index = VaIndex::new(8);
        let e = entry(0x1000, PageSize::Small4K);
        let entries = vec![e; 8];
        index.add(&e, 3);
        index.add(&e, 5);
        index.add(&e, 1);
        assert_eq!(covering(&index, &entries, 0x1FFF), vec![1, 3, 5]);
        // Remove the middle and head of the chain.
        index.remove(&e, 3);
        assert_eq!(covering(&index, &entries, 0x1000), vec![1, 5]);
        index.remove(&e, 1);
        assert_eq!(covering(&index, &entries, 0x1000), vec![5]);
        index.remove(&e, 5);
        assert_eq!(covering(&index, &entries, 0x1000), Vec::<usize>::new());
    }

    #[test]
    fn sizes_probe_independently() {
        let mut index = VaIndex::new(8);
        let small = entry(0x0001_2000, PageSize::Small4K);
        let large = entry(0x0001_0000, PageSize::Large64K);
        let entries = vec![small, large];
        index.add(&small, 0);
        index.add(&large, 1);
        // 0x12345 lies in the 4K page at 0x12000 and the 64K page at
        // 0x10000.
        assert_eq!(covering(&index, &entries, 0x0001_2345), vec![0, 1]);
        // 0x19999 lies only in the 64K page.
        assert_eq!(covering(&index, &entries, 0x0001_9999), vec![1]);
    }

    #[test]
    fn clear_is_an_epoch_bump_that_hides_old_entries() {
        let mut index = VaIndex::new(8);
        let e = entry(0x1000, PageSize::Small4K);
        let entries = vec![e; 8];
        index.add(&e, 2);
        index.clear();
        assert_eq!(covering(&index, &entries, 0x1000), Vec::<usize>::new());
        // Re-adding the same page after a clear resurrects the stale
        // bucket rather than chaining onto it.
        index.add(&e, 4);
        assert_eq!(covering(&index, &entries, 0x1000), vec![4]);
    }

    #[test]
    fn colliding_keys_share_a_chain_but_filter_out() {
        // Two distinct 4K pages that may or may not collide in the
        // 16-bucket table: the filter in `covering` must keep results
        // exact either way.
        let mut index = VaIndex::new(8);
        let a = entry(0x0000_1000, PageSize::Small4K);
        let b = entry(0x7FFF_E000, PageSize::Small4K);
        let entries = vec![a, b];
        index.add(&a, 0);
        index.add(&b, 1);
        assert_eq!(covering(&index, &entries, 0x0000_1FFF), vec![0]);
        assert_eq!(covering(&index, &entries, 0x7FFF_E000), vec![1]);
        index.remove(&a, 0);
        assert_eq!(covering(&index, &entries, 0x0000_1000), Vec::<usize>::new());
        assert_eq!(covering(&index, &entries, 0x7FFF_E000), vec![1]);
    }

    #[test]
    fn tag_chains_track_slots_and_clear_in_o1() {
        let mut tags = TagIndex::new(8);
        tags.add(Some(Asid::new(5)), 1);
        tags.add(Some(Asid::new(5)), 3);
        tags.add(None, 2);
        let mut seen = Vec::new();
        tags.for_tag(Some(Asid::new(5)), |s| seen.push(s));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3]);
        seen.clear();
        tags.for_non_global(|s| seen.push(s));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3]);
        tags.remove(Some(Asid::new(5)), 3);
        seen.clear();
        tags.for_tag(Some(Asid::new(5)), |s| seen.push(s));
        assert_eq!(seen, vec![1]);
        tags.clear();
        seen.clear();
        tags.for_tag(Some(Asid::new(5)), |s| seen.push(s));
        tags.for_tag(None, |s| seen.push(s));
        assert_eq!(seen, Vec::<usize>::new());
    }

    #[test]
    fn free_slots_fill_lowest_first() {
        let mut free = FreeSlots::all(130); // exercise the multi-word tail
        assert_eq!(free.claim_lowest(), Some(0));
        assert_eq!(free.claim_lowest(), Some(1));
        free.release(0);
        assert_eq!(free.claim_lowest(), Some(0));
        for expected in 2..130 {
            assert_eq!(free.claim_lowest(), Some(expected));
        }
        assert_eq!(free.claim_lowest(), None);
        free.fill();
        assert_eq!(free.claim_lowest(), Some(0));
    }
}
