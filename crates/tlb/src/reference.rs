//! Linear-scan reference TLB models.
//!
//! These are the original, index-free implementations of
//! [`crate::MainTlb`] and [`crate::MicroTlb`]: every operation walks
//! the whole slot array, exactly as the documentation of the
//! architectural model reads. They are kept as the executable
//! specification that the index-accelerated implementations must
//! match bit-for-bit — the differential proptests in
//! `tests/differential.rs` drive both models with identical operation
//! sequences and assert identical lookup results, statistics, and
//! occupancy — and as the baseline for the `tlb_hot_path` benchmark.
//!
//! Do not "optimise" this file; its value is being obviously correct.

use sat_types::{Asid, Domain, VirtAddr};

use crate::entry::TlbEntry;
use crate::main_tlb::{TlbLookup, TlbStats};

/// Linear-scan reference model of [`crate::MainTlb`].
#[derive(Clone)]
pub struct RefMainTlb {
    entries: Vec<Option<(TlbEntry, Asid)>>,
    victim: usize,
    stats: TlbStats,
}

impl Default for RefMainTlb {
    fn default() -> Self {
        RefMainTlb::new(crate::main_tlb::MAIN_TLB_ENTRIES)
    }
}

impl RefMainTlb {
    /// Creates a TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RefMainTlb {
            entries: vec![None; capacity],
            victim: 0,
            stats: TlbStats::default(),
        }
    }

    /// Returns the statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Counts valid global entries.
    pub fn global_occupancy(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|(e, _)| e.is_global())
            .count()
    }

    /// Looks up `va` under `asid`, updating statistics.
    pub fn lookup(&mut self, va: VirtAddr, asid: Asid) -> TlbLookup {
        for slot in self.entries.iter().flatten() {
            let (entry, loader) = slot;
            if entry.matches(va, asid) {
                self.stats.hits += 1;
                if entry.is_global() {
                    self.stats.global_hits += 1;
                    if *loader != asid && entry.domain != Domain::KERNEL {
                        self.stats.cross_asid_hits += 1;
                    }
                }
                return TlbLookup::Hit(*entry);
            }
        }
        self.stats.misses += 1;
        TlbLookup::Miss
    }

    /// Probes for a matching entry without updating statistics.
    pub fn probe(&self, va: VirtAddr, asid: Asid) -> Option<TlbEntry> {
        self.entries
            .iter()
            .flatten()
            .find(|(e, _)| e.matches(va, asid))
            .map(|(e, _)| *e)
    }

    /// Inserts an entry loaded by `loader` (first-match duplicate
    /// replacement, then lowest free slot, then round-robin).
    pub fn insert(&mut self, entry: TlbEntry, loader: Asid) {
        let tag_asid = entry.asid;
        let mut replaced = false;
        for slot in self.entries.iter_mut() {
            if slot.as_ref().is_some_and(|(e, _)| {
                e.asid == tag_asid && (e.covers(entry.va_base) || entry.covers(e.va_base))
            }) {
                if replaced {
                    *slot = None; // extra overlapping duplicate
                } else {
                    *slot = Some((entry, loader));
                    replaced = true;
                }
            }
        }
        if replaced {
            return;
        }
        if let Some(idx) = self.entries.iter().position(|s| s.is_none()) {
            self.entries[idx] = Some((entry, loader));
            return;
        }
        self.stats.evictions += 1;
        self.entries[self.victim] = Some((entry, loader));
        self.victim = (self.victim + 1) % self.entries.len();
    }

    /// Invalidates everything. Returns the number of entries dropped.
    pub fn flush_all(&mut self) -> usize {
        let n = self.occupancy();
        self.entries.iter_mut().for_each(|s| *s = None);
        self.stats.entries_flushed += n as u64;
        self.stats.full_flushes += 1;
        n
    }

    /// Invalidates all non-global entries tagged with `asid`.
    pub fn flush_asid(&mut self, asid: Asid) -> usize {
        self.flush_where(|e| e.asid == Some(asid))
    }

    /// Invalidates every entry that covers `va`.
    pub fn flush_va_all_asids(&mut self, va: VirtAddr) -> usize {
        self.flush_where(|e| e.covers(va))
    }

    /// Invalidates entries covering `va` tagged `asid`, plus global
    /// entries covering `va`.
    pub fn flush_va(&mut self, va: VirtAddr, asid: Asid) -> usize {
        self.flush_where(|e| e.covers(va) && (e.is_global() || e.asid == Some(asid)))
    }

    /// Invalidates the entries tagged `asid` whose mapping contains
    /// page `vpn` (globals survive).
    pub fn flush_page(&mut self, asid: Asid, vpn: u32) -> usize {
        let va = VirtAddr::new(vpn << sat_types::PAGE_SHIFT);
        self.flush_where(|e| e.covers(va) && e.asid == Some(asid))
    }

    /// Invalidates the entries tagged `asid` overlapping the VPN range
    /// (globals survive).
    pub fn flush_range(&mut self, asid: Asid, range: sat_types::VpnRange) -> usize {
        self.flush_where(|e| e.overlaps_vpns(&range) && e.asid == Some(asid))
    }

    /// Invalidates all non-global entries.
    pub fn flush_non_global(&mut self) -> usize {
        self.flush_where(|e| !e.is_global())
    }

    fn flush_where(&mut self, pred: impl Fn(&TlbEntry) -> bool) -> usize {
        let mut n = 0;
        for slot in self.entries.iter_mut() {
            if let Some((e, _)) = slot {
                if pred(e) {
                    *slot = None;
                    n += 1;
                }
            }
        }
        self.stats.entries_flushed += n as u64;
        n
    }
}

/// Linear-scan reference model of [`crate::MicroTlb`].
pub struct RefMicroTlb {
    entries: Vec<Option<TlbEntry>>,
    victim: usize,
    hits: u64,
    misses: u64,
}

impl Default for RefMicroTlb {
    fn default() -> Self {
        RefMicroTlb::new(crate::micro::MICRO_TLB_ENTRIES)
    }
}

impl RefMicroTlb {
    /// Creates a micro-TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RefMicroTlb {
            entries: vec![None; capacity],
            victim: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `va` (no ASID tag).
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        for e in self.entries.iter().flatten() {
            if e.covers(va) {
                self.hits += 1;
                return Some(*e);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts an entry (lowest free slot, then round-robin).
    pub fn insert(&mut self, entry: TlbEntry) {
        if let Some(idx) = self.entries.iter().position(|s| s.is_none()) {
            self.entries[idx] = Some(entry);
            return;
        }
        self.entries[self.victim] = Some(entry);
        self.victim = (self.victim + 1) % self.entries.len();
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        self.entries.iter_mut().for_each(|s| *s = None);
    }

    /// Invalidates entries covering `va`.
    pub fn flush_va(&mut self, va: VirtAddr) {
        for s in self.entries.iter_mut() {
            if s.as_ref().is_some_and(|e| e.covers(va)) {
                *s = None;
            }
        }
    }

    /// Invalidates entries overlapping the VPN range.
    pub fn flush_range(&mut self, range: sat_types::VpnRange) {
        for s in self.entries.iter_mut() {
            if s.as_ref().is_some_and(|e| e.overlaps_vpns(&range)) {
                *s = None;
            }
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}
