//! JSON round-trip tests for both exporters: serialize → parse →
//! field-level equality against the source recording, including the
//! ring-overflow path (the dropped counter must survive export).

use sat_obs::json::Json;
use sat_obs::{
    chrome_trace_json, metrics_json, parse_chrome_trace, ChargeCause, DemoteCause, FaultClass,
    FlushReason, FlushScope, Payload, RegionOpKind, SpanUnit, Subsystem, UnshareCause,
};

/// One event of every payload shape, exercising every arg type.
fn emit_one_of_each() {
    sat_obs::emit(
        Subsystem::Kernel,
        1,
        1,
        Payload::Fork {
            child: 2,
            ptps_shared: 6,
            ptes_copied: 7,
            shared: true,
        },
    );
    sat_obs::emit(Subsystem::Kernel, 2, 2, Payload::Exit);
    sat_obs::emit(
        Subsystem::Kernel,
        1,
        1,
        Payload::RegionOp {
            op: RegionOpKind::Mprotect,
            va: 0x4000_0000,
            pages: 8,
            unshared: 1,
        },
    );
    sat_obs::emit(
        Subsystem::Kernel,
        3,
        3,
        Payload::DomainFault { va: 0x4000_2000 },
    );
    sat_obs::emit(
        Subsystem::Share,
        2,
        2,
        Payload::PtpShare {
            ptps: 5,
            write_protect_ops: 3,
        },
    );
    sat_obs::emit(
        Subsystem::Share,
        2,
        2,
        Payload::PtpUnshare {
            cause: UnshareCause::WriteFault,
            ptes_copied: 12,
            last_sharer: false,
            va: 0x0800_0000,
        },
    );
    sat_obs::emit(
        Subsystem::VmFault,
        2,
        2,
        Payload::PageFault {
            class: FaultClass::Cow,
            va: 0x0800_0000,
            file_backed: false,
        },
    );
    sat_obs::emit(
        Subsystem::Tlb,
        0,
        2,
        Payload::TlbFlush {
            scope: FlushScope::Asid,
            reason: FlushReason::Unshare,
            entries: 4,
        },
    );
    sat_obs::emit(
        Subsystem::Kernel,
        0,
        0,
        Payload::AsidRollover { generation: 3 },
    );
    sat_obs::emit(
        Subsystem::Sim,
        0,
        5,
        Payload::TlbShootdown {
            asid: 5,
            scope: FlushScope::Asid,
            cores_targeted: 2,
            cores_local: 1,
            cores_skipped: 2,
        },
    );
    sat_obs::emit(
        Subsystem::Sim,
        0,
        5,
        Payload::TlbShootdown {
            asid: 5,
            scope: FlushScope::Range,
            cores_targeted: 1,
            cores_local: 0,
            cores_skipped: 3,
        },
    );
    sat_obs::emit(
        Subsystem::Tlb,
        0,
        2,
        Payload::TlbFlush {
            scope: FlushScope::Range,
            reason: FlushReason::RegionOp,
            entries: 3,
        },
    );
    sat_obs::emit(
        Subsystem::Tlb,
        0,
        2,
        Payload::TlbFlush {
            scope: FlushScope::Page,
            reason: FlushReason::Unshare,
            entries: 1,
        },
    );
    sat_obs::emit(
        Subsystem::Tlb,
        0,
        2,
        Payload::FlushBatch {
            ops: 5,
            coalesced: 3,
            escalated: 1,
        },
    );
    sat_obs::emit(
        Subsystem::Sched,
        7,
        2,
        Payload::Preempt { core: 2, next: 9 },
    );
    // Counter-track points: published gauges snapshotted twice, so
    // the parsed trace must reproduce a moving series, not one value.
    sat_obs::gauge_set("phys.frames.free", 1000);
    sat_obs::gauge_set("sched.runq.c1", 3);
    sat_obs::sample_gauges();
    sat_obs::gauge_sub("phys.frames.free", 137);
    sat_obs::sample_gauges();
    sat_obs::emit(
        Subsystem::Android,
        4,
        4,
        Payload::SpanBegin {
            name: "launch.exec".to_string(),
        },
    );
    sat_obs::emit(
        Subsystem::Android,
        4,
        4,
        Payload::SpanEnd {
            name: "launch.exec".to_string(),
            value: 123_456,
            unit: SpanUnit::Cycles,
        },
    );
    sat_obs::emit(
        Subsystem::Bench,
        0,
        0,
        Payload::SpanBegin {
            name: "cell-0 \"quoted\"".to_string(),
        },
    );
    sat_obs::emit(
        Subsystem::Bench,
        0,
        0,
        Payload::SpanEnd {
            name: "cell-0 \"quoted\"".to_string(),
            value: 900,
            unit: SpanUnit::Micros,
        },
    );
    sat_obs::emit(Subsystem::Sched, 11, 0, Payload::FlowArrive { flow: 7 });
    sat_obs::emit(Subsystem::Sched, 11, 0, Payload::FlowBegin { flow: 7 });
    sat_obs::emit(
        Subsystem::Sim,
        0,
        0,
        Payload::CycleCharge {
            flow: 7,
            cause: ChargeCause::TlbStall,
            cycles: 4_321,
        },
    );
    sat_obs::emit(
        Subsystem::Sched,
        11,
        0,
        Payload::FlowEnd {
            flow: 7,
            wall: 98_765,
        },
    );
    sat_obs::emit(
        Subsystem::Kernel,
        0,
        0,
        Payload::Reclaim {
            pages: 12,
            pte_tears: 9,
            shared_tears: 3,
        },
    );
    sat_obs::emit(
        Subsystem::Kernel,
        3,
        4,
        Payload::Promote {
            va: 0x4004_0000,
            bytes: 0x1_0000,
            pages: 16,
            filled: 10,
        },
    );
    sat_obs::emit(
        Subsystem::Kernel,
        3,
        4,
        Payload::Demote {
            va: 0x4004_0000,
            bytes: 0x1_0000,
            pages: 16,
            cause: DemoteCause::Munmap,
        },
    );
}

#[test]
fn chrome_trace_round_trips_field_by_field() {
    sat_obs::install(64);
    emit_one_of_each();
    let rec = sat_obs::uninstall().unwrap();
    assert_eq!(rec.dropped, 0);

    let doc = Json::parse(&chrome_trace_json(&rec)).expect("exporter must emit valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert_eq!(events.len(), rec.events.len());

    for (json, src) in events.iter().zip(rec.events.iter()) {
        assert_eq!(json.get("name").unwrap().as_str(), Some(src.payload.name()));
        assert_eq!(
            json.get("cat").unwrap().as_str(),
            Some(src.subsystem.as_str())
        );
        assert_eq!(json.get("ts").unwrap().as_u64(), Some(src.tick));
        assert_eq!(json.get("pid").unwrap().as_u64(), Some(u64::from(src.pid)));
        assert_eq!(json.get("tid").unwrap().as_u64(), Some(u64::from(src.asid)));
        let expected_ph = match &src.payload {
            Payload::SpanBegin { .. } => "B",
            Payload::SpanEnd { .. } => "E",
            Payload::Sample { .. } => "C",
            _ => "i",
        };
        assert_eq!(json.get("ph").unwrap().as_str(), Some(expected_ph));
        let args = json.get("args").unwrap();
        match &src.payload {
            Payload::Fork {
                child,
                ptps_shared,
                ptes_copied,
                shared,
            } => {
                assert_eq!(args.get("child").unwrap().as_u64(), Some(u64::from(*child)));
                assert_eq!(
                    args.get("ptps_shared").unwrap().as_u64(),
                    Some(*ptps_shared)
                );
                assert_eq!(
                    args.get("ptes_copied").unwrap().as_u64(),
                    Some(*ptes_copied)
                );
                assert_eq!(args.get("shared").unwrap().as_bool(), Some(*shared));
            }
            Payload::Exit => assert!(args.as_object().unwrap().is_empty()),
            Payload::RegionOp {
                op,
                va,
                pages,
                unshared,
            } => {
                assert_eq!(args.get("op").unwrap().as_str(), Some(op.as_str()));
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
                assert_eq!(args.get("pages").unwrap().as_u64(), Some(u64::from(*pages)));
                assert_eq!(args.get("unshared").unwrap().as_u64(), Some(*unshared));
            }
            Payload::DomainFault { va } => {
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
            }
            Payload::PtpShare {
                ptps,
                write_protect_ops,
            } => {
                assert_eq!(args.get("ptps").unwrap().as_u64(), Some(*ptps));
                assert_eq!(
                    args.get("write_protect_ops").unwrap().as_u64(),
                    Some(*write_protect_ops)
                );
            }
            Payload::PtpUnshare {
                cause,
                ptes_copied,
                last_sharer,
                va,
            } => {
                assert_eq!(args.get("cause").unwrap().as_str(), Some(cause.as_str()));
                assert_eq!(
                    args.get("ptes_copied").unwrap().as_u64(),
                    Some(*ptes_copied)
                );
                assert_eq!(
                    args.get("last_sharer").unwrap().as_bool(),
                    Some(*last_sharer)
                );
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
            }
            Payload::PageFault {
                class,
                va,
                file_backed,
            } => {
                assert_eq!(args.get("class").unwrap().as_str(), Some(class.as_str()));
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
                assert_eq!(
                    args.get("file_backed").unwrap().as_bool(),
                    Some(*file_backed)
                );
            }
            Payload::TlbFlush {
                scope,
                reason,
                entries,
            } => {
                assert_eq!(args.get("scope").unwrap().as_str(), Some(scope.as_str()));
                assert_eq!(args.get("reason").unwrap().as_str(), Some(reason.as_str()));
                assert_eq!(args.get("entries").unwrap().as_u64(), Some(*entries));
            }
            Payload::AsidRollover { generation } => {
                assert_eq!(args.get("generation").unwrap().as_u64(), Some(*generation));
            }
            Payload::TlbShootdown {
                asid,
                scope,
                cores_targeted,
                cores_local,
                cores_skipped,
            } => {
                assert_eq!(args.get("asid").unwrap().as_u64(), Some(u64::from(*asid)));
                assert_eq!(args.get("scope").unwrap().as_str(), Some(scope.as_str()));
                assert_eq!(
                    args.get("cores_targeted").unwrap().as_u64(),
                    Some(u64::from(*cores_targeted))
                );
                assert_eq!(
                    args.get("cores_local").unwrap().as_u64(),
                    Some(u64::from(*cores_local))
                );
                assert_eq!(
                    args.get("cores_skipped").unwrap().as_u64(),
                    Some(u64::from(*cores_skipped))
                );
            }
            Payload::FlushBatch {
                ops,
                coalesced,
                escalated,
            } => {
                assert_eq!(args.get("ops").unwrap().as_u64(), Some(*ops));
                assert_eq!(args.get("coalesced").unwrap().as_u64(), Some(*coalesced));
                assert_eq!(args.get("escalated").unwrap().as_u64(), Some(*escalated));
            }
            Payload::Preempt { core, next } => {
                assert_eq!(args.get("core").unwrap().as_u64(), Some(u64::from(*core)));
                assert_eq!(args.get("next").unwrap().as_u64(), Some(u64::from(*next)));
            }
            Payload::Sample { gauge, value } => {
                // The counter track is keyed on the event name (the
                // gauge), and Perfetto plots args.value.
                assert_eq!(json.get("name").unwrap().as_str(), Some(gauge.as_str()));
                assert_eq!(args.get("value").unwrap().as_u64(), Some(*value));
            }
            Payload::SpanBegin { .. } => assert!(args.as_object().unwrap().is_empty()),
            Payload::SpanEnd { value, unit, .. } => {
                assert_eq!(args.get("value").unwrap().as_u64(), Some(*value));
                assert_eq!(args.get("unit").unwrap().as_str(), Some(unit.as_str()));
            }
            Payload::CycleCharge {
                flow,
                cause,
                cycles,
            } => {
                assert_eq!(args.get("flow").unwrap().as_u64(), Some(u64::from(*flow)));
                assert_eq!(args.get("cause").unwrap().as_str(), Some(cause.as_str()));
                assert_eq!(args.get("cycles").unwrap().as_u64(), Some(*cycles));
            }
            Payload::FlowArrive { flow } | Payload::FlowBegin { flow } => {
                assert_eq!(args.get("flow").unwrap().as_u64(), Some(u64::from(*flow)));
            }
            Payload::FlowEnd { flow, wall } => {
                assert_eq!(args.get("flow").unwrap().as_u64(), Some(u64::from(*flow)));
                assert_eq!(args.get("wall").unwrap().as_u64(), Some(*wall));
            }
            Payload::Reclaim {
                pages,
                pte_tears,
                shared_tears,
            } => {
                assert_eq!(args.get("pages").unwrap().as_u64(), Some(*pages));
                assert_eq!(args.get("pte_tears").unwrap().as_u64(), Some(*pte_tears));
                assert_eq!(
                    args.get("shared_tears").unwrap().as_u64(),
                    Some(*shared_tears)
                );
            }
            Payload::Promote {
                va,
                bytes,
                pages,
                filled,
            } => {
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
                assert_eq!(args.get("bytes").unwrap().as_u64(), Some(u64::from(*bytes)));
                assert_eq!(args.get("pages").unwrap().as_u64(), Some(*pages));
                assert_eq!(args.get("filled").unwrap().as_u64(), Some(*filled));
            }
            Payload::Demote {
                va,
                bytes,
                pages,
                cause,
            } => {
                assert_eq!(args.get("va").unwrap().as_u64(), Some(u64::from(*va)));
                assert_eq!(args.get("bytes").unwrap().as_u64(), Some(u64::from(*bytes)));
                assert_eq!(args.get("pages").unwrap().as_u64(), Some(*pages));
                assert_eq!(args.get("cause").unwrap().as_str(), Some(cause.as_str()));
            }
        }
    }

    let other = doc.get("otherData").unwrap();
    assert_eq!(other.get("dropped_events").unwrap().as_u64(), Some(0));
    assert_eq!(
        other.get("event_count").unwrap().as_u64(),
        Some(rec.events.len() as u64)
    );
}

#[test]
fn parsed_trace_reproduces_the_recording_exactly() {
    sat_obs::install(64);
    emit_one_of_each();
    let rec = sat_obs::uninstall().unwrap();

    let doc = Json::parse(&chrome_trace_json(&rec)).unwrap();
    let parsed = parse_chrome_trace(&doc).expect("exporter output must re-ingest");
    assert_eq!(parsed.dropped, rec.dropped);
    assert_eq!(parsed.events.len(), rec.events.len());
    for (got, want) in parsed.events.iter().zip(rec.events.iter()) {
        assert_eq!(got.tick, want.tick);
        assert_eq!(got.pid, want.pid);
        assert_eq!(got.asid, want.asid);
        assert_eq!(got.subsystem, want.subsystem);
        assert_eq!(got.payload, want.payload);
    }
}

/// The counter-track round trip in isolation: every sample exported as
/// a `"ph":"C"` event re-ingests into the identical `Payload::Sample`
/// series, and the replayed registry reconstructs the same gauges
/// (values and high-water marks) as the live recorder.
#[test]
fn counter_tracks_round_trip_to_identical_samples() {
    sat_obs::install(256);
    for (free, runq) in [(4096u64, 0u64), (2048, 5), (3072, 2), (512, 9)] {
        sat_obs::gauge_set("phys.frames.free", free);
        sat_obs::gauge_set("sched.runq.c0", runq);
        sat_obs::sample_gauges();
    }
    let rec = sat_obs::uninstall().unwrap();

    let doc = Json::parse(&chrome_trace_json(&rec)).unwrap();
    let parsed = parse_chrome_trace(&doc).unwrap();
    let samples = |events: &[sat_obs::Event]| -> Vec<(u64, String, u64)> {
        events
            .iter()
            .filter_map(|e| match &e.payload {
                Payload::Sample { gauge, value } => Some((e.tick, gauge.clone(), *value)),
                _ => None,
            })
            .collect()
    };
    let want = samples(&rec.events);
    assert_eq!(want.len(), 8, "4 sample points x 2 gauges");
    assert_eq!(samples(&parsed.events), want);

    // Replaying the parsed stream reconstructs the gauges exactly.
    let rollup = sat_obs::analyze::Rollup::from_events(&parsed.events, parsed.dropped);
    assert_eq!(
        rollup.metrics.gauge("phys.frames.free"),
        rec.metrics.gauge("phys.frames.free")
    );
    assert_eq!(
        rollup.metrics.gauge("phys.frames.free").unwrap().high_water,
        4096
    );
    assert_eq!(rollup.gauges["sched.runq.c0"].max, 9);
    assert_eq!(rollup.samples, 8);
}

#[test]
fn overflow_reports_dropped_in_both_exporters() {
    sat_obs::install(4);
    for i in 0..9u64 {
        sat_obs::emit(
            Subsystem::Tlb,
            0,
            1,
            Payload::TlbFlush {
                scope: FlushScope::Va,
                reason: FlushReason::FaultRepair,
                entries: i,
            },
        );
    }
    let rec = sat_obs::uninstall().unwrap();
    assert_eq!(rec.events.len(), 4);
    assert_eq!(rec.dropped, 5);

    let trace = Json::parse(&chrome_trace_json(&rec)).unwrap();
    assert_eq!(
        trace
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .unwrap()
            .as_u64(),
        Some(5),
        "ring overflow must never be silent"
    );
    // The ring keeps the newest events: ticks 5..9.
    let first_ts = trace.get("traceEvents").unwrap().as_array().unwrap()[0]
        .get("ts")
        .unwrap()
        .as_u64();
    assert_eq!(first_ts, Some(5));

    // Metrics saw every event; the snapshot reports the drops too.
    let snap = Json::parse(&metrics_json(&rec.metrics, true, rec.dropped, "")).unwrap();
    assert_eq!(snap.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(snap.get("dropped_events").unwrap().as_u64(), Some(5));
    assert_eq!(
        snap.get("counters")
            .and_then(|c| c.get("tlb.flush.scope.va"))
            .unwrap()
            .as_u64(),
        Some(9)
    );
}

#[test]
fn metrics_snapshot_round_trips_field_by_field() {
    sat_obs::install(64);
    emit_one_of_each();
    for v in [0u64, 1, 7, 250, 251, 4096] {
        sat_obs::record_value("sim.soft_fault_cycles", v);
    }
    let rec = sat_obs::uninstall().unwrap();

    let snap = Json::parse(&metrics_json(&rec.metrics, true, rec.dropped, "  ")).unwrap();
    let counters = snap.get("counters").unwrap().as_object().unwrap();
    let src_counters = rec.metrics.counters_map();
    assert_eq!(counters.len(), src_counters.len());
    for (k, v) in src_counters {
        assert_eq!(
            counters.get(k).and_then(Json::as_u64),
            Some(*v),
            "counter {k} mismatch"
        );
    }

    let hists = snap.get("histograms").unwrap().as_object().unwrap();
    assert_eq!(hists.len(), rec.metrics.histograms().count());
    for (name, h) in rec.metrics.histograms() {
        let j = hists.get(name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(j.get("count").unwrap().as_u64(), Some(h.count));
        assert_eq!(j.get("sum").unwrap().as_u64(), Some(h.sum));
        assert_eq!(j.get("min").unwrap().as_u64(), Some(h.min));
        assert_eq!(j.get("max").unwrap().as_u64(), Some(h.max));
        let buckets = j.get("log2_buckets").unwrap().as_array().unwrap();
        // Exported buckets are the source buckets with the zero tail
        // trimmed.
        for (i, b) in buckets.iter().enumerate() {
            assert_eq!(b.as_u64(), Some(h.buckets[i]), "bucket {i} of {name}");
        }
        for (i, &b) in h.buckets.iter().enumerate().skip(buckets.len()) {
            assert_eq!(b, 0, "trimmed bucket {i} of {name} was nonzero");
        }
    }
    // Spot-check the log2 placement of the fault-cost samples.
    let fault = hists.get("sim.soft_fault_cycles").unwrap();
    let buckets = fault.get("log2_buckets").unwrap().as_array().unwrap();
    assert_eq!(buckets[0].as_u64(), Some(2)); // 0 and 1
    assert_eq!(buckets[2].as_u64(), Some(1)); // 7
    assert_eq!(buckets[7].as_u64(), Some(2)); // 250, 251
    assert_eq!(buckets[12].as_u64(), Some(1)); // 4096
                                               // Histogram summaries carry the whole percentile ladder.
    for pct in ["p50", "p95", "p99"] {
        assert!(fault.get(pct).and_then(Json::as_u64).is_some(), "{pct}");
    }

    // The gauges section mirrors the registry's values and peaks.
    let gauges = snap.get("gauges").unwrap().as_object().unwrap();
    assert_eq!(gauges.len(), rec.metrics.gauges().count());
    for (name, g) in rec.metrics.gauges() {
        let j = gauges.get(name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(j.get("value").unwrap().as_u64(), Some(g.value));
        assert_eq!(j.get("high_water").unwrap().as_u64(), Some(g.high_water));
    }
    let frames = gauges.get("phys.frames.free").unwrap();
    assert_eq!(frames.get("value").unwrap().as_u64(), Some(863));
    assert_eq!(frames.get("high_water").unwrap().as_u64(), Some(1000));
}
