//! The event model: what happened, in which layer, and *why*.
//!
//! Every mechanism the paper evaluates is attributed by cause, not just
//! counted: an unshare carries its [`UnshareCause`] (write fault vs
//! region op vs fork-time copy), a TLB flush carries its [`FlushScope`]
//! and the kernel-path [`FlushReason`] that triggered it. The cause
//! enums here deliberately mirror — but do not depend on — the enums in
//! the mechanism crates (`sat-core`'s `UnshareTrigger`, `sat-vm`'s
//! `FaultKind`): `sat-obs` sits below every instrumented crate in the
//! dependency graph.

/// The layer an event originated from. Becomes the Chrome-trace `cat`
/// field, so Perfetto can filter per subsystem.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Subsystem {
    /// `sat-core` kernel entry points (fork/exit/region ops/faults).
    Kernel,
    /// `sat-core` PTP share/unshare mechanism.
    Share,
    /// `sat-vm` page-fault handling.
    VmFault,
    /// `sat-tlb` flush primitives (main and micro TLBs).
    Tlb,
    /// `sat-android` launch/IPC phases.
    Android,
    /// `sat-bench` sweep cells.
    Bench,
    /// `sat-sim` modeled-cost sampling.
    Sim,
    /// `sat-sched` scheduling decisions (preemptions, migrations).
    Sched,
}

impl Subsystem {
    /// Stable lowercase name (the Chrome-trace category).
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Kernel => "kernel",
            Subsystem::Share => "share",
            Subsystem::VmFault => "vm-fault",
            Subsystem::Tlb => "tlb",
            Subsystem::Android => "android",
            Subsystem::Bench => "bench",
            Subsystem::Sim => "sim",
            Subsystem::Sched => "sched",
        }
    }

    /// The subsystem owning a dotted gauge key, by its first segment.
    /// The gauge taxonomy (DESIGN.md §12) is rooted at the layer that
    /// publishes the value: `phys.*` and `kernel.*` → [`Kernel`],
    /// `registry.*` → [`Share`], `tlb.*` → [`Tlb`], `sched.*` →
    /// [`Sched`], everything else → [`Sim`].
    ///
    /// [`Kernel`]: Subsystem::Kernel
    /// [`Share`]: Subsystem::Share
    /// [`Tlb`]: Subsystem::Tlb
    /// [`Sched`]: Subsystem::Sched
    /// [`Sim`]: Subsystem::Sim
    pub fn for_gauge(key: &str) -> Subsystem {
        match key.split('.').next().unwrap_or("") {
            "phys" | "kernel" => Subsystem::Kernel,
            "registry" => Subsystem::Share,
            "tlb" => Subsystem::Tlb,
            "sched" => Subsystem::Sched,
            _ => Subsystem::Sim,
        }
    }

    /// Inverse of [`Subsystem::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<Subsystem> {
        Some(match s {
            "kernel" => Subsystem::Kernel,
            "share" => Subsystem::Share,
            "vm-fault" => Subsystem::VmFault,
            "tlb" => Subsystem::Tlb,
            "android" => Subsystem::Android,
            "bench" => Subsystem::Bench,
            "sim" => Subsystem::Sim,
            "sched" => Subsystem::Sched,
            _ => return None,
        })
    }
}

/// Why a PTP was unshared. Mirrors `sat-core`'s `UnshareTrigger`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnshareCause {
    /// COW write fault into a shared chunk.
    WriteFault,
    /// A new region was mapped into a shared chunk.
    NewRegion,
    /// A region in the shared chunk was freed.
    RegionFree,
    /// mprotect (or similar in-place op) on a shared chunk.
    RegionOp,
    /// Address-space teardown.
    Exit,
    /// Memory-pressure reclaim tore a PTE out of the shared PTP (the
    /// table stays shared; every sharer is repaired at once and
    /// refaults through the page cache).
    Reclaim,
}

impl UnshareCause {
    pub fn as_str(self) -> &'static str {
        match self {
            UnshareCause::WriteFault => "write_fault",
            UnshareCause::NewRegion => "new_region",
            UnshareCause::RegionFree => "region_free",
            UnshareCause::RegionOp => "region_op",
            UnshareCause::Exit => "exit",
            UnshareCause::Reclaim => "reclaim",
        }
    }

    /// The per-cause counter bumped for every unshare event.
    pub fn counter_key(self) -> &'static str {
        match self {
            UnshareCause::WriteFault => "share.unshare.write_fault",
            UnshareCause::NewRegion => "share.unshare.new_region",
            UnshareCause::RegionFree => "share.unshare.region_free",
            UnshareCause::RegionOp => "share.unshare.region_op",
            UnshareCause::Exit => "share.unshare.exit",
            UnshareCause::Reclaim => "share.unshare.reclaim",
        }
    }

    /// Every live cause, in Figure-6 order.
    pub const ALL: [UnshareCause; 6] = [
        UnshareCause::WriteFault,
        UnshareCause::NewRegion,
        UnshareCause::RegionFree,
        UnshareCause::RegionOp,
        UnshareCause::Exit,
        UnshareCause::Reclaim,
    ];

    /// Inverse of [`UnshareCause::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<UnshareCause> {
        UnshareCause::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// Which kernel path forced a large mapping back to 4KB PTEs
/// (Figure-6-style cause attribution for the demotion side).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DemoteCause {
    /// Partial `munmap` cut through a large group / section.
    Munmap,
    /// `mprotect` changed permissions over part of a large mapping.
    Mprotect,
    /// A write-protect (COW / write-enable) fault landed on one slot
    /// of a large group; the slot must diverge, so the group splits.
    Cow,
    /// PTP unshare copied a large group; the copy is split so partial
    /// copies can never leave a stale wide translation behind.
    Unshare,
    /// Memory-pressure reclaim needed to tear a single PTE inside a
    /// large group.
    Reclaim,
    /// `fork` demotes parent sections so child page tables stay
    /// two-level and the share path never sees an L1 leaf.
    Fork,
}

impl DemoteCause {
    pub fn as_str(self) -> &'static str {
        match self {
            DemoteCause::Munmap => "munmap",
            DemoteCause::Mprotect => "mprotect",
            DemoteCause::Cow => "cow",
            DemoteCause::Unshare => "unshare",
            DemoteCause::Reclaim => "reclaim",
            DemoteCause::Fork => "fork",
        }
    }

    /// Per-cause demotion counter.
    pub fn counter_key(self) -> &'static str {
        match self {
            DemoteCause::Munmap => "mmu.demote.cause.munmap",
            DemoteCause::Mprotect => "mmu.demote.cause.mprotect",
            DemoteCause::Cow => "mmu.demote.cause.cow",
            DemoteCause::Unshare => "mmu.demote.cause.unshare",
            DemoteCause::Reclaim => "mmu.demote.cause.reclaim",
            DemoteCause::Fork => "mmu.demote.cause.fork",
        }
    }

    /// Every live cause, in reporting order.
    pub const ALL: [DemoteCause; 6] = [
        DemoteCause::Munmap,
        DemoteCause::Mprotect,
        DemoteCause::Cow,
        DemoteCause::Unshare,
        DemoteCause::Reclaim,
        DemoteCause::Fork,
    ];

    /// Inverse of [`DemoteCause::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<DemoteCause> {
        DemoteCause::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// Which kernel path issued a TLB flush. Set as a scoped thread-local
/// by the caller (see [`crate::with_flush_reason`]) and read by the
/// flush primitives, so the TLB crate needs no signature changes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushReason {
    /// No kernel path claimed the flush (e.g. a unit test poking the
    /// TLB directly).
    Unattributed,
    ContextSwitch,
    Fork,
    Exit,
    /// PTP unshare repair (the unshare path flushes the ASID).
    Unshare,
    /// Post-munmap/mprotect VA invalidation.
    RegionOp,
    /// Per-fault repair after the kernel rewrites a PTE.
    FaultRepair,
    DomainFault,
    AsidRecycle,
    /// Memory-pressure reclaim tore PTEs and must evict their cached
    /// translations before the frame is reused.
    Reclaim,
    /// Large-page/section promotion migrated pages to contiguous
    /// frames; stale small-page translations must go before the old
    /// frames are reused.
    Promote,
    /// A large mapping was split back to 4KB PTEs; the cached
    /// large/section entry spans every page of the group, so the whole
    /// span is invalidated.
    Demote,
}

impl FlushReason {
    pub fn as_str(self) -> &'static str {
        match self {
            FlushReason::Unattributed => "unattributed",
            FlushReason::ContextSwitch => "context_switch",
            FlushReason::Fork => "fork",
            FlushReason::Exit => "exit",
            FlushReason::Unshare => "unshare",
            FlushReason::RegionOp => "region_op",
            FlushReason::FaultRepair => "fault_repair",
            FlushReason::DomainFault => "domain_fault",
            FlushReason::AsidRecycle => "asid_recycle",
            FlushReason::Reclaim => "reclaim",
            FlushReason::Promote => "promote",
            FlushReason::Demote => "demote",
        }
    }

    /// Per-reason flush-event counter.
    pub fn counter_key(self) -> &'static str {
        match self {
            FlushReason::Unattributed => "tlb.flush.reason.unattributed",
            FlushReason::ContextSwitch => "tlb.flush.reason.context_switch",
            FlushReason::Fork => "tlb.flush.reason.fork",
            FlushReason::Exit => "tlb.flush.reason.exit",
            FlushReason::Unshare => "tlb.flush.reason.unshare",
            FlushReason::RegionOp => "tlb.flush.reason.region_op",
            FlushReason::FaultRepair => "tlb.flush.reason.fault_repair",
            FlushReason::DomainFault => "tlb.flush.reason.domain_fault",
            FlushReason::AsidRecycle => "tlb.flush.reason.asid_recycle",
            FlushReason::Reclaim => "tlb.flush.reason.reclaim",
            FlushReason::Promote => "tlb.flush.reason.promote",
            FlushReason::Demote => "tlb.flush.reason.demote",
        }
    }

    /// Every reason (reporting iterates these in a stable order).
    pub const ALL: [FlushReason; 12] = [
        FlushReason::ContextSwitch,
        FlushReason::Fork,
        FlushReason::Exit,
        FlushReason::Unshare,
        FlushReason::RegionOp,
        FlushReason::FaultRepair,
        FlushReason::DomainFault,
        FlushReason::AsidRecycle,
        FlushReason::Reclaim,
        FlushReason::Promote,
        FlushReason::Demote,
        FlushReason::Unattributed,
    ];

    /// Inverse of [`FlushReason::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<FlushReason> {
        FlushReason::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Per-reason invalidated-entry accumulator (main TLB only).
    pub fn entries_key(self) -> &'static str {
        match self {
            FlushReason::Unattributed => "tlb.flush.reason.unattributed.entries",
            FlushReason::ContextSwitch => "tlb.flush.reason.context_switch.entries",
            FlushReason::Fork => "tlb.flush.reason.fork.entries",
            FlushReason::Exit => "tlb.flush.reason.exit.entries",
            FlushReason::Unshare => "tlb.flush.reason.unshare.entries",
            FlushReason::RegionOp => "tlb.flush.reason.region_op.entries",
            FlushReason::FaultRepair => "tlb.flush.reason.fault_repair.entries",
            FlushReason::DomainFault => "tlb.flush.reason.domain_fault.entries",
            FlushReason::AsidRecycle => "tlb.flush.reason.asid_recycle.entries",
            FlushReason::Reclaim => "tlb.flush.reason.reclaim.entries",
            FlushReason::Promote => "tlb.flush.reason.promote.entries",
            FlushReason::Demote => "tlb.flush.reason.demote.entries",
        }
    }
}

/// Which flush primitive fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlushScope {
    /// `MainTlb::flush_all` — counted against `TlbStats::full_flushes`.
    All,
    /// `MainTlb::flush_asid`.
    Asid,
    /// `MainTlb::flush_va_all_asids`.
    VaAllAsids,
    /// `MainTlb::flush_va`.
    Va,
    /// `MainTlb::flush_page` — one ASID-tagged page, globals survive.
    Page,
    /// `MainTlb::flush_range` — a VPN range within one ASID, globals
    /// survive (the gather escalates to `Asid` past the ceiling).
    Range,
    /// `MainTlb::flush_non_global`.
    NonGlobal,
    /// `MicroTlb::flush` (context-switch full clear).
    MicroAll,
    /// `MicroTlb::flush_va`.
    MicroVa,
}

impl FlushScope {
    pub fn as_str(self) -> &'static str {
        match self {
            FlushScope::All => "all",
            FlushScope::Asid => "asid",
            FlushScope::VaAllAsids => "va_all_asids",
            FlushScope::Va => "va",
            FlushScope::Page => "page",
            FlushScope::Range => "range",
            FlushScope::NonGlobal => "non_global",
            FlushScope::MicroAll => "micro_all",
            FlushScope::MicroVa => "micro_va",
        }
    }

    /// True for the main (ASID-tagged, `TlbStats`-counted) TLB scopes.
    pub fn is_main(self) -> bool {
        !matches!(self, FlushScope::MicroAll | FlushScope::MicroVa)
    }

    /// Every scope, in `as_str` order.
    pub const ALL: [FlushScope; 9] = [
        FlushScope::All,
        FlushScope::Asid,
        FlushScope::VaAllAsids,
        FlushScope::Va,
        FlushScope::Page,
        FlushScope::Range,
        FlushScope::NonGlobal,
        FlushScope::MicroAll,
        FlushScope::MicroVa,
    ];

    /// Inverse of [`FlushScope::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<FlushScope> {
        FlushScope::ALL.into_iter().find(|c| c.as_str() == s)
    }

    pub fn counter_key(self) -> &'static str {
        match self {
            FlushScope::All => "tlb.flush.scope.all",
            FlushScope::Asid => "tlb.flush.scope.asid",
            FlushScope::VaAllAsids => "tlb.flush.scope.va_all_asids",
            FlushScope::Va => "tlb.flush.scope.va",
            FlushScope::Page => "tlb.flush.scope.page",
            FlushScope::Range => "tlb.flush.scope.range",
            FlushScope::NonGlobal => "tlb.flush.scope.non_global",
            FlushScope::MicroAll => "tlb.flush.scope.micro_all",
            FlushScope::MicroVa => "tlb.flush.scope.micro_va",
        }
    }
}

/// How a page fault resolved. Mirrors `sat-vm`'s `FaultKind`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    Minor,
    Major,
    Cow,
    WriteEnable,
    Spurious,
}

impl FaultClass {
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Minor => "minor",
            FaultClass::Major => "major",
            FaultClass::Cow => "cow",
            FaultClass::WriteEnable => "write_enable",
            FaultClass::Spurious => "spurious",
        }
    }

    pub fn counter_key(self) -> &'static str {
        match self {
            FaultClass::Minor => "vm.fault.minor",
            FaultClass::Major => "vm.fault.major",
            FaultClass::Cow => "vm.fault.cow",
            FaultClass::WriteEnable => "vm.fault.write_enable",
            FaultClass::Spurious => "vm.fault.spurious",
        }
    }

    /// Every class, in `as_str` order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Minor,
        FaultClass::Major,
        FaultClass::Cow,
        FaultClass::WriteEnable,
        FaultClass::Spurious,
    ];

    /// Inverse of [`FaultClass::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// Which region syscall ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionOpKind {
    Mmap,
    MmapLarge,
    Munmap,
    Mprotect,
}

impl RegionOpKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RegionOpKind::Mmap => "mmap",
            RegionOpKind::MmapLarge => "mmap_large",
            RegionOpKind::Munmap => "munmap",
            RegionOpKind::Mprotect => "mprotect",
        }
    }

    pub fn counter_key(self) -> &'static str {
        match self {
            RegionOpKind::Mmap => "kernel.mmap",
            RegionOpKind::MmapLarge => "kernel.mmap_large",
            RegionOpKind::Munmap => "kernel.munmap",
            RegionOpKind::Mprotect => "kernel.mprotect",
        }
    }

    /// Every kind, in `as_str` order.
    pub const ALL: [RegionOpKind; 4] = [
        RegionOpKind::Mmap,
        RegionOpKind::MmapLarge,
        RegionOpKind::Munmap,
        RegionOpKind::Mprotect,
    ];

    /// Inverse of [`RegionOpKind::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<RegionOpKind> {
        RegionOpKind::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// The unit a duration span's `value` is measured in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanUnit {
    /// Modeled cycles (Android launch/IPC phases).
    Cycles,
    /// Wall-clock microseconds (bench cells).
    Micros,
}

impl SpanUnit {
    pub fn as_str(self) -> &'static str {
        match self {
            SpanUnit::Cycles => "cycles",
            SpanUnit::Micros => "us",
        }
    }

    /// Inverse of [`SpanUnit::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<SpanUnit> {
        match s {
            "cycles" => Some(SpanUnit::Cycles),
            "us" => Some(SpanUnit::Micros),
            _ => None,
        }
    }
}

/// Why simulated cycles were charged to a request flow. A closed
/// enum: every point where the machine adds to a core's cycle counter
/// tags the charge with exactly one cause, so a flow's critical path
/// decomposes without residue — [`crate::analyze::FlowTable`] asserts
/// that the per-cause sums reconcile exactly with the request's wall
/// ticks on lossless streams.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ChargeCause {
    /// Useful work: instruction CPI plus cache stalls on hits.
    Exec,
    /// Main-TLB miss walk stall (the page tables were walked but no
    /// fault was taken).
    TlbStall,
    /// Page-fault handling: walk, repair, and the handler's kernel
    /// instruction fetches.
    Fault,
    /// ARM domain fault (shared-entry protection check).
    DomainFault,
    /// PTP unshare work inside a fault (base cost + per-PTE copies),
    /// split out of [`ChargeCause::Fault`].
    Unshare,
    /// Cross-core shootdown IPI receipt.
    Ipi,
    /// Pending ASID-rollover non-global flush.
    RolloverFlush,
    /// Context-switch cost (register/TTBR swap + scheduler kernel
    /// path).
    ContextSwitch,
    /// Fork cost (PTP alloc/share, PTE copies, write-protect ops).
    Fork,
    /// Run-queue wait: wall ticks a request spent preempted or queued,
    /// not executing. Charged by `sat-sched`, not the machine — it is
    /// elapsed time on the core's clock, not cycles the flow consumed.
    RunqWait,
}

impl ChargeCause {
    pub fn as_str(self) -> &'static str {
        match self {
            ChargeCause::Exec => "exec",
            ChargeCause::TlbStall => "tlb_stall",
            ChargeCause::Fault => "fault",
            ChargeCause::DomainFault => "domain_fault",
            ChargeCause::Unshare => "unshare",
            ChargeCause::Ipi => "ipi",
            ChargeCause::RolloverFlush => "rollover_flush",
            ChargeCause::ContextSwitch => "context_switch",
            ChargeCause::Fork => "fork",
            ChargeCause::RunqWait => "runq_wait",
        }
    }

    /// The per-cause charged-cycles accumulator.
    pub fn counter_key(self) -> &'static str {
        match self {
            ChargeCause::Exec => "flow.cycles.exec",
            ChargeCause::TlbStall => "flow.cycles.tlb_stall",
            ChargeCause::Fault => "flow.cycles.fault",
            ChargeCause::DomainFault => "flow.cycles.domain_fault",
            ChargeCause::Unshare => "flow.cycles.unshare",
            ChargeCause::Ipi => "flow.cycles.ipi",
            ChargeCause::RolloverFlush => "flow.cycles.rollover_flush",
            ChargeCause::ContextSwitch => "flow.cycles.context_switch",
            ChargeCause::Fork => "flow.cycles.fork",
            ChargeCause::RunqWait => "flow.cycles.runq_wait",
        }
    }

    /// Every cause, in `as_str` order (reporting iterates these).
    pub const ALL: [ChargeCause; 10] = [
        ChargeCause::Exec,
        ChargeCause::TlbStall,
        ChargeCause::Fault,
        ChargeCause::DomainFault,
        ChargeCause::Unshare,
        ChargeCause::Ipi,
        ChargeCause::RolloverFlush,
        ChargeCause::ContextSwitch,
        ChargeCause::Fork,
        ChargeCause::RunqWait,
    ];

    /// Inverse of [`ChargeCause::as_str`] (trace re-ingestion).
    pub fn parse(s: &str) -> Option<ChargeCause> {
        ChargeCause::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// The typed body of an event. Numeric fields are the quantities the
/// paper's evaluation attributes per cause.
#[derive(Clone, PartialEq, Debug)]
pub enum Payload {
    /// `Kernel::fork` completed; `pid` is the parent.
    Fork {
        child: u32,
        ptps_shared: u64,
        ptes_copied: u64,
        /// Whether this fork took the PTP-sharing path.
        shared: bool,
    },
    /// `Kernel::exit` tore down the address space.
    Exit,
    /// A region syscall (mmap/munmap/mprotect/mmap_large).
    RegionOp {
        op: RegionOpKind,
        va: u32,
        pages: u32,
        /// PTPs unshared as a side effect of the op.
        unshared: u64,
    },
    /// ARM domain fault (global-entry protection check failed).
    DomainFault { va: u32 },
    /// Fork-time PTP sharing summary (one per shared fork).
    PtpShare { ptps: u64, write_protect_ops: u64 },
    /// One PTP left the shared state.
    PtpUnshare {
        cause: UnshareCause,
        ptes_copied: u64,
        /// Last-sharer fast path: no copy, only NEED_COPY cleared.
        last_sharer: bool,
        va: u32,
    },
    /// `sat-vm` resolved a page fault.
    PageFault {
        class: FaultClass,
        va: u32,
        file_backed: bool,
    },
    /// A TLB flush primitive ran and invalidated `entries` entries.
    TlbFlush {
        scope: FlushScope,
        reason: FlushReason,
        entries: u64,
    },
    /// The 8-bit ASID space was exhausted; the allocator bumped the
    /// generation. Live ASIDs are reassigned lazily at switch-in and
    /// one non-global flush follows (global entries survive).
    AsidRollover { generation: u64 },
    /// A precise shootdown was resolved against the per-core residency
    /// map. `scope` is the invalidation granularity the resident cores
    /// flushed at (`Asid`, `Range`, or `Page`); `cores_targeted` cores
    /// held the ASID and flushed, of which `cores_local` were the
    /// initiating core itself (a local TLBI, no IPI — the IPI count is
    /// `cores_targeted - cores_local`); `cores_skipped` never held the
    /// ASID and were left alone.
    TlbShootdown {
        asid: u8,
        scope: FlushScope,
        cores_targeted: u32,
        cores_local: u32,
        cores_skipped: u32,
    },
    /// A `FlushBatch` (mmu_gather analogue) resolved its accumulated
    /// invalidations: `ops` as enqueued by call sites, `coalesced`
    /// merges of adjacent/overlapping pages and ranges, `escalated`
    /// per-ASID widenings past the page-count ceiling.
    FlushBatch {
        ops: u64,
        coalesced: u64,
        escalated: u64,
    },
    /// The scheduler preempted `pid` on `core` in favour of `next`
    /// (end of timeslice).
    Preempt { core: u32, next: u32 },
    /// One gauge's value at a sample point, snapshotted by
    /// [`crate::sample_gauges`]. Exported as a Chrome counter-track
    /// point (`"ph":"C"`), so Perfetto renders the gauge as a live
    /// timeline next to the event spans. Samples are stamped (pid 0,
    /// asid 0): gauges describe whole-machine state, not one process.
    Sample { gauge: String, value: u64 },
    /// A duration span opened (an Android phase, a bench cell). Must
    /// be closed by a [`Payload::SpanEnd`] with the same name on the
    /// same (pid, asid) — `repro check` enforces the pairing.
    SpanBegin { name: String },
    /// A duration span closed, carrying the measured quantity (cycles
    /// or wall-clock µs — logical ticks only order the span against
    /// the events it contains).
    SpanEnd {
        name: String,
        value: u64,
        unit: SpanUnit,
    },
    /// Simulated cycles charged to a request flow, tagged with the
    /// cause. `flow` 0 is the unattributed bucket (work done while no
    /// request was bound to the charging core).
    CycleCharge {
        flow: u32,
        cause: ChargeCause,
        cycles: u64,
    },
    /// A request arrived at its server's queue (open-loop arrival; the
    /// flow may wait before its first instruction runs).
    FlowArrive { flow: u32 },
    /// The flow was bound at binder-request ingress and started
    /// executing.
    FlowBegin { flow: u32 },
    /// The flow's reply left; `wall` is completion minus arrival on
    /// the serving core's cycle clock — the quantity the per-cause
    /// charges must reconcile to exactly.
    FlowEnd { flow: u32, wall: u64 },
    /// One memory-pressure reclaim pass completed: `pages` file frames
    /// were evicted back to the free pool, tearing `pte_tears` PTEs,
    /// of which `shared_tears` lived in shared PTPs (torn in place —
    /// one tear repairs every sharer, who refault via the page cache).
    Reclaim {
        pages: u64,
        pte_tears: u64,
        shared_tears: u64,
    },
    /// The promotion scanner collapsed one aligned run into a wider
    /// translation: `bytes` is the new mapping size (64KB group or 1MB
    /// section), `pages` the 4KB pages it now spans, and `filled` the
    /// hole pages that had never been touched but got frames allocated
    /// so the run could go wide — the memory-waste numerator.
    Promote {
        va: u32,
        bytes: u32,
        pages: u64,
        filled: u64,
    },
    /// A large mapping at `va` split back to 4KB PTEs: `bytes` is the
    /// span invalidated (the whole group/section, since one cached
    /// wide entry serves every page in it), `pages` the PTEs restored.
    Demote {
        va: u32,
        bytes: u32,
        pages: u64,
        cause: DemoteCause,
    },
}

impl Payload {
    /// The Chrome-trace event name.
    pub fn name(&self) -> &str {
        match self {
            Payload::Fork { .. } => "fork",
            Payload::Exit => "exit",
            Payload::RegionOp { op, .. } => op.as_str(),
            Payload::DomainFault { .. } => "domain_fault",
            Payload::PtpShare { .. } => "ptp_share",
            Payload::PtpUnshare { .. } => "ptp_unshare",
            Payload::PageFault { .. } => "page_fault",
            Payload::TlbFlush { .. } => "tlb_flush",
            Payload::AsidRollover { .. } => "asid_rollover",
            Payload::TlbShootdown { .. } => "tlb_shootdown",
            Payload::FlushBatch { .. } => "flush_batch",
            Payload::Preempt { .. } => "preempt",
            Payload::Sample { gauge, .. } => gauge,
            Payload::SpanBegin { name } | Payload::SpanEnd { name, .. } => name,
            Payload::CycleCharge { .. } => "cycle_charge",
            Payload::FlowArrive { .. } => "flow_arrive",
            Payload::FlowBegin { .. } => "flow_begin",
            Payload::FlowEnd { .. } => "flow_end",
            Payload::Reclaim { .. } => "reclaim",
            Payload::Promote { .. } => "promote",
            Payload::Demote { .. } => "demote",
        }
    }
}

/// One recorded event. `tick` is a recorder-local monotonic sequence
/// number (the simulator is deterministic; logical order is the only
/// timestamp that is stable across hosts).
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub tick: u64,
    pub pid: u32,
    pub asid: u8,
    pub subsystem: Subsystem,
    pub payload: Payload,
}
