//! Trace analytics: stream-processing an event stream into typed
//! rollups.
//!
//! The raw stream (PR 2) records *what happened*; this module answers
//! *questions*: the Figure-6 per-cause unshare breakdown, flush-reason
//! attribution per TLB, per-subsystem/per-pid volume, duration-span
//! latency summaries (p50/p95/max over [`Histogram`]s), and the
//! pairwise shared-footprint matrix of paper §3 — all derived from
//! events alone, so every number in a report can be cross-checked
//! against the mechanism counters (`KernelStats`, `TlbStats`) the
//! conservation tests pin.
//!
//! Input is either an in-memory recording or a Chrome trace re-ingested
//! via [`crate::parse_chrome_trace`]; both paths produce the same
//! [`Rollup`].

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{ChargeCause, Event, Payload, SpanUnit, UnshareCause};
use crate::metrics::{Histogram, MetricsRegistry};

/// Simulated page size (bytes). The simulator targets ARMv7's 4KB
/// pages; region-op events carry raw virtual addresses and page
/// counts, so the analyzer only needs the constant, not the crate.
const PAGE_BYTES: u32 = 4096;

/// How many processes the shared-footprint matrix keeps (the largest
/// footprints win; a full `repro all` trace touches hundreds of pids).
const FOOTPRINT_PIDS: usize = 8;

/// Aggregate over one named duration span (`cat.name`).
#[derive(Clone, Debug)]
pub struct SpanAgg {
    pub count: u64,
    pub unit: SpanUnit,
    /// Span values (cycles or µs) — p50/p95/max come from here.
    pub hist: Histogram,
}

/// Flush volume attributed to one reason.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FlushAgg {
    pub flushes: u64,
    pub entries: u64,
}

/// Pairwise shared-footprint matrix (paper §3: 38–46% of two apps'
/// address-space footprints overlap). Reconstructed purely from
/// fork/mmap/munmap events: a fork clones the parent's page set, a
/// region op adds or removes pages.
#[derive(Clone, Debug, Default)]
pub struct FootprintMatrix {
    /// The processes kept (largest final footprints, ascending pid).
    pub pids: Vec<u32>,
    /// Final footprint size, in pages, per kept pid.
    pub pages: Vec<u64>,
    /// `shared[i][j]`: pages in both pid `i`'s and pid `j`'s set.
    pub shared: Vec<Vec<u64>>,
}

impl FootprintMatrix {
    /// Overlap percentage between kept pids `i` and `j`, relative to
    /// the smaller footprint (the paper's framing).
    pub fn overlap_pct(&self, i: usize, j: usize) -> f64 {
        let min = self.pages[i].min(self.pages[j]);
        if min == 0 {
            0.0
        } else {
            100.0 * self.shared[i][j] as f64 / min as f64
        }
    }
}

/// Run-wide summary of one gauge's sampled time series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Number of [`Payload::Sample`] points seen.
    pub samples: u64,
    pub first: u64,
    pub last: u64,
    pub min: u64,
    /// Sampled maximum — the gauge's high-water mark as reconstructed
    /// from the trace alone.
    pub max: u64,
}

impl GaugeSeries {
    fn observe(&mut self, value: u64) {
        if self.samples == 0 {
            self.first = value;
            self.min = value;
        }
        self.samples += 1;
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Everything the analyzer derives from one event stream.
#[derive(Clone, Debug, Default)]
pub struct Rollup {
    pub event_count: u64,
    /// Ring-overflow drops reported by the source (the rollup covers
    /// only surviving events; counters in a live snapshot stay exact).
    pub dropped: u64,
    pub subsystems: BTreeMap<&'static str, u64>,
    pub pids: BTreeMap<u32, u64>,
    /// Figure 6: unshare events per cause.
    pub unshare_causes: BTreeMap<&'static str, u64>,
    pub unshare_ptes_copied: u64,
    pub unshare_last_sharer: u64,
    /// Main-TLB flush volume per attributed reason.
    pub main_flush_reasons: BTreeMap<&'static str, FlushAgg>,
    /// Micro-TLB flush volume per attributed reason.
    pub micro_flush_reasons: BTreeMap<&'static str, FlushAgg>,
    pub flush_scopes: BTreeMap<&'static str, u64>,
    pub fault_classes: BTreeMap<&'static str, u64>,
    pub faults_file_backed: u64,
    pub region_ops: BTreeMap<&'static str, u64>,
    pub forks: u64,
    pub shared_forks: u64,
    pub exits: u64,
    pub domain_faults: u64,
    /// ASID generation rollovers (8-bit space exhausted).
    pub asid_rollovers: u64,
    /// Precise shootdowns resolved against the residency map, with how
    /// many cores took the flush, did it locally (no IPI), or avoided
    /// it entirely.
    pub shootdowns: u64,
    pub shootdown_cores_targeted: u64,
    pub shootdown_cores_local: u64,
    pub shootdown_cores_skipped: u64,
    /// Shootdowns delivered at range/page granularity (the rest were
    /// whole-ASID).
    pub shootdowns_ranged: u64,
    /// `FlushBatch` applications and their accumulated op statistics.
    pub batches: u64,
    pub batch_ops: u64,
    pub batch_coalesced: u64,
    pub batch_escalated: u64,
    /// Scheduler timeslice preemptions.
    pub preemptions: u64,
    /// Reclaim passes that evicted at least one page.
    pub reclaims: u64,
    /// Pages evicted across all reclaim passes.
    pub reclaim_pages: u64,
    /// Private PTEs torn by reclaim (one mapping each).
    pub reclaim_pte_tears: u64,
    /// Shared-PTP slots torn by reclaim (all sharers repaired at once).
    pub reclaim_shared_tears: u64,
    /// Large-page / section collapses performed by the promotion
    /// scanner.
    pub promotions: u64,
    /// 4KB pages now covered by wider translations.
    pub promote_pages: u64,
    /// Never-touched hole pages the scanner allocated frames for so a
    /// run could go wide — the measured memory-waste numerator.
    pub promote_filled: u64,
    /// Large mappings split back to 4KB PTEs, per cause.
    pub demotions: u64,
    pub demote_pages: u64,
    pub demote_causes: BTreeMap<&'static str, u64>,
    /// Cycle-charge volume per blame cause (flow 0 included — the
    /// unattributed bucket).
    pub charge_causes: BTreeMap<&'static str, u64>,
    /// `CycleCharge` events in the stream.
    pub charges: u64,
    /// Request-flow lifecycle counts.
    pub flow_arrivals: u64,
    pub flow_begins: u64,
    pub flow_ends: u64,
    /// Gauge sample points in the stream.
    pub samples: u64,
    /// Per-gauge time-series summaries (first/last/min/max over the
    /// sampled values, in key order).
    pub gauges: BTreeMap<String, GaugeSeries>,
    /// Duration spans keyed `cat.name`.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Folded stacks (`pid<p>;<cat>;<span>[;<nested>…] value`-ready)
    /// accumulated over span nesting — flamegraph input.
    pub folded: BTreeMap<String, u64>,
    /// The counter/histogram registry replayed from the events (for a
    /// lossless stream this equals the recorder's live registry).
    pub metrics: MetricsRegistry,
    pub footprint: FootprintMatrix,
}

impl Rollup {
    /// Builds the rollup in one pass over the events (plus the
    /// footprint replay).
    pub fn from_events(events: &[Event], dropped: u64) -> Rollup {
        let mut r = Rollup {
            event_count: events.len() as u64,
            dropped,
            ..Rollup::default()
        };
        // Per-(pid, asid) open-span stacks for folded attribution.
        let mut stacks: BTreeMap<(u32, u8), Vec<String>> = BTreeMap::new();
        // Footprint replay state: pid → resident page-number set.
        let mut pages: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();

        for event in events {
            *r.subsystems.entry(event.subsystem.as_str()).or_default() += 1;
            *r.pids.entry(event.pid).or_default() += 1;
            r.metrics.apply_event(event.subsystem, &event.payload);
            match &event.payload {
                Payload::Fork { child, shared, .. } => {
                    r.forks += 1;
                    if *shared {
                        r.shared_forks += 1;
                    }
                    let inherited = pages.get(&event.pid).cloned().unwrap_or_default();
                    pages.insert(*child, inherited);
                }
                Payload::Exit => r.exits += 1,
                Payload::DomainFault { .. } => r.domain_faults += 1,
                Payload::AsidRollover { .. } => r.asid_rollovers += 1,
                Payload::TlbShootdown {
                    scope,
                    cores_targeted,
                    cores_local,
                    cores_skipped,
                    ..
                } => {
                    r.shootdowns += 1;
                    r.shootdown_cores_targeted += u64::from(*cores_targeted);
                    r.shootdown_cores_local += u64::from(*cores_local);
                    r.shootdown_cores_skipped += u64::from(*cores_skipped);
                    if matches!(scope, crate::FlushScope::Range | crate::FlushScope::Page) {
                        r.shootdowns_ranged += 1;
                    }
                }
                Payload::FlushBatch {
                    ops,
                    coalesced,
                    escalated,
                } => {
                    r.batches += 1;
                    r.batch_ops += ops;
                    r.batch_coalesced += coalesced;
                    r.batch_escalated += escalated;
                }
                Payload::Preempt { .. } => r.preemptions += 1,
                Payload::Reclaim {
                    pages,
                    pte_tears,
                    shared_tears,
                } => {
                    r.reclaims += 1;
                    r.reclaim_pages += pages;
                    r.reclaim_pte_tears += pte_tears;
                    r.reclaim_shared_tears += shared_tears;
                }
                Payload::Promote { pages, filled, .. } => {
                    r.promotions += 1;
                    r.promote_pages += pages;
                    r.promote_filled += filled;
                }
                Payload::Demote { pages, cause, .. } => {
                    r.demotions += 1;
                    r.demote_pages += pages;
                    *r.demote_causes.entry(cause.as_str()).or_default() += 1;
                }
                Payload::CycleCharge { cause, cycles, .. } => {
                    r.charges += 1;
                    *r.charge_causes.entry(cause.as_str()).or_default() += cycles;
                }
                Payload::FlowArrive { .. } => r.flow_arrivals += 1,
                Payload::FlowBegin { .. } => r.flow_begins += 1,
                Payload::FlowEnd { .. } => r.flow_ends += 1,
                Payload::Sample { gauge, value } => {
                    r.samples += 1;
                    r.gauges.entry(gauge.clone()).or_default().observe(*value);
                }
                Payload::RegionOp {
                    op, va, pages: n, ..
                } => {
                    *r.region_ops.entry(op.as_str()).or_default() += 1;
                    let set = pages.entry(event.pid).or_default();
                    let first = va / PAGE_BYTES;
                    match op {
                        crate::RegionOpKind::Mmap | crate::RegionOpKind::MmapLarge => {
                            set.extend(first..first.saturating_add(*n));
                        }
                        crate::RegionOpKind::Munmap => {
                            for p in first..first.saturating_add(*n) {
                                set.remove(&p);
                            }
                        }
                        crate::RegionOpKind::Mprotect => {}
                    }
                }
                Payload::PtpShare { .. } => {}
                Payload::PtpUnshare {
                    cause,
                    ptes_copied,
                    last_sharer,
                    ..
                } => {
                    *r.unshare_causes.entry(cause.as_str()).or_default() += 1;
                    r.unshare_ptes_copied += ptes_copied;
                    if *last_sharer {
                        r.unshare_last_sharer += 1;
                    }
                }
                Payload::PageFault {
                    class, file_backed, ..
                } => {
                    *r.fault_classes.entry(class.as_str()).or_default() += 1;
                    if *file_backed {
                        r.faults_file_backed += 1;
                    }
                }
                Payload::TlbFlush {
                    scope,
                    reason,
                    entries,
                } => {
                    *r.flush_scopes.entry(scope.as_str()).or_default() += 1;
                    let table = if scope.is_main() {
                        &mut r.main_flush_reasons
                    } else {
                        &mut r.micro_flush_reasons
                    };
                    let agg = table.entry(reason.as_str()).or_default();
                    agg.flushes += 1;
                    agg.entries += entries;
                }
                Payload::SpanBegin { name } => {
                    stacks
                        .entry((event.pid, event.asid))
                        .or_default()
                        .push(name.clone());
                }
                Payload::SpanEnd { name, value, unit } => {
                    let key = format!("{}.{name}", event.subsystem.as_str());
                    let agg = r.spans.entry(key).or_insert_with(|| SpanAgg {
                        count: 0,
                        unit: *unit,
                        hist: Histogram::default(),
                    });
                    agg.count += 1;
                    agg.hist.record(*value);
                    // Folded stack: everything currently open on this
                    // thread, outermost first. A corrupt stream (end
                    // without begin) degrades to a single frame; the
                    // validator reports it separately.
                    let stack = stacks.entry((event.pid, event.asid)).or_default();
                    match stack.last() {
                        Some(top) if top == name => {
                            let path = format!(
                                "pid{};{};{}",
                                event.pid,
                                event.subsystem.as_str(),
                                stack.join(";")
                            );
                            *r.folded.entry(path).or_default() += value;
                            stack.pop();
                        }
                        _ => {
                            let path =
                                format!("pid{};{};{name}", event.pid, event.subsystem.as_str());
                            *r.folded.entry(path).or_default() += value;
                        }
                    }
                }
            }
        }

        // Keep the largest footprints, ascending pid for stable output.
        let mut by_size: Vec<(u32, u64)> = pages
            .iter()
            .map(|(pid, set)| (*pid, set.len() as u64))
            .filter(|(_, n)| *n > 0)
            .collect();
        by_size.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_size.truncate(FOOTPRINT_PIDS);
        by_size.sort_by_key(|(pid, _)| *pid);
        r.footprint.pids = by_size.iter().map(|(pid, _)| *pid).collect();
        r.footprint.pages = by_size.iter().map(|(_, n)| *n).collect();
        r.footprint.shared = r
            .footprint
            .pids
            .iter()
            .map(|a| {
                r.footprint
                    .pids
                    .iter()
                    .map(|b| pages[a].intersection(&pages[b]).count() as u64)
                    .collect()
            })
            .collect();
        r
    }

    /// Figure-6 rows: (cause, unshares, percent of all unshares), in
    /// the paper's cause order, zero-count causes included.
    pub fn fig6_breakdown(&self) -> Vec<(&'static str, u64, f64)> {
        let total: u64 = self.unshare_causes.values().sum();
        UnshareCause::ALL
            .into_iter()
            .map(|cause| {
                let n = self
                    .unshare_causes
                    .get(cause.as_str())
                    .copied()
                    .unwrap_or(0);
                let pct = if total == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / total as f64
                };
                (cause.as_str(), n, pct)
            })
            .collect()
    }
}

/// Hard cap on timeline rows — a guard against a `--window` far
/// smaller than the trace span blowing up memory/output.
pub const TIMELINE_MAX_WINDOWS: u64 = 1 << 16;

/// Default window count when the caller does not pick a width: the
/// span divides into about this many windows.
const TIMELINE_DEFAULT_WINDOWS: u64 = 20;

/// One tick window's event counts (the numerators of the windowed
/// rates `repro timeline` prints).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// First tick covered by this window.
    pub start: u64,
    pub events: u64,
    pub forks: u64,
    pub faults: u64,
    pub unshares: u64,
    /// TLB flush primitive invocations (main + micro).
    pub flushes: u64,
    /// Cross-core shootdown IPIs: `cores_targeted - cores_local`
    /// summed over the window's shootdowns.
    pub flush_ipis: u64,
    pub preemptions: u64,
    /// Pages evicted by reclaim passes in the window.
    pub reclaimed: u64,
    /// Gauge sample points in the window.
    pub samples: u64,
}

impl WindowRow {
    fn add(&mut self, payload: &Payload) {
        self.events += 1;
        match payload {
            Payload::Fork { .. } => self.forks += 1,
            Payload::PageFault { .. } => self.faults += 1,
            Payload::PtpUnshare { .. } => self.unshares += 1,
            Payload::TlbFlush { .. } => self.flushes += 1,
            Payload::TlbShootdown {
                cores_targeted,
                cores_local,
                ..
            } => self.flush_ipis += u64::from(cores_targeted - cores_local),
            Payload::Preempt { .. } => self.preemptions += 1,
            Payload::Reclaim { pages, .. } => self.reclaimed += pages,
            Payload::Sample { .. } => self.samples += 1,
            _ => {}
        }
    }
}

/// The event stream rebucketed into fixed-width tick windows, plus the
/// per-gauge series summaries — everything `repro timeline` renders.
///
/// Windows tile the trace contiguously from the first event's tick to
/// the last's, so a quiet window shows up as a row of zeros instead of
/// silently vanishing (transients are the whole point of a timeline).
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Window width in ticks.
    pub window: u64,
    /// Tick of the first event (windows are offset from here).
    pub start: u64,
    /// Tick of the last event.
    pub end: u64,
    pub rows: Vec<WindowRow>,
    /// Per-gauge series over the whole (possibly filtered) stream.
    pub gauges: BTreeMap<String, GaugeSeries>,
}

impl Timeline {
    /// Buckets `events` into windows of `window` ticks; `window == 0`
    /// picks a width dividing the span into about
    /// [`TIMELINE_DEFAULT_WINDOWS`] windows. Errors when the explicit
    /// width would produce more than [`TIMELINE_MAX_WINDOWS`] rows.
    pub fn from_events(events: &[Event], window: u64) -> Result<Timeline, String> {
        let Some(first) = events.first() else {
            return Ok(Timeline::default());
        };
        let start = first.tick;
        let end = events.last().map_or(start, |e| e.tick);
        let span = end - start + 1;
        let window = if window == 0 {
            span.div_ceil(TIMELINE_DEFAULT_WINDOWS).max(1)
        } else {
            window
        };
        let count = span.div_ceil(window);
        if count > TIMELINE_MAX_WINDOWS {
            return Err(format!(
                "--window {window} would produce {count} windows over a span of {span} ticks \
                 (max {TIMELINE_MAX_WINDOWS}); pick a wider window"
            ));
        }
        let mut t = Timeline {
            window,
            start,
            end,
            rows: (0..count)
                .map(|i| WindowRow {
                    start: start + i * window,
                    ..WindowRow::default()
                })
                .collect(),
            gauges: BTreeMap::new(),
        };
        for event in events {
            if event.tick < start {
                return Err(format!(
                    "event stream is not tick-sorted (tick {} before start {start})",
                    event.tick
                ));
            }
            let idx = ((event.tick - start) / window) as usize;
            let Some(row) = t.rows.get_mut(idx) else {
                return Err(format!(
                    "event stream is not tick-sorted (tick {} after the last event's {end})",
                    event.tick
                ));
            };
            row.add(&event.payload);
            if let Payload::Sample { gauge, value } = &event.payload {
                t.gauges.entry(gauge.clone()).or_default().observe(*value);
            }
        }
        Ok(t)
    }

    /// Sums every window — the reconciliation hook: these totals must
    /// equal the whole-stream [`Rollup`] counts exactly.
    pub fn totals(&self) -> WindowRow {
        let mut total = WindowRow {
            start: self.start,
            ..WindowRow::default()
        };
        for row in &self.rows {
            total.events += row.events;
            total.forks += row.forks;
            total.faults += row.faults;
            total.unshares += row.unshares;
            total.flushes += row.flushes;
            total.flush_ipis += row.flush_ipis;
            total.preemptions += row.preemptions;
            total.reclaimed += row.reclaimed;
            total.samples += row.samples;
        }
        total
    }
}

const CAUSES: usize = ChargeCause::ALL.len();

/// Exact nearest-rank percentile over an ascending-sorted slice.
/// Unlike [`Histogram::percentile`]'s log2-bucket upper bounds, this
/// is exact — tail blame needs the real request, not a bucket edge.
pub fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One request flow reconstructed from the stream: its lifecycle
/// events plus every cycle charged against it, split by cause.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    pub flow: u32,
    /// The serving pid (stamped on the flow's `FlowBegin`).
    pub pid: u32,
    pub arrived: bool,
    pub began: bool,
    /// Wall ticks (completion − arrival on the serving core's cycle
    /// clock) from the `FlowEnd` event; `None` while in flight.
    pub wall: Option<u64>,
    /// Charged cycles per cause, in [`ChargeCause::ALL`] order.
    by_cause: [u64; CAUSES],
}

impl FlowRecord {
    pub fn cycles(&self, cause: ChargeCause) -> u64 {
        self.by_cause[cause as usize]
    }

    /// Every cycle charged to this flow, all causes.
    pub fn attributed(&self) -> u64 {
        self.by_cause.iter().sum()
    }
}

/// Per-request critical paths rebuilt from `Flow*`/`CycleCharge`
/// events — what `repro tails` renders and the reconciliation
/// invariant is asserted on. Only meaningful on lossless streams: a
/// dropped charge silently shifts blame, which is why `repro check`
/// warns when a trace carries charges *and* drops.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    /// Flows seen, ascending id (flow 0 — the unattributed bucket —
    /// is kept out and accumulated separately).
    pub flows: Vec<FlowRecord>,
    /// Cycles charged while no request was active, per cause.
    unattributed: [u64; CAUSES],
    /// `CycleCharge` events consumed.
    pub charges: u64,
}

impl FlowTable {
    pub fn from_events(events: &[Event]) -> FlowTable {
        let mut by_flow: BTreeMap<u32, FlowRecord> = BTreeMap::new();
        let mut t = FlowTable::default();
        fn record(by_flow: &mut BTreeMap<u32, FlowRecord>, flow: u32) -> &mut FlowRecord {
            by_flow.entry(flow).or_insert(FlowRecord {
                flow,
                pid: 0,
                arrived: false,
                began: false,
                wall: None,
                by_cause: [0; CAUSES],
            })
        }
        for event in events {
            match &event.payload {
                Payload::CycleCharge {
                    flow,
                    cause,
                    cycles,
                } => {
                    t.charges += 1;
                    if *flow == 0 {
                        t.unattributed[*cause as usize] += cycles;
                    } else {
                        record(&mut by_flow, *flow).by_cause[*cause as usize] += cycles;
                    }
                }
                Payload::FlowArrive { flow } if *flow != 0 => {
                    record(&mut by_flow, *flow).arrived = true
                }
                Payload::FlowBegin { flow } if *flow != 0 => {
                    let r = record(&mut by_flow, *flow);
                    r.began = true;
                    r.pid = event.pid;
                }
                Payload::FlowEnd { flow, wall } if *flow != 0 => {
                    record(&mut by_flow, *flow).wall = Some(*wall);
                }
                _ => {}
            }
        }
        t.flows = by_flow.into_values().collect();
        t
    }

    /// Cycles charged to no flow under `cause`.
    pub fn unattributed(&self, cause: ChargeCause) -> u64 {
        self.unattributed[cause as usize]
    }

    /// Whole-stream charge volume under `cause` (attributed +
    /// unattributed) — the side that reconciles against
    /// `TlbStats`/`KernelStats`.
    pub fn total(&self, cause: ChargeCause) -> u64 {
        self.unattributed[cause as usize]
            + self
                .flows
                .iter()
                .map(|f| f.by_cause[cause as usize])
                .sum::<u64>()
    }

    /// Completed requests (a `FlowEnd` was seen).
    pub fn completed(&self) -> usize {
        self.flows.iter().filter(|f| f.wall.is_some()).count()
    }

    /// The house invariant, asserted exactly (no tolerance): every
    /// completed request's attributed cycles — execution charges plus
    /// the run-queue wait that fills its preempted gaps — sum to its
    /// measured wall ticks. Returns how many flows reconciled; any
    /// residue on a lossless stream is a missed or double charge site.
    pub fn reconcile(&self) -> Result<u64, String> {
        let mut checked = 0;
        for f in &self.flows {
            let Some(wall) = f.wall else { continue };
            if !f.began {
                return Err(format!("flow {}: ended without beginning", f.flow));
            }
            let attributed = f.attributed();
            if attributed != wall {
                let breakdown: Vec<String> = ChargeCause::ALL
                    .into_iter()
                    .filter(|c| f.cycles(*c) > 0)
                    .map(|c| format!("{}={}", c.as_str(), f.cycles(c)))
                    .collect();
                return Err(format!(
                    "flow {} (pid {}): attributed {} != wall {} (residue {}; {})",
                    f.flow,
                    f.pid,
                    attributed,
                    wall,
                    wall as i64 - attributed as i64,
                    breakdown.join(" ")
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }

    fn sorted_walls(&self) -> Vec<u64> {
        let mut walls: Vec<u64> = self.flows.iter().filter_map(|f| f.wall).collect();
        walls.sort_unstable();
        walls
    }

    /// Exact (p50, p95, p99) request latency, nearest-rank over the
    /// completed requests' walls. `None` when nothing completed.
    pub fn percentiles(&self) -> Option<(u64, u64, u64)> {
        let walls = self.sorted_walls();
        if walls.is_empty() {
            return None;
        }
        Some((
            nearest_rank(&walls, 50.0),
            nearest_rank(&walls, 95.0),
            nearest_rank(&walls, 99.0),
        ))
    }

    /// Exact (p50, p95, p99) of per-request cycles charged under
    /// `cause`, over completed requests — which causes are background
    /// hum versus tail-makers.
    pub fn cause_percentiles(&self, cause: ChargeCause) -> Option<(u64, u64, u64)> {
        let mut v: Vec<u64> = self
            .flows
            .iter()
            .filter(|f| f.wall.is_some())
            .map(|f| f.cycles(cause))
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        Some((
            nearest_rank(&v, 50.0),
            nearest_rank(&v, 95.0),
            nearest_rank(&v, 99.0),
        ))
    }

    /// The `k` slowest completed requests, worst first (ties broken by
    /// ascending flow id for stable output).
    pub fn slowest(&self, k: usize) -> Vec<&FlowRecord> {
        let mut done: Vec<&FlowRecord> = self.flows.iter().filter(|f| f.wall.is_some()).collect();
        done.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.flow.cmp(&b.flow)));
        done.truncate(k);
        done
    }
}

/// Slices an `all`-style trace down to one experiment's events, using
/// the `exp.<name>` bench span brackets `repro` emits around each
/// experiment. Experiments run sequentially on the recorder's global
/// tick sequence, so the bracket's tick range is exactly the
/// experiment's events. A bracket whose end was dropped by ring
/// overflow keeps everything from its begin onward.
pub fn filter_experiment(events: &[Event], name: &str) -> Result<Vec<Event>, String> {
    let span = format!("exp.{name}");
    let mut available: BTreeSet<&str> = BTreeSet::new();
    let mut begin: Option<u64> = None;
    let mut end: Option<u64> = None;
    for event in events {
        match &event.payload {
            Payload::SpanBegin { name: n } => {
                if let Some(exp) = n.strip_prefix("exp.") {
                    available.insert(exp);
                    if begin.is_none() && *n == span {
                        begin = Some(event.tick);
                    }
                }
            }
            Payload::SpanEnd { name: n, .. } if end.is_none() && begin.is_some() && *n == span => {
                end = Some(event.tick);
            }
            _ => {}
        }
    }
    let Some(b) = begin else {
        let known: Vec<&str> = available.into_iter().collect();
        return Err(if known.is_empty() {
            format!("experiment \"{name}\": trace carries no exp.* brackets (re-record it)")
        } else {
            format!(
                "experiment \"{name}\" not in trace; traced experiments: {}",
                known.join(", ")
            )
        });
    };
    let e = end.unwrap_or(u64::MAX);
    Ok(events
        .iter()
        .filter(|ev| ev.tick >= b && ev.tick <= e)
        .cloned()
        .collect())
}

/// Validates stream invariants the recorder guarantees: per-(pid,
/// asid) tick monotonicity (via [`validate_ticks`]), strict begin/end
/// pairing of duration spans (via [`validate_spans`]), and
/// well-formed gauge samples (via [`validate_samples`]). `repro
/// check` runs this over re-ingested traces; a corrupted or
/// hand-edited file fails loudly. Only valid for lossless streams —
/// when the ring dropped events, span begins may be missing from the
/// front, so callers must fall back to [`validate_ticks`] plus
/// [`validate_samples`] (both survive overflow).
pub fn validate_events(events: &[Event]) -> Result<(), String> {
    validate_ticks(events)?;
    validate_spans(events)?;
    validate_samples(events)
}

/// Gauge-sample well-formedness: every sample names a non-empty
/// gauge, and each gauge's sample ticks are strictly increasing.
/// Like tick monotonicity, this survives ring overflow (dropping a
/// prefix of a monotone series keeps it monotone).
pub fn validate_samples(events: &[Event]) -> Result<(), String> {
    let mut last_tick: BTreeMap<&str, u64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let Payload::Sample { gauge, .. } = &event.payload else {
            continue;
        };
        if gauge.is_empty() {
            return Err(format!("event {i}: sample with an empty gauge name"));
        }
        if let Some(&prev) = last_tick.get(gauge.as_str()) {
            if event.tick <= prev {
                return Err(format!(
                    "event {i}: sample tick {} not monotonic for gauge \"{gauge}\" (previous {prev})",
                    event.tick
                ));
            }
        }
        last_tick.insert(gauge, event.tick);
    }
    Ok(())
}

/// Per-(pid, asid) tick monotonicity: ticks are a recorder-global
/// sequence, so every thread's subsequence is strictly increasing.
/// This invariant survives ring overflow (dropping a prefix keeps
/// every subsequence increasing).
pub fn validate_ticks(events: &[Event]) -> Result<(), String> {
    let mut last_tick: BTreeMap<(u32, u8), u64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let thread = (event.pid, event.asid);
        if let Some(&prev) = last_tick.get(&thread) {
            if event.tick <= prev {
                return Err(format!(
                    "event {i}: tick {} not monotonic for pid {} asid {} (previous {})",
                    event.tick, event.pid, event.asid, prev
                ));
            }
        }
        last_tick.insert(thread, event.tick);
    }
    Ok(())
}

/// Strict span pairing: every `SpanEnd` closes the innermost open
/// `SpanBegin` with the same name on its thread, and nothing stays
/// open at the end of the stream.
pub fn validate_spans(events: &[Event]) -> Result<(), String> {
    let mut stacks: BTreeMap<(u32, u8), Vec<(String, u64)>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let thread = (event.pid, event.asid);
        match &event.payload {
            Payload::SpanBegin { name } => {
                stacks
                    .entry(thread)
                    .or_default()
                    .push((name.clone(), event.tick));
            }
            Payload::SpanEnd { name, .. } => match stacks.entry(thread).or_default().pop() {
                Some((open, _)) if &open == name => {}
                Some((open, tick)) => {
                    return Err(format!(
                        "event {i}: span end \"{name}\" closes \"{open}\" (opened at tick {tick}) \
                         on pid {} asid {}",
                        event.pid, event.asid
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: span end \"{name}\" without a begin on pid {} asid {}",
                        event.pid, event.asid
                    ));
                }
            },
            _ => {}
        }
    }
    for ((pid, asid), stack) in &stacks {
        if let Some((name, tick)) = stack.last() {
            return Err(format!(
                "span \"{name}\" (opened at tick {tick}) never ends on pid {pid} asid {asid}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RegionOpKind, Subsystem};

    fn ev(tick: u64, pid: u32, asid: u8, subsystem: Subsystem, payload: Payload) -> Event {
        Event {
            tick,
            pid,
            asid,
            subsystem,
            payload,
        }
    }

    fn begin(tick: u64, pid: u32, name: &str) -> Event {
        ev(
            tick,
            pid,
            pid as u8,
            Subsystem::Android,
            Payload::SpanBegin {
                name: name.to_string(),
            },
        )
    }

    fn end(tick: u64, pid: u32, name: &str, value: u64) -> Event {
        ev(
            tick,
            pid,
            pid as u8,
            Subsystem::Android,
            Payload::SpanEnd {
                name: name.to_string(),
                value,
                unit: SpanUnit::Cycles,
            },
        )
    }

    #[test]
    fn validate_accepts_well_formed_nesting() {
        let events = vec![
            begin(0, 1, "outer"),
            begin(1, 1, "inner"),
            end(2, 1, "inner", 5),
            begin(3, 2, "other-thread"),
            end(4, 1, "outer", 9),
            end(5, 2, "other-thread", 1),
        ];
        assert!(validate_events(&events).is_ok());
    }

    #[test]
    fn validate_rejects_non_monotonic_ticks() {
        let events = vec![begin(5, 1, "a"), end(5, 1, "a", 1)];
        let err = validate_events(&events).unwrap_err();
        assert!(err.contains("not monotonic"), "{err}");
    }

    #[test]
    fn validate_rejects_unmatched_span_end() {
        let err = validate_events(&[end(0, 1, "ghost", 3)]).unwrap_err();
        assert!(err.contains("without a begin"), "{err}");
    }

    #[test]
    fn validate_rejects_cross_matched_spans() {
        let events = vec![begin(0, 1, "a"), end(1, 1, "b", 2)];
        let err = validate_events(&events).unwrap_err();
        assert!(err.contains("closes"), "{err}");
    }

    #[test]
    fn validate_rejects_dangling_begin() {
        let err = validate_events(&[begin(0, 1, "open")]).unwrap_err();
        assert!(err.contains("never ends"), "{err}");
    }

    #[test]
    fn rollup_aggregates_spans_and_folded_stacks() {
        let events = vec![
            begin(0, 1, "launch"),
            begin(1, 1, "launch.exec"),
            end(2, 1, "launch.exec", 100),
            end(3, 1, "launch", 900),
            begin(4, 1, "launch"),
            end(5, 1, "launch", 1100),
        ];
        let r = Rollup::from_events(&events, 0);
        let launch = &r.spans["android.launch"];
        assert_eq!(launch.count, 2);
        assert_eq!(launch.hist.min, 900);
        assert_eq!(launch.hist.max, 1100);
        assert_eq!(r.folded["pid1;android;launch"], 2000);
        assert_eq!(r.folded["pid1;android;launch;launch.exec"], 100);
    }

    #[test]
    fn rollup_reconstructs_footprint_overlap_from_events() {
        let mmap = |tick, pid, va, n| {
            ev(
                tick,
                pid,
                pid as u8,
                Subsystem::Kernel,
                Payload::RegionOp {
                    op: RegionOpKind::Mmap,
                    va,
                    pages: n,
                    unshared: 0,
                },
            )
        };
        let events = vec![
            // Zygote (pid 1) maps 8 pages, then forks two children.
            mmap(0, 1, 0x1000, 8),
            ev(
                1,
                1,
                1,
                Subsystem::Kernel,
                Payload::Fork {
                    child: 2,
                    ptps_shared: 1,
                    ptes_copied: 0,
                    shared: true,
                },
            ),
            ev(
                2,
                1,
                1,
                Subsystem::Kernel,
                Payload::Fork {
                    child: 3,
                    ptps_shared: 1,
                    ptes_copied: 0,
                    shared: true,
                },
            ),
            // Child 2 maps 4 private pages; child 3 unmaps half the
            // inherited range.
            mmap(3, 2, 0x10_0000, 4),
            ev(
                4,
                3,
                3,
                Subsystem::Kernel,
                Payload::RegionOp {
                    op: RegionOpKind::Munmap,
                    va: 0x1000,
                    pages: 4,
                    unshared: 0,
                },
            ),
        ];
        let r = Rollup::from_events(&events, 0);
        let idx = |pid: u32| r.footprint.pids.iter().position(|p| *p == pid).unwrap();
        let (z, a, b) = (idx(1), idx(2), idx(3));
        assert_eq!(r.footprint.pages[z], 8);
        assert_eq!(r.footprint.pages[a], 12);
        assert_eq!(r.footprint.pages[b], 4);
        // Child 2 still shares all 8 inherited pages with the zygote;
        // child 3 kept 4 of them.
        assert_eq!(r.footprint.shared[z][a], 8);
        assert_eq!(r.footprint.shared[z][b], 4);
        assert_eq!(r.footprint.shared[a][b], 4);
        assert!((r.footprint.overlap_pct(z, a) - 100.0).abs() < 1e-9);
        assert!((r.footprint.overlap_pct(a, b) - 100.0).abs() < 1e-9);
    }

    fn sample(tick: u64, gauge: &str, value: u64) -> Event {
        ev(
            tick,
            0,
            0,
            Subsystem::Sim,
            Payload::Sample {
                gauge: gauge.to_string(),
                value,
            },
        )
    }

    fn fault(tick: u64, pid: u32) -> Event {
        ev(
            tick,
            pid,
            pid as u8,
            Subsystem::VmFault,
            Payload::PageFault {
                class: crate::FaultClass::Minor,
                va: 0x1000,
                file_backed: false,
            },
        )
    }

    #[test]
    fn rollup_summarizes_gauge_series() {
        let events = vec![
            sample(0, "phys.frames.free", 100),
            sample(1, "phys.frames.free", 40),
            sample(2, "phys.frames.free", 70),
        ];
        let r = Rollup::from_events(&events, 0);
        assert_eq!(r.samples, 3);
        let s = r.gauges["phys.frames.free"];
        assert_eq!((s.first, s.last, s.min, s.max), (100, 70, 40, 100));
        // The replayed registry carries the same high-water mark.
        assert_eq!(r.metrics.gauge("phys.frames.free").unwrap().high_water, 100);
    }

    #[test]
    fn timeline_windows_tile_the_span_and_totals_reconcile() {
        let events = vec![
            fault(0, 1),
            fault(1, 1),
            sample(2, "sched.runq.c0", 2),
            // Ticks 10..19 are a quiet window: an explicit zero row.
            fault(25, 2),
            ev(
                29,
                2,
                2,
                Subsystem::Sched,
                Payload::TlbShootdown {
                    asid: 2,
                    scope: crate::FlushScope::Asid,
                    cores_targeted: 3,
                    cores_local: 1,
                    cores_skipped: 1,
                },
            ),
        ];
        let t = Timeline::from_events(&events, 10).unwrap();
        assert_eq!(t.window, 10);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].start, 0);
        assert_eq!(t.rows[0].faults, 2);
        assert_eq!(t.rows[0].samples, 1);
        assert_eq!(
            t.rows[1],
            WindowRow {
                start: 10,
                ..WindowRow::default()
            }
        );
        assert_eq!(t.rows[2].faults, 1);
        assert_eq!(t.rows[2].flush_ipis, 2);
        let totals = t.totals();
        let r = Rollup::from_events(&events, 0);
        assert_eq!(totals.faults, r.metrics.counter("vm.fault"));
        assert_eq!(totals.events, r.event_count);
        assert_eq!(
            totals.flush_ipis,
            r.shootdown_cores_targeted - r.shootdown_cores_local
        );
        assert_eq!(t.gauges["sched.runq.c0"].max, 2);
    }

    #[test]
    fn timeline_auto_window_and_row_cap() {
        let events: Vec<Event> = (0..100).map(|i| fault(i, 1)).collect();
        let t = Timeline::from_events(&events, 0).unwrap();
        assert_eq!(t.window, 5); // span 100 / 20 default windows
        assert_eq!(t.rows.len(), 20);
        // An explicit window smaller than span/cap errors out.
        let wide: Vec<Event> = vec![fault(0, 1), fault(TIMELINE_MAX_WINDOWS * 2, 1)];
        let err = Timeline::from_events(&wide, 1).unwrap_err();
        assert!(err.contains("pick a wider window"), "{err}");
        // Empty stream: an empty timeline, not an error.
        assert!(Timeline::from_events(&[], 0).unwrap().rows.is_empty());
    }

    #[test]
    fn validate_samples_rejects_empty_names_and_rewinds() {
        let ok = vec![sample(0, "a", 1), sample(1, "b", 5), sample(2, "a", 2)];
        assert!(validate_samples(&ok).is_ok());
        let empty = vec![sample(0, "", 1)];
        let err = validate_samples(&empty).unwrap_err();
        assert!(err.contains("empty gauge name"), "{err}");
        // Same tick twice for one gauge is a rewind.
        let rewind = vec![sample(5, "a", 1), sample(5, "a", 2)];
        let err = validate_samples(&rewind).unwrap_err();
        assert!(err.contains("not monotonic"), "{err}");
        // Interleaved gauges at increasing ticks stay valid even when
        // another gauge's tick sits between them.
        assert!(validate_events(&ok).is_ok());
    }

    #[test]
    fn filter_experiment_slices_by_bracket_tick_range() {
        let bracket_begin = |tick, name: &str| {
            ev(
                tick,
                0,
                0,
                Subsystem::Bench,
                Payload::SpanBegin {
                    name: name.to_string(),
                },
            )
        };
        let bracket_end = |tick, name: &str| {
            ev(
                tick,
                0,
                0,
                Subsystem::Bench,
                Payload::SpanEnd {
                    name: name.to_string(),
                    value: 1,
                    unit: SpanUnit::Micros,
                },
            )
        };
        let events = vec![
            bracket_begin(0, "exp.launch"),
            fault(1, 1),
            bracket_end(2, "exp.launch"),
            bracket_begin(3, "exp.steady"),
            fault(4, 2),
            fault(5, 2),
            bracket_end(6, "exp.steady"),
        ];
        let steady = filter_experiment(&events, "steady").unwrap();
        assert_eq!(steady.len(), 4);
        assert!(steady.iter().all(|e| e.tick >= 3 && e.tick <= 6));
        let r = Rollup::from_events(&steady, 0);
        assert_eq!(r.metrics.counter("vm.fault"), 2);
        // Unknown name: the error lists what the trace does carry.
        let err = filter_experiment(&events, "nope").unwrap_err();
        assert!(err.contains("launch, steady"), "{err}");
        let err = filter_experiment(&[fault(0, 1)], "launch").unwrap_err();
        assert!(err.contains("no exp.* brackets"), "{err}");
    }

    fn charge(tick: u64, flow: u32, cause: ChargeCause, cycles: u64) -> Event {
        ev(
            tick,
            0,
            0,
            Subsystem::Sim,
            Payload::CycleCharge {
                flow,
                cause,
                cycles,
            },
        )
    }

    fn flow_end(tick: u64, pid: u32, flow: u32, wall: u64) -> Event {
        ev(
            tick,
            pid,
            pid as u8,
            Subsystem::Sched,
            Payload::FlowEnd { flow, wall },
        )
    }

    #[test]
    fn flow_table_reconciles_exact_walls_and_splits_unattributed() {
        let events = vec![
            ev(0, 5, 5, Subsystem::Sched, Payload::FlowArrive { flow: 1 }),
            ev(1, 5, 5, Subsystem::Sched, Payload::FlowBegin { flow: 1 }),
            charge(2, 1, ChargeCause::RunqWait, 100),
            charge(3, 1, ChargeCause::Exec, 50),
            charge(4, 0, ChargeCause::Ipi, 2000), // idle-core IPI: nobody's fault
            charge(5, 1, ChargeCause::TlbStall, 10),
            flow_end(6, 5, 1, 160),
        ];
        let t = FlowTable::from_events(&events);
        assert_eq!(t.flows.len(), 1);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.reconcile(), Ok(1));
        let f = &t.flows[0];
        assert_eq!((f.flow, f.pid, f.wall), (1, 5, Some(160)));
        assert_eq!(f.cycles(ChargeCause::RunqWait), 100);
        assert_eq!(f.attributed(), 160);
        assert_eq!(t.unattributed(ChargeCause::Ipi), 2000);
        assert_eq!(t.total(ChargeCause::Ipi), 2000);
        assert_eq!(t.total(ChargeCause::Exec), 50);
        // The rollup sees the same per-cause volume.
        let r = Rollup::from_events(&events, 0);
        assert_eq!(r.charge_causes["ipi"], 2000);
        assert_eq!(r.charges, 4);
        assert_eq!((r.flow_arrivals, r.flow_begins, r.flow_ends), (1, 1, 1));
        assert_eq!(r.metrics.counter("flow.cycles.exec"), 50);
        assert_eq!(r.metrics.counter("flow.cycles.unattributed"), 2000);
    }

    #[test]
    fn flow_table_reports_residue_with_breakdown() {
        let events = vec![
            ev(0, 7, 7, Subsystem::Sched, Payload::FlowBegin { flow: 2 }),
            charge(1, 2, ChargeCause::Exec, 30),
            flow_end(2, 7, 2, 40),
        ];
        let err = FlowTable::from_events(&events).reconcile().unwrap_err();
        assert!(err.contains("attributed 30 != wall 40"), "{err}");
        assert!(err.contains("residue 10"), "{err}");
        assert!(err.contains("exec=30"), "{err}");
    }

    #[test]
    fn flow_table_percentiles_are_exact_and_slowest_ranks_worst_first() {
        let mut events = Vec::new();
        for i in 1..=100u32 {
            events.push(ev(
                u64::from(i) * 3,
                i,
                i as u8,
                Subsystem::Sched,
                Payload::FlowBegin { flow: i },
            ));
            events.push(charge(
                u64::from(i) * 3 + 1,
                i,
                ChargeCause::Exec,
                u64::from(i),
            ));
            events.push(flow_end(u64::from(i) * 3 + 2, i, i, u64::from(i)));
        }
        let t = FlowTable::from_events(&events);
        assert_eq!(t.reconcile(), Ok(100));
        // Nearest-rank over 1..=100 is exact, not a bucket bound.
        assert_eq!(t.percentiles(), Some((50, 95, 99)));
        assert_eq!(t.cause_percentiles(ChargeCause::Exec), Some((50, 95, 99)));
        assert_eq!(t.cause_percentiles(ChargeCause::Fault), Some((0, 0, 0)));
        let top: Vec<u32> = t.slowest(3).iter().map(|f| f.flow).collect();
        assert_eq!(top, vec![100, 99, 98]);
        // An empty table has no percentiles.
        assert_eq!(FlowTable::default().percentiles(), None);
    }

    #[test]
    fn fig6_breakdown_orders_causes_and_computes_percentages() {
        let unshare = |tick, cause| {
            ev(
                tick,
                1,
                1,
                Subsystem::Share,
                Payload::PtpUnshare {
                    cause,
                    ptes_copied: 1,
                    last_sharer: false,
                    va: 0,
                },
            )
        };
        let events = vec![
            unshare(0, UnshareCause::WriteFault),
            unshare(1, UnshareCause::WriteFault),
            unshare(2, UnshareCause::WriteFault),
            unshare(3, UnshareCause::NewRegion),
        ];
        let r = Rollup::from_events(&events, 0);
        let rows = r.fig6_breakdown();
        assert_eq!(rows[0], ("write_fault", 3, 75.0));
        assert_eq!(rows[1], ("new_region", 1, 25.0));
        assert_eq!(rows[2].1, 0);
        // The replayed registry matches the event-derived table.
        assert_eq!(r.metrics.counter("share.unshare.write_fault"), 3);
        assert_eq!(r.metrics.counter("share.unshare"), 4);
    }
}
