//! `sat-obs`: cross-layer event tracing and metrics.
//!
//! A thread-local recorder collects structured [`Event`]s from every
//! mechanism layer (kernel, PTP share, vm fault, TLB, Android, bench)
//! into a fixed-capacity ring ([`RingSink`]) alongside an exact
//! [`MetricsRegistry`]. Two exporters serialize the harvest: Chrome
//! trace-event JSON ([`chrome_trace_json`]) and a metrics snapshot
//! ([`metrics_json`]) embedded in `BENCH_repro.json`.
//!
//! # Overhead contract
//!
//! Instrumented call sites are written as
//!
//! ```ignore
//! if sat_obs::enabled() {
//!     sat_obs::emit(Subsystem::Tlb, pid, asid, Payload::TlbFlush { .. });
//! }
//! ```
//!
//! With no recorder installed — the default on every thread —
//! [`enabled`] is a single thread-local `Cell<bool>` read: one
//! branch-predictable test, no allocation, no payload construction.
//! The `tlb_hot_path` bench's `obs_overhead` groups measure this.
//!
//! # Threads
//!
//! The recorder is deliberately thread-local (no global mutex on the
//! simulator's hot paths; `cargo test` runs tests concurrently). The
//! bench pool's worker threads install their own recorder per cell and
//! the submitting thread merges the harvests back, in submission
//! order, via [`absorb`] — so a traced parallel sweep reports the same
//! events (and metrics) as a serial one.

#![forbid(unsafe_code)]

pub mod analyze;
mod chrome;
mod event;
pub mod json;
mod metrics;
pub mod report;
mod sink;

pub use chrome::{chrome_trace_json, metrics_json, parse_chrome_trace, ParsedTrace};
pub use event::{
    ChargeCause, DemoteCause, Event, FaultClass, FlushReason, FlushScope, Payload, RegionOpKind,
    SpanUnit, Subsystem, UnshareCause,
};
pub use metrics::{Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use sink::{EventSink, NullSink, Recording, RingSink};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

thread_local! {
    static SINK: RefCell<Option<Box<dyn EventSink>>> = const { RefCell::new(None) };
    /// Mirror of `SINK.is_some() && sink.is_enabled()`: the cheap
    /// check on the disabled path.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static FLUSH_REASON: Cell<FlushReason> = const { Cell::new(FlushReason::Unattributed) };
    /// Scoped default cause for aggregate kernel-path charges (see
    /// [`with_charge_cause`]).
    static CHARGE_CAUSE: Cell<ChargeCause> = const { Cell::new(ChargeCause::Exec) };
    /// Request-flow context: pid → flow binding (survives preemption
    /// and core migration) and the flow currently executing per core
    /// (0 = unattributed). Thread-local like the recorder itself.
    static FLOW_BY_PID: RefCell<BTreeMap<u32, u32>> = const { RefCell::new(BTreeMap::new()) };
    static FLOW_BY_CORE: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Whether cycle-charge attribution is on. Off by default even
    /// with a sink installed: per-access `CycleCharge` events would
    /// swamp the ring on workloads that never look at flows. The
    /// serve driver (and flow tests) opt in via [`set_flow_tracing`].
    static FLOW_TRACING: Cell<bool> = const { Cell::new(false) };
}

/// Default ring capacity (overridable via `SAT_OBS_RING`).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Parses a `SAT_OBS_RING` value. `Err` carries the warning for an
/// unparseable or zero value (the fallback is never silent); unset is
/// the quiet default.
pub fn parse_ring_capacity(var: Option<&str>) -> Result<usize, String> {
    let Some(raw) = var else {
        return Ok(DEFAULT_RING_CAPACITY);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "sat-obs: ignoring SAT_OBS_RING={raw:?} (want a positive integer); \
             using default {DEFAULT_RING_CAPACITY}"
        )),
    }
}

/// Ring capacity from the `SAT_OBS_RING` env var, else the default.
/// An unparseable value warns on stderr once per process.
pub fn env_ring_capacity() -> usize {
    let var = std::env::var("SAT_OBS_RING").ok();
    match parse_ring_capacity(var.as_deref()) {
        Ok(n) => n,
        Err(warning) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| eprintln!("{warning}"));
            DEFAULT_RING_CAPACITY
        }
    }
}

/// Whether a live sink is installed on this thread. Call sites gate
/// payload construction on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Installs a fresh [`RingSink`] with `capacity` on this thread,
/// replacing (and discarding) any previous sink.
pub fn install(capacity: usize) {
    install_sink(Box::new(RingSink::new(capacity)));
}

/// Installs an arbitrary sink on this thread.
pub fn install_sink(sink: Box<dyn EventSink>) {
    ENABLED.with(|e| e.set(sink.is_enabled()));
    SINK.with(|s| *s.borrow_mut() = Some(sink));
}

/// Removes this thread's sink and returns everything it captured.
/// `None` if nothing was installed.
pub fn uninstall() -> Option<Recording> {
    ENABLED.with(|e| e.set(false));
    FLUSH_REASON.with(|r| r.set(FlushReason::Unattributed));
    CHARGE_CAUSE.with(|c| c.set(ChargeCause::Exec));
    FLOW_BY_PID.with(|m| m.borrow_mut().clear());
    FLOW_BY_CORE.with(|v| v.borrow_mut().clear());
    FLOW_TRACING.with(|t| t.set(false));
    SINK.with(|s| s.borrow_mut().take())
        .map(|sink| sink.finish())
}

/// Records one event on this thread's sink (no-op when disabled —
/// but prefer gating on [`enabled`] so the payload is never built).
pub fn emit(subsystem: Subsystem, pid: u32, asid: u8, payload: Payload) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.record(pid, asid, subsystem, payload);
        }
    });
}

/// Records a histogram sample (e.g. one modeled fault's cycle cost).
pub fn record_value(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.record_value(name, value);
        }
    });
}

/// Publishes a gauge's current value on this thread's sink.
///
/// Gauges are *polled*, not pushed: the layers owning the state
/// (sat-phys, sat-core, sat-sim, sat-sched) expose `publish_gauges`
/// methods that read their existing bookkeeping and call this, and the
/// driver loop invokes them only at sample points. The hot paths
/// therefore pay nothing for the time-series layer — the disabled
/// check is the same single thread-local branch as [`emit`].
pub fn gauge_set(key: &str, value: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.gauge_set(key, value);
        }
    });
}

/// Moves a gauge up by `n` (saturating).
pub fn gauge_add(key: &str, n: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.gauge_add(key, n);
        }
    });
}

/// Moves a gauge down by `n` (saturating at zero).
pub fn gauge_sub(key: &str, n: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.gauge_sub(key, n);
        }
    });
}

/// Snapshots every registered gauge into the event ring as
/// [`Payload::Sample`] events — one consistent cut across the whole
/// gauge set. Drive this from a [`Sampler`] rather than calling it
/// directly, so the cadence is explicit.
pub fn sample_gauges() {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.sample_gauges();
        }
    });
}

/// Starts a fresh per-experiment gauge window on this thread's sink
/// (see [`MetricsRegistry::begin_gauge_window`]).
pub fn begin_gauge_window() {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.begin_gauge_window();
        }
    });
}

/// Clones the per-gauge window high-water marks, if a metrics-keeping
/// sink is live (the per-experiment `gauges` snapshot section).
pub fn window_gauge_high_waters() -> Option<BTreeMap<String, u64>> {
    with_metrics(|m| m.window_gauge_high_waters())
}

/// The sample clock: the loop that owns simulated time (scheduler
/// rounds, fleet spawn batches) calls [`Sampler::tick`] once per
/// logical step, and every `every`-th step the sampler runs the
/// caller's publish closure and snapshots the gauge set into the ring.
///
/// The publish closure is only invoked when a sample is actually due
/// *and* a sink is enabled, so an untraced run never polls the layers
/// at all.
#[derive(Clone, Copy, Debug)]
pub struct Sampler {
    every: u64,
    ticks: u64,
}

impl Sampler {
    /// A sampler firing every `every` ticks (`every` is clamped to at
    /// least 1).
    pub fn new(every: u64) -> Sampler {
        Sampler {
            every: every.max(1),
            ticks: 0,
        }
    }

    /// Ticks this sampler's clock forward. Fires first on tick
    /// `every`, then every `every` ticks after. Returns whether a
    /// sample was cut.
    pub fn tick(&mut self, publish: impl FnOnce()) -> bool {
        self.ticks += 1;
        if !enabled() || !self.ticks.is_multiple_of(self.every) {
            return false;
        }
        publish();
        sample_gauges();
        true
    }

    /// Cuts a sample immediately, off the clock (the final
    /// state-of-the-machine snapshot after a reap phase). The clock
    /// position is unchanged.
    pub fn sample_now(&mut self, publish: impl FnOnce()) -> bool {
        if !enabled() {
            return false;
        }
        publish();
        sample_gauges();
        true
    }
}

/// Runs `f` with the thread's flush-reason set to `reason`, restoring
/// the previous reason afterwards. TLB flush primitives read this to
/// attribute flushes to the kernel path that issued them, without any
/// signature changes through `TlbMaintenance`.
pub fn with_flush_reason<R>(reason: FlushReason, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let prev = FLUSH_REASON.with(|r| r.replace(reason));
    let out = f();
    FLUSH_REASON.with(|r| r.set(prev));
    out
}

/// The flush reason currently in scope (see [`with_flush_reason`]).
pub fn current_flush_reason() -> FlushReason {
    FLUSH_REASON.with(|r| r.get())
}

/// Runs `f` with the thread's default charge cause set to `cause`,
/// restoring the previous cause afterwards. Aggregate kernel-path
/// charges (e.g. the machine's kernel-line fetch loops) read this so
/// the path that *issued* the work — context switch, fault handler,
/// binder ingress — owns the cycles, without signature changes.
pub fn with_charge_cause<R>(cause: ChargeCause, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let prev = CHARGE_CAUSE.with(|c| c.replace(cause));
    let out = f();
    CHARGE_CAUSE.with(|c| c.set(prev));
    out
}

/// The charge cause currently in scope (see [`with_charge_cause`]).
/// [`ChargeCause::Exec`] when no path claimed the work.
pub fn current_charge_cause() -> ChargeCause {
    CHARGE_CAUSE.with(|c| c.get())
}

/// Turns cycle-charge attribution on or off for this thread. Off (the
/// default), [`charge`] and the flow-binding calls are no-ops even
/// with a sink installed, so workloads that never establish flows pay
/// nothing and emit nothing — per-access `CycleCharge` events would
/// otherwise swamp the ring on every traced experiment.
pub fn set_flow_tracing(on: bool) {
    FLOW_TRACING.with(|t| t.set(on));
}

/// Whether cycle-charge attribution is on for this thread.
#[inline]
pub fn flow_tracing() -> bool {
    FLOW_TRACING.with(|t| t.get())
}

/// Binds request `flow` to `pid` and marks it the active flow on
/// `core`. The per-pid binding survives preemption and core migration:
/// [`flow_note_scheduled`] re-establishes the core slot whenever the
/// pid is switched back in, wherever that happens.
pub fn flow_bind(core: usize, pid: u32, flow: u32) {
    if !enabled() || !flow_tracing() {
        return;
    }
    FLOW_BY_PID.with(|m| m.borrow_mut().insert(pid, flow));
    set_core_flow(core, flow);
}

/// Drops `pid`'s flow binding (request complete) and clears any core
/// slot still holding its flow.
pub fn flow_unbind(pid: u32) {
    if !enabled() || !flow_tracing() {
        return;
    }
    let flow = FLOW_BY_PID.with(|m| m.borrow_mut().remove(&pid));
    if let Some(flow) = flow {
        FLOW_BY_CORE.with(|v| {
            for slot in v.borrow_mut().iter_mut() {
                if *slot == flow {
                    *slot = 0;
                }
            }
        });
    }
}

/// Notes that `pid` was switched in on `core`: the core's active flow
/// becomes whatever flow is bound to the pid (0 when none). The
/// machine's context-switch path calls this, so attribution follows a
/// request through preemption and migration with no scheduler help.
pub fn flow_note_scheduled(core: usize, pid: u32) {
    if !enabled() || !flow_tracing() {
        return;
    }
    let flow = FLOW_BY_PID.with(|m| m.borrow().get(&pid).copied().unwrap_or(0));
    set_core_flow(core, flow);
}

/// Clears `core`'s active flow without touching the pid binding: the
/// request was preempted and left the core. Cycles the core spends
/// until the next switch-in (driver bookkeeping, fork churn, other
/// requests) are unattributed or theirs — the preempted request's gap
/// is covered by the driver's explicit run-queue-wait charge instead,
/// so nothing is counted twice.
pub fn flow_park(core: usize) {
    if !enabled() || !flow_tracing() {
        return;
    }
    set_core_flow(core, 0);
}

fn set_core_flow(core: usize, flow: u32) {
    FLOW_BY_CORE.with(|v| {
        let mut v = v.borrow_mut();
        if v.len() <= core {
            v.resize(core + 1, 0);
        }
        v[core] = flow;
    });
}

/// The flow currently active on `core` (0 = unattributed).
pub fn active_flow(core: usize) -> u32 {
    FLOW_BY_CORE.with(|v| v.borrow().get(core).copied().unwrap_or(0))
}

/// Charges `cycles` to the flow active on `core` under `cause`,
/// emitting a [`Payload::CycleCharge`]. Flow 0 (no active request) is
/// recorded too: the unattributed bucket is what lets per-cause global
/// totals reconcile against `TlbStats`/`KernelStats` even on runs with
/// no requests in flight. Disabled-path cost is the usual single
/// thread-local branch; with a sink but [`flow_tracing`] off this is
/// still a no-op (see [`set_flow_tracing`]).
pub fn charge(core: usize, cause: ChargeCause, cycles: u64) {
    if !enabled() || !flow_tracing() || cycles == 0 {
        return;
    }
    let flow = active_flow(core);
    emit(
        Subsystem::Sim,
        0,
        0,
        Payload::CycleCharge {
            flow,
            cause,
            cycles,
        },
    );
}

/// [`charge`] under the scoped default cause — the aggregation point
/// for kernel-line fetch loops.
pub fn charge_scoped(core: usize, cycles: u64) {
    charge(core, current_charge_cause(), cycles);
}

/// Merges a recording harvested on another thread into this thread's
/// sink (no-op when disabled). Events are re-stamped in order.
pub fn absorb(rec: Recording) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.absorb(rec);
        }
    });
}

/// This thread's ring capacity, if a bounded sink is installed. The
/// bench pool sizes worker recorders to match the parent's.
pub fn ring_capacity() -> Option<usize> {
    SINK.with(|s| s.borrow().as_ref().and_then(|sink| sink.capacity()))
}

/// Runs `f` against the live metrics registry, if the installed sink
/// keeps one. Used by conservation tests and `repro`'s per-experiment
/// deltas without tearing the recorder down.
pub fn with_metrics<R>(f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
    SINK.with(|s| s.borrow().as_ref().and_then(|sink| sink.metrics().map(f)))
}

/// Clones the current counter map, if a metrics-keeping sink is live.
pub fn counters_snapshot() -> Option<BTreeMap<String, u64>> {
    with_metrics(|m| m.counters_map().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_is_noop() {
        assert!(!enabled());
        emit(Subsystem::Kernel, 1, 1, Payload::Exit);
        record_value("x", 1);
        assert!(uninstall().is_none());
        assert!(counters_snapshot().is_none());
    }

    #[test]
    fn install_emit_uninstall_round_trip() {
        install(8);
        assert!(enabled());
        assert_eq!(ring_capacity(), Some(8));
        emit(Subsystem::Kernel, 3, 2, Payload::Exit);
        record_value("sim.soft_fault_cycles", 250);
        let snap = counters_snapshot().unwrap();
        assert_eq!(snap.get("kernel.exit"), Some(&1));
        let rec = uninstall().unwrap();
        assert!(!enabled());
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.events[0].pid, 3);
        assert_eq!(
            rec.metrics
                .histogram("sim.soft_fault_cycles")
                .unwrap()
                .count,
            1
        );
        assert!(uninstall().is_none());
    }

    #[test]
    fn null_sink_counts_as_disabled() {
        install_sink(Box::new(NullSink));
        assert!(!enabled());
        emit(Subsystem::Kernel, 1, 1, Payload::Exit);
        let rec = uninstall().unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.dropped, 0);
    }

    #[test]
    fn flush_reason_scopes_nest_and_restore() {
        install(8);
        assert_eq!(current_flush_reason(), FlushReason::Unattributed);
        let reasons = with_flush_reason(FlushReason::Exit, || {
            let outer = current_flush_reason();
            let inner = with_flush_reason(FlushReason::Unshare, current_flush_reason);
            (outer, current_flush_reason(), inner)
        });
        assert_eq!(
            reasons,
            (FlushReason::Exit, FlushReason::Exit, FlushReason::Unshare)
        );
        assert_eq!(current_flush_reason(), FlushReason::Unattributed);
        uninstall();
    }

    #[test]
    fn sampler_fires_every_k_ticks_and_skips_when_disabled() {
        // Disabled: the publish closure must never run.
        let mut sampler = Sampler::new(2);
        let mut published = 0;
        assert!(!sampler.tick(|| published += 1));
        assert!(!sampler.tick(|| published += 1));
        assert_eq!(published, 0);

        install(64);
        let mut sampler = Sampler::new(3);
        let mut fired = Vec::new();
        for i in 1..=9u64 {
            if sampler.tick(|| gauge_set("sim.x", i)) {
                fired.push(i);
            }
        }
        assert_eq!(fired, vec![3, 6, 9]);
        let rec = uninstall().unwrap();
        let samples: Vec<u64> = rec
            .events
            .iter()
            .filter_map(|e| match &e.payload {
                Payload::Sample { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(samples, vec![3, 6, 9]);
    }

    #[test]
    fn sample_now_cuts_an_off_clock_snapshot() {
        install(64);
        let mut sampler = Sampler::new(100);
        assert!(sampler.sample_now(|| gauge_set("sim.final", 42)));
        let rec = uninstall().unwrap();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(
            rec.events[0].payload,
            Payload::Sample {
                gauge: "sim.final".to_string(),
                value: 42
            }
        );
    }

    #[test]
    fn gauge_free_functions_are_noops_when_disabled() {
        assert!(!enabled());
        gauge_set("x", 1);
        gauge_add("x", 1);
        gauge_sub("x", 1);
        sample_gauges();
        begin_gauge_window();
        assert!(window_gauge_high_waters().is_none());
    }

    #[test]
    fn ring_capacity_parse_path() {
        assert_eq!(parse_ring_capacity(None), Ok(DEFAULT_RING_CAPACITY));
        assert_eq!(parse_ring_capacity(Some("1024")), Ok(1024));
        assert_eq!(parse_ring_capacity(Some(" 8 ")), Ok(8));
        for bad in ["", "zero", "0", "-4", "1e6", "65_536"] {
            let err = parse_ring_capacity(Some(bad)).unwrap_err();
            assert!(err.contains("SAT_OBS_RING"), "{err}");
            assert!(err.contains(&DEFAULT_RING_CAPACITY.to_string()), "{err}");
        }
    }

    #[test]
    fn uninstall_resets_flush_reason() {
        install(8);
        // A panicking scope can't unwind our Cell (no Drop guard), but
        // uninstall always restores the default for the next run.
        FLUSH_REASON.with(|r| r.set(FlushReason::Fork));
        uninstall();
        assert_eq!(current_flush_reason(), FlushReason::Unattributed);
    }

    #[test]
    fn charge_cause_scopes_nest_and_restore() {
        install(8);
        assert_eq!(current_charge_cause(), ChargeCause::Exec);
        let causes = with_charge_cause(ChargeCause::Fault, || {
            let outer = current_charge_cause();
            let inner = with_charge_cause(ChargeCause::Unshare, current_charge_cause);
            (outer, inner)
        });
        assert_eq!(causes, (ChargeCause::Fault, ChargeCause::Unshare));
        assert_eq!(current_charge_cause(), ChargeCause::Exec);
        uninstall();
    }

    #[test]
    fn flow_binding_follows_pid_through_reschedule() {
        install(64);
        set_flow_tracing(true);
        flow_bind(0, 7, 42);
        assert_eq!(active_flow(0), 42);
        // Preemption: another pid (no flow) takes core 0.
        flow_note_scheduled(0, 9);
        assert_eq!(active_flow(0), 0);
        // The request's pid migrates to core 2: the binding follows.
        flow_note_scheduled(2, 7);
        assert_eq!(active_flow(2), 42);
        charge(2, ChargeCause::TlbStall, 8);
        charge(0, ChargeCause::Ipi, 2000);
        flow_unbind(7);
        assert_eq!(active_flow(2), 0);
        let rec = uninstall().unwrap();
        let charges: Vec<(u32, ChargeCause, u64)> = rec
            .events
            .iter()
            .filter_map(|e| match e.payload {
                Payload::CycleCharge {
                    flow,
                    cause,
                    cycles,
                } => Some((flow, cause, cycles)),
                _ => None,
            })
            .collect();
        assert_eq!(
            charges,
            vec![(42, ChargeCause::TlbStall, 8), (0, ChargeCause::Ipi, 2000)]
        );
    }

    #[test]
    fn charges_are_noops_when_disabled_and_zero_is_elided() {
        assert!(!enabled());
        flow_bind(0, 1, 5);
        charge(0, ChargeCause::Exec, 10);
        assert_eq!(active_flow(0), 0);
        install(8);
        // Sink up, but flow tracing not opted into: still silent.
        charge(0, ChargeCause::Exec, 10);
        flow_bind(0, 1, 5);
        assert_eq!(active_flow(0), 0);
        set_flow_tracing(true);
        charge(0, ChargeCause::Exec, 0); // zero-cycle charges are noise
        let rec = uninstall().unwrap();
        assert!(rec.events.is_empty());
    }

    #[test]
    fn uninstall_resets_flow_state() {
        install(8);
        set_flow_tracing(true);
        flow_bind(1, 3, 9);
        uninstall();
        assert!(!flow_tracing(), "tracing opt-in must not leak across runs");
        install(8);
        set_flow_tracing(true);
        assert_eq!(active_flow(1), 0);
        flow_note_scheduled(1, 3);
        assert_eq!(active_flow(1), 0, "pid binding must not leak across runs");
        uninstall();
    }
}
