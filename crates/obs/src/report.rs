//! Rendering a [`Rollup`] for humans (`text`), machines (`json`), and
//! flamegraph tooling (`folded`).
//!
//! `repro report --trace x.json --format <fmt>` is the CLI surface;
//! the renderers are pure functions so tests can assert on output
//! without touching the filesystem.

use std::fmt::Write as _;

use crate::analyze::{Rollup, Timeline};
use crate::json::escape_into;
use crate::metrics::Histogram;

/// Output format for `repro report`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReportFormat {
    Text,
    Json,
    Folded,
}

impl ReportFormat {
    pub fn parse(s: &str) -> Option<ReportFormat> {
        match s {
            "text" => Some(ReportFormat::Text),
            "json" => Some(ReportFormat::Json),
            "folded" => Some(ReportFormat::Folded),
            _ => None,
        }
    }
}

/// Renders the rollup in the requested format.
pub fn render(rollup: &Rollup, format: ReportFormat) -> String {
    match format {
        ReportFormat::Text => render_text(rollup),
        ReportFormat::Json => render_json(rollup),
        ReportFormat::Folded => render_folded(rollup),
    }
}

fn heading(out: &mut String, title: &str) {
    let _ = writeln!(out, "\n## {title}\n");
}

fn rule(out: &mut String, widths: &[usize]) {
    let line: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "{}", line.join("  "));
}

/// Human tables. Counts are exact (derived from the event stream);
/// span latencies come from log2-bucket histograms, so p50/p95 are
/// upper-bound estimates while min/max are exact.
pub fn render_text(r: &Rollup) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# repro report — {} events, {} dropped, {} pids, {} subsystems",
        r.event_count,
        r.dropped,
        r.pids.len(),
        r.subsystems.len()
    );

    heading(&mut out, "Event volume by subsystem");
    let _ = writeln!(out, "{:<12}  {:>10}", "subsystem", "events");
    rule(&mut out, &[12, 10]);
    for (name, n) in &r.subsystems {
        let _ = writeln!(out, "{name:<12}  {n:>10}");
    }

    heading(&mut out, "Unshare causes (Figure 6)");
    let _ = writeln!(out, "{:<12}  {:>9}  {:>6}", "cause", "unshares", "pct");
    rule(&mut out, &[12, 9, 6]);
    for (cause, n, pct) in r.fig6_breakdown() {
        let _ = writeln!(out, "{cause:<12}  {n:>9}  {pct:>5.1}%");
    }
    let _ = writeln!(
        out,
        "PTEs copied by unshares: {}; last-sharer fast path: {}",
        r.unshare_ptes_copied, r.unshare_last_sharer
    );

    for (title, table) in [
        ("Main-TLB flushes by reason", &r.main_flush_reasons),
        ("Micro-TLB flushes by reason", &r.micro_flush_reasons),
    ] {
        if table.is_empty() {
            continue;
        }
        heading(&mut out, title);
        let _ = writeln!(out, "{:<16}  {:>8}  {:>10}", "reason", "flushes", "entries");
        rule(&mut out, &[16, 8, 10]);
        for (reason, agg) in table.iter() {
            let _ = writeln!(
                out,
                "{:<16}  {:>8}  {:>10}",
                reason, agg.flushes, agg.entries
            );
        }
    }

    if !r.fault_classes.is_empty() {
        heading(&mut out, "Page faults by class");
        let _ = writeln!(out, "{:<14}  {:>8}", "class", "faults");
        rule(&mut out, &[14, 8]);
        for (class, n) in &r.fault_classes {
            let _ = writeln!(out, "{class:<14}  {n:>8}");
        }
        let _ = writeln!(out, "file-backed: {}", r.faults_file_backed);
    }

    if r.shootdowns + r.asid_rollovers + r.preemptions > 0 {
        heading(&mut out, "Scheduling and shootdowns");
        let _ = writeln!(out, "preemptions:            {}", r.preemptions);
        let _ = writeln!(out, "asid rollovers:         {}", r.asid_rollovers);
        let _ = writeln!(
            out,
            "precise shootdowns:     {} (cores flushed: {}, local no-IPI: {}, cores skipped: {}, \
             range-granular: {})",
            r.shootdowns,
            r.shootdown_cores_targeted,
            r.shootdown_cores_local,
            r.shootdown_cores_skipped,
            r.shootdowns_ranged
        );
    }

    if r.charges > 0 {
        heading(&mut out, "Cycle charges by blame cause");
        let total: u64 = r.charge_causes.values().sum();
        let _ = writeln!(out, "{:<16}  {:>14}  {:>6}", "cause", "cycles", "pct");
        rule(&mut out, &[16, 14, 6]);
        for cause in crate::ChargeCause::ALL {
            let n = r.charge_causes.get(cause.as_str()).copied().unwrap_or(0);
            if n == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<16}  {:>14}  {:>5.1}%",
                cause.as_str(),
                n,
                100.0 * n as f64 / total.max(1) as f64
            );
        }
        let _ = writeln!(
            out,
            "charges: {}; flows arrived/begun/completed: {}/{}/{}",
            r.charges, r.flow_arrivals, r.flow_begins, r.flow_ends
        );
    }

    if r.reclaims > 0 {
        heading(&mut out, "Memory reclaim");
        let _ = writeln!(out, "reclaim passes:         {}", r.reclaims);
        let _ = writeln!(out, "pages evicted:          {}", r.reclaim_pages);
        let _ = writeln!(out, "private PTEs torn:      {}", r.reclaim_pte_tears);
        let _ = writeln!(out, "shared-PTP slots torn:  {}", r.reclaim_shared_tears);
    }

    if r.batches > 0 {
        heading(&mut out, "Flush batching (mmu_gather)");
        let _ = writeln!(out, "batches applied:        {}", r.batches);
        let _ = writeln!(out, "ops gathered:           {}", r.batch_ops);
        let _ = writeln!(out, "ops coalesced away:     {}", r.batch_coalesced);
        let _ = writeln!(out, "escalated to asid:      {}", r.batch_escalated);
    }

    if !r.spans.is_empty() {
        heading(&mut out, "Duration spans");
        let _ = writeln!(
            out,
            "{:<28}  {:>6}  {:>12}  {:>10}  {:>10}  {:>10}  {:>10}  unit",
            "span", "count", "total", "p50", "p95", "p99", "max"
        );
        rule(&mut out, &[28, 6, 12, 10, 10, 10, 10]);
        for (name, agg) in &r.spans {
            let _ = writeln!(
                out,
                "{:<28}  {:>6}  {:>12}  {:>10}  {:>10}  {:>10}  {:>10}  {}",
                name,
                agg.count,
                agg.hist.sum,
                agg.hist.percentile(50.0),
                agg.hist.percentile(95.0),
                agg.hist.percentile(99.0),
                agg.hist.max,
                agg.unit.as_str()
            );
        }
    }

    if !r.gauges.is_empty() {
        heading(&mut out, "Gauges (sampled)");
        let _ = writeln!(
            out,
            "{:<28}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}",
            "gauge", "samples", "first", "min", "max", "last"
        );
        rule(&mut out, &[28, 7, 10, 10, 10, 10]);
        for (name, s) in &r.gauges {
            let _ = writeln!(
                out,
                "{:<28}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}",
                name, s.samples, s.first, s.min, s.max, s.last
            );
        }
    }

    let fp = &r.footprint;
    if fp.pids.len() >= 2 {
        heading(&mut out, "Shared footprint overlap (paper §3)");
        let _ = writeln!(
            out,
            "{:<8}  {:<8}  {:>8}  {:>8}  {:>8}  {:>8}",
            "pid a", "pid b", "pages a", "pages b", "shared", "overlap"
        );
        rule(&mut out, &[8, 8, 8, 8, 8, 8]);
        for i in 0..fp.pids.len() {
            for j in (i + 1)..fp.pids.len() {
                let _ = writeln!(
                    out,
                    "{:<8}  {:<8}  {:>8}  {:>8}  {:>8}  {:>7.1}%",
                    fp.pids[i],
                    fp.pids[j],
                    fp.pages[i],
                    fp.pages[j],
                    fp.shared[i][j],
                    fp.overlap_pct(i, j)
                );
            }
        }
    }

    out
}

/// Renders `repro timeline`: the event stream rebucketed into tick
/// windows (absolute counts plus per-kilotick rates — logical ticks
/// are the simulator's only clock) and the per-gauge series
/// summaries. The totals row is the reconciliation surface: it must
/// match the whole-stream rollup (and therefore `KernelStats`)
/// exactly.
pub fn render_timeline(r: &Rollup, t: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# repro timeline — {} events over ticks {}..{}, window {} ticks, {} samples",
        r.event_count, t.start, t.end, t.window, r.samples
    );
    if t.rows.is_empty() {
        let _ = writeln!(out, "\n(empty trace)");
        return out;
    }

    heading(&mut out, "Windowed event counts");
    let _ = writeln!(
        out,
        "{:>10}  {:>8}  {:>6}  {:>7}  {:>8}  {:>8}  {:>6}  {:>8}  {:>7}",
        "tick", "events", "forks", "faults", "unshares", "flushes", "ipis", "preempts", "samples"
    );
    rule(&mut out, &[10, 8, 6, 7, 8, 8, 6, 8, 7]);
    for row in &t.rows {
        let _ = writeln!(
            out,
            "{:>10}  {:>8}  {:>6}  {:>7}  {:>8}  {:>8}  {:>6}  {:>8}  {:>7}",
            row.start,
            row.events,
            row.forks,
            row.faults,
            row.unshares,
            row.flushes,
            row.flush_ipis,
            row.preemptions,
            row.samples
        );
    }
    rule(&mut out, &[10, 8, 6, 7, 8, 8, 6, 8, 7]);
    let totals = t.totals();
    let _ = writeln!(
        out,
        "{:>10}  {:>8}  {:>6}  {:>7}  {:>8}  {:>8}  {:>6}  {:>8}  {:>7}",
        "total",
        totals.events,
        totals.forks,
        totals.faults,
        totals.unshares,
        totals.flushes,
        totals.flush_ipis,
        totals.preemptions,
        totals.samples
    );

    if totals.reclaimed > 0 {
        heading(&mut out, "Windowed reclaim (pages evicted)");
        let _ = writeln!(out, "{:>10}  {:>9}", "tick", "reclaimed");
        rule(&mut out, &[10, 9]);
        for row in &t.rows {
            let _ = writeln!(out, "{:>10}  {:>9}", row.start, row.reclaimed);
        }
        rule(&mut out, &[10, 9]);
        let _ = writeln!(out, "{:>10}  {:>9}", "total", totals.reclaimed);
    }

    heading(&mut out, "Windowed rates (per 1k ticks)");
    let _ = writeln!(
        out,
        "{:>10}  {:>10}  {:>10}  {:>10}",
        "tick", "forks/kt", "faults/kt", "ipis/kt"
    );
    rule(&mut out, &[10, 10, 10, 10]);
    let per_kt = |n: u64| n as f64 * 1000.0 / t.window as f64;
    for row in &t.rows {
        let _ = writeln!(
            out,
            "{:>10}  {:>10.1}  {:>10.1}  {:>10.1}",
            row.start,
            per_kt(row.forks),
            per_kt(row.faults),
            per_kt(row.flush_ipis)
        );
    }

    if !t.gauges.is_empty() {
        heading(&mut out, "Gauge series (high water = sampled max)");
        let _ = writeln!(
            out,
            "{:<28}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}",
            "gauge", "samples", "first", "min", "high-water", "last"
        );
        rule(&mut out, &[28, 7, 10, 10, 10, 10]);
        for (name, s) in &t.gauges {
            let _ = writeln!(
                out,
                "{:<28}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}",
                name, s.samples, s.first, s.min, s.max, s.last
            );
        }
    }
    out
}

fn json_counter_map<K: std::fmt::Display, V: std::fmt::Display>(
    out: &mut String,
    name: &str,
    entries: impl Iterator<Item = (K, V)>,
    quote_keys_raw: bool,
) {
    let _ = write!(out, "  \"{name}\": {{");
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push_str(", ");
        }
        first = false;
        if quote_keys_raw {
            let _ = write!(out, "\"{k}\": {v}");
        } else {
            out.push('"');
            escape_into(out, &k.to_string());
            let _ = write!(out, "\": {v}");
        }
    }
    out.push_str("},\n");
}

fn hist_summary_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0)
    )
}

/// Renders `repro tails` for one experiment slice: the request-latency
/// distribution per cause, then the `top` slowest requests with their
/// per-cause blame breakdowns. States up front whether attribution on
/// this trace is exact (every completed flow's charges summed to its
/// wall) or partial (lossy ring or foreign charges).
pub fn render_tails(label: &str, table: &crate::analyze::FlowTable, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# repro tails — {label}: {} flows completed, {} charge events",
        table.completed(),
        table.charges
    );
    match table.reconcile() {
        Ok(n) => {
            let _ = writeln!(
                out,
                "attribution exact: {n} flows reconcile (charges == wall)"
            );
        }
        Err(e) => {
            let first = e.lines().next().unwrap_or("unreconciled");
            let _ = writeln!(out, "attribution partial: {first}");
        }
    }
    let Some((p50, p95, p99)) = table.percentiles() else {
        let _ = writeln!(out, "\n(no completed flows in this slice)");
        return out;
    };
    let _ = writeln!(out, "request wall p50/p95/p99: {p50}/{p95}/{p99} cycles");

    heading(&mut out, "Latency percentiles by blame cause");
    let _ = writeln!(
        out,
        "{:<16}  {:>12}  {:>12}  {:>12}  {:>14}",
        "cause", "p50", "p95", "p99", "total cycles"
    );
    rule(&mut out, &[16, 12, 12, 12, 14]);
    for cause in crate::ChargeCause::ALL {
        let Some((c50, c95, c99)) = table.cause_percentiles(cause) else {
            continue;
        };
        let total = table.total(cause);
        if total == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<16}  {:>12}  {:>12}  {:>12}  {:>14}",
            cause.as_str(),
            c50,
            c95,
            c99,
            total
        );
    }

    heading(
        &mut out,
        &format!("Top {top} slowest requests, blame attributed"),
    );
    for f in table.slowest(top) {
        let wall = f.wall.unwrap_or(0);
        let mut causes: Vec<(crate::ChargeCause, u64)> = crate::ChargeCause::ALL
            .into_iter()
            .map(|c| (c, f.cycles(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.as_str().cmp(b.0.as_str())));
        let breakdown = causes
            .iter()
            .map(|&(c, n)| {
                format!(
                    "{} {} ({:.1}%)",
                    c.as_str(),
                    n,
                    100.0 * n as f64 / wall.max(1) as f64
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "flow {:>5}  pid {:>4}  wall {:>10}  {breakdown}",
            f.flow, f.pid, wall
        );
    }
    out
}

/// Machine-readable rollup.
pub fn render_json(r: &Rollup) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"sat-obs/report-v1\",");
    let _ = writeln!(out, "  \"event_count\": {},", r.event_count);
    let _ = writeln!(out, "  \"dropped_events\": {},", r.dropped);
    json_counter_map(&mut out, "subsystems", r.subsystems.iter(), true);
    json_counter_map(&mut out, "pids", r.pids.iter(), true);

    out.push_str("  \"unshare_causes\": {");
    for (i, (cause, n, pct)) in r.fig6_breakdown().into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{cause}\": {{\"count\": {n}, \"pct\": {pct:.3}}}");
    }
    out.push_str("},\n");

    for (name, table) in [
        ("main_tlb_flushes", &r.main_flush_reasons),
        ("micro_tlb_flushes", &r.micro_flush_reasons),
    ] {
        let _ = write!(out, "  \"{name}\": {{");
        for (i, (reason, agg)) in table.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{reason}\": {{\"flushes\": {}, \"entries\": {}}}",
                agg.flushes, agg.entries
            );
        }
        out.push_str("},\n");
    }

    json_counter_map(&mut out, "fault_classes", r.fault_classes.iter(), true);
    json_counter_map(&mut out, "region_ops", r.region_ops.iter(), true);
    json_counter_map(&mut out, "cycle_charges", r.charge_causes.iter(), true);

    out.push_str("  \"spans\": {");
    for (i, (name, agg)) in r.spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_into(&mut out, name);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"unit\": \"{}\", \"values\": {}}}",
            agg.count,
            agg.unit.as_str(),
            hist_summary_json(&agg.hist)
        );
    }
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    for (i, (name, s)) in r.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_into(&mut out, name);
        let _ = write!(
            out,
            "\": {{\"samples\": {}, \"first\": {}, \"last\": {}, \"min\": {}, \"max\": {}}}",
            s.samples, s.first, s.last, s.min, s.max
        );
    }
    out.push_str("},\n");

    let fp = &r.footprint;
    out.push_str("  \"footprint\": {\"pids\": [");
    for (i, pid) in fp.pids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{pid}");
    }
    out.push_str("], \"pages\": [");
    for (i, n) in fp.pages.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}");
    }
    out.push_str("], \"shared\": [");
    for (i, row) in fp.shared.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, n) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{n}");
        }
        out.push(']');
    }
    out.push_str("]},\n");

    let _ = writeln!(
        out,
        "  \"totals\": {{\"forks\": {}, \"shared_forks\": {}, \"exits\": {}, \
         \"domain_faults\": {}, \"unshare_ptes_copied\": {}, \"faults_file_backed\": {}, \
         \"asid_rollovers\": {}, \"shootdowns\": {}, \"shootdown_cores_targeted\": {}, \
         \"shootdown_cores_local\": {}, \"shootdown_cores_skipped\": {}, \
         \"shootdowns_ranged\": {}, \"preemptions\": {}, \"flush_batches\": {}, \
         \"flush_batch_ops\": {}, \"flush_batch_coalesced\": {}, \"flush_batch_escalated\": {}, \
         \"cycle_charges\": {}, \"flow_arrivals\": {}, \"flow_begins\": {}, \"flow_ends\": {}, \
         \"reclaims\": {}, \"reclaim_pages\": {}, \"reclaim_pte_tears\": {}, \
         \"reclaim_shared_tears\": {}}}",
        r.forks,
        r.shared_forks,
        r.exits,
        r.domain_faults,
        r.unshare_ptes_copied,
        r.faults_file_backed,
        r.asid_rollovers,
        r.shootdowns,
        r.shootdown_cores_targeted,
        r.shootdown_cores_local,
        r.shootdown_cores_skipped,
        r.shootdowns_ranged,
        r.preemptions,
        r.batches,
        r.batch_ops,
        r.batch_coalesced,
        r.batch_escalated,
        r.charges,
        r.flow_arrivals,
        r.flow_begins,
        r.flow_ends,
        r.reclaims,
        r.reclaim_pages,
        r.reclaim_pte_tears,
        r.reclaim_shared_tears
    );
    out.push_str("}\n");
    out
}

/// Folded-stack output (`stack;frames value`), one line per distinct
/// span path — pipe into flamegraph tooling.
pub fn render_folded(r: &Rollup) -> String {
    let mut out = String::new();
    for (path, value) in &r.folded {
        let _ = writeln!(out, "{path} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Payload, SpanUnit, Subsystem, UnshareCause};
    use crate::json::Json;

    fn sample_rollup() -> Rollup {
        let events = vec![
            Event {
                tick: 0,
                pid: 1,
                asid: 1,
                subsystem: Subsystem::Share,
                payload: Payload::PtpUnshare {
                    cause: UnshareCause::WriteFault,
                    ptes_copied: 3,
                    last_sharer: false,
                    va: 0x1000,
                },
            },
            Event {
                tick: 1,
                pid: 1,
                asid: 1,
                subsystem: Subsystem::Android,
                payload: Payload::SpanBegin {
                    name: "launch.exec".to_string(),
                },
            },
            Event {
                tick: 2,
                pid: 1,
                asid: 1,
                subsystem: Subsystem::Android,
                payload: Payload::SpanEnd {
                    name: "launch.exec".to_string(),
                    value: 750,
                    unit: SpanUnit::Cycles,
                },
            },
        ];
        Rollup::from_events(&events, 2)
    }

    #[test]
    fn text_report_contains_fig6_and_span_tables() {
        let text = render_text(&sample_rollup());
        assert!(text.contains("Unshare causes (Figure 6)"));
        assert!(text.contains("write_fault"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("android.launch.exec"));
        assert!(text.contains("2 dropped"));
    }

    #[test]
    fn json_report_parses_and_carries_percentiles() {
        let doc = render_json(&sample_rollup());
        let v = Json::parse(&doc).expect("report JSON parses");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("sat-obs/report-v1")
        );
        let causes = v.get("unshare_causes").unwrap();
        assert_eq!(
            causes
                .get("write_fault")
                .and_then(|c| c.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let span = v
            .get("spans")
            .and_then(|s| s.get("android.launch.exec"))
            .unwrap();
        let values = span.get("values").unwrap();
        assert_eq!(values.get("p50").and_then(Json::as_u64), Some(750));
        assert_eq!(values.get("max").and_then(Json::as_u64), Some(750));
    }

    #[test]
    fn folded_output_is_line_per_stack() {
        let folded = render_folded(&sample_rollup());
        assert_eq!(folded.trim(), "pid1;android;launch.exec 750");
    }
}
