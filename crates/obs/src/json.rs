//! A minimal JSON value + recursive-descent parser.
//!
//! The workspace has no serde (no crates.io access), and the exporters
//! hand-roll their output; this parser closes the loop so round-trip
//! tests and `repro check` can validate artifacts in Rust instead of
//! shelling out to python.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are `f64`; every integer the exporters
/// emit (ticks, counters, cycle sums) stays well inside the 2^53
/// exactly-representable range.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset into the document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: only if a second \uXXXX
                            // immediately follows a high surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the maximal unescaped run in one slice.
                    // The delimiters ('"', '\\') are single-byte
                    // ASCII, never the interior of a multi-byte
                    // scalar, so the run's boundaries land on char
                    // boundaries of the (already valid UTF-8) input.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes). Shared by every exporter in the crate.
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{263A}";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn large_document_parses_in_linear_time() {
        // Regression lock: `string()` once re-validated the entire
        // remaining document per character (O(n^2)) — a 10MB Chrome
        // trace took minutes. A few MB of string-heavy JSON must
        // parse in well under test timeout; quadratic cannot.
        let item = r#"{"name": "event.name.padding.padding", "cat": "tlb", "args": {"reason": "context_switch"}}"#;
        let doc = format!(
            "[{}]",
            std::iter::repeat_n(item, 40_000)
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(doc.len() > 3_000_000);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 40_000);
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }
}
