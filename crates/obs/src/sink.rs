//! Event sinks: where emitted events go.
//!
//! The recorder API in [`crate`] dispatches through `dyn EventSink`,
//! but only after a thread-local boolean says a sink is installed —
//! the disabled path is one predictable branch and touches no heap.

use std::collections::VecDeque;

use crate::event::{Event, Payload, Subsystem};
use crate::metrics::MetricsRegistry;

/// Everything harvested from a sink: the (possibly truncated) event
/// ring, how many events the ring dropped, and the exact metrics.
#[derive(Default, Clone, Debug)]
pub struct Recording {
    pub events: Vec<Event>,
    /// Events evicted from the ring to make room. Reported in both
    /// exporters — overflow is never silent.
    pub dropped: u64,
    pub metrics: MetricsRegistry,
}

/// A destination for events. Implementations own their storage; the
/// thread-local recorder owns the box.
pub trait EventSink {
    /// Whether [`crate::emit`] should bother constructing payloads.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event (counters first, then the ring).
    fn record(&mut self, pid: u32, asid: u8, subsystem: Subsystem, payload: Payload);

    /// Records a histogram sample.
    fn record_value(&mut self, name: &str, value: u64);

    /// Publishes a gauge's current value (no-op for metrics-less
    /// sinks).
    fn gauge_set(&mut self, _key: &str, _value: u64) {}

    /// Moves a gauge up by `n` (saturating).
    fn gauge_add(&mut self, _key: &str, _n: u64) {}

    /// Moves a gauge down by `n` (saturating at zero).
    fn gauge_sub(&mut self, _key: &str, _n: u64) {}

    /// Snapshots every registered gauge into the event stream as one
    /// [`Payload::Sample`] each (a Chrome counter-track point). The
    /// sink owns both the registry and the ring, so this is the one
    /// place a consistent multi-gauge snapshot can be cut.
    fn sample_gauges(&mut self) {}

    /// Starts a fresh per-experiment gauge window (see
    /// [`MetricsRegistry::begin_gauge_window`]).
    fn begin_gauge_window(&mut self) {}

    /// Read-only view of the live metrics, if the sink keeps any.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Ring capacity, if bounded (workers mirror the parent's).
    fn capacity(&self) -> Option<usize> {
        None
    }

    /// Merges a recording harvested on another thread: events are
    /// re-stamped onto this sink's tick sequence in order, metrics and
    /// drop counts accumulate.
    fn absorb(&mut self, rec: Recording);

    /// Consumes the sink and returns everything it captured.
    fn finish(self: Box<Self>) -> Recording;
}

/// Discards everything. Installing it is equivalent to (and reported
/// as) tracing being disabled.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl EventSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _pid: u32, _asid: u8, _subsystem: Subsystem, _payload: Payload) {}

    fn record_value(&mut self, _name: &str, _value: u64) {}

    fn absorb(&mut self, _rec: Recording) {}

    fn finish(self: Box<Self>) -> Recording {
        Recording::default()
    }
}

/// Fixed-capacity ring of events plus an exact [`MetricsRegistry`].
/// When full, the oldest event is dropped and counted.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    /// Monotonic per-recorder tick; stamps every event.
    seq: u64,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 12)),
            seq: 0,
            dropped: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

impl EventSink for RingSink {
    fn record(&mut self, pid: u32, asid: u8, subsystem: Subsystem, payload: Payload) {
        self.metrics.apply_event(subsystem, &payload);
        let tick = self.seq;
        self.seq += 1;
        self.push(Event {
            tick,
            pid,
            asid,
            subsystem,
            payload,
        });
    }

    fn record_value(&mut self, name: &str, value: u64) {
        self.metrics.record(name, value);
    }

    fn gauge_set(&mut self, key: &str, value: u64) {
        self.metrics.gauge_set(key, value);
    }

    fn gauge_add(&mut self, key: &str, n: u64) {
        self.metrics.gauge_add(key, n);
    }

    fn gauge_sub(&mut self, key: &str, n: u64) {
        self.metrics.gauge_sub(key, n);
    }

    fn sample_gauges(&mut self) {
        // Samples carry (pid 0, asid 0): gauges are machine state, not
        // per-process. Recording a Sample re-applies it to the
        // registry, which is idempotent (same value written back).
        let snapshot: Vec<(String, u64)> = self
            .metrics
            .gauges()
            .map(|(k, g)| (k.to_string(), g.value))
            .collect();
        for (gauge, value) in snapshot {
            let subsystem = Subsystem::for_gauge(&gauge);
            self.record(0, 0, subsystem, Payload::Sample { gauge, value });
        }
    }

    fn begin_gauge_window(&mut self) {
        self.metrics.begin_gauge_window();
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn absorb(&mut self, rec: Recording) {
        // The worker already applied its events to its own metrics;
        // merge those wholesale rather than re-deriving.
        self.metrics.merge(&rec.metrics);
        self.dropped += rec.dropped;
        for mut event in rec.events {
            event.tick = self.seq;
            self.seq += 1;
            self.push(event);
        }
    }

    fn finish(self: Box<Self>) -> Recording {
        Recording {
            events: self.events.into_iter().collect(),
            dropped: self.dropped,
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlushReason, FlushScope, UnshareCause};

    fn flush_payload(entries: u64) -> Payload {
        Payload::TlbFlush {
            scope: FlushScope::Asid,
            reason: FlushReason::Fork,
            entries,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut sink = RingSink::new(4);
        for i in 0..10u64 {
            sink.record(1, 1, Subsystem::Tlb, flush_payload(i));
        }
        let rec = Box::new(sink).finish();
        assert_eq!(rec.events.len(), 4);
        assert_eq!(rec.dropped, 6);
        // The survivors are the newest four, ticks intact.
        let ticks: Vec<u64> = rec.events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        // Metrics saw all ten events despite the drops.
        assert_eq!(rec.metrics.counter("tlb.flush.scope.asid"), 10);
        assert_eq!(rec.metrics.counter("tlb.flush.main.entries"), 45);
        assert_eq!(rec.metrics.counter("tlb.flush.reason.fork.entries"), 45);
    }

    #[test]
    fn sample_gauges_snapshots_every_gauge_into_the_ring() {
        let mut sink = RingSink::new(16);
        sink.gauge_set("phys.frames.free", 900);
        sink.gauge_set("sched.runq.c0", 3);
        sink.sample_gauges();
        sink.gauge_sub("phys.frames.free", 100);
        sink.sample_gauges();
        let rec = Box::new(sink).finish();
        let samples: Vec<(&str, u64)> = rec
            .events
            .iter()
            .filter_map(|e| match &e.payload {
                Payload::Sample { gauge, value } => Some((gauge.as_str(), *value)),
                _ => None,
            })
            .collect();
        assert_eq!(
            samples,
            vec![
                ("phys.frames.free", 900),
                ("sched.runq.c0", 3),
                ("phys.frames.free", 800),
                ("sched.runq.c0", 3),
            ]
        );
        // Subsystem attribution follows the key taxonomy.
        assert_eq!(rec.events[0].subsystem, Subsystem::Kernel);
        assert_eq!(rec.events[1].subsystem, Subsystem::Sched);
        // All samples on the machine-wide (pid 0, asid 0) track.
        assert!(rec.events.iter().all(|e| e.pid == 0 && e.asid == 0));
        // Re-applying each Sample at record time left the gauges exact.
        assert_eq!(rec.metrics.gauge("phys.frames.free").unwrap().value, 800);
        assert_eq!(
            rec.metrics.gauge("phys.frames.free").unwrap().high_water,
            900
        );
    }

    /// The required absorb-correctness property: when worker-thread
    /// recordings merge back into the parent sink, every gauge's
    /// high-water mark is the true maximum over all workers — a
    /// worker's transient peak survives even if its final value was
    /// lower and even if another worker never touched the gauge.
    #[test]
    fn absorb_keeps_gauge_high_water_across_workers() {
        let run_worker = |peak: u64, last: u64| -> Recording {
            let mut w = RingSink::new(16);
            w.gauge_set("phys.slab.live", peak);
            w.sample_gauges();
            w.gauge_set("phys.slab.live", last);
            w.sample_gauges();
            Box::new(w).finish()
        };
        let mut parent = RingSink::new(64);
        parent.gauge_set("phys.slab.live", 5);
        // Submission order is deterministic; the peak (700, from the
        // second worker) must survive both absorptions.
        parent.absorb(run_worker(300, 120));
        parent.absorb(run_worker(700, 80));
        let rec = Box::new(parent).finish();
        let g = rec.metrics.gauge("phys.slab.live").unwrap();
        assert_eq!(g.high_water, 700);
        assert_eq!(g.value, 120);
        // Absorbed sample events were re-stamped onto one strictly
        // increasing tick sequence.
        let ticks: Vec<u64> = rec.events.iter().map(|e| e.tick).collect();
        assert!(ticks.windows(2).all(|w| w[1] > w[0]), "{ticks:?}");
    }

    #[test]
    fn absorb_restamps_in_order_and_merges() {
        let mut worker = RingSink::new(16);
        worker.record(
            7,
            3,
            Subsystem::Share,
            Payload::PtpUnshare {
                cause: UnshareCause::WriteFault,
                ptes_copied: 5,
                last_sharer: false,
                va: 0x1000,
            },
        );
        let worker_rec = Box::new(worker).finish();

        let mut parent = RingSink::new(16);
        parent.record(1, 1, Subsystem::Tlb, flush_payload(2));
        parent.absorb(worker_rec);
        let rec = Box::new(parent).finish();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].tick, 0);
        assert_eq!(rec.events[1].tick, 1);
        assert_eq!(rec.events[1].pid, 7);
        assert_eq!(rec.metrics.counter("share.unshare.write_fault"), 1);
        assert_eq!(rec.metrics.counter("tlb.flush.main"), 1);
    }
}
