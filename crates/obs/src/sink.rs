//! Event sinks: where emitted events go.
//!
//! The recorder API in [`crate`] dispatches through `dyn EventSink`,
//! but only after a thread-local boolean says a sink is installed —
//! the disabled path is one predictable branch and touches no heap.

use std::collections::VecDeque;

use crate::event::{Event, Payload, Subsystem};
use crate::metrics::MetricsRegistry;

/// Everything harvested from a sink: the (possibly truncated) event
/// ring, how many events the ring dropped, and the exact metrics.
#[derive(Default, Clone, Debug)]
pub struct Recording {
    pub events: Vec<Event>,
    /// Events evicted from the ring to make room. Reported in both
    /// exporters — overflow is never silent.
    pub dropped: u64,
    pub metrics: MetricsRegistry,
}

/// A destination for events. Implementations own their storage; the
/// thread-local recorder owns the box.
pub trait EventSink {
    /// Whether [`crate::emit`] should bother constructing payloads.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event (counters first, then the ring).
    fn record(&mut self, pid: u32, asid: u8, subsystem: Subsystem, payload: Payload);

    /// Records a histogram sample.
    fn record_value(&mut self, name: &str, value: u64);

    /// Read-only view of the live metrics, if the sink keeps any.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Ring capacity, if bounded (workers mirror the parent's).
    fn capacity(&self) -> Option<usize> {
        None
    }

    /// Merges a recording harvested on another thread: events are
    /// re-stamped onto this sink's tick sequence in order, metrics and
    /// drop counts accumulate.
    fn absorb(&mut self, rec: Recording);

    /// Consumes the sink and returns everything it captured.
    fn finish(self: Box<Self>) -> Recording;
}

/// Discards everything. Installing it is equivalent to (and reported
/// as) tracing being disabled.
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl EventSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _pid: u32, _asid: u8, _subsystem: Subsystem, _payload: Payload) {}

    fn record_value(&mut self, _name: &str, _value: u64) {}

    fn absorb(&mut self, _rec: Recording) {}

    fn finish(self: Box<Self>) -> Recording {
        Recording::default()
    }
}

/// Fixed-capacity ring of events plus an exact [`MetricsRegistry`].
/// When full, the oldest event is dropped and counted.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<Event>,
    /// Monotonic per-recorder tick; stamps every event.
    seq: u64,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 12)),
            seq: 0,
            dropped: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

impl EventSink for RingSink {
    fn record(&mut self, pid: u32, asid: u8, subsystem: Subsystem, payload: Payload) {
        self.metrics.apply_event(subsystem, &payload);
        let tick = self.seq;
        self.seq += 1;
        self.push(Event {
            tick,
            pid,
            asid,
            subsystem,
            payload,
        });
    }

    fn record_value(&mut self, name: &str, value: u64) {
        self.metrics.record(name, value);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn absorb(&mut self, rec: Recording) {
        // The worker already applied its events to its own metrics;
        // merge those wholesale rather than re-deriving.
        self.metrics.merge(&rec.metrics);
        self.dropped += rec.dropped;
        for mut event in rec.events {
            event.tick = self.seq;
            self.seq += 1;
            self.push(event);
        }
    }

    fn finish(self: Box<Self>) -> Recording {
        Recording {
            events: self.events.into_iter().collect(),
            dropped: self.dropped,
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlushReason, FlushScope, UnshareCause};

    fn flush_payload(entries: u64) -> Payload {
        Payload::TlbFlush {
            scope: FlushScope::Asid,
            reason: FlushReason::Fork,
            entries,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut sink = RingSink::new(4);
        for i in 0..10u64 {
            sink.record(1, 1, Subsystem::Tlb, flush_payload(i));
        }
        let rec = Box::new(sink).finish();
        assert_eq!(rec.events.len(), 4);
        assert_eq!(rec.dropped, 6);
        // The survivors are the newest four, ticks intact.
        let ticks: Vec<u64> = rec.events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        // Metrics saw all ten events despite the drops.
        assert_eq!(rec.metrics.counter("tlb.flush.scope.asid"), 10);
        assert_eq!(rec.metrics.counter("tlb.flush.main.entries"), 45);
        assert_eq!(rec.metrics.counter("tlb.flush.reason.fork.entries"), 45);
    }

    #[test]
    fn absorb_restamps_in_order_and_merges() {
        let mut worker = RingSink::new(16);
        worker.record(
            7,
            3,
            Subsystem::Share,
            Payload::PtpUnshare {
                cause: UnshareCause::WriteFault,
                ptes_copied: 5,
                last_sharer: false,
                va: 0x1000,
            },
        );
        let worker_rec = Box::new(worker).finish();

        let mut parent = RingSink::new(16);
        parent.record(1, 1, Subsystem::Tlb, flush_payload(2));
        parent.absorb(worker_rec);
        let rec = Box::new(parent).finish();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].tick, 0);
        assert_eq!(rec.events[1].tick, 1);
        assert_eq!(rec.events[1].pid, 7);
        assert_eq!(rec.metrics.counter("share.unshare.write_fault"), 1);
        assert_eq!(rec.metrics.counter("tlb.flush.main"), 1);
    }
}
