//! Counters and log2-bucket histograms.
//!
//! The registry is updated on every recorded event *before* the event
//! enters the ring, so counters stay exact even when the ring wraps and
//! drops old events — the conservation tests (events vs `KernelStats` /
//! `TlbStats`) and the `BENCH_repro.json` snapshot both read counters,
//! never the (lossy) ring.

use std::collections::BTreeMap;

use crate::event::{Payload, Subsystem};

/// Number of log2 buckets; bucket `i` counts values `v` with
/// `floor(log2(max(v, 1))) == i` (so bucket 0 holds both 0 and 1).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucket histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index for a sample.
    pub fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    pub fn record(&mut self, value: u64) {
        self.count += 1;
        // Saturate: a clamped sum (and therefore mean) beats a panic
        // when samples approach u64::MAX.
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The largest value bucket `i` can hold.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Estimates the `pct`-th percentile (0–100) from the log2
    /// buckets: the upper bound of the bucket holding the rank-th
    /// sample, clamped to the exact observed `[min, max]`. Within a
    /// bucket the estimate errs high by at most 2×; the clamp makes
    /// single-sample, all-equal, and tail (p100 = max) cases exact.
    /// Empty histograms report 0.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

/// An instantaneous level (free frames, run-queue depth, TLB
/// occupancy) with its tracked peaks. Unlike a counter, a gauge moves
/// both ways; unlike a histogram, it is a *state*, not a population of
/// samples — so the registry keeps the current value plus two
/// high-water marks: the run-wide peak and the peak since the last
/// [`MetricsRegistry::begin_gauge_window`] (per-experiment gating).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Gauge {
    /// Most recently published value.
    pub value: u64,
    /// Run-wide peak of every published value.
    pub high_water: u64,
    /// Peak since the last window reset (the snapshot's per-experiment
    /// `gauges` section reads this).
    pub window_high_water: u64,
}

impl Gauge {
    fn publish(&mut self, value: u64) {
        self.value = value;
        self.high_water = self.high_water.max(value);
        self.window_high_water = self.window_high_water.max(value);
    }
}

/// Named counters plus named histograms and gauges. Key taxonomy is
/// dotted and stable (documented in DESIGN.md §7 and §12):
/// `kernel.*`, `share.unshare.*`, `vm.fault.*`, `tlb.flush.*`,
/// `android.*`, `bench.*`, `sim.*`, and the gauge set rooted at
/// `phys.*` / `registry.*` / `kernel.*` / `tlb.*` / `sim.*` /
/// `sched.*`.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, Gauge>,
}

impl MetricsRegistry {
    /// Adds `n` to a counter (creating it at zero first).
    pub fn inc(&mut self, key: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Current counter value (0 if never bumped).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn counters_map(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Records a histogram sample.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Publishes a gauge's current value (creating it at zero first).
    pub fn gauge_set(&mut self, key: &str, value: u64) {
        if let Some(g) = self.gauges.get_mut(key) {
            g.publish(value);
        } else {
            let mut g = Gauge::default();
            g.publish(value);
            self.gauges.insert(key.to_string(), g);
        }
    }

    /// Moves a gauge up by `n` (saturating).
    pub fn gauge_add(&mut self, key: &str, n: u64) {
        let current = self.gauges.get(key).map_or(0, |g| g.value);
        self.gauge_set(key, current.saturating_add(n));
    }

    /// Moves a gauge down by `n` (saturating at zero).
    pub fn gauge_sub(&mut self, key: &str, n: u64) {
        let current = self.gauges.get(key).map_or(0, |g| g.value);
        self.gauge_set(key, current.saturating_sub(n));
    }

    /// The gauge registered under `key`, if any.
    pub fn gauge(&self, key: &str) -> Option<Gauge> {
        self.gauges.get(key).copied()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, Gauge)> {
        self.gauges.iter().map(|(k, &g)| (k.as_str(), g))
    }

    /// Starts a fresh per-experiment window: every gauge's window
    /// high-water restarts from its *current* value (the level carried
    /// into the window is part of the window's peak).
    pub fn begin_gauge_window(&mut self) {
        for g in self.gauges.values_mut() {
            g.window_high_water = g.value;
        }
    }

    /// The per-gauge peaks since the last window reset. Gauges that
    /// never rose above zero are omitted (mirrors the per-experiment
    /// event-delta convention: absent means untouched).
    pub fn window_gauge_high_waters(&self) -> BTreeMap<String, u64> {
        self.gauges
            .iter()
            .filter(|(_, g)| g.window_high_water > 0)
            .map(|(k, g)| (k.clone(), g.window_high_water))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.gauges.is_empty()
    }

    /// Derives the counter/histogram updates an event implies. Keys
    /// are `&'static str` on the hot flush/fault paths — no per-event
    /// allocation there. Called by the sink before ring admission
    /// (exact under overflow) and by the trace analyzer when replaying
    /// a parsed stream.
    pub fn apply_event(&mut self, subsystem: Subsystem, payload: &Payload) {
        match payload {
            Payload::Fork {
                ptps_shared,
                ptes_copied,
                shared,
                ..
            } => {
                self.inc("kernel.fork", 1);
                if *shared {
                    self.inc("kernel.fork.shared", 1);
                }
                self.inc("kernel.fork.ptps_shared", *ptps_shared);
                self.inc("kernel.fork.ptes_copied", *ptes_copied);
            }
            Payload::Exit => self.inc("kernel.exit", 1),
            Payload::RegionOp { op, unshared, .. } => {
                self.inc(op.counter_key(), 1);
                self.inc("kernel.region_op.unshared", *unshared);
            }
            Payload::DomainFault { .. } => self.inc("kernel.domain_fault", 1),
            Payload::PtpShare {
                ptps,
                write_protect_ops,
            } => {
                self.inc("share.fork_share", 1);
                self.inc("share.fork_share.ptps", *ptps);
                self.inc("share.fork_share.write_protect_ops", *write_protect_ops);
            }
            Payload::PtpUnshare {
                cause,
                ptes_copied,
                last_sharer,
                ..
            } => {
                self.inc("share.unshare", 1);
                self.inc(cause.counter_key(), 1);
                self.inc("share.unshare.ptes_copied", *ptes_copied);
                if *last_sharer {
                    self.inc("share.unshare.last_sharer", 1);
                }
            }
            Payload::PageFault {
                class, file_backed, ..
            } => {
                self.inc("vm.fault", 1);
                self.inc(class.counter_key(), 1);
                if *file_backed {
                    self.inc("vm.fault.file_backed", 1);
                }
            }
            Payload::TlbFlush {
                scope,
                reason,
                entries,
            } => {
                self.inc(scope.counter_key(), 1);
                self.inc(reason.counter_key(), 1);
                if scope.is_main() {
                    self.inc("tlb.flush.main", 1);
                    self.inc("tlb.flush.main.entries", *entries);
                    self.inc(reason.entries_key(), *entries);
                    if matches!(scope, crate::FlushScope::All) {
                        self.inc("tlb.flush.main.full", 1);
                    }
                } else {
                    self.inc("tlb.flush.micro", 1);
                    self.inc("tlb.flush.micro.entries", *entries);
                }
            }
            Payload::AsidRollover { .. } => self.inc("kernel.asid.rollover", 1),
            Payload::TlbShootdown {
                scope,
                cores_targeted,
                cores_local,
                cores_skipped,
                ..
            } => {
                self.inc("tlb.shootdown", 1);
                self.inc("tlb.shootdown.cores", u64::from(*cores_targeted));
                self.inc("tlb.shootdown.local", u64::from(*cores_local));
                self.inc("tlb.shootdown.skipped", u64::from(*cores_skipped));
                if matches!(scope, crate::FlushScope::Range | crate::FlushScope::Page) {
                    self.inc("tlb.shootdown.scope.range", 1);
                } else {
                    self.inc("tlb.shootdown.scope.asid", 1);
                }
            }
            Payload::FlushBatch {
                ops,
                coalesced,
                escalated,
            } => {
                self.inc("tlb.batch", 1);
                self.inc("tlb.batch.ops", *ops);
                self.inc("tlb.batch.coalesced", *coalesced);
                self.inc("tlb.batch.escalated", *escalated);
            }
            Payload::Preempt { .. } => self.inc("sched.preempt", 1),
            // Replaying a parsed trace reconstructs the gauges exactly:
            // the live side publishes at sample points only, so setting
            // the gauge per Sample event reproduces the same values and
            // high-water marks. (At live-record time this re-set is
            // idempotent — the sampler reads the value it writes back.)
            Payload::Sample { gauge, value } => self.gauge_set(gauge, *value),
            // Only the closing half of a span moves metrics; the
            // opening half exists for trace structure.
            Payload::SpanBegin { .. } => {}
            Payload::SpanEnd { name, value, .. } => match subsystem {
                Subsystem::Android => {
                    self.inc("android.phase", 1);
                    self.record(&format!("android.phase.{name}.cycles"), *value);
                }
                Subsystem::Bench => {
                    self.inc("bench.cell", 1);
                    self.record("bench.cell.us", *value);
                }
                other => {
                    self.inc("span.end", 1);
                    self.record(&format!("span.{}.{name}", other.as_str()), *value);
                }
            },
            Payload::CycleCharge {
                flow,
                cause,
                cycles,
            } => {
                self.inc("flow.charges", 1);
                self.inc(cause.counter_key(), *cycles);
                if *flow == 0 {
                    self.inc("flow.cycles.unattributed", *cycles);
                }
            }
            Payload::FlowArrive { .. } => self.inc("flow.arrive", 1),
            Payload::FlowBegin { .. } => self.inc("flow.begin", 1),
            Payload::FlowEnd { wall, .. } => {
                self.inc("flow.end", 1);
                self.record("flow.wall_cycles", *wall);
            }
            Payload::Reclaim {
                pages,
                pte_tears,
                shared_tears,
            } => {
                self.inc("kernel.reclaim", 1);
                self.inc("kernel.reclaim.pages", *pages);
                self.inc("kernel.reclaim.pte_tears", *pte_tears);
                self.inc("kernel.reclaim.shared_tears", *shared_tears);
            }
            Payload::Promote { pages, filled, .. } => {
                self.inc("mmu.promote", 1);
                self.inc("mmu.promote.pages", *pages);
                self.inc("mmu.promote.filled", *filled);
            }
            Payload::Demote { pages, cause, .. } => {
                self.inc("mmu.demote", 1);
                self.inc("mmu.demote.pages", *pages);
                self.inc(cause.counter_key(), 1);
            }
        }
    }

    /// Accumulates another registry (used when the bench pool merges
    /// worker-thread recordings back into the submitting thread).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.inc(k, v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
        // Gauges merge by max: worker cells are independent simulated
        // machines, so "current value" has no single meaning across
        // them — the peak does. All three fields take the maximum,
        // which keeps high-water exact under parallel absorption.
        for (k, g) in &other.gauges {
            let mine = self.gauges.entry(k.clone()).or_default();
            mine.value = mine.value.max(g.value);
            mine.high_water = mine.high_water.max(g.high_water);
            mine.window_high_water = mine.window_high_water.max(g.window_high_water);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut a = Histogram::default();
        for v in [1u64, 2, 4, 100] {
            a.record(v);
        }
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 107);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
        let mut b = Histogram::default();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.max, 1000);
        assert_eq!(a.buckets[9], 1);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn percentile_of_single_sample_is_exact() {
        // The bucket upper bound (7 for bucket 2) must clamp down to
        // the one observed value.
        let mut h = Histogram::default();
        h.record(5);
        for pct in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(pct), 5, "p{pct}");
        }
    }

    #[test]
    fn percentile_of_all_equal_samples_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(300);
        }
        assert_eq!(h.percentile(50.0), 300);
        assert_eq!(h.percentile(95.0), 300);
        assert_eq!(h.percentile(100.0), 300);
    }

    #[test]
    fn percentile_near_u64_max_does_not_overflow() {
        // Bucket 63's upper bound would be 2^64 - computing it must
        // not overflow, and the clamp keeps the answer at max.
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Both samples share bucket 63; the estimator reports the
        // bucket's upper bound clamped into [min, max].
        assert_eq!(h.percentile(50.0), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert!(h.percentile(50.0) >= h.min && h.percentile(50.0) <= h.max);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of panicking");
    }

    #[test]
    fn percentile_spread_lands_in_rank_bucket() {
        // 90 fast samples (=4), 10 slow (=1024): p50 is exact in the
        // fast bucket's clamp window, p95 lands in the slow bucket.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(4);
        }
        for _ in 0..10 {
            h.record(1024);
        }
        assert_eq!(h.percentile(50.0), 7); // bucket 2 upper bound
        assert_eq!(h.percentile(95.0), 1024); // bucket 10, clamped to max
        assert_eq!(h.percentile(100.0), 1024);
        // Rank clamps to the first sample; the estimator reports its
        // bucket's upper bound (an upper-bound estimate, not min).
        assert_eq!(h.percentile(0.0), 7);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("phys.frames.free", 100);
        m.gauge_sub("phys.frames.free", 30);
        m.gauge_add("phys.frames.free", 10);
        let g = m.gauge("phys.frames.free").unwrap();
        assert_eq!(g.value, 80);
        assert_eq!(g.high_water, 100);
        // Saturating at zero, never wrapping.
        m.gauge_sub("phys.frames.free", u64::MAX);
        assert_eq!(m.gauge("phys.frames.free").unwrap().value, 0);
        assert_eq!(m.gauge("phys.frames.free").unwrap().high_water, 100);
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn gauge_window_restarts_from_current_value() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("phys.slab.live", 50);
        m.gauge_set("phys.slab.live", 10);
        assert_eq!(m.gauge("phys.slab.live").unwrap().window_high_water, 50);
        m.begin_gauge_window();
        // The level carried into the window (10) is the new floor.
        assert_eq!(m.gauge("phys.slab.live").unwrap().window_high_water, 10);
        m.gauge_set("phys.slab.live", 30);
        let windows = m.window_gauge_high_waters();
        assert_eq!(windows.get("phys.slab.live"), Some(&30));
        // Run-wide high-water is untouched by window resets.
        assert_eq!(m.gauge("phys.slab.live").unwrap().high_water, 50);
    }

    #[test]
    fn window_high_waters_omit_zero_gauges() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("a", 0);
        m.gauge_set("b", 1);
        assert_eq!(m.window_gauge_high_waters().len(), 1);
    }

    #[test]
    fn sample_event_replay_reconstructs_gauges() {
        let mut live = MetricsRegistry::default();
        let mut replay = MetricsRegistry::default();
        for v in [5u64, 12, 3] {
            live.gauge_set("registry.sharers", v);
            replay.apply_event(
                Subsystem::Share,
                &Payload::Sample {
                    gauge: "registry.sharers".to_string(),
                    value: v,
                },
            );
        }
        assert_eq!(
            live.gauge("registry.sharers"),
            replay.gauge("registry.sharers")
        );
        assert_eq!(replay.gauge("registry.sharers").unwrap().high_water, 12);
    }

    #[test]
    fn registry_merge_takes_gauge_maxima() {
        let mut a = MetricsRegistry::default();
        a.gauge_set("g", 40);
        a.gauge_set("g", 5);
        let mut b = MetricsRegistry::default();
        b.gauge_set("g", 90);
        b.gauge_set("g", 7);
        b.gauge_set("other", 3);
        a.merge(&b);
        let g = a.gauge("g").unwrap();
        assert_eq!(g.value, 7, "merge keeps the max of current values");
        assert_eq!(g.high_water, 90);
        assert_eq!(a.gauge("other").unwrap().value, 3);
    }

    #[test]
    fn registry_merge_adds_counters() {
        let mut a = MetricsRegistry::default();
        a.inc("x", 2);
        a.record("h", 7);
        let mut b = MetricsRegistry::default();
        b.inc("x", 3);
        b.inc("y", 1);
        b.record("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 16, 7, 9));
    }
}
