//! Counters and log2-bucket histograms.
//!
//! The registry is updated on every recorded event *before* the event
//! enters the ring, so counters stay exact even when the ring wraps and
//! drops old events — the conservation tests (events vs `KernelStats` /
//! `TlbStats`) and the `BENCH_repro.json` snapshot both read counters,
//! never the (lossy) ring.

use std::collections::BTreeMap;

/// Number of log2 buckets; bucket `i` counts values `v` with
/// `floor(log2(max(v, 1))) == i` (so bucket 0 holds both 0 and 1).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucket histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index for a sample.
    pub fn bucket_of(value: u64) -> usize {
        (63 - value.max(1).leading_zeros()) as usize
    }

    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

/// Named counters plus named histograms. Key taxonomy is dotted and
/// stable (documented in DESIGN.md §7): `kernel.*`, `share.unshare.*`,
/// `vm.fault.*`, `tlb.flush.*`, `android.*`, `bench.*`, `sim.*`.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `n` to a counter (creating it at zero first).
    pub fn inc(&mut self, key: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Current counter value (0 if never bumped).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn counters_map(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Records a histogram sample.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Accumulates another registry (used when the bench pool merges
    /// worker-thread recordings back into the submitting thread).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.inc(k, v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut a = Histogram::default();
        for v in [1u64, 2, 4, 100] {
            a.record(v);
        }
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 107);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 100);
        let mut b = Histogram::default();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.max, 1000);
        assert_eq!(a.buckets[9], 1);
    }

    #[test]
    fn registry_merge_adds_counters() {
        let mut a = MetricsRegistry::default();
        a.inc("x", 2);
        a.record("h", 7);
        let mut b = MetricsRegistry::default();
        b.inc("x", 3);
        b.inc("y", 1);
        b.record("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 16, 7, 9));
    }
}
