//! Exporters: Chrome trace-event JSON and the metrics snapshot.
//!
//! The trace format is the Trace Event Format's "JSON object" flavour
//! (`{"traceEvents": [...], ...}`), loadable in `chrome://tracing` and
//! Perfetto. `ts` carries the recorder tick (logical order — the
//! simulator has no wall clock), `pid`/`tid` carry the simulated
//! pid/ASID, and `dur` on span events is modeled cycles (Android
//! phases) or wall-clock µs (bench cells), as noted per event in
//! `args`.

use crate::event::{Event, Payload};
use crate::json::escape_into;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::sink::Recording;

fn push_kv_str(out: &mut String, key: &str, value: &str, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": \"");
    escape_into(out, value);
    out.push('"');
}

fn push_kv_num(out: &mut String, key: &str, value: u64, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": ");
    out.push_str(&value.to_string());
}

fn push_kv_bool(out: &mut String, key: &str, value: bool, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": ");
    out.push_str(if value { "true" } else { "false" });
}

/// Renders one event's `args` object.
fn args_json(payload: &Payload) -> String {
    let mut o = String::from("{");
    match payload {
        Payload::Fork {
            child,
            ptps_shared,
            ptes_copied,
            shared,
        } => {
            push_kv_num(&mut o, "child", u64::from(*child), false);
            push_kv_num(&mut o, "ptps_shared", *ptps_shared, true);
            push_kv_num(&mut o, "ptes_copied", *ptes_copied, true);
            push_kv_bool(&mut o, "shared", *shared, true);
        }
        Payload::Exit => {}
        Payload::RegionOp {
            op,
            va,
            pages,
            unshared,
        } => {
            push_kv_str(&mut o, "op", op.as_str(), false);
            push_kv_num(&mut o, "va", u64::from(*va), true);
            push_kv_num(&mut o, "pages", u64::from(*pages), true);
            push_kv_num(&mut o, "unshared", *unshared, true);
        }
        Payload::DomainFault { va } => {
            push_kv_num(&mut o, "va", u64::from(*va), false);
        }
        Payload::PtpShare {
            ptps,
            write_protect_ops,
        } => {
            push_kv_num(&mut o, "ptps", *ptps, false);
            push_kv_num(&mut o, "write_protect_ops", *write_protect_ops, true);
        }
        Payload::PtpUnshare {
            cause,
            ptes_copied,
            last_sharer,
            va,
        } => {
            push_kv_str(&mut o, "cause", cause.as_str(), false);
            push_kv_num(&mut o, "ptes_copied", *ptes_copied, true);
            push_kv_bool(&mut o, "last_sharer", *last_sharer, true);
            push_kv_num(&mut o, "va", u64::from(*va), true);
        }
        Payload::PageFault {
            class,
            va,
            file_backed,
        } => {
            push_kv_str(&mut o, "class", class.as_str(), false);
            push_kv_num(&mut o, "va", u64::from(*va), true);
            push_kv_bool(&mut o, "file_backed", *file_backed, true);
        }
        Payload::TlbFlush {
            scope,
            reason,
            entries,
        } => {
            push_kv_str(&mut o, "scope", scope.as_str(), false);
            push_kv_str(&mut o, "reason", reason.as_str(), true);
            push_kv_num(&mut o, "entries", *entries, true);
        }
        Payload::AsidRollover { generation } => {
            push_kv_num(&mut o, "generation", *generation, false);
        }
        Payload::TlbShootdown {
            asid,
            scope,
            cores_targeted,
            cores_local,
            cores_skipped,
        } => {
            push_kv_num(&mut o, "asid", u64::from(*asid), false);
            push_kv_str(&mut o, "scope", scope.as_str(), true);
            push_kv_num(&mut o, "cores_targeted", u64::from(*cores_targeted), true);
            push_kv_num(&mut o, "cores_local", u64::from(*cores_local), true);
            push_kv_num(&mut o, "cores_skipped", u64::from(*cores_skipped), true);
        }
        Payload::FlushBatch {
            ops,
            coalesced,
            escalated,
        } => {
            push_kv_num(&mut o, "ops", *ops, false);
            push_kv_num(&mut o, "coalesced", *coalesced, true);
            push_kv_num(&mut o, "escalated", *escalated, true);
        }
        Payload::Preempt { core, next } => {
            push_kv_num(&mut o, "core", u64::from(*core), false);
            push_kv_num(&mut o, "next", u64::from(*next), true);
        }
        // Counter tracks plot args.value; Perfetto keys the track on
        // the event name (the gauge key).
        Payload::Sample { value, .. } => {
            push_kv_num(&mut o, "value", *value, false);
        }
        Payload::SpanBegin { .. } => {}
        Payload::SpanEnd { value, unit, .. } => {
            push_kv_num(&mut o, "value", *value, false);
            push_kv_str(&mut o, "unit", unit.as_str(), true);
        }
        Payload::CycleCharge {
            flow,
            cause,
            cycles,
        } => {
            push_kv_num(&mut o, "flow", u64::from(*flow), false);
            push_kv_str(&mut o, "cause", cause.as_str(), true);
            push_kv_num(&mut o, "cycles", *cycles, true);
        }
        Payload::FlowArrive { flow } | Payload::FlowBegin { flow } => {
            push_kv_num(&mut o, "flow", u64::from(*flow), false);
        }
        Payload::FlowEnd { flow, wall } => {
            push_kv_num(&mut o, "flow", u64::from(*flow), false);
            push_kv_num(&mut o, "wall", *wall, true);
        }
        Payload::Reclaim {
            pages,
            pte_tears,
            shared_tears,
        } => {
            push_kv_num(&mut o, "pages", *pages, false);
            push_kv_num(&mut o, "pte_tears", *pte_tears, true);
            push_kv_num(&mut o, "shared_tears", *shared_tears, true);
        }
        Payload::Promote {
            va,
            bytes,
            pages,
            filled,
        } => {
            push_kv_num(&mut o, "va", u64::from(*va), false);
            push_kv_num(&mut o, "bytes", u64::from(*bytes), true);
            push_kv_num(&mut o, "pages", *pages, true);
            push_kv_num(&mut o, "filled", *filled, true);
        }
        Payload::Demote {
            va,
            bytes,
            pages,
            cause,
        } => {
            push_kv_num(&mut o, "va", u64::from(*va), false);
            push_kv_num(&mut o, "bytes", u64::from(*bytes), true);
            push_kv_num(&mut o, "pages", *pages, true);
            push_kv_str(&mut o, "cause", cause.as_str(), true);
        }
    }
    o.push('}');
    o
}

fn event_json(event: &Event) -> String {
    let mut o = String::from("{");
    push_kv_str(&mut o, "name", event.payload.name(), false);
    push_kv_str(&mut o, "cat", event.subsystem.as_str(), true);
    match &event.payload {
        // Begin/end pairs: the viewer nests the events a span
        // encloses under it; `ts` deltas are logical ticks, the
        // measured quantity rides in the end event's args.
        Payload::SpanBegin { .. } => push_kv_str(&mut o, "ph", "B", true),
        Payload::SpanEnd { .. } => push_kv_str(&mut o, "ph", "E", true),
        // Gauge samples are counter events: Perfetto renders each
        // distinct name as its own counter track, stacked over time.
        Payload::Sample { .. } => push_kv_str(&mut o, "ph", "C", true),
        _ => {
            push_kv_str(&mut o, "ph", "i", true);
            push_kv_str(&mut o, "s", "t", true);
        }
    }
    push_kv_num(&mut o, "ts", event.tick, true);
    push_kv_num(&mut o, "pid", u64::from(event.pid), true);
    push_kv_num(&mut o, "tid", u64::from(event.asid), true);
    o.push_str(", \"args\": ");
    o.push_str(&args_json(&event.payload));
    o.push('}');
    o
}

/// Serializes a recording as a Chrome trace-event JSON document.
pub fn chrome_trace_json(rec: &Recording) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, event) in rec.events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&event_json(event));
        if i + 1 != rec.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"displayTimeUnit\": \"ns\",\n");
    out.push_str(&format!(
        "  \"otherData\": {{\"generator\": \"sat-obs\", \"dropped_events\": {}, \"event_count\": {}}}\n",
        rec.dropped,
        rec.events.len()
    ));
    out.push('}');
    out
}

fn histogram_json(h: &Histogram) -> String {
    // Trailing zero buckets are trimmed; bucket i covers values with
    // floor(log2(max(v,1))) == i.
    let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    let buckets: Vec<String> = h.buckets[..last].iter().map(|b| b.to_string()).collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"log2_buckets\": [{}]}}",
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.mean(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        buckets.join(", ")
    )
}

/// A Chrome trace re-ingested into typed events (the inverse of
/// [`chrome_trace_json`]); the analytics pipeline's input.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    pub events: Vec<Event>,
    /// The exporter's `otherData.dropped_events` (ring overflow at
    /// record time — the parsed stream is exactly what survived).
    pub dropped: u64,
}

fn field_u64(obj: &crate::json::Json, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(crate::json::Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer \"{key}\""))
}

fn arg_str<'j>(args: &'j crate::json::Json, key: &str, ctx: &str) -> Result<&'j str, String> {
    args.get(key)
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string arg \"{key}\""))
}

fn arg_bool(args: &crate::json::Json, key: &str, ctx: &str) -> Result<bool, String> {
    args.get(key)
        .and_then(crate::json::Json::as_bool)
        .ok_or_else(|| format!("{ctx}: missing or non-bool arg \"{key}\""))
}

/// Parses one exported trace event back into a typed [`Event`].
fn parse_event(obj: &crate::json::Json, index: usize) -> Result<Event, String> {
    use crate::event::*;
    let ctx = format!("traceEvents[{index}]");
    let name = obj
        .get("name")
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing \"name\""))?;
    let cat = obj
        .get("cat")
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing \"cat\""))?;
    let subsystem = Subsystem::parse(cat).ok_or_else(|| format!("{ctx}: unknown cat \"{cat}\""))?;
    let ph = obj
        .get("ph")
        .and_then(crate::json::Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing \"ph\""))?;
    let tick = field_u64(obj, "ts", &ctx)?;
    let pid = field_u64(obj, "pid", &ctx)? as u32;
    let asid = field_u64(obj, "tid", &ctx)? as u8;
    let empty = crate::json::Json::Obj(Default::default());
    let args = obj.get("args").unwrap_or(&empty);
    let ctx = format!("{ctx} ({name})");

    let payload = match ph {
        "B" => Payload::SpanBegin {
            name: name.to_string(),
        },
        // A counter-track point round-trips into the gauge sample it
        // was exported from; the event name is the gauge key.
        "C" => Payload::Sample {
            gauge: name.to_string(),
            value: field_u64(args, "value", &ctx)?,
        },
        "E" => {
            let unit_s = arg_str(args, "unit", &ctx)?;
            Payload::SpanEnd {
                name: name.to_string(),
                value: field_u64(args, "value", &ctx)?,
                unit: SpanUnit::parse(unit_s)
                    .ok_or_else(|| format!("{ctx}: unknown span unit \"{unit_s}\""))?,
            }
        }
        "i" => match name {
            "fork" => Payload::Fork {
                child: field_u64(args, "child", &ctx)? as u32,
                ptps_shared: field_u64(args, "ptps_shared", &ctx)?,
                ptes_copied: field_u64(args, "ptes_copied", &ctx)?,
                shared: arg_bool(args, "shared", &ctx)?,
            },
            "exit" => Payload::Exit,
            "domain_fault" => Payload::DomainFault {
                va: field_u64(args, "va", &ctx)? as u32,
            },
            "ptp_share" => Payload::PtpShare {
                ptps: field_u64(args, "ptps", &ctx)?,
                write_protect_ops: field_u64(args, "write_protect_ops", &ctx)?,
            },
            "ptp_unshare" => {
                let cause_s = arg_str(args, "cause", &ctx)?;
                Payload::PtpUnshare {
                    cause: UnshareCause::parse(cause_s)
                        .ok_or_else(|| format!("{ctx}: unknown cause \"{cause_s}\""))?,
                    ptes_copied: field_u64(args, "ptes_copied", &ctx)?,
                    last_sharer: arg_bool(args, "last_sharer", &ctx)?,
                    va: field_u64(args, "va", &ctx)? as u32,
                }
            }
            "page_fault" => {
                let class_s = arg_str(args, "class", &ctx)?;
                Payload::PageFault {
                    class: FaultClass::parse(class_s)
                        .ok_or_else(|| format!("{ctx}: unknown fault class \"{class_s}\""))?,
                    va: field_u64(args, "va", &ctx)? as u32,
                    file_backed: arg_bool(args, "file_backed", &ctx)?,
                }
            }
            "tlb_flush" => {
                let scope_s = arg_str(args, "scope", &ctx)?;
                let reason_s = arg_str(args, "reason", &ctx)?;
                Payload::TlbFlush {
                    scope: FlushScope::parse(scope_s)
                        .ok_or_else(|| format!("{ctx}: unknown flush scope \"{scope_s}\""))?,
                    reason: FlushReason::parse(reason_s)
                        .ok_or_else(|| format!("{ctx}: unknown flush reason \"{reason_s}\""))?,
                    entries: field_u64(args, "entries", &ctx)?,
                }
            }
            "asid_rollover" => Payload::AsidRollover {
                generation: field_u64(args, "generation", &ctx)?,
            },
            "tlb_shootdown" => {
                let scope_s = arg_str(args, "scope", &ctx)?;
                Payload::TlbShootdown {
                    asid: field_u64(args, "asid", &ctx)? as u8,
                    scope: FlushScope::parse(scope_s)
                        .ok_or_else(|| format!("{ctx}: unknown flush scope \"{scope_s}\""))?,
                    cores_targeted: field_u64(args, "cores_targeted", &ctx)? as u32,
                    cores_local: field_u64(args, "cores_local", &ctx)? as u32,
                    cores_skipped: field_u64(args, "cores_skipped", &ctx)? as u32,
                }
            }
            "flush_batch" => Payload::FlushBatch {
                ops: field_u64(args, "ops", &ctx)?,
                coalesced: field_u64(args, "coalesced", &ctx)?,
                escalated: field_u64(args, "escalated", &ctx)?,
            },
            "preempt" => Payload::Preempt {
                core: field_u64(args, "core", &ctx)? as u32,
                next: field_u64(args, "next", &ctx)? as u32,
            },
            "cycle_charge" => {
                let cause_s = arg_str(args, "cause", &ctx)?;
                Payload::CycleCharge {
                    flow: field_u64(args, "flow", &ctx)? as u32,
                    cause: ChargeCause::parse(cause_s)
                        .ok_or_else(|| format!("{ctx}: unknown charge cause \"{cause_s}\""))?,
                    cycles: field_u64(args, "cycles", &ctx)?,
                }
            }
            "flow_arrive" => Payload::FlowArrive {
                flow: field_u64(args, "flow", &ctx)? as u32,
            },
            "flow_begin" => Payload::FlowBegin {
                flow: field_u64(args, "flow", &ctx)? as u32,
            },
            "flow_end" => Payload::FlowEnd {
                flow: field_u64(args, "flow", &ctx)? as u32,
                wall: field_u64(args, "wall", &ctx)?,
            },
            "reclaim" => Payload::Reclaim {
                pages: field_u64(args, "pages", &ctx)?,
                pte_tears: field_u64(args, "pte_tears", &ctx)?,
                shared_tears: field_u64(args, "shared_tears", &ctx)?,
            },
            "promote" => Payload::Promote {
                va: field_u64(args, "va", &ctx)? as u32,
                bytes: field_u64(args, "bytes", &ctx)? as u32,
                pages: field_u64(args, "pages", &ctx)?,
                filled: field_u64(args, "filled", &ctx)?,
            },
            "demote" => {
                let cause_s = arg_str(args, "cause", &ctx)?;
                Payload::Demote {
                    va: field_u64(args, "va", &ctx)? as u32,
                    bytes: field_u64(args, "bytes", &ctx)? as u32,
                    pages: field_u64(args, "pages", &ctx)?,
                    cause: DemoteCause::parse(cause_s)
                        .ok_or_else(|| format!("{ctx}: unknown demote cause \"{cause_s}\""))?,
                }
            }
            op if RegionOpKind::parse(op).is_some() => Payload::RegionOp {
                op: RegionOpKind::parse(op).unwrap(),
                va: field_u64(args, "va", &ctx)? as u32,
                pages: field_u64(args, "pages", &ctx)? as u32,
                unshared: field_u64(args, "unshared", &ctx)?,
            },
            other => return Err(format!("{ctx}: unknown instant event \"{other}\"")),
        },
        other => return Err(format!("{ctx}: unknown phase \"{other}\"")),
    };
    Ok(Event {
        tick,
        pid,
        asid,
        subsystem,
        payload,
    })
}

/// Re-ingests a Chrome trace document produced by
/// [`chrome_trace_json`] into typed events. Strict: an event the
/// exporter could not have written is an error, not a skip — `repro
/// check` and `repro report` both want corruption surfaced.
pub fn parse_chrome_trace(doc: &crate::json::Json) -> Result<ParsedTrace, String> {
    let events_json = doc
        .get("traceEvents")
        .and_then(crate::json::Json::as_array)
        .ok_or("missing \"traceEvents\" array")?;
    let mut events = Vec::with_capacity(events_json.len());
    for (i, obj) in events_json.iter().enumerate() {
        events.push(parse_event(obj, i)?);
    }
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(crate::json::Json::as_u64)
        .unwrap_or(0);
    Ok(ParsedTrace { events, dropped })
}

/// Serializes the metrics registry (plus the ring's drop counter) as a
/// JSON object — the `obs` section of `BENCH_repro.json` v2. `indent`
/// is the base indentation applied to every line after the first.
pub fn metrics_json(
    metrics: &MetricsRegistry,
    enabled: bool,
    dropped: u64,
    indent: &str,
) -> String {
    let mut out = String::from("{\n");
    let field = |out: &mut String, name: &str| {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(name);
        out.push_str("\": ");
    };
    field(&mut out, "enabled");
    out.push_str(if enabled { "true" } else { "false" });
    out.push_str(",\n");
    field(&mut out, "dropped_events");
    out.push_str(&dropped.to_string());
    out.push_str(",\n");

    field(&mut out, "counters");
    out.push_str("{\n");
    let counters: Vec<(&str, u64)> = metrics.counters().collect();
    for (i, (k, v)) in counters.iter().enumerate() {
        out.push_str(indent);
        out.push_str("    \"");
        escape_into(&mut out, k);
        out.push_str("\": ");
        out.push_str(&v.to_string());
        if i + 1 != counters.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push_str("  },\n");

    field(&mut out, "histograms");
    out.push_str("{\n");
    let hists: Vec<(&str, &Histogram)> = metrics.histograms().collect();
    for (i, (k, h)) in hists.iter().enumerate() {
        out.push_str(indent);
        out.push_str("    \"");
        escape_into(&mut out, k);
        out.push_str("\": ");
        out.push_str(&histogram_json(h));
        if i + 1 != hists.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push_str("  },\n");

    field(&mut out, "gauges");
    out.push_str("{\n");
    let gauges: Vec<(&str, crate::metrics::Gauge)> = metrics.gauges().collect();
    for (i, (k, g)) in gauges.iter().enumerate() {
        out.push_str(indent);
        out.push_str("    \"");
        escape_into(&mut out, k);
        out.push_str("\": ");
        out.push_str(&format!(
            "{{\"value\": {}, \"high_water\": {}}}",
            g.value, g.high_water
        ));
        if i + 1 != gauges.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push_str("  }\n");
    out.push_str(indent);
    out.push('}');
    out
}
