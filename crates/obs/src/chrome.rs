//! Exporters: Chrome trace-event JSON and the metrics snapshot.
//!
//! The trace format is the Trace Event Format's "JSON object" flavour
//! (`{"traceEvents": [...], ...}`), loadable in `chrome://tracing` and
//! Perfetto. `ts` carries the recorder tick (logical order — the
//! simulator has no wall clock), `pid`/`tid` carry the simulated
//! pid/ASID, and `dur` on span events is modeled cycles (Android
//! phases) or wall-clock µs (bench cells), as noted per event in
//! `args`.

use crate::event::{Event, Payload};
use crate::json::escape_into;
use crate::metrics::{Histogram, MetricsRegistry};
use crate::sink::Recording;

fn push_kv_str(out: &mut String, key: &str, value: &str, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": \"");
    escape_into(out, value);
    out.push('"');
}

fn push_kv_num(out: &mut String, key: &str, value: u64, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": ");
    out.push_str(&value.to_string());
}

fn push_kv_bool(out: &mut String, key: &str, value: bool, comma: bool) {
    if comma {
        out.push_str(", ");
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\": ");
    out.push_str(if value { "true" } else { "false" });
}

/// Renders one event's `args` object.
fn args_json(payload: &Payload) -> String {
    let mut o = String::from("{");
    match payload {
        Payload::Fork {
            child,
            ptps_shared,
            ptes_copied,
            shared,
        } => {
            push_kv_num(&mut o, "child", u64::from(*child), false);
            push_kv_num(&mut o, "ptps_shared", *ptps_shared, true);
            push_kv_num(&mut o, "ptes_copied", *ptes_copied, true);
            push_kv_bool(&mut o, "shared", *shared, true);
        }
        Payload::Exit => {}
        Payload::RegionOp {
            op,
            va,
            pages,
            unshared,
        } => {
            push_kv_str(&mut o, "op", op.as_str(), false);
            push_kv_num(&mut o, "va", u64::from(*va), true);
            push_kv_num(&mut o, "pages", u64::from(*pages), true);
            push_kv_num(&mut o, "unshared", *unshared, true);
        }
        Payload::DomainFault { va } => {
            push_kv_num(&mut o, "va", u64::from(*va), false);
        }
        Payload::PtpShare {
            ptps,
            write_protect_ops,
        } => {
            push_kv_num(&mut o, "ptps", *ptps, false);
            push_kv_num(&mut o, "write_protect_ops", *write_protect_ops, true);
        }
        Payload::PtpUnshare {
            cause,
            ptes_copied,
            last_sharer,
            va,
        } => {
            push_kv_str(&mut o, "cause", cause.as_str(), false);
            push_kv_num(&mut o, "ptes_copied", *ptes_copied, true);
            push_kv_bool(&mut o, "last_sharer", *last_sharer, true);
            push_kv_num(&mut o, "va", u64::from(*va), true);
        }
        Payload::PageFault {
            class,
            va,
            file_backed,
        } => {
            push_kv_str(&mut o, "class", class.as_str(), false);
            push_kv_num(&mut o, "va", u64::from(*va), true);
            push_kv_bool(&mut o, "file_backed", *file_backed, true);
        }
        Payload::TlbFlush {
            scope,
            reason,
            entries,
        } => {
            push_kv_str(&mut o, "scope", scope.as_str(), false);
            push_kv_str(&mut o, "reason", reason.as_str(), true);
            push_kv_num(&mut o, "entries", *entries, true);
        }
        Payload::Phase { cycles, .. } => {
            push_kv_num(&mut o, "cycles", *cycles, false);
            push_kv_str(&mut o, "dur_unit", "cycles", true);
        }
        Payload::Cell { dur_us, .. } => {
            push_kv_num(&mut o, "us", *dur_us, false);
            push_kv_str(&mut o, "dur_unit", "us", true);
        }
    }
    o.push('}');
    o
}

fn event_json(event: &Event) -> String {
    let mut o = String::from("{");
    push_kv_str(&mut o, "name", event.payload.name(), false);
    push_kv_str(&mut o, "cat", event.subsystem.as_str(), true);
    match event.payload.span_duration() {
        Some(dur) => {
            push_kv_str(&mut o, "ph", "X", true);
            push_kv_num(&mut o, "dur", dur, true);
        }
        None => {
            push_kv_str(&mut o, "ph", "i", true);
            push_kv_str(&mut o, "s", "t", true);
        }
    }
    push_kv_num(&mut o, "ts", event.tick, true);
    push_kv_num(&mut o, "pid", u64::from(event.pid), true);
    push_kv_num(&mut o, "tid", u64::from(event.asid), true);
    o.push_str(", \"args\": ");
    o.push_str(&args_json(&event.payload));
    o.push('}');
    o
}

/// Serializes a recording as a Chrome trace-event JSON document.
pub fn chrome_trace_json(rec: &Recording) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, event) in rec.events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&event_json(event));
        if i + 1 != rec.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"displayTimeUnit\": \"ns\",\n");
    out.push_str(&format!(
        "  \"otherData\": {{\"generator\": \"sat-obs\", \"dropped_events\": {}, \"event_count\": {}}}\n",
        rec.dropped,
        rec.events.len()
    ));
    out.push('}');
    out
}

fn histogram_json(h: &Histogram) -> String {
    // Trailing zero buckets are trimmed; bucket i covers values with
    // floor(log2(max(v,1))) == i.
    let last = h
        .buckets
        .iter()
        .rposition(|&b| b != 0)
        .map_or(0, |i| i + 1);
    let buckets: Vec<String> = h.buckets[..last].iter().map(|b| b.to_string()).collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"log2_buckets\": [{}]}}",
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.mean(),
        buckets.join(", ")
    )
}

/// Serializes the metrics registry (plus the ring's drop counter) as a
/// JSON object — the `obs` section of `BENCH_repro.json` v2. `indent`
/// is the base indentation applied to every line after the first.
pub fn metrics_json(metrics: &MetricsRegistry, enabled: bool, dropped: u64, indent: &str) -> String {
    let mut out = String::from("{\n");
    let field = |out: &mut String, name: &str| {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(name);
        out.push_str("\": ");
    };
    field(&mut out, "enabled");
    out.push_str(if enabled { "true" } else { "false" });
    out.push_str(",\n");
    field(&mut out, "dropped_events");
    out.push_str(&dropped.to_string());
    out.push_str(",\n");

    field(&mut out, "counters");
    out.push_str("{\n");
    let counters: Vec<(&str, u64)> = metrics.counters().collect();
    for (i, (k, v)) in counters.iter().enumerate() {
        out.push_str(indent);
        out.push_str("    \"");
        escape_into(&mut out, k);
        out.push_str("\": ");
        out.push_str(&v.to_string());
        if i + 1 != counters.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push_str("  },\n");

    field(&mut out, "histograms");
    out.push_str("{\n");
    let hists: Vec<(&str, &Histogram)> = metrics.histograms().collect();
    for (i, (k, h)) in hists.iter().enumerate() {
        out.push_str(indent);
        out.push_str("    \"");
        escape_into(&mut out, k);
        out.push_str("\": ");
        out.push_str(&histogram_json(h));
        if i + 1 != hists.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(indent);
    out.push_str("  }\n");
    out.push_str(indent);
    out.push('}');
    out
}
