//! The generational 8-bit ASID allocator.
//!
//! ARMv7 tags TLB entries with an 8-bit ASID, so at most 255 address
//! spaces can be distinguished at once. Linux's ARM port hands values
//! out sequentially within a *generation*; exhausting the space bumps
//! the generation, flushes every non-global TLB entry once, and
//! reassigns live processes lazily at their next switch-in. This
//! module is that allocator, extracted from `Kernel` so its
//! invariants are pinned where the state lives:
//!
//! - `generation() == 1 + rollovers()` — the generation counter moves
//!   only through [`AsidAllocator::rollover`].
//! - A process *running on a core* at rollover time keeps its value:
//!   the value is reserved for the whole new generation and the
//!   process's generation is bumped in place, so a recycled value can
//!   never alias a translation the still-running owner inserts after
//!   the rollover flush.
//! - The deferred non-global flush fires exactly once, at the first
//!   switch-in after the rollover (allocation sites have no TLB
//!   handle, as in Linux).

use std::collections::{BTreeMap, HashMap};

use sat_types::{Asid, Pid};

/// Generational allocator for the 8-bit ASID space.
pub struct AsidAllocator {
    /// Current generation (starts at 1, bumped on rollover).
    generation: u64,
    /// Next value within the current generation; `> 255` means the
    /// space is exhausted and the next allocation rolls over.
    next: u16,
    /// Which generation each live process's ASID belongs to. A
    /// process whose recorded generation is older than `generation`
    /// carries a stale ASID that must be reassigned before it runs
    /// again.
    gens: HashMap<Pid, u64>,
    /// A rollover happened but the non-global TLB flush it requires
    /// has not been issued yet.
    flush_pending: bool,
    /// Which process is current on each core, as reported by the
    /// machine layer. A process on a core keeps executing — and keeps
    /// inserting TLB entries tagged with its ASID — without ever
    /// re-entering the allocator, so a rollover must reserve these
    /// values.
    running: BTreeMap<usize, Pid>,
    /// Values reserved for the whole current generation (one bit per
    /// 8-bit value): those held by processes that were running at the
    /// last rollover.
    reserved: [u64; 4],
    /// Rollovers performed.
    rollovers: u64,
}

impl Default for AsidAllocator {
    fn default() -> Self {
        AsidAllocator::new()
    }
}

impl AsidAllocator {
    /// A fresh allocator in generation 1 with the full value space.
    pub fn new() -> AsidAllocator {
        AsidAllocator {
            generation: 1,
            next: 1,
            gens: HashMap::new(),
            flush_pending: false,
            running: BTreeMap::new(),
            reserved: [0; 4],
            rollovers: 0,
        }
    }

    /// Allocates a value, rolling the generation over when the space
    /// is exhausted. `asid_of` resolves a running process to its
    /// current value (the allocator does not own the process table);
    /// rollover reserves those values.
    pub fn alloc(&mut self, asid_of: impl Fn(Pid) -> Option<Asid>) -> Asid {
        loop {
            if self.next > 255 {
                self.rollover(&asid_of);
            }
            let value = self.next as u8;
            self.next += 1;
            // Values reserved by processes that were running at the
            // last rollover are never reissued this generation.
            if !self.is_reserved(value) {
                return Asid::new(value);
            }
        }
    }

    /// Records that `pid` holds a value of the *current* generation
    /// (call right after assigning it an allocated value).
    pub fn assign_current(&mut self, pid: Pid) {
        self.gens.insert(pid, self.generation);
    }

    /// Whether `value` is reserved for the current generation.
    pub fn is_reserved(&self, value: u8) -> bool {
        let v = value as usize;
        self.reserved[v / 64] & (1 << (v % 64)) != 0
    }

    /// The space is exhausted: bump the generation and schedule the
    /// deferred non-global flush. Mirroring Linux's ARM rollover,
    /// every process currently on a core keeps its ASID: its value is
    /// reserved (skipped for the whole new generation) and its
    /// generation is bumped in place, so it is never treated as
    /// stale. The aliasing argument: a *running* process may insert
    /// entries tagged with its value even after the rollover flush,
    /// but that value is never reissued; a *non-running* process
    /// cannot insert entries until its next switch-in, which
    /// reassigns it first — so everything tagged with a recycled
    /// value predates the rollover and is removed by the flush before
    /// the new owner can run.
    fn rollover(&mut self, asid_of: &impl Fn(Pid) -> Option<Asid>) {
        self.generation += 1;
        self.next = 1;
        self.flush_pending = true;
        self.rollovers += 1;
        self.reserved = [0; 4];
        assert!(
            self.running.len() < 255,
            "more running processes than ASID values"
        );
        let running: Vec<Pid> = self.running.values().copied().collect();
        for pid in running {
            if let Some(asid) = asid_of(pid) {
                let v = asid.raw() as usize;
                self.reserved[v / 64] |= 1 << (v % 64);
                self.gens.insert(pid, self.generation);
            }
        }
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                0,
                0,
                sat_obs::Payload::AsidRollover {
                    generation: self.generation,
                },
            );
        }
    }

    /// Reports that `pid` is now current on `core` (called by the
    /// machine layer on every context switch).
    pub fn note_running(&mut self, core: usize, pid: Pid) {
        self.running.insert(core, pid);
    }

    /// True when `pid`'s ASID predates the current generation. Every
    /// TLB entry tagged with a stale value predates the rollover (the
    /// owner has not run since — running processes are re-generationed
    /// in place), so the rollover flush covers them.
    pub fn is_stale(&self, pid: Pid) -> bool {
        self.gens.get(&pid).copied().unwrap_or(0) != self.generation
    }

    /// The current generation (starts at 1).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rollovers performed since boot.
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// True when a rollover's deferred non-global flush has not been
    /// issued yet.
    pub fn flush_pending(&self) -> bool {
        self.flush_pending
    }

    /// Claims the deferred rollover flush: returns true exactly once
    /// per rollover; the caller must then issue the non-global flush.
    pub fn take_flush_pending(&mut self) -> bool {
        std::mem::take(&mut self.flush_pending)
    }

    /// Drops a dead process from the generation and running tables.
    pub fn forget(&mut self, pid: Pid) {
        self.gens.remove(&pid);
        self.running.retain(|_, p| *p != pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::{KernelConfig, NoTlb, TlbMaintenance};
    use sat_types::VirtAddr;

    /// The pure invariant, no kernel involved: the generation counter
    /// is driven only by rollovers.
    #[test]
    fn generation_is_one_plus_rollovers() {
        let mut a = AsidAllocator::new();
        assert_eq!(a.generation(), 1 + a.rollovers());
        for _ in 0..600 {
            a.alloc(|_| None);
            assert_eq!(a.generation(), 1 + a.rollovers());
        }
        assert_eq!(a.rollovers(), 2); // 600 allocations / 255 per gen
    }

    /// A running process's value is skipped by the allocator for the
    /// whole generation after a rollover.
    #[test]
    fn reserved_value_is_never_reissued() {
        let mut a = AsidAllocator::new();
        let p = Pid::new(42);
        let held = a.alloc(|_| None);
        a.assign_current(p);
        a.note_running(0, p);
        for _ in 0..600 {
            let v = a.alloc(|pid| (pid == p).then_some(held));
            if a.rollovers() > 0 {
                assert_ne!(v, held, "reserved value reissued after rollover");
            }
        }
        assert!(!a.is_stale(p), "running process re-generationed in place");
    }

    /// A [`TlbMaintenance`] sink counting maintenance operations.
    #[derive(Default)]
    struct CountingTlb {
        asid_flushes: u64,
        non_global_flushes: u64,
        full_flushes: u64,
    }

    impl TlbMaintenance for CountingTlb {
        fn flush_asid(&mut self, _asid: Asid) {
            self.asid_flushes += 1;
        }
        fn flush_va_all_asids(&mut self, _va: VirtAddr) {}
        fn flush_all(&mut self) {
            self.full_flushes += 1;
        }
        fn flush_non_global(&mut self) {
            self.non_global_flushes += 1;
        }
    }

    #[test]
    fn asid_rollover_survives_hundreds_of_process_generations() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let parent = k.create_process().unwrap();
        // 600 fork/exit cycles exhaust the 8-bit space twice over; the
        // old free-list allocator would have coped only by recycling,
        // the generation allocator instead rolls over.
        for _ in 0..600 {
            let child = k.fork(parent).unwrap().child;
            k.exit(child, &mut NoTlb).unwrap();
        }
        // 601 allocations at 255 per generation = 2 rollovers.
        assert_eq!(k.stats.asid_rollovers, 2);
        assert_eq!(k.asid_generation(), 3);
    }

    #[test]
    fn rollover_flushes_non_global_exactly_once_and_reassigns_lazily() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let parent = k.create_process().unwrap();
        let mut tlb = CountingTlb::default();
        for _ in 0..255 {
            let child = k.fork(parent).unwrap().child;
            k.exit(child, &mut tlb).unwrap();
        }
        // Allocation 256 rolled the generation; the flush is deferred
        // until some process is switched in.
        assert_eq!(k.stats.asid_rollovers, 1);
        assert!(k.rollover_flush_pending());
        assert_eq!(tlb.non_global_flushes, 0);
        // The parent's gen-1 ASID (1) is stale; switch-in reassigns it
        // and issues exactly one non-global flush — never a full flush,
        // so global zygote entries survive.
        let before = k.mm(parent).unwrap().asid;
        assert_eq!(before.raw(), 1);
        let after = k.ensure_current_asid(parent, &mut tlb).unwrap();
        // Gen-2 value 1 went to the last child; the parent gets 2.
        assert_eq!(after.raw(), 2);
        assert_eq!(k.mm(parent).unwrap().asid, after);
        assert_eq!(tlb.non_global_flushes, 1);
        assert_eq!(tlb.full_flushes, 0);
        assert!(!k.rollover_flush_pending());
        // Idempotent once current: no second flush, no reassignment.
        let again = k.ensure_current_asid(parent, &mut tlb).unwrap();
        assert_eq!(again, after);
        assert_eq!(tlb.non_global_flushes, 1);
    }

    /// The high-severity aliasing window: a process current on a core
    /// over a rollover keeps running with its ASID, so the allocator
    /// must reserve that value instead of reissuing it.
    #[test]
    fn running_process_keeps_its_asid_across_rollover() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let p = k.create_process().unwrap();
        assert_eq!(k.mm(p).unwrap().asid.raw(), 1);
        k.note_running(0, p);
        let mut tlb = CountingTlb::default();
        for _ in 0..300 {
            let c = k.fork(p).unwrap().child;
            if k.asid_generation() > 1 {
                assert_ne!(
                    k.mm(c).unwrap().asid.raw(),
                    1,
                    "reserved value reissued while its owner is running"
                );
            }
            k.exit(c, &mut tlb).unwrap();
        }
        assert_eq!(k.stats.asid_rollovers, 1);
        // Reserved in place: same value, current generation; the
        // switch-in hook fires the deferred flush but does not
        // reassign.
        assert!(!k.asid_is_stale(p));
        let asid = k.ensure_current_asid(p, &mut tlb).unwrap();
        assert_eq!(asid.raw(), 1);
        assert_eq!(tlb.non_global_flushes, 1);
    }

    /// A stale-generation exit must not flush (or IPI) by raw ASID
    /// value: the rollover flush already covers its entries, and the
    /// value may since have been reissued to a live process.
    #[test]
    fn stale_generation_exit_skips_the_per_asid_flush() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let keeper = k.create_process().unwrap(); // value 1, gen 1
        let victim = k.create_process().unwrap(); // value 2, gen 1
        let mut tlb = CountingTlb::default();
        // Burn the rest of the space to force a rollover.
        for _ in 0..254 {
            let c = k.fork(keeper).unwrap().child;
            k.exit(c, &mut tlb).unwrap();
        }
        assert_eq!(k.stats.asid_rollovers, 1);
        assert!(k.asid_is_stale(victim));
        let flushes_before = tlb.asid_flushes;
        k.exit(victim, &mut tlb).unwrap();
        assert_eq!(tlb.asid_flushes, flushes_before, "stale exit over-flushed");
        // A current-generation exit still flushes its value.
        k.ensure_current_asid(keeper, &mut tlb).unwrap();
        k.exit(keeper, &mut tlb).unwrap();
        assert_eq!(tlb.asid_flushes, flushes_before + 1);
    }
}
