//! The paper's contribution: shared address translation for Android.
//!
//! "Shared Address Translation Revisited" (Dong, Dwarkadas, Cox —
//! EuroSys 2016) deduplicates virtual-address-translation state across
//! the processes forked from Android's zygote:
//!
//! 1. **Page-table-page (PTP) sharing** ([`fork_share`],
//!    [`unshare`]): at fork, level-1 entry pairs in the child are
//!    pointed at the parent's PTPs instead of copying or refaulting
//!    PTEs. Shared PTPs are managed copy-on-write via a `NEED_COPY`
//!    spare bit in the level-1 PTE and a sharer count in the PTP's
//!    `struct page` mapcount. Unlike prior work, a shared PTP may
//!    contain multiple regions, including *private writable* ones —
//!    any modification (write fault, mmap/munmap/mprotect, region
//!    creation or teardown) triggers an unshare of the affected PTP.
//! 2. **TLB-entry sharing**: PTEs for zygote-preloaded shared code are
//!    created with the ARM *global* bit, so one TLB entry serves every
//!    zygote-like process; the 32-bit ARM *domain* protection model
//!    (a dedicated zygote domain plus DACR rights) keeps non-zygote
//!    processes from consuming those entries — they take a precise
//!    domain fault instead, whose handler evicts the stale entries.
//!
//! [`Kernel`] packages the whole patched kernel: it owns physical
//! memory, the PTP arena, and every process's address space, and wraps
//! the stock `sat-vm` paths with the share/unshare logic exactly where
//! the paper's patch hooks Linux.
//!
//! # Examples
//!
//! A zygote maps library code, pre-faults it, and forks: the child
//! attaches to the zygote's page-table pages, copying nothing.
//!
//! ```
//! use sat_core::{Kernel, KernelConfig, NoTlb};
//! use sat_types::{Perms, RegionTag, VaRange, VirtAddr, PAGE_SIZE};
//! use sat_vm::MmapRequest;
//!
//! let mut kernel = Kernel::new(KernelConfig::shared_ptp(), 4096);
//! let zygote = kernel.create_process()?;
//! kernel.exec_zygote(zygote)?;
//!
//! let lib = kernel.files.register("libc.so", 8 * PAGE_SIZE);
//! let code = VirtAddr::new(0x4000_0000);
//! let req = MmapRequest::file(8 * PAGE_SIZE, Perms::RX, lib, 0,
//!     RegionTag::ZygoteNativeCode, "libc.so").at(code);
//! kernel.mmap(zygote, &req, &mut NoTlb)?;
//! kernel.populate(zygote, VaRange::from_len(code, 8 * PAGE_SIZE))?;
//!
//! let fork = kernel.fork(zygote)?;
//! assert!(fork.ptps_shared >= 1);
//! assert_eq!(fork.ptes_copied, 0);
//! // The child's code PTEs are already present — zero launch faults.
//! assert!(kernel.pte(fork.child, code)?.is_some());
//! # Ok::<(), sat_types::SatError>(())
//! ```

#![forbid(unsafe_code)]

pub mod asid;
pub mod config;
pub mod flush;
pub mod kernel;
pub mod promote;
pub mod reclaim;
pub mod registry;
pub mod share;

pub use asid::AsidAllocator;
pub use config::{CopyOnUnshare, KernelConfig, PromotePolicy, TlbProtection};
pub use flush::{BatchOutcome, FlushBatch, FlushOp, FLUSH_CEILING_PAGES};
pub use kernel::{ForkOutcome, Kernel, KernelStats, ProcFaultOutcome};
pub use promote::PromoteReport;
pub use reclaim::ReclaimOutcome;
pub use registry::{RegistryStats, SharedPtpEntry, SharedPtpRegistry};
pub use share::{fork_share, unshare, unshare_range, ShareForkReport, UnshareTrigger};

/// TLB maintenance requests issued by kernel MM operations.
///
/// The simulated hardware TLB lives in `sat-sim`; kernel paths that
/// must invalidate entries (the Figure 6 unshare procedure, process
/// exit, the domain-fault handler) call through this trait. Pure
/// page-table experiments can pass [`NoTlb`].
pub trait TlbMaintenance {
    /// Invalidate all non-global entries tagged with `asid`
    /// (`TLBIASID`), as the unshare procedure does for the current
    /// process.
    fn flush_asid(&mut self, asid: sat_types::Asid);
    /// Invalidate every entry covering `va` in any address space
    /// (`TLBIMVAA`), as the domain-fault handler does.
    fn flush_va_all_asids(&mut self, va: sat_types::VirtAddr);
    /// Invalidate the entire TLB.
    fn flush_all(&mut self);
    /// Invalidate every non-global entry regardless of ASID
    /// (`TLBIALL` with globals held), as the ASID-rollover path does.
    /// Implementations without a global/non-global split may fall back
    /// to a full flush.
    fn flush_non_global(&mut self) {
        self.flush_all();
    }
    /// Invalidate the entries for page `vpn` tagged with `asid`
    /// (`TLBIMVA`); globals survive. Implementations without
    /// page-granular maintenance may over-flush the whole ASID.
    fn flush_page(&mut self, asid: sat_types::Asid, _vpn: u32) {
        self.flush_asid(asid);
    }
    /// Invalidate the entries overlapping `range` tagged with `asid`
    /// (back-to-back `TLBIMVA`s); globals survive. Implementations
    /// without range-granular maintenance may over-flush the whole
    /// ASID.
    fn flush_range(&mut self, asid: sat_types::Asid, _range: sat_types::VpnRange) {
        self.flush_asid(asid);
    }
}

/// A no-op [`TlbMaintenance`] sink for experiments that do not model
/// the TLB.
pub struct NoTlb;

impl TlbMaintenance for NoTlb {
    fn flush_asid(&mut self, _asid: sat_types::Asid) {}
    fn flush_va_all_asids(&mut self, _va: sat_types::VirtAddr) {}
    fn flush_all(&mut self) {}
    fn flush_page(&mut self, _asid: sat_types::Asid, _vpn: u32) {}
    fn flush_range(&mut self, _asid: sat_types::Asid, _range: sat_types::VpnRange) {}
}
