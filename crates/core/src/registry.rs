//! The central registry of shared page-table pages.
//!
//! Before this registry existed, "is this PTP shared, and by how
//! many?" was answered three different ways in three places: the
//! `NEED_COPY` bit in each process's level-1 pair said *that* a PTP
//! was shared, the frame's `mapcount` in `sat-phys` said *how many*
//! processes reference it, and the Figure-6 cause attribution was
//! reconstructed after the fact from [`KernelStats`] counters bumped
//! at every call site. [`SharedPtpRegistry`] centralizes all three:
//! one refcounted entry per shared PTP, keyed by the physical frame,
//! owning the sharer count, the chunk it covers, and the by-cause
//! unshare counters.
//!
//! `NEED_COPY` stays — it is the paper's *mechanism* (the spare bit
//! the fault path tests without any lookup) — but it is now a cached
//! hint whose truth lives here. The registry is what makes fork of a
//! fully-shared image O(shared regions): a chunk whose parent pair
//! already carries `NEED_COPY` has, by the eager-unshare invariant,
//! been sharable since its first share (every region op unshares
//! first), so fork attaches the child with one refcount bump — no VMA
//! overlap scan, no write-protect pass, no aging walk.
//!
//! Invariant (checked by the reconciliation proptest): for every
//! entry, `sharers` equals the frame's `mapcount` in `sat-phys`, and
//! an entry exists exactly while at least one process's level-1 pair
//! carries `NEED_COPY` for the frame.
//!
//! [`KernelStats`]: crate::kernel::KernelStats

use std::collections::BTreeMap;

use sat_types::{Domain, Pfn, VirtAddr};

use crate::share::UnshareTrigger;

/// One shared PTP's registry record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedPtpEntry {
    /// Base address of the 2MB chunk the PTP translates. Sharers
    /// inherit the zygote's layout, so the chunk is the same virtual
    /// address in every address space referencing the frame.
    pub chunk: VirtAddr,
    /// Domain of the sharers' level-1 pairs.
    pub domain: Domain,
    /// Processes whose level-1 pair references the frame with
    /// `NEED_COPY` set. Mirrors the frame's `mapcount` exactly.
    pub sharers: u32,
}

/// Share/unshare accounting owned by the registry — the Figure-6
/// cause attribution, previously spread over `Kernel` call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Attach operations: one per (fork, shared chunk).
    pub shares: u64,
    /// Attaches that created the entry (first share of a PTP).
    pub first_shares: u64,
    /// Unshare detaches, all causes; the sum of the four by-cause
    /// counters below.
    pub ptp_unshares: u64,
    /// Case 1: write fault into a shared PTP.
    pub unshares_write_fault: u64,
    /// Case 3: new region mapped into a shared chunk.
    pub unshares_new_region: u64,
    /// Case 4: region freed inside a shared chunk.
    pub unshares_region_free: u64,
    /// Case 2: protection change inside a shared chunk.
    pub unshares_region_op: u64,
    /// Case 5: exit-time detaches. Exit dereferences without copying,
    /// so these are deliberately *not* counted in `ptp_unshares`
    /// (matching the pre-registry `KernelStats` semantics).
    pub exit_detaches: u64,
}

/// Central refcounted registry of shared PTPs, keyed by the physical
/// frame holding the table.
#[derive(Default)]
pub struct SharedPtpRegistry {
    entries: BTreeMap<Pfn, SharedPtpEntry>,
    /// Share/unshare counters with cause attribution.
    pub stats: RegistryStats,
}

impl SharedPtpRegistry {
    /// An empty registry.
    pub fn new() -> SharedPtpRegistry {
        SharedPtpRegistry::default()
    }

    /// Records a fork attaching one new sharer to `frame`.
    ///
    /// The first share creates the entry counting both the parent and
    /// the child (the parent's reference becomes a *shared* reference
    /// the moment its pair is marked `NEED_COPY`); later shares bump
    /// the count. Returns the new sharer count.
    pub fn share(&mut self, frame: Pfn, chunk: VirtAddr, domain: Domain) -> u32 {
        self.stats.shares += 1;
        match self.entries.get_mut(&frame) {
            Some(e) => {
                debug_assert_eq!(
                    e.chunk, chunk,
                    "shared PTP re-attached at a different chunk"
                );
                e.sharers += 1;
                e.sharers
            }
            None => {
                self.stats.first_shares += 1;
                self.entries.insert(
                    frame,
                    SharedPtpEntry {
                        chunk,
                        domain,
                        sharers: 2,
                    },
                );
                2
            }
        }
    }

    /// Detaches one sharer from `frame` for an unshare with Figure-6
    /// cause `trigger`. Returns `true` when the caller was the last
    /// sharer (the entry is removed and the caller keeps the table
    /// private — no copy needed).
    pub fn detach(&mut self, frame: Pfn, trigger: UnshareTrigger) -> bool {
        self.stats.ptp_unshares += 1;
        match trigger {
            UnshareTrigger::WriteFault => self.stats.unshares_write_fault += 1,
            UnshareTrigger::NewRegion => self.stats.unshares_new_region += 1,
            UnshareTrigger::RegionFree => self.stats.unshares_region_free += 1,
            UnshareTrigger::RegionOp => self.stats.unshares_region_op += 1,
            // Exit goes through `exit_detach`; an explicit unshare
            // with the Exit trigger still detaches but is attributed
            // as a region op was before the registry existed.
            UnshareTrigger::Exit => self.stats.unshares_region_op += 1,
        }
        self.detach_inner(frame)
    }

    /// Detaches one sharer at process exit (case 5). Exit tears the
    /// reference down without copying, so this bumps only
    /// `exit_detaches`, never `ptp_unshares`.
    pub fn exit_detach(&mut self, frame: Pfn) -> bool {
        self.stats.exit_detaches += 1;
        self.detach_inner(frame)
    }

    fn detach_inner(&mut self, frame: Pfn) -> bool {
        let e = self
            .entries
            .get_mut(&frame)
            .expect("detach of a PTP the registry does not know as shared");
        if e.sharers == 1 {
            self.entries.remove(&frame);
            true
        } else {
            e.sharers -= 1;
            false
        }
    }

    /// The sharer count for `frame`, if it is registered as shared.
    ///
    /// A count of 1 means every other sharer has since unshared or
    /// exited; the remaining reference still carries `NEED_COPY` and
    /// will take the cheap last-sharer path at its next unshare.
    pub fn sharers(&self, frame: Pfn) -> Option<u32> {
        self.entries.get(&frame).map(|e| e.sharers)
    }

    /// The full entry for `frame`, if registered.
    pub fn entry(&self, frame: Pfn) -> Option<&SharedPtpEntry> {
        self.entries.get(&frame)
    }

    /// Whether `frame` is shared with at least one *other* process
    /// right now.
    pub fn shared_with_others(&self, frame: Pfn) -> bool {
        self.sharers(frame).is_some_and(|s| s > 1)
    }

    /// Iterates registered entries in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (Pfn, &SharedPtpEntry)> + '_ {
        self.entries.iter().map(|(&f, e)| (f, e))
    }

    /// Number of registered (shared) PTPs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no PTP is currently shared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Pfn {
        Pfn::new(42)
    }

    fn chunk() -> VirtAddr {
        VirtAddr::new(0x4000_0000)
    }

    #[test]
    fn first_share_counts_parent_and_child() {
        let mut r = SharedPtpRegistry::new();
        assert_eq!(r.share(frame(), chunk(), Domain::USER), 2);
        assert_eq!(r.share(frame(), chunk(), Domain::USER), 3);
        assert_eq!(r.sharers(frame()), Some(3));
        assert_eq!(r.stats.shares, 2);
        assert_eq!(r.stats.first_shares, 1);
    }

    #[test]
    fn detach_attributes_causes_and_removes_last_sharer() {
        let mut r = SharedPtpRegistry::new();
        r.share(frame(), chunk(), Domain::USER);
        assert!(!r.detach(frame(), UnshareTrigger::WriteFault));
        assert_eq!(r.sharers(frame()), Some(1));
        assert!(r.detach(frame(), UnshareTrigger::RegionOp));
        assert!(r.is_empty());
        assert_eq!(r.stats.ptp_unshares, 2);
        assert_eq!(r.stats.unshares_write_fault, 1);
        assert_eq!(r.stats.unshares_region_op, 1);
    }

    #[test]
    fn exit_detach_is_not_an_unshare() {
        let mut r = SharedPtpRegistry::new();
        r.share(frame(), chunk(), Domain::USER);
        assert!(!r.exit_detach(frame()));
        assert!(r.exit_detach(frame()));
        assert!(r.is_empty());
        assert_eq!(r.stats.exit_detaches, 2);
        assert_eq!(r.stats.ptp_unshares, 0);
    }

    #[test]
    fn shared_with_others_tracks_the_boundary() {
        let mut r = SharedPtpRegistry::new();
        assert!(!r.shared_with_others(frame()));
        r.share(frame(), chunk(), Domain::USER);
        assert!(r.shared_with_others(frame()));
        r.exit_detach(frame());
        // One reference left: nobody else shares it anymore.
        assert!(!r.shared_with_others(frame()));
        assert_eq!(r.len(), 1);
    }
}
