//! Flush batching: the `mmu_gather` analogue.
//!
//! Kernel MM operations used to issue TLB maintenance inline, one
//! call per page or per unshare — each of which the machine layer
//! turns into a cross-core shootdown. Linux instead *gathers* the
//! pending invalidations of an operation in an `mmu_gather` and
//! resolves them once at the end. [`FlushBatch`] is that gather: call
//! sites accumulate [`FlushOp`]s while the operation mutates page
//! tables, and a single [`FlushBatch::apply`] at the end coalesces
//! adjacent pages into ranges, drops ops subsumed by wider ones, and
//! escalates a range to a full per-ASID flush once it grows past
//! [`FLUSH_CEILING_PAGES`] pages (the spirit of Linux's
//! `tlb_single_page_flush_ceiling`) — so the machine sees one precise
//! shootdown per operation instead of one per call site.

use sat_obs::FlushReason;
use sat_types::{Asid, Pid, VirtAddr, VpnRange};

use crate::TlbMaintenance;

/// Pages above which a range flush is escalated to a full per-ASID
/// flush. Back-to-back per-page invalidations (`TLBIMVA`) beat a
/// whole-ASID flush (`TLBIASID` plus the refills it causes) only up
/// to a point; Linux tunes the crossover as
/// `tlb_single_page_flush_ceiling`, default 33 — we default higher
/// because the simulated refill is a full table walk through the
/// cache hierarchy.
pub const FLUSH_CEILING_PAGES: u32 = 64;

/// One pending TLB invalidation, ordered from narrowest to widest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOp {
    /// One page of one address space (`TLBIMVA`).
    Page {
        /// Address space whose entry dies; globals survive.
        asid: Asid,
        /// Virtual page number of the mapping.
        vpn: u32,
    },
    /// A run of pages of one address space (back-to-back `TLBIMVA`s).
    Range {
        /// Address space whose entries die; globals survive.
        asid: Asid,
        /// Pages whose entries die.
        range: VpnRange,
    },
    /// One page in *every* address space, globals included
    /// (`TLBIMVAA`) — used when a shared-PTP PTE is torn and the
    /// sharers' ASIDs cannot be enumerated, or when the torn PTE was
    /// global.
    VaAllAsids(VirtAddr),
    /// Every non-global entry of one address space (`TLBIASID`).
    Asid(Asid),
    /// Everything, globals included (`TLBIALL`) — the escalation for
    /// operations that touch global (zygote library) mappings.
    Global,
}

/// What resolving a batch did — returned by [`FlushBatch::apply`] and
/// mirrored into the [`sat_obs::Payload::FlushBatch`] event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Ops gathered before resolution.
    pub ops: u64,
    /// Ops absorbed by a neighbour or a wider op during resolution.
    pub coalesced: u64,
    /// Per-ASID range groups escalated to a full ASID flush because
    /// they crossed the page ceiling.
    pub escalated: u64,
}

/// An accumulator for the TLB maintenance one kernel operation owes.
///
/// Ops carry the [`FlushReason`] of the call site that gathered them,
/// so one batch can serve an operation whose sub-steps attribute
/// differently (a `munmap` gathers `Unshare`-reason ops from the PTPs
/// it unshares and a `RegionOp`-reason range for the unmapped pages);
/// `apply` resolves and issues each reason group under its own
/// attribution scope.
pub struct FlushBatch {
    /// Process the batch acts for (event attribution only).
    pid: Pid,
    /// Its ASID at gather time (event attribution only).
    asid: Asid,
    ceiling: u32,
    ops: Vec<(FlushOp, FlushReason)>,
}

impl FlushBatch {
    /// An empty batch acting for `pid`/`asid`.
    pub fn new(pid: Pid, asid: Asid) -> FlushBatch {
        FlushBatch {
            pid,
            asid,
            ceiling: FLUSH_CEILING_PAGES,
            ops: Vec::new(),
        }
    }

    /// Overrides the escalation ceiling (tests and experiments).
    pub fn with_ceiling(mut self, pages: u32) -> FlushBatch {
        self.ceiling = pages;
        self
    }

    /// Gathers a single-page invalidation.
    pub fn page(&mut self, asid: Asid, vpn: u32, reason: FlushReason) {
        self.ops.push((FlushOp::Page { asid, vpn }, reason));
    }

    /// Gathers a range invalidation. Empty ranges are dropped — an
    /// empty `munmap` owes no maintenance.
    pub fn range(&mut self, asid: Asid, range: VpnRange, reason: FlushReason) {
        if !range.is_empty() {
            self.ops.push((FlushOp::Range { asid, range }, reason));
        }
    }

    /// Gathers a one-page-all-ASIDs invalidation (`TLBIMVAA`).
    pub fn va_all_asids(&mut self, va: VirtAddr, reason: FlushReason) {
        self.ops.push((FlushOp::VaAllAsids(va), reason));
    }

    /// Gathers a full per-ASID invalidation.
    pub fn asid(&mut self, asid: Asid, reason: FlushReason) {
        self.ops.push((FlushOp::Asid(asid), reason));
    }

    /// Gathers a machine-wide invalidation (globals included).
    pub fn global(&mut self, reason: FlushReason) {
        self.ops.push((FlushOp::Global, reason));
    }

    /// Whether anything has been gathered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Resolves the gathered ops and issues the surviving maintenance
    /// against `tlb`, one reason group at a time:
    ///
    /// 1. A [`FlushOp::Global`] in the group subsumes everything else
    ///    in it: one `flush_all`.
    /// 2. [`FlushOp::Asid`] ops are deduplicated and subsume the
    ///    group's page/range ops for the same ASID.
    /// 3. Remaining page/range ops are grouped per ASID, sorted, and
    ///    merged where overlapping or adjacent; a merged group whose
    ///    page total crosses the ceiling escalates to one
    ///    `flush_asid`, otherwise each surviving range is issued as a
    ///    `flush_page`/`flush_range`.
    ///
    /// Emits one [`sat_obs::Payload::FlushBatch`] event per non-empty
    /// batch.
    pub fn apply(self, tlb: &mut dyn TlbMaintenance) -> BatchOutcome {
        if self.ops.is_empty() {
            return BatchOutcome::default();
        }
        let mut outcome = BatchOutcome {
            ops: self.ops.len() as u64,
            ..BatchOutcome::default()
        };
        let mut reasons: Vec<FlushReason> = Vec::new();
        for (_, r) in &self.ops {
            if !reasons.contains(r) {
                reasons.push(*r);
            }
        }
        for reason in reasons {
            let group: Vec<FlushOp> = self
                .ops
                .iter()
                .filter(|(_, r)| *r == reason)
                .map(|(op, _)| *op)
                .collect();
            let ceiling = self.ceiling;
            sat_obs::with_flush_reason(reason, || {
                resolve_group(&group, ceiling, tlb, &mut outcome);
            });
        }
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                self.pid.raw(),
                self.asid.raw(),
                sat_obs::Payload::FlushBatch {
                    ops: outcome.ops,
                    coalesced: outcome.coalesced,
                    escalated: outcome.escalated,
                },
            );
        }
        outcome
    }
}

/// Resolves one reason group (see [`FlushBatch::apply`]).
fn resolve_group(
    group: &[FlushOp],
    ceiling: u32,
    tlb: &mut dyn TlbMaintenance,
    outcome: &mut BatchOutcome,
) {
    if group.iter().any(|op| matches!(op, FlushOp::Global)) {
        outcome.coalesced += group.len() as u64 - 1;
        tlb.flush_all();
        return;
    }
    // Full-ASID ops, deduplicated; they subsume the group's narrower
    // ops for the same ASID.
    let mut full: Vec<Asid> = Vec::new();
    for op in group {
        if let FlushOp::Asid(a) = op {
            if full.contains(a) {
                outcome.coalesced += 1;
            } else {
                full.push(*a);
            }
        }
    }
    // One-page-all-ASIDs ops, deduplicated. A full-ASID op does *not*
    // subsume them: globals survive `TLBIASID` but not `TLBIMVAA`.
    let mut vaa: Vec<VirtAddr> = Vec::new();
    for op in group {
        if let FlushOp::VaAllAsids(va) = op {
            if vaa.contains(va) {
                outcome.coalesced += 1;
            } else {
                vaa.push(*va);
            }
        }
    }
    let mut by_asid: Vec<(Asid, Vec<VpnRange>)> = Vec::new();
    for op in group {
        let (asid, range) = match op {
            FlushOp::Page { asid, vpn } => (*asid, VpnRange::single(*vpn)),
            FlushOp::Range { asid, range } => (*asid, *range),
            FlushOp::Asid(_) | FlushOp::VaAllAsids(_) | FlushOp::Global => continue,
        };
        if full.contains(&asid) {
            outcome.coalesced += 1;
            continue;
        }
        match by_asid.iter_mut().find(|(a, _)| *a == asid) {
            Some((_, ranges)) => ranges.push(range),
            None => by_asid.push((asid, vec![range])),
        }
    }
    for asid in &full {
        tlb.flush_asid(*asid);
    }
    for va in &vaa {
        tlb.flush_va_all_asids(*va);
    }
    for (asid, mut ranges) in by_asid {
        ranges.sort_by_key(|r| (r.start, r.end));
        let mut merged: Vec<VpnRange> = Vec::with_capacity(ranges.len());
        for r in ranges {
            if merged.last_mut().is_some_and(|last| last.try_merge(&r)) {
                outcome.coalesced += 1;
            } else {
                merged.push(r);
            }
        }
        let pages: u64 = merged.iter().map(|r| u64::from(r.page_count())).sum();
        if pages > u64::from(ceiling) {
            outcome.escalated += 1;
            tlb.flush_asid(asid);
        } else {
            for r in merged {
                if r.page_count() == 1 {
                    tlb.flush_page(asid, r.start);
                } else {
                    tlb.flush_range(asid, r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::VirtAddr;

    /// Records every maintenance call with the attribution reason in
    /// effect when it was issued.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<(String, FlushReason)>,
    }

    impl Recorder {
        fn log(&mut self, call: String) {
            self.calls.push((call, sat_obs::current_flush_reason()));
        }
    }

    impl TlbMaintenance for Recorder {
        fn flush_asid(&mut self, asid: Asid) {
            self.log(format!("asid {}", asid.raw()));
        }
        fn flush_va_all_asids(&mut self, va: VirtAddr) {
            self.log(format!("vaa {:#x}", va.raw()));
        }
        fn flush_all(&mut self) {
            self.log("all".into());
        }
        fn flush_page(&mut self, asid: Asid, vpn: u32) {
            self.log(format!("page {} {:#x}", asid.raw(), vpn));
        }
        fn flush_range(&mut self, asid: Asid, range: VpnRange) {
            self.log(format!(
                "range {} {:#x}..{:#x}",
                asid.raw(),
                range.start,
                range.end
            ));
        }
    }

    fn batch() -> FlushBatch {
        FlushBatch::new(Pid::new(1), Asid::new(1))
    }

    /// Applies `b` with a thread-local trace sink installed, so the
    /// reason scoping (`with_flush_reason` is a no-op when tracing is
    /// off) is observable by the [`Recorder`].
    fn apply_traced(b: FlushBatch, tlb: &mut Recorder) -> BatchOutcome {
        sat_obs::install(4096);
        let o = b.apply(tlb);
        sat_obs::uninstall();
        o
    }

    #[test]
    fn adjacent_pages_coalesce_into_one_range() {
        let mut b = batch();
        for vpn in [0x40002u32, 0x40000, 0x40001] {
            b.page(Asid::new(3), vpn, FlushReason::RegionOp);
        }
        let mut tlb = Recorder::default();
        let o = apply_traced(b, &mut tlb);
        assert_eq!(
            tlb.calls,
            vec![("range 3 0x40000..0x40003".into(), FlushReason::RegionOp)]
        );
        assert_eq!(
            o,
            BatchOutcome {
                ops: 3,
                coalesced: 2,
                escalated: 0
            }
        );
    }

    #[test]
    fn disjoint_ranges_stay_separate_and_singles_flush_as_pages() {
        let mut b = batch();
        b.range(
            Asid::new(2),
            VpnRange::new(0x10, 0x14),
            FlushReason::RegionOp,
        );
        b.page(Asid::new(2), 0x80, FlushReason::RegionOp);
        let mut tlb = Recorder::default();
        let o = apply_traced(b, &mut tlb);
        assert_eq!(
            tlb.calls,
            vec![
                ("range 2 0x10..0x14".into(), FlushReason::RegionOp),
                ("page 2 0x80".into(), FlushReason::RegionOp),
            ]
        );
        assert_eq!(o.coalesced, 0);
    }

    #[test]
    fn crossing_the_ceiling_escalates_to_one_asid_flush() {
        let mut at = batch();
        at.range(
            Asid::new(4),
            VpnRange::new(0, FLUSH_CEILING_PAGES),
            FlushReason::Exit,
        );
        let mut tlb = Recorder::default();
        assert_eq!(
            apply_traced(at, &mut tlb).escalated,
            0,
            "at the ceiling stays ranged"
        );

        let mut over = batch();
        over.range(
            Asid::new(4),
            VpnRange::new(0, FLUSH_CEILING_PAGES + 1),
            FlushReason::Exit,
        );
        let mut tlb = Recorder::default();
        let o = apply_traced(over, &mut tlb);
        assert_eq!(tlb.calls, vec![("asid 4".into(), FlushReason::Exit)]);
        assert_eq!(o.escalated, 1);
    }

    #[test]
    fn asid_op_subsumes_its_pages_and_dedups() {
        let mut b = batch();
        b.page(Asid::new(5), 0x100, FlushReason::Unshare);
        b.asid(Asid::new(5), FlushReason::Unshare);
        b.asid(Asid::new(5), FlushReason::Unshare);
        b.page(Asid::new(6), 0x100, FlushReason::Unshare);
        let mut tlb = Recorder::default();
        let o = apply_traced(b, &mut tlb);
        assert_eq!(
            tlb.calls,
            vec![
                ("asid 5".into(), FlushReason::Unshare),
                ("page 6 0x100".into(), FlushReason::Unshare),
            ]
        );
        assert_eq!(o.coalesced, 2);
    }

    #[test]
    fn global_subsumes_the_whole_reason_group() {
        let mut b = batch();
        b.range(Asid::new(2), VpnRange::new(0, 8), FlushReason::RegionOp);
        b.global(FlushReason::RegionOp);
        b.page(Asid::new(3), 0x9, FlushReason::RegionOp);
        let mut tlb = Recorder::default();
        let o = apply_traced(b, &mut tlb);
        assert_eq!(tlb.calls, vec![("all".into(), FlushReason::RegionOp)]);
        assert_eq!(o.coalesced, 2);
    }

    #[test]
    fn reason_groups_resolve_under_their_own_attribution() {
        let mut b = batch();
        b.page(Asid::new(7), 0x40, FlushReason::Unshare);
        b.range(
            Asid::new(7),
            VpnRange::new(0x50, 0x52),
            FlushReason::RegionOp,
        );
        let mut tlb = Recorder::default();
        apply_traced(b, &mut tlb);
        assert_eq!(
            tlb.calls,
            vec![
                ("page 7 0x40".into(), FlushReason::Unshare),
                ("range 7 0x50..0x52".into(), FlushReason::RegionOp),
            ]
        );
    }

    #[test]
    fn va_all_asids_dedups_and_survives_asid_subsumption() {
        let mut b = batch();
        let va = VirtAddr::new(0x4000_2000);
        b.va_all_asids(va, FlushReason::Reclaim);
        b.va_all_asids(va, FlushReason::Reclaim);
        // A full-ASID flush must not subsume the all-ASIDs page op:
        // globals survive TLBIASID but not TLBIMVAA.
        b.asid(Asid::new(3), FlushReason::Reclaim);
        b.page(Asid::new(4), 0x77, FlushReason::Reclaim);
        let mut tlb = Recorder::default();
        let o = apply_traced(b, &mut tlb);
        assert_eq!(
            tlb.calls,
            vec![
                ("asid 3".into(), FlushReason::Reclaim),
                ("vaa 0x40002000".into(), FlushReason::Reclaim),
                ("page 4 0x77".into(), FlushReason::Reclaim),
            ]
        );
        assert_eq!(o.coalesced, 1);

        // Global still subsumes the whole group.
        let mut g = batch();
        g.va_all_asids(va, FlushReason::Reclaim);
        g.global(FlushReason::Reclaim);
        let mut tlb = Recorder::default();
        let o = apply_traced(g, &mut tlb);
        assert_eq!(tlb.calls, vec![("all".into(), FlushReason::Reclaim)]);
        assert_eq!(o.coalesced, 1);
    }

    #[test]
    fn empty_batch_issues_nothing() {
        let mut tlb = Recorder::default();
        let o = apply_traced(batch(), &mut tlb);
        assert!(tlb.calls.is_empty());
        assert_eq!(o, BatchOutcome::default());
    }
}
