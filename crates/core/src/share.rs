//! PTP sharing and unsharing: Sections 3.1.1 and 3.1.2 of the paper.

use sat_mmu::{Mapper, Ptp, PtpStore, TableHalf};
use sat_phys::{FrameKind, PhysMem};
use sat_types::{Asid, Domain, Pid, SatError, SatResult, VaRange, VirtAddr, VpnRange, PTP_SPAN};
use sat_vm::{copies_ptes, copy_vma_ptes_in_range, ForkReport, Mm};

use crate::config::{CopyOnUnshare, KernelConfig};
use crate::flush::FlushBatch;
use crate::registry::SharedPtpRegistry;

/// Why an unshare was performed — the five cases of Section 3.1.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnshareTrigger {
    /// Case 1: a write page fault inside the shared PTP's range.
    WriteFault,
    /// Case 2: a region in the range was modified by a system call
    /// (`mmap`/`munmap`/`mprotect`).
    RegionOp,
    /// Case 3: a new region was allocated in the range (eager unshare
    /// — the paper rejects the lazy alternative as too complex).
    NewRegion,
    /// Case 4: a region in the range was freed.
    RegionFree,
    /// Case 5: process termination frees the PTP.
    Exit,
}

impl UnshareTrigger {
    /// The observability-layer mirror of this trigger (`sat-obs` sits
    /// below `sat-core` in the dependency graph, so the enum is
    /// duplicated there rather than imported here).
    pub fn cause(self) -> sat_obs::UnshareCause {
        match self {
            UnshareTrigger::WriteFault => sat_obs::UnshareCause::WriteFault,
            UnshareTrigger::RegionOp => sat_obs::UnshareCause::RegionOp,
            UnshareTrigger::NewRegion => sat_obs::UnshareCause::NewRegion,
            UnshareTrigger::RegionFree => sat_obs::UnshareCause::RegionFree,
            UnshareTrigger::Exit => sat_obs::UnshareCause::Exit,
        }
    }
}

/// Reports one PTP unshare to the observability layer.
fn emit_unshare(mm: &Mm, chunk: VirtAddr, trigger: UnshareTrigger, report: &UnshareReport) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Share,
            mm.pid.raw(),
            mm.asid.raw(),
            sat_obs::Payload::PtpUnshare {
                cause: trigger.cause(),
                ptes_copied: report.ptes_copied,
                last_sharer: report.last_sharer,
                va: chunk.raw(),
            },
        );
    }
}

/// Accounting from a shared-PTP fork (the Table 4 row).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct ShareForkReport {
    /// PTPs the child attached to as shared.
    pub ptps_shared: u64,
    /// PTEs copied for chunks that could not be shared (e.g. stack).
    pub ptes_copied: u64,
    /// Of those, PTEs of file-backed mappings.
    pub ptes_copied_file: u64,
    /// PTPs allocated for the child (again: unsharable chunks only).
    pub ptps_allocated: u64,
    /// PTEs write-protected to establish COW over newly-shared PTPs.
    pub write_protect_ops: u64,
    /// Regions inherited.
    pub vmas: usize,
    /// VPN ranges of parent PTEs this fork made *less permissive*:
    /// the write-protected spans (or, under the `l1_write_protect`
    /// ablation, the whole span of each first-shared chunk — the
    /// hardware assist strips write permission with no per-PTE pass).
    /// Cached parent translations for these ranges are stale; the
    /// caller gathers them into a [`FlushBatch`] (Linux's
    /// `flush_tlb_mm` on `dup_mmap`, narrowed to what changed).
    pub protected: Vec<VpnRange>,
}

/// Result of one [`unshare`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnshareReport {
    /// The caller was the last sharer: only NEED_COPY was cleared.
    pub last_sharer: bool,
    /// PTEs copied into the new private PTP.
    pub ptes_copied: u64,
}

/// Returns `true` if the 2MB chunk at `chunk` (all regions
/// overlapping it) is eligible for PTP sharing.
///
/// The paper shares aggressively — private and writable regions are
/// sharable (page-table copying is postponed to first modification) —
/// but excludes stacks by design choice, since they are written
/// immediately after the child is scheduled.
pub fn chunk_sharable(mm: &Mm, chunk: VirtAddr, config: &KernelConfig) -> bool {
    debug_assert!(chunk.is_ptp_aligned());
    let span = VaRange::from_len(chunk, PTP_SPAN);
    mm.vmas_overlapping(span)
        .all(|vma| config.share_stack || !vma.dont_share_ptp)
}

/// Forks `parent` sharing its PTPs with the child (Section 3.1.1).
///
/// For every PTP in the parent's address space whose chunk is
/// sharable:
///
/// 1. If `NEED_COPY` is not yet set, every writable PTE in the PTP is
///    write-protected (establishing COW for the data pages), and the
///    parent's level-1 pair is marked `NEED_COPY`.
/// 2. The child's level-1 pair is pointed at the same PTP with
///    `NEED_COPY` set, and the PTP's sharer count is incremented.
///
/// Unsharable chunks fall back to the stock copy (per
/// `config.fork_policy`).
///
/// A chunk whose parent pair already carries `NEED_COPY` takes the
/// registry fast path: the eager-unshare invariant (any region op on
/// the chunk unshares — and so clears the bit — before proceeding)
/// guarantees the chunk has stayed sharable since its first share, so
/// the child attaches with one refcount bump and no VMA-overlap scan,
/// write-protect pass, or aging walk. This is what makes fork of a
/// fully-shared image O(shared regions).
#[allow(clippy::too_many_arguments)]
pub fn fork_share(
    parent: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    registry: &mut SharedPtpRegistry,
    child_pid: Pid,
    child_asid: Asid,
    config: &KernelConfig,
) -> SatResult<(Mm, ShareForkReport)> {
    let mut child = Mm::new(phys, child_pid, child_asid)?;
    child.dacr = parent.dacr;
    child.is_zygote_child = parent.is_zygote_like();
    child.set_vmas(parent.clone_vmas());

    let mut report = ShareForkReport {
        vmas: child.vma_count(),
        ..ShareForkReport::default()
    };

    let parent_ptps: Vec<(usize, sat_types::Pfn)> = parent.root.iter_ptps().collect();
    for (pair_idx, ptp_frame) in parent_ptps {
        let chunk = VirtAddr::new((pair_idx as u32) << 20);
        debug_assert!(chunk.is_ptp_aligned());
        let span = VaRange::from_len(chunk, PTP_SPAN);

        let entry = parent.root.entry(pair_idx);
        if entry.need_copy() {
            // Fast path: the PTP is already shared and registered —
            // eager unsharing keeps NEED_COPY truthful, so no scan or
            // protection work is owed. One refcount bump attaches the
            // child.
            let domain = entry.domain().unwrap_or(Domain::USER);
            registry.share(ptp_frame, chunk, domain);
            child.root.set_table_pair(chunk, ptp_frame, domain, true);
            phys.map_inc(ptp_frame);
            report.ptps_shared += 1;
            child.counters.ptps_shared_at_fork += 1;
        } else if chunk_sharable(parent, chunk, config) {
            let domain = entry.domain().unwrap_or(Domain::USER);
            // First share of this PTP: establish COW protection.
            // (With the hypothetical level-1 write-protect
            // hardware assist, the per-PTE pass is unnecessary —
            // the cost the paper attributes to ARM's lack of it.)
            if !config.l1_write_protect {
                let vma_ranges: Vec<VaRange> = parent
                    .vmas_overlapping(span)
                    .filter(|v| v.perms.write())
                    .filter_map(|v| v.range.intersect(&span))
                    .collect();
                let mut mapper = Mapper::new(&mut parent.root, ptps, phys, parent.pid);
                for r in vma_ranges {
                    let protected = mapper.write_protect_range(r) as u64;
                    report.write_protect_ops += protected;
                    if protected > 0 {
                        report.protected.push(VpnRange::from_va_range(&r));
                    }
                }
            } else {
                // The assist demotes the whole chunk at walk time;
                // anything cached writable for it is now stale.
                report.protected.push(VpnRange::from_va_range(&span));
            }
            // Age the referenced bits: the child has touched
            // nothing yet, and on ARM the "referenced" bit is
            // software-maintained anyway. This is what gives the
            // copy-only-referenced unshare policy (Section 3.1.3)
            // something to distinguish: only PTEs used since the
            // share are copied.
            if let Some(table) = ptps.get_mut(ptp_frame) {
                for half in [TableHalf::Lower, TableHalf::Upper] {
                    let idxs: Vec<usize> = table.iter_half(half).map(|(i, _)| i).collect();
                    for i in idxs {
                        table.update_sw(half, i, |sw| sw.young = false);
                    }
                }
            }
            parent.root.set_need_copy(chunk, true);
            registry.share(ptp_frame, chunk, domain);
            child.root.set_table_pair(chunk, ptp_frame, domain, true);
            phys.map_inc(ptp_frame);
            // The PTP's PTEs now serve every sharer, so their rmap
            // entries move from the parent to the sentinel owner:
            // reclaim must tear each physical PTE exactly once,
            // through the shared path, not once per recorded owner.
            if let Some(table) = ptps.get(ptp_frame) {
                let slots: Vec<(TableHalf, usize, sat_types::Pfn)> = table
                    .iter()
                    .map(|(half, idx, slot)| (half, idx, slot.hw.frame_for_slot(idx)))
                    .collect();
                for (half, idx, frame) in slots {
                    if matches!(
                        phys.page(frame).kind,
                        FrameKind::Anon | FrameKind::File { .. }
                    ) {
                        phys.rmap_reown(
                            frame,
                            parent.pid,
                            Pid::new(0),
                            Mapper::slot_va(chunk, half, idx),
                        );
                    }
                }
            }
            report.ptps_shared += 1;
            child.counters.ptps_shared_at_fork += 1;
        } else {
            // Unsharable chunk (stack): stock copy, clamped to it.
            let vmas: Vec<sat_vm::Vma> = parent.vmas_overlapping(span).cloned().collect();
            let mut fr = ForkReport::default();
            for vma in &vmas {
                if !copies_ptes(config.fork_policy, vma) {
                    continue;
                }
                let cow_before = fr.cow_protected;
                copy_vma_ptes_in_range(
                    parent,
                    &mut child,
                    ptps,
                    phys,
                    vma,
                    span,
                    Domain::USER,
                    &mut fr,
                )?;
                // The stock copy COW-protected parent PTEs here: any
                // writable translation cached for them is stale and
                // must be in the fork flush.
                if fr.cow_protected > cow_before {
                    if let Some(r) = vma.range.intersect(&span) {
                        report.protected.push(VpnRange::from_va_range(&r));
                    }
                }
            }
            report.ptes_copied += fr.ptes_copied;
            report.ptes_copied_file += fr.ptes_copied_file;
            report.ptps_allocated += fr.ptps_allocated;
        }
    }
    child.counters.ptes_copied_fork = report.ptes_copied;
    child.counters.ptps_allocated = report.ptps_allocated;
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Share,
            child_pid.raw(),
            child_asid.raw(),
            sat_obs::Payload::PtpShare {
                ptps: report.ptps_shared,
                write_protect_ops: report.write_protect_ops,
            },
        );
    }
    Ok((child, report))
}

/// Unshares the PTP covering `va` in `mm`, if it is marked
/// `NEED_COPY` (the Figure 6 procedure). Returns `None` when the
/// chunk is not shared.
///
/// The last-sharer decision and the cause attribution both come from
/// the registry: [`SharedPtpRegistry::detach`] decrements the entry's
/// refcount, records the Figure-6 trigger, and reports whether the
/// caller was the last sharer. If so, only the `NEED_COPY` flag is
/// cleared. Otherwise: the level-1 pair is cleared, a new PTP is
/// allocated, and the valid PTEs are copied into it (all of them, or
/// only referenced ones, per `config.copy_on_unshare`).
///
/// TLB maintenance is *gathered* into `batch`, not issued: the copied
/// PTEs are normally bit-identical to the shared originals, so cached
/// translations stay valid and a write-fault unshare owes only the
/// faulting page. Only when the private copy diverges (PTEs dropped
/// by `ReferencedOnly`, or write-stripped under `l1_write_protect`)
/// is the whole chunk span gathered — wide enough that the batch
/// escalates it to a per-ASID flush. Region-op triggers gather
/// nothing here; the caller's own range op covers the operated pages.
#[allow(clippy::too_many_arguments)]
pub fn unshare(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    registry: &mut SharedPtpRegistry,
    va: VirtAddr,
    config: &KernelConfig,
    batch: &mut FlushBatch,
    trigger: UnshareTrigger,
) -> SatResult<Option<UnshareReport>> {
    let chunk = va.ptp_base();
    let entry = mm.root.entry_for(chunk);
    if !entry.need_copy() {
        return Ok(None);
    }
    let shared_frame = entry.ptp().expect("NEED_COPY implies a table entry");
    let domain = entry.domain().unwrap_or(Domain::USER);
    let span = VaRange::from_len(chunk, PTP_SPAN);

    mm.counters.ptps_unshared += 1;
    if !matches!(trigger, UnshareTrigger::WriteFault) {
        mm.counters.unshares_by_region_op += 1;
    }

    debug_assert_eq!(
        registry.sharers(shared_frame),
        Some(phys.mapcount(shared_frame)),
        "registry sharer count out of sync with frame mapcount"
    );
    if registry.detach(shared_frame, trigger) {
        // Last sharer: just clear NEED_COPY.
        mm.root.set_need_copy(chunk, false);
        if config.l1_write_protect {
            // Ablation fix-up: without the share-time write-protect
            // pass, data frames that other (now departed or unshared)
            // processes still map must be COW-protected before this
            // process regains direct write access — and any cached
            // translations for the chunk (writable entries loaded
            // before the fork, or entries write-stripped by the L1
            // protection) must be evicted so the new permissions take
            // effect.
            protect_multiply_mapped(mm, ptps, phys, chunk);
            batch.range(
                mm.asid,
                VpnRange::from_va_range(&span),
                sat_obs::FlushReason::Unshare,
            );
        }
        let report = UnshareReport {
            last_sharer: true,
            ptes_copied: 0,
        };
        emit_unshare(mm, chunk, trigger, &report);
        return Ok(Some(report));
    }

    // Clear our level-1 pair; the TLB maintenance the copy owes is
    // decided below, once we know whether the copy diverges.
    mm.root.clear_table_pair(chunk);

    // Allocate and populate the private copy.
    let new_frame = phys.alloc(FrameKind::PageTable)?;
    let shared = ptps
        .get(shared_frame)
        .ok_or(SatError::Internal("shared PTP missing from store"))?;
    let mut copy = Ptp::new();
    let mut copied = 0u64;
    let mut diverged = false;
    for (half, idx, slot) in shared.iter() {
        let keep = match config.copy_on_unshare {
            CopyOnUnshare::All => true,
            // The paper's cheaper alternative: "only copying the PTEs
            // that have their reference bit set or would have been
            // copied with the stock Android kernel at fork time".
            // Anonymous pages (including COW'd data) exist only in
            // their frames — dropping their PTEs would lose data — so
            // only *file-backed* PTEs, which refault from the page
            // cache, may be skipped.
            CopyOnUnshare::ReferencedOnly => slot.sw.young || !slot.sw.file_backed,
        };
        if !keep {
            // A dropped PTE must not keep serving from the TLB.
            diverged = true;
            continue;
        }
        let mut hw = slot.hw;
        if config.l1_write_protect && hw.perms.write() && !slot.sw.shared {
            // Ablation fix-up (see above): the copy maps frames still
            // mapped by the shared PTP, so private-writable entries
            // must be COW-protected.
            hw = hw.write_protected();
            diverged = true;
        }
        copy.set(half, idx, hw, slot.sw);
        copied += 1;
    }
    if diverged {
        batch.range(
            mm.asid,
            VpnRange::from_va_range(&span),
            sat_obs::FlushReason::Unshare,
        );
    } else if matches!(trigger, UnshareTrigger::WriteFault) {
        // Identical copy: only the faulting page's translation is
        // about to change (the COW repair that follows).
        batch.page(mm.asid, va.vpn(), sat_obs::FlushReason::Unshare);
    }
    // The copied PTEs are new mappings of their frames (slot-aware:
    // each replicated 64KB descriptor references its own 4KB frame of
    // the group, matching the teardown accounting). Each copy is a
    // private PTE of `mm`, so it gets its own rmap entry under `mm`'s
    // pid (the shared original stays recorded under the sentinel).
    for (half, idx, slot) in copy.iter() {
        let frame = slot.hw.frame_for_slot(idx);
        phys.get_page(frame);
        phys.map_inc(frame);
        if matches!(
            phys.page(frame).kind,
            FrameKind::Anon | FrameKind::File { .. }
        ) {
            phys.rmap_add(frame, mm.pid, Mapper::slot_va(chunk, half, idx));
        }
    }
    ptps.insert_clone(new_frame, copy);
    phys.map_inc(new_frame);
    phys.map_dec(shared_frame);
    mm.root.set_table_pair(chunk, new_frame, domain, false);

    mm.counters.ptes_copied_unshare += copied;
    mm.counters.ptps_allocated += 1;
    let report = UnshareReport {
        last_sharer: false,
        ptes_copied: copied,
    };
    emit_unshare(mm, chunk, trigger, &report);
    Ok(Some(report))
}

/// Unshares every shared PTP whose chunk overlaps `range` (the
/// multi-PTP case of Section 3.1.2's system-call trigger). Returns the
/// number of PTPs unshared.
#[allow(clippy::too_many_arguments)]
pub fn unshare_range(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    registry: &mut SharedPtpRegistry,
    range: VaRange,
    config: &KernelConfig,
    batch: &mut FlushBatch,
    trigger: UnshareTrigger,
) -> SatResult<usize> {
    let mut count = 0;
    for chunk in range.ptps() {
        if unshare(mm, ptps, phys, registry, chunk, config, batch, trigger)?.is_some() {
            count += 1;
        }
    }
    Ok(count)
}

/// Write-protects private-writable PTEs in `chunk` whose frames are
/// mapped more than once (support for the `l1_write_protect`
/// ablation's last-sharer path).
fn protect_multiply_mapped(mm: &mut Mm, ptps: &mut PtpStore, phys: &mut PhysMem, chunk: VirtAddr) {
    let Some(frame) = mm.root.entry_for(chunk).ptp() else {
        return;
    };
    let Some(table) = ptps.get_mut(frame) else {
        return;
    };
    for half in [TableHalf::Lower, TableHalf::Upper] {
        let targets: Vec<(usize, sat_mmu::HwPte)> = table
            .iter_half(half)
            .filter(|(_, s)| s.hw.perms.write() && !s.sw.shared && phys.mapcount(s.hw.pfn) > 1)
            .map(|(i, s)| (i, s.hw.write_protected()))
            .collect();
        for (idx, hw) in targets {
            table.replace_hw(half, idx, hw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_phys::FileId;
    use sat_types::{AccessType, Perms, RegionTag, PAGE_SIZE};
    use sat_vm::{handle_fault, FaultCtx, MmapRequest};

    /// A throwaway gather for tests that don't assert on flushes.
    fn batch() -> FlushBatch {
        FlushBatch::new(Pid::new(1), Asid::new(1))
    }

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        reg: SharedPtpRegistry,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(16384);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            reg: SharedPtpRegistry::new(),
            mm,
        }
    }

    fn touch(mm: &mut Mm, ptps: &mut PtpStore, phys: &mut PhysMem, va: u32, access: AccessType) {
        handle_fault(
            mm,
            ptps,
            phys,
            VirtAddr::new(va),
            access,
            FaultCtx::default(),
        )
        .unwrap();
    }

    /// Maps 4 pages of library code at 0x4000_0000 and touches them.
    fn setup_code(f: &mut Fx) {
        let req = MmapRequest::file(
            4 * PAGE_SIZE,
            Perms::RX,
            FileId(0),
            0,
            RegionTag::ZygoteNativeCode,
            "libc.so",
        )
        .at(VirtAddr::new(0x4000_0000));
        sat_vm::mmap(&mut f.mm, &req).unwrap();
        for i in 0..4 {
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0x4000_0000 + i * PAGE_SIZE,
                AccessType::Execute,
            );
        }
    }

    /// Maps 2 heap pages at 0x4010_0000 (same 2MB chunk as the code)
    /// and writes them.
    fn setup_heap_same_chunk(f: &mut Fx) {
        let req = MmapRequest::anon(2 * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(0x4010_0000));
        sat_vm::mmap(&mut f.mm, &req).unwrap();
        for i in 0..2 {
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0x4010_0000 + i * PAGE_SIZE,
                AccessType::Write,
            );
        }
    }

    fn share_fork(f: &mut Fx, pid: u32) -> (Mm, ShareForkReport) {
        fork_share(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            Pid::new(pid),
            Asid::new(pid as u8),
            &KernelConfig::shared_ptp(),
        )
        .unwrap()
    }

    #[test]
    fn fork_shares_ptp_and_sets_need_copy() {
        let mut f = fx();
        setup_code(&mut f);
        assert_eq!(f.ptps.len(), 1);
        let (child, report) = share_fork(&mut f, 2);
        assert_eq!(report.ptps_shared, 1);
        assert_eq!(report.ptes_copied, 0);
        assert_eq!(report.ptps_allocated, 0);
        assert_eq!(f.ptps.len(), 1); // still one PTP, now shared
        let chunk = VirtAddr::new(0x4000_0000);
        assert!(f.mm.root.entry_for(chunk).need_copy());
        assert!(child.root.entry_for(chunk).need_copy());
        assert_eq!(
            f.mm.root.entry_for(chunk).ptp(),
            child.root.entry_for(chunk).ptp()
        );
        assert_eq!(
            f.phys.mapcount(f.mm.root.entry_for(chunk).ptp().unwrap()),
            2
        );
    }

    #[test]
    fn share_write_protects_writable_ptes() {
        let mut f = fx();
        setup_code(&mut f);
        setup_heap_same_chunk(&mut f);
        let (_, report) = share_fork(&mut f, 2);
        assert_eq!(report.write_protect_ops, 2); // the two heap pages
        let mapper = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, Pid::new(1));
        assert!(!mapper
            .get_pte(VirtAddr::new(0x4010_0000))
            .unwrap()
            .hw
            .perms
            .write());
        // Code PTEs were never writable: untouched.
        assert_eq!(
            mapper.get_pte(VirtAddr::new(0x4000_0000)).unwrap().hw.perms,
            Perms::RX
        );
    }

    #[test]
    fn second_fork_reuses_shared_ptp_without_reprotecting() {
        let mut f = fx();
        setup_code(&mut f);
        setup_heap_same_chunk(&mut f);
        let (_c1, r1) = share_fork(&mut f, 2);
        let (_c2, r2) = share_fork(&mut f, 3);
        assert_eq!(r1.write_protect_ops, 2);
        assert_eq!(r2.write_protect_ops, 0); // NEED_COPY already set
        let ptp =
            f.mm.root
                .entry_for(VirtAddr::new(0x4000_0000))
                .ptp()
                .unwrap();
        assert_eq!(f.phys.mapcount(ptp), 3);
    }

    #[test]
    fn stack_chunk_is_copied_not_shared() {
        let mut f = fx();
        setup_code(&mut f);
        // A stack in its own chunk.
        let req = MmapRequest::anon(4 * PAGE_SIZE, Perms::RW, RegionTag::Stack, "[stack]")
            .at(VirtAddr::new(0xBF00_0000));
        sat_vm::mmap(&mut f.mm, &req).unwrap();
        for i in 0..2 {
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0xBF00_0000 + i * PAGE_SIZE,
                AccessType::Write,
            );
        }
        let (mut child, report) = share_fork(&mut f, 2);
        assert_eq!(report.ptps_shared, 1); // code chunk
        assert_eq!(report.ptes_copied, 2); // stack PTEs
        assert_eq!(report.ptps_allocated, 1); // child's private stack PTP
        assert!(!child.root.entry_for(VirtAddr::new(0xBF00_0000)).need_copy());
        let cm = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, Pid::new(2));
        assert!(cm.get_pte(VirtAddr::new(0xBF00_0000)).is_some());
    }

    #[test]
    fn share_stack_ablation_shares_stack_chunk() {
        let mut f = fx();
        let req = MmapRequest::anon(4 * PAGE_SIZE, Perms::RW, RegionTag::Stack, "[stack]")
            .at(VirtAddr::new(0xBF00_0000));
        sat_vm::mmap(&mut f.mm, &req).unwrap();
        touch(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            0xBF00_0000,
            AccessType::Write,
        );
        let config = KernelConfig {
            share_stack: true,
            ..KernelConfig::shared_ptp()
        };
        let (_child, report) = fork_share(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            Pid::new(2),
            Asid::new(2),
            &config,
        )
        .unwrap();
        assert_eq!(report.ptps_shared, 1);
        assert_eq!(report.ptes_copied, 0);
    }

    #[test]
    fn pte_populated_in_shared_ptp_is_visible_to_all_sharers() {
        // The paper's key soft-fault elimination: a PTE created by one
        // process in a shared PTP is immediately visible to all.
        let mut f = fx();
        setup_code(&mut f);
        let (mut child, _) = share_fork(&mut f, 2);
        // The child faults a page the parent never touched... but the
        // PTP is shared, so first unshare must NOT happen for a read:
        // the PTE is simply populated in the shared PTP.
        // (The kernel wrapper performs population via handle_fault; a
        // read fault does not trigger unsharing.)
        // Simulate: populate directly through the child.
        // NOTE: handle_fault asserts !need_copy for set_pte via the
        // Mapper only on *write* paths... a read fault on a file page
        // inserts a PTE. The paper allows this: "When a page fault on
        // a read access occurs ... the corresponding PTE in the shared
        // PTP is populated."
        let va = VirtAddr::new(0x4000_4000);
        let req = MmapRequest::file(
            PAGE_SIZE,
            Perms::RX,
            FileId(0),
            100,
            RegionTag::ZygoteNativeCode,
            "libc.so",
        )
        .at(va);
        // Map the extra page in BOTH (pre-fork layout would have had
        // it; add to each to keep VMAs identical).
        sat_vm::mmap(&mut f.mm, &req).unwrap();
        sat_vm::mmap(&mut child, &req).unwrap();
        // Child faults it read-only; allowed to fill the shared PTP.
        handle_fault(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            va,
            AccessType::Execute,
            FaultCtx::default(),
        )
        .unwrap();
        // The parent now sees the PTE without any fault.
        let pm = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, Pid::new(1));
        assert!(pm.get_pte(va).is_some());
    }

    #[test]
    fn unshare_last_sharer_clears_need_copy_only() {
        let mut f = fx();
        setup_code(&mut f);
        let (child, _) = share_fork(&mut f, 2);
        // Child exits: sharer count drops back to 1.
        let chunk = VirtAddr::new(0x4000_0000);
        let ptp = child.root.entry_for(chunk).ptp().unwrap();
        {
            let mut child = child;
            sat_vm::exit_mmap(&mut child, &mut f.ptps, &mut f.phys);
            child.free_root(&mut f.phys);
            // What Kernel::exit does for every NEED_COPY pair.
            f.reg.exit_detach(ptp);
        }
        assert_eq!(f.phys.mapcount(ptp), 1);
        assert_eq!(f.reg.sharers(ptp), Some(1));
        // Parent still has NEED_COPY; an unshare is now the cheap path.
        let r = unshare(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            VirtAddr::new(0x4000_1234),
            &KernelConfig::shared_ptp(),
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        assert!(r.last_sharer);
        assert_eq!(r.ptes_copied, 0);
        assert!(!f.mm.root.entry_for(chunk).need_copy());
        assert_eq!(f.mm.root.entry_for(chunk).ptp(), Some(ptp)); // same PTP kept
        assert!(f.reg.is_empty(), "last-sharer unshare must drop the entry");
    }

    #[test]
    fn unshare_with_sharers_copies_ptes_to_new_ptp() {
        let mut f = fx();
        setup_code(&mut f);
        let (mut child, _) = share_fork(&mut f, 2);
        let chunk = VirtAddr::new(0x4000_0000);
        let shared_ptp = f.mm.root.entry_for(chunk).ptp().unwrap();
        let r = unshare(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            VirtAddr::new(0x4000_2000),
            &KernelConfig::shared_ptp(),
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        assert!(!r.last_sharer);
        assert_eq!(r.ptes_copied, 4);
        let new_ptp = child.root.entry_for(chunk).ptp().unwrap();
        assert_ne!(new_ptp, shared_ptp);
        assert!(!child.root.entry_for(chunk).need_copy());
        // Parent keeps the original, still marked shared until it
        // modifies it.
        assert_eq!(f.mm.root.entry_for(chunk).ptp(), Some(shared_ptp));
        assert!(f.mm.root.entry_for(chunk).need_copy());
        assert_eq!(f.phys.mapcount(shared_ptp), 1);
        // Data frames now have two PTE mappings each.
        let cm = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, Pid::new(2));
        let pfn = cm.get_pte(chunk).unwrap().hw.pfn;
        assert_eq!(f.phys.mapcount(pfn), 2);
        assert_eq!(child.counters.ptes_copied_unshare, 4);
        assert_eq!(child.counters.ptps_unshared, 1);
    }

    #[test]
    fn unshare_not_shared_is_noop() {
        let mut f = fx();
        setup_code(&mut f);
        let r = unshare(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            VirtAddr::new(0x4000_0000),
            &KernelConfig::shared_ptp(),
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap();
        assert!(r.is_none());
        assert_eq!(f.mm.counters.ptps_unshared, 0);
    }

    #[test]
    fn unshare_referenced_only_skips_cold_ptes() {
        let mut f = fx();
        setup_code(&mut f);
        let (mut child, _) = share_fork(&mut f, 2);
        // Sharing aged every referenced bit; the child re-touches two
        // of the four pages, marking only those young again. (Young
        // bits are metadata the access-bit emulation updates in place,
        // even in a shared PTP.)
        let frame = child
            .root
            .entry_for(VirtAddr::new(0x4000_0000))
            .ptp()
            .unwrap();
        for i in [0usize, 2] {
            let va = VirtAddr::new(0x4000_0000 + (i as u32) * PAGE_SIZE);
            let table = f.ptps.get_mut(frame).unwrap();
            assert!(
                table.update_sw(sat_mmu::TableHalf::of(va), va.l2_index(), |sw| {
                    sw.young = true;
                })
            );
        }
        let config = KernelConfig {
            copy_on_unshare: CopyOnUnshare::ReferencedOnly,
            ..KernelConfig::shared_ptp()
        };
        let r = unshare(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            VirtAddr::new(0x4000_0000),
            &config,
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        assert_eq!(r.ptes_copied, 2);
        let cm = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, Pid::new(2));
        assert!(cm.get_pte(VirtAddr::new(0x4000_0000)).is_some());
        assert!(cm.get_pte(VirtAddr::new(0x4000_1000)).is_none()); // refaults later
    }

    #[test]
    fn unshare_range_handles_multiple_chunks() {
        let mut f = fx();
        // Two chunks of code.
        for (base, file_off) in [(0x4000_0000u32, 0u32), (0x4020_0000, 50)] {
            let req = MmapRequest::file(
                2 * PAGE_SIZE,
                Perms::RX,
                FileId(0),
                file_off,
                RegionTag::ZygoteNativeCode,
                "libbig.so",
            )
            .at(VirtAddr::new(base));
            sat_vm::mmap(&mut f.mm, &req).unwrap();
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                base,
                AccessType::Execute,
            );
        }
        let (mut child, report) = share_fork(&mut f, 2);
        assert_eq!(report.ptps_shared, 2);
        let n = unshare_range(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            VaRange::from_len(VirtAddr::new(0x4000_0000), 0x40_0000),
            &KernelConfig::shared_ptp(),
            &mut batch(),
            UnshareTrigger::RegionOp,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(child.counters.unshares_by_region_op, 2);
    }

    #[test]
    fn cow_semantics_preserved_through_share_unshare() {
        // End-to-end COW check: parent writes to a heap page that sits
        // in a shared PTP; after unshare + fault the child must still
        // see its own (old) frame.
        let mut f = fx();
        setup_heap_same_chunk(&mut f);
        let va = VirtAddr::new(0x4010_0000);
        let orig_pfn = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, Pid::new(1))
            .get_pte(va)
            .unwrap()
            .hw
            .pfn;
        let (mut child, _) = share_fork(&mut f, 2);
        // Parent writes: kernel wrapper would unshare first, then
        // fault. Emulate that sequence.
        unshare(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            va,
            &KernelConfig::shared_ptp(),
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        handle_fault(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            va,
            AccessType::Write,
            FaultCtx::default(),
        )
        .unwrap();
        let parent_pfn = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, Pid::new(1))
            .get_pte(va)
            .unwrap()
            .hw
            .pfn;
        let child_pfn = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, Pid::new(2))
            .get_pte(va)
            .unwrap()
            .hw
            .pfn;
        assert_ne!(parent_pfn, child_pfn, "parent got a COW copy");
        assert_eq!(child_pfn, orig_pfn, "child keeps the original frame");
    }

    #[test]
    fn l1_write_protect_ablation_skips_share_pass_but_stays_correct() {
        let mut f = fx();
        setup_heap_same_chunk(&mut f);
        let config = KernelConfig {
            l1_write_protect: true,
            ..KernelConfig::shared_ptp()
        };
        let va = VirtAddr::new(0x4010_0000);
        let (mut child, report) = fork_share(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            Pid::new(2),
            Asid::new(2),
            &config,
        )
        .unwrap();
        assert_eq!(report.write_protect_ops, 0); // hw assist: no pass
                                                 // Child "writes": the L1 protection faults, child unshares.
        unshare(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            va,
            &config,
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        // The copy must have COW-protected the heap PTE.
        let cm = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, Pid::new(2));
        assert!(!cm.get_pte(va).unwrap().hw.perms.write());
        let _ = cm;
        // Child's write fault now COWs.
        let o = handle_fault(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            va,
            AccessType::Write,
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(o.kind, sat_vm::FaultKind::Cow);
        // Parent (last sharer) clears NEED_COPY; its writable PTE to a
        // still-shared frame must be protected by the fix-up.
        unshare(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            &mut f.reg,
            va,
            &config,
            &mut batch(),
            UnshareTrigger::WriteFault,
        )
        .unwrap()
        .unwrap();
        let pm = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, Pid::new(1));
        let pte = pm.get_pte(VirtAddr::new(0x4010_1000)).unwrap();
        // Page still shared with nobody after child COW'd page 0 only;
        // page 1 is still multiply-mapped (child copy kept it).
        assert!(!pte.hw.perms.write());
    }
}
