//! The patched kernel: process table plus the paper's hooks around
//! the stock VM paths.
//!
//! [`Kernel`] owns physical memory, the PTP arena, the file registry,
//! and every process's `Mm`, and exposes the system-call surface the
//! experiments drive. Each entry point applies the paper's logic in
//! exactly the place the patch hooks Linux:
//!
//! - `fork` → share PTPs ([`fork_share`]) when enabled, else the stock
//!   copy ([`sat_vm::fork_mm`]);
//! - `page_fault` → unshare on a write fault into a shared PTP
//!   (Section 3.1.2 case 1), then the stock handler;
//! - `mmap`/`munmap`/`mprotect` → eagerly unshare affected PTPs
//!   (cases 2-4), then the stock mechanics; a zygote `mmap` of library
//!   code marks the region *global* (Section 3.2.2);
//! - `exit` → drop PTP references, skipping reclamation of PTPs other
//!   processes still share (case 5);
//! - `domain_fault` → flush the TLB entries matching the faulting
//!   address (Section 3.2.3).

use std::collections::{BTreeMap, HashMap};

use sat_mmu::{Mapper, PtpStore};
use sat_mmu::pte::PteSlot;
use sat_phys::{FileRegistry, PhysMem};
use sat_types::{
    AccessType, Asid, Dacr, Domain, Perms, Pid, SatError, SatResult, VaRange, VirtAddr,
};
use sat_vm::{
    exit_mmap, fork_mm, handle_fault, mmap as vm_mmap, mprotect as vm_mprotect,
    munmap as vm_munmap, populate, Backing, FaultCtx, FaultOutcome, Mm, MmapRequest,
};

use crate::config::KernelConfig;
use crate::share::{fork_share, unshare, unshare_range, UnshareTrigger};
use crate::TlbMaintenance;

/// Kernel-global statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Forks performed.
    pub forks: u64,
    /// Forks that used PTP sharing.
    pub share_forks: u64,
    /// Domain faults handled (non-zygote process hit a global entry).
    pub domain_faults: u64,
    /// Processes exited.
    pub exits: u64,
    /// PTPs unshared, all causes; equals the sum of the four
    /// by-cause counters below. (Exit-time teardown dereferences
    /// shared PTPs without unsharing and is not counted.)
    pub ptp_unshares: u64,
    /// Unshares triggered by a write fault into a NEED_COPY PTP
    /// (Section 3.1.2 case 1).
    pub unshares_write_fault: u64,
    /// Unshares triggered by mapping a new region (case 3).
    pub unshares_new_region: u64,
    /// Unshares triggered by freeing a region (case 4).
    pub unshares_region_free: u64,
    /// Unshares triggered by a protection change (case 2).
    pub unshares_region_op: u64,
    /// ASID generation rollovers (8-bit space exhausted; non-global
    /// TLB entries flushed, live ASIDs reassigned lazily).
    pub asid_rollovers: u64,
}

/// What a fork did, merged across the sharing and copying paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForkOutcome {
    /// The new process.
    pub child: Pid,
    /// PTEs copied into the child.
    pub ptes_copied: u64,
    /// Of those, PTEs of file-backed mappings.
    pub ptes_copied_file: u64,
    /// PTPs allocated for the child.
    pub ptps_allocated: u64,
    /// PTPs shared with the child (zero on the stock paths).
    pub ptps_shared: u64,
    /// PTEs write-protected to establish PTP-level COW.
    pub write_protect_ops: u64,
}

impl Default for ForkOutcome {
    fn default() -> Self {
        ForkOutcome {
            child: Pid::new(0),
            ptes_copied: 0,
            ptes_copied_file: 0,
            ptps_allocated: 0,
            ptps_shared: 0,
            write_protect_ops: 0,
        }
    }
}

/// Combined result of [`Kernel::page_fault`].
#[derive(Clone, Copy, Debug)]
pub struct ProcFaultOutcome {
    /// The stock handler's resolution.
    pub vm: FaultOutcome,
    /// A PTP had to be unshared first (write fault in a shared PTP).
    pub unshared: bool,
    /// PTEs copied by that unshare.
    pub unshare_ptes_copied: u64,
}

/// The simulated (patched or stock) kernel.
pub struct Kernel {
    /// Active configuration.
    pub config: KernelConfig,
    /// Physical memory.
    pub phys: PhysMem,
    /// The machine-wide PTP arena.
    pub ptps: PtpStore,
    /// Registered files (libraries, binaries, data files).
    pub files: FileRegistry,
    /// Kernel-global statistics.
    pub stats: KernelStats,
    procs: HashMap<Pid, Mm>,
    next_pid: u32,
    /// Current ASID generation (starts at 1, bumped on rollover).
    asid_generation: u64,
    /// Next ASID value within the current generation; `> 255` means
    /// the 8-bit space is exhausted and the next allocation rolls
    /// over.
    next_asid: u16,
    /// Which generation each live process's ASID belongs to. A
    /// process whose recorded generation is older than
    /// [`Kernel::asid_generation`] carries a stale ASID that must be
    /// reassigned before it runs again (see
    /// [`Kernel::ensure_current_asid`]).
    asid_gens: HashMap<Pid, u64>,
    /// A rollover happened but the non-global TLB flush it requires
    /// has not been issued yet (allocation sites have no TLB handle;
    /// the flush is deferred to the next switch-in, as in Linux).
    rollover_flush_pending: bool,
    /// Which process is current on each core, as reported by the
    /// machine layer through [`Kernel::note_running`]. A process on a
    /// core keeps executing — and keeps inserting TLB entries tagged
    /// with its ASID — without ever re-entering the allocator, so a
    /// rollover must treat these ASIDs specially (see
    /// [`Kernel::reserved_asids`]).
    running: BTreeMap<usize, Pid>,
    /// ASID values reserved for the whole current generation: the
    /// values held by processes that were running at the last
    /// rollover. Those processes keep their value (their generation is
    /// bumped in place, mirroring Linux's ARM rollover), and the
    /// allocator skips the value when restarting the sequence — so a
    /// recycled value can never alias a translation the still-running
    /// owner inserts after the rollover flush. One bit per 8-bit
    /// value.
    reserved_asids: [u64; 4],
}

impl Kernel {
    /// Creates a kernel over `frames` 4KB frames of physical memory.
    pub fn new(config: KernelConfig, frames: u32) -> Kernel {
        Kernel {
            config,
            phys: PhysMem::new(frames),
            ptps: PtpStore::new(),
            files: FileRegistry::new(),
            stats: KernelStats::default(),
            procs: HashMap::new(),
            next_pid: 1,
            asid_generation: 1,
            next_asid: 1,
            asid_gens: HashMap::new(),
            rollover_flush_pending: false,
            running: BTreeMap::new(),
            reserved_asids: [0; 4],
        }
    }

    /// Creates a kernel with the Nexus 7's 1GB of memory.
    pub fn nexus7(config: KernelConfig) -> Kernel {
        Kernel::new(config, (1u32 << 30) >> sat_types::PAGE_SHIFT)
    }

    /// Creates a new, empty process.
    pub fn create_process(&mut self) -> SatResult<Pid> {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let asid = self.alloc_asid();
        let mm = Mm::new(&mut self.phys, pid, asid)?;
        self.procs.insert(pid, mm);
        self.asid_gens.insert(pid, self.asid_generation);
        Ok(pid)
    }

    /// Allocates an 8-bit ASID, Linux-style: values 1..=255 are handed
    /// out sequentially within a generation; exhausting them bumps the
    /// generation and restarts the sequence (see [`Kernel::rollover`]).
    /// A rollover marks every live *non-running* process's ASID stale
    /// (reassigned lazily at its next switch-in, see
    /// [`Kernel::ensure_current_asid`]), reserves the values of
    /// running processes, and schedules one non-global TLB flush, so
    /// recycled values can never match a live translation. Global
    /// (zygote library) entries survive the rollover flush — the
    /// paper's §3.2 benefit at scale.
    fn alloc_asid(&mut self) -> Asid {
        loop {
            if self.next_asid > 255 {
                self.rollover();
            }
            let value = self.next_asid as u8;
            self.next_asid += 1;
            // Values reserved by processes that were running at the
            // last rollover are never reissued this generation.
            if !self.asid_reserved(value) {
                return Asid::new(value);
            }
        }
    }

    /// Whether `value` is reserved for the current generation.
    fn asid_reserved(&self, value: u8) -> bool {
        let v = value as usize;
        self.reserved_asids[v / 64] & (1 << (v % 64)) != 0
    }

    /// The 8-bit space is exhausted: bump the generation and schedule
    /// the deferred non-global flush. Mirroring Linux's ARM rollover,
    /// every process currently on a core keeps its ASID: its value is
    /// reserved (the allocator skips it for the whole new generation)
    /// and its generation is bumped in place, so it is never treated
    /// as stale. The aliasing argument: a *running* process may insert
    /// entries tagged with its value even after the rollover flush,
    /// but that value is never reissued; a *non-running* process
    /// cannot insert entries until its next switch-in, which
    /// reassigns it first — so everything tagged with a recycled
    /// value predates the rollover and is removed by the flush before
    /// the new owner can run.
    fn rollover(&mut self) {
        self.asid_generation += 1;
        self.next_asid = 1;
        self.rollover_flush_pending = true;
        self.stats.asid_rollovers += 1;
        self.reserved_asids = [0; 4];
        assert!(
            self.running.len() < 255,
            "more running processes than ASID values"
        );
        let running: Vec<Pid> = self.running.values().copied().collect();
        for pid in running {
            if let Some(mm) = self.procs.get(&pid) {
                let v = mm.asid.raw() as usize;
                self.reserved_asids[v / 64] |= 1 << (v % 64);
                self.asid_gens.insert(pid, self.asid_generation);
            }
        }
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                0,
                0,
                sat_obs::Payload::AsidRollover {
                    generation: self.asid_generation,
                },
            );
        }
    }

    /// Reports that `pid` is now current on `core`; the machine layer
    /// calls this on every context switch. A rollover reserves the
    /// ASIDs of the processes recorded here — they keep running (and
    /// filling TLBs) with their value without passing through the
    /// allocator, so the value must not be reissued until a flush
    /// separates the two owners.
    pub fn note_running(&mut self, core: usize, pid: Pid) {
        self.running.insert(core, pid);
    }

    /// True when `pid`'s ASID predates the current generation. Every
    /// TLB entry tagged with a stale value predates the rollover (the
    /// owner has not run since — running processes are re-generationed
    /// in place), so the rollover flush covers them: already issued,
    /// or pending and guaranteed to fire at the next switch-in before
    /// the recycled value can be consumed.
    pub fn asid_is_stale(&self, pid: Pid) -> bool {
        self.asid_gens.get(&pid).copied().unwrap_or(0) != self.asid_generation
    }

    /// The current ASID generation (starts at 1).
    pub fn asid_generation(&self) -> u64 {
        self.asid_generation
    }

    /// True when a rollover's deferred non-global flush has not been
    /// issued yet.
    pub fn rollover_flush_pending(&self) -> bool {
        self.rollover_flush_pending
    }

    /// Switch-in hook: returns `pid`'s valid ASID for the current
    /// generation, reassigning it first when a rollover made it stale,
    /// and issues the deferred rollover flush (non-global entries
    /// only — global zygote entries survive). Call before `pid` runs
    /// on any core.
    pub fn ensure_current_asid(
        &mut self,
        pid: Pid,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<Asid> {
        if !self.procs.contains_key(&pid) {
            return Err(SatError::NoSuchProcess);
        }
        if self.asid_is_stale(pid) {
            // No entry tagged with the old value can outlive this
            // reassignment: the pid has not run since the rollover
            // (running pids kept their generation), so its entries
            // predate the rollover flush — already issued, or issued
            // just below before the pid executes.
            let asid = self.alloc_asid();
            let generation = self.asid_generation;
            let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
            mm.asid = asid;
            self.asid_gens.insert(pid, generation);
        }
        if self.rollover_flush_pending {
            self.rollover_flush_pending = false;
            sat_obs::with_flush_reason(sat_obs::FlushReason::AsidRecycle, || {
                tlb.flush_non_global();
            });
        }
        Ok(self.procs[&pid].asid)
    }

    /// Marks `pid` as the zygote (the paper's `exec`-time zygote
    /// flag) and grants it access to the zygote domain when TLB
    /// sharing is enabled.
    pub fn exec_zygote(&mut self, pid: Pid) -> SatResult<()> {
        let share_tlb = self.config.share_tlb;
        let mm = self.mm_mut(pid)?;
        mm.is_zygote = true;
        if share_tlb {
            mm.dacr = Dacr::zygote_like();
        }
        Ok(())
    }

    /// Borrows a process's address space.
    pub fn mm(&self, pid: Pid) -> SatResult<&Mm> {
        self.procs.get(&pid).ok_or(SatError::NoSuchProcess)
    }

    /// Mutably borrows a process's address space.
    pub fn mm_mut(&mut self, pid: Pid) -> SatResult<&mut Mm> {
        self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)
    }

    /// Iterates over live processes.
    pub fn processes(&self) -> impl Iterator<Item = (&Pid, &Mm)> {
        self.procs.iter()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The fault-handling context for a process under the current
    /// configuration.
    pub fn fault_ctx(&self, mm: &Mm) -> FaultCtx {
        let zygote_like = mm.is_zygote_like();
        FaultCtx {
            mark_global: self.config.share_tlb && zygote_like,
            domain: if self.config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        }
    }

    /// `mmap(2)`: maps a region, eagerly unsharing any shared PTP in
    /// its range (Section 3.1.2 case 3) and — for the zygote mapping
    /// library code under TLB sharing — marking the region global
    /// (Section 3.2.2).
    pub fn mmap(
        &mut self,
        pid: Pid,
        req: &MmapRequest,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<VirtAddr> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid.raw();
        let addr = vm_mmap(mm, req)?;
        let len = req.len.div_ceil(sat_types::PAGE_SIZE) * sat_types::PAGE_SIZE;
        let range = VaRange::from_len(addr, len);
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                range,
                &config,
                tlb,
                UnshareTrigger::NewRegion,
            )? as u64;
            self.stats.ptp_unshares += unshared;
            self.stats.unshares_new_region += unshared;
        }
        if config.share_tlb
            && mm.is_zygote
            && matches!(req.backing, Backing::File { .. })
            && req.perms.execute()
        {
            if let Some(vma) = mm.vma_at_mut(addr) {
                vma.global = true;
            }
        }
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Mmap,
                    va: addr.raw(),
                    pages: len / sat_types::PAGE_SIZE,
                    unshared,
                },
            );
        }
        Ok(addr)
    }

    /// `munmap(2)`: unshares affected PTPs (case 4: a region in the
    /// range of a shared PTP is freed), then unmaps.
    pub fn munmap(
        &mut self,
        pid: Pid,
        range: VaRange,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<usize> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid.raw();
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                range,
                &config,
                tlb,
                UnshareTrigger::RegionFree,
            )? as u64;
            self.stats.ptp_unshares += unshared;
            self.stats.unshares_region_free += unshared;
        }
        let cleared = vm_munmap(mm, &mut self.ptps, &mut self.phys, range)?;
        // The unmapped translations must not survive in any TLB
        // (Linux's flush_tlb_range on the munmap path).
        sat_obs::with_flush_reason(sat_obs::FlushReason::RegionOp, || {
            for page in range.pages() {
                tlb.flush_va_all_asids(page);
            }
        });
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Munmap,
                    va: range.start.raw(),
                    pages: range.pages().count() as u32,
                    unshared,
                },
            );
        }
        Ok(cleared)
    }

    /// `mprotect(2)`: unshares affected PTPs (case 2), then applies
    /// the protection change.
    pub fn mprotect(
        &mut self,
        pid: Pid,
        range: VaRange,
        perms: Perms,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<()> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid.raw();
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                range,
                &config,
                tlb,
                UnshareTrigger::RegionOp,
            )? as u64;
            self.stats.ptp_unshares += unshared;
            self.stats.unshares_region_op += unshared;
        }
        vm_mprotect(mm, &mut self.ptps, &mut self.phys, range, perms)?;
        // Old (possibly more-permissive) translations must be evicted
        // (Linux's flush_tlb_range on the mprotect path).
        sat_obs::with_flush_reason(sat_obs::FlushReason::RegionOp, || {
            for page in range.pages() {
                tlb.flush_va_all_asids(page);
            }
        });
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Mprotect,
                    va: range.start.raw(),
                    pages: range.pages().count() as u32,
                    unshared,
                },
            );
        }
        Ok(())
    }

    /// Handles a page fault. A *write* fault whose address falls in a
    /// NEED_COPY PTP first unshares it (case 1); the fault is then
    /// handled as in the stock kernel.
    pub fn page_fault(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        access: AccessType,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<ProcFaultOutcome> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let mut unshared = false;
        let mut unshare_ptes_copied = 0;
        if access.is_write() && mm.root.entry_for(va).need_copy() {
            let r = unshare(
                mm,
                &mut self.ptps,
                &mut self.phys,
                va,
                &config,
                tlb,
                UnshareTrigger::WriteFault,
            )?
            .expect("NEED_COPY checked above");
            unshared = true;
            unshare_ptes_copied = r.ptes_copied;
            self.stats.ptp_unshares += 1;
            self.stats.unshares_write_fault += 1;
        }
        let zygote_like = mm.is_zygote_like();
        let ctx = FaultCtx {
            mark_global: config.share_tlb && zygote_like,
            domain: if config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        };
        let vm = handle_fault(mm, &mut self.ptps, &mut self.phys, va, access, ctx)?;
        Ok(ProcFaultOutcome {
            vm,
            unshared,
            unshare_ptes_copied,
        })
    }

    /// Pre-faults `range` in `pid` (used by the zygote preload).
    pub fn populate(&mut self, pid: Pid, range: VaRange) -> SatResult<usize> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let zygote_like = mm.is_zygote_like();
        let ctx = FaultCtx {
            mark_global: config.share_tlb && zygote_like,
            domain: if config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        };
        populate(mm, &mut self.ptps, &mut self.phys, range, ctx)
    }

    /// Maps an anonymous region with 64KB large pages (the
    /// hugetlbfs-like path), eagerly populating it. Large-page
    /// regions compose with PTP sharing: their sixteen-slot groups
    /// live in ordinary PTPs, which fork can share.
    #[allow(clippy::too_many_arguments)]
    pub fn mmap_large(
        &mut self,
        pid: Pid,
        at: VirtAddr,
        len: u32,
        perms: Perms,
        tag: sat_types::RegionTag,
        name: &str,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<sat_vm::LargeMapReport> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let zygote_like = mm.is_zygote_like();
        let domain = if config.share_tlb && zygote_like {
            Domain::ZYGOTE
        } else {
            Domain::USER
        };
        // Section 3.1.2 case 3 applies here exactly as in `mmap`: a
        // new region in the range of a shared PTP must unshare it
        // eagerly, or the eager PTE installs below would leak into the
        // other sharers' address spaces.
        let range = sat_vm::round_to_large(sat_types::VaRange::from_len(at, len));
        let asid = mm.asid.raw();
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                range,
                &config,
                tlb,
                UnshareTrigger::NewRegion,
            )? as u64;
            self.stats.ptp_unshares += unshared;
            self.stats.unshares_new_region += unshared;
        }
        let report =
            sat_vm::mmap_large(mm, &mut self.ptps, &mut self.phys, at, len, perms, tag, name, domain)?;
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::MmapLarge,
                    va: at.raw(),
                    pages: len.div_ceil(sat_types::PAGE_SIZE),
                    unshared,
                },
            );
        }
        Ok(report)
    }

    /// `fork(2)`: shares PTPs when enabled, else copies per the
    /// configured policy.
    ///
    /// Both paths write-protect parent PTEs (COW and/or PTP-sharing
    /// protection). Callers that model a TLB must flush the parent's
    /// cached translations afterwards, as Linux's `dup_mmap` does —
    /// [`sat_sim::Machine::fork`] performs that flush; direct kernel
    /// users with no TLB have nothing to go stale.
    pub fn fork(&mut self, parent: Pid) -> SatResult<ForkOutcome> {
        let config = self.config;
        let child_pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let child_asid = self.alloc_asid();
        let child_gen = self.asid_generation;
        let parent_mm = self.procs.get_mut(&parent).ok_or(SatError::NoSuchProcess)?;
        let parent_asid = parent_mm.asid.raw();
        self.stats.forks += 1;

        let (child_mm, outcome) = if config.share_ptp {
            self.stats.share_forks += 1;
            let (child_mm, r) = fork_share(
                parent_mm,
                &mut self.ptps,
                &mut self.phys,
                child_pid,
                child_asid,
                &config,
            )?;
            (
                child_mm,
                ForkOutcome {
                    child: child_pid,
                    ptes_copied: r.ptes_copied,
                    ptes_copied_file: r.ptes_copied_file,
                    ptps_allocated: r.ptps_allocated,
                    ptps_shared: r.ptps_shared,
                    write_protect_ops: r.write_protect_ops,
                },
            )
        } else {
            let (child_mm, r) = fork_mm(
                parent_mm,
                &mut self.ptps,
                &mut self.phys,
                child_pid,
                child_asid,
                config.fork_policy,
                Domain::USER,
            )?;
            (
                child_mm,
                ForkOutcome {
                    child: child_pid,
                    ptes_copied: r.ptes_copied,
                    ptes_copied_file: r.ptes_copied_file,
                    ptps_allocated: r.ptps_allocated,
                    ptps_shared: 0,
                    write_protect_ops: r.cow_protected,
                },
            )
        };
        self.procs.insert(child_pid, child_mm);
        self.asid_gens.insert(child_pid, child_gen);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                parent.raw(),
                parent_asid,
                sat_obs::Payload::Fork {
                    child: child_pid.raw(),
                    ptps_shared: outcome.ptps_shared,
                    ptes_copied: outcome.ptes_copied,
                    shared: config.share_ptp,
                },
            );
        }
        Ok(outcome)
    }

    /// Process exit: tears down the address space. Shared PTPs are
    /// dereferenced, not reclaimed, when other sharers remain (case
    /// 5).
    pub fn exit(&mut self, pid: Pid, tlb: &mut dyn TlbMaintenance) -> SatResult<()> {
        let stale = self.asid_is_stale(pid);
        let mut mm = self.procs.remove(&pid).ok_or(SatError::NoSuchProcess)?;
        exit_mmap(&mut mm, &mut self.ptps, &mut self.phys);
        if !stale {
            sat_obs::with_flush_reason(sat_obs::FlushReason::Exit, || {
                tlb.flush_asid(mm.asid);
            });
        }
        // A stale generation's entries are covered by the rollover
        // flush; flushing the raw value here would only hit — and
        // charge shootdown IPIs to — a new-generation process that
        // was reissued the same value.
        self.asid_gens.remove(&pid);
        self.running.retain(|_, p| *p != pid);
        let asid = mm.asid.raw();
        mm.free_root(&mut self.phys);
        self.stats.exits += 1;
        if sat_obs::enabled() {
            sat_obs::emit(sat_obs::Subsystem::Kernel, pid.raw(), asid, sat_obs::Payload::Exit);
        }
        Ok(())
    }

    /// The domain-fault handler (Section 3.2.3): a non-zygote process
    /// matched a global TLB entry it has no domain rights to. The
    /// handler flushes every TLB entry matching the faulting address;
    /// on return the process re-faults into a normal table walk.
    pub fn domain_fault(&mut self, va: VirtAddr, tlb: &mut dyn TlbMaintenance) {
        self.stats.domain_faults += 1;
        sat_obs::with_flush_reason(sat_obs::FlushReason::DomainFault, || {
            tlb.flush_va_all_asids(va);
        });
        // The faulting process is not identified by the hardware (the
        // DACR check happens before translation completes), so the
        // event carries no pid/ASID.
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                0,
                0,
                sat_obs::Payload::DomainFault { va: va.raw() },
            );
        }
    }

    /// Reads the PTE slot serving `va` in `pid`, if populated.
    pub fn pte(&mut self, pid: Pid, va: VirtAddr) -> SatResult<Option<PteSlot>> {
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let mapper = Mapper::new(&mut mm.root, &mut self.ptps, &mut self.phys);
        Ok(mapper.get_pte(va))
    }

    /// Snapshot for the paper's Figure 12: of the PTPs currently
    /// referenced by `pid`, how many are shared with at least one
    /// other process. Returns `(shared, total)`.
    pub fn ptp_share_snapshot(&self, pid: Pid) -> SatResult<(usize, usize)> {
        let mm = self.mm(pid)?;
        let mut shared = 0;
        let mut total = 0;
        for (_, frame) in mm.root.iter_ptps() {
            total += 1;
            if self.phys.mapcount(frame) > 1 {
                shared += 1;
            }
        }
        Ok((shared, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoTlb;
    use sat_types::{RegionTag, PAGE_SIZE};

    fn code_req(file: sat_phys::FileId, pages: u32, at: u32) -> MmapRequest {
        MmapRequest::file(
            pages * PAGE_SIZE,
            Perms::RX,
            file,
            0,
            RegionTag::ZygoteNativeCode,
            "libtest.so",
        )
        .at(VirtAddr::new(at))
    }

    /// Boots a minimal zygote: one library (8 pages code) preloaded
    /// and touched, one heap page written.
    fn boot(config: KernelConfig) -> (Kernel, Pid) {
        let mut k = Kernel::new(config, 16384);
        let lib = k.files.register("libtest.so", 8 * PAGE_SIZE);
        let zygote = k.create_process().unwrap();
        k.exec_zygote(zygote).unwrap();
        k.mmap(zygote, &code_req(lib, 8, 0x4000_0000), &mut NoTlb).unwrap();
        k.populate(zygote, VaRange::from_len(VirtAddr::new(0x4000_0000), 8 * PAGE_SIZE))
            .unwrap();
        let heap = MmapRequest::anon(2 * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(0x0900_0000));
        k.mmap(zygote, &heap, &mut NoTlb).unwrap();
        k.page_fault(zygote, VirtAddr::new(0x0900_0000), AccessType::Write, &mut NoTlb)
            .unwrap();
        (k, zygote)
    }

    #[test]
    fn stock_fork_refaults_code_in_child() {
        let (mut k, zygote) = boot(KernelConfig::stock());
        let f = k.fork(zygote).unwrap();
        assert_eq!(f.ptps_shared, 0);
        assert_eq!(f.ptes_copied, 1); // the heap page only
        // Child faults on code: soft fault (page cache warm).
        let o = k
            .page_fault(f.child, VirtAddr::new(0x4000_0000), AccessType::Execute, &mut NoTlb)
            .unwrap();
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Minor);
        assert!(!o.unshared);
    }

    #[test]
    fn copied_ptes_fork_copies_code_too() {
        let (mut k, zygote) = boot(KernelConfig::copied_ptes());
        let f = k.fork(zygote).unwrap();
        assert_eq!(f.ptes_copied, 9); // 8 code + 1 heap
        assert!(k.pte(f.child, VirtAddr::new(0x4000_0000)).unwrap().is_some());
    }

    #[test]
    fn shared_fork_eliminates_child_code_faults() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        assert!(f.ptps_shared >= 1);
        assert_eq!(f.ptes_copied, 0); // heap PTE is in a shared PTP too
        // The child's code PTEs are immediately present.
        assert!(k.pte(f.child, VirtAddr::new(0x4000_0000)).unwrap().is_some());
    }

    #[test]
    fn write_fault_in_shared_ptp_unshares_then_cows() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let heap = VirtAddr::new(0x0900_0000);
        let o = k
            .page_fault(f.child, heap, AccessType::Write, &mut NoTlb)
            .unwrap();
        assert!(o.unshared);
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Cow);
        // Parent and child now map different frames.
        let p = k.pte(zygote, heap).unwrap().unwrap().hw.pfn;
        let c = k.pte(f.child, heap).unwrap().unwrap().hw.pfn;
        assert_ne!(p, c);
    }

    #[test]
    fn zygote_mmap_of_code_marks_region_global_under_tlb_sharing() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp_tlb());
        assert!(k.mm(zygote).unwrap().vma_at(VirtAddr::new(0x4000_0000)).unwrap().global);
        // And the populated PTEs carry the global bit.
        let slot = k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().unwrap();
        assert!(slot.hw.global);
    }

    #[test]
    fn stock_kernel_never_sets_global() {
        let (mut k, zygote) = boot(KernelConfig::stock());
        let slot = k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().unwrap();
        assert!(!slot.hw.global);
        assert!(!k.mm(zygote).unwrap().vma_at(VirtAddr::new(0x4000_0000)).unwrap().global);
    }

    #[test]
    fn child_inherits_global_regions_and_zygote_domain() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp_tlb());
        let f = k.fork(zygote).unwrap();
        let mm = k.mm(f.child).unwrap();
        assert!(mm.is_zygote_child);
        assert!(mm.vma_at(VirtAddr::new(0x4000_0000)).unwrap().global);
        assert_eq!(
            mm.dacr.access(Domain::ZYGOTE),
            sat_types::DomainAccess::Client
        );
        // Non-zygote process gets no zygote-domain access.
        let outsider = k.create_process().unwrap();
        assert_eq!(
            k.mm(outsider).unwrap().dacr.access(Domain::ZYGOTE),
            sat_types::DomainAccess::NoAccess
        );
    }

    #[test]
    fn mmap_into_shared_chunk_unshares_eagerly() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        // Child maps a new region in the code chunk's 2MB span.
        let req = MmapRequest::anon(PAGE_SIZE, Perms::RW, RegionTag::AppData, "newdata")
            .at(VirtAddr::new(0x4010_0000));
        k.mmap(f.child, &req, &mut NoTlb).unwrap();
        let child_mm = k.mm(f.child).unwrap();
        assert!(!child_mm.root.entry_for(VirtAddr::new(0x4000_0000)).need_copy());
        assert_eq!(child_mm.counters.unshares_by_region_op, 1);
        // The zygote still considers its PTP shared until it modifies.
        assert!(k.mm(zygote).unwrap().root.entry_for(VirtAddr::new(0x4000_0000)).need_copy());
    }

    #[test]
    fn munmap_unshares_then_frees_region() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let heap_range = VaRange::from_len(VirtAddr::new(0x0900_0000), 2 * PAGE_SIZE);
        k.munmap(f.child, heap_range, &mut NoTlb).unwrap();
        assert!(k.mm(f.child).unwrap().vma_at(VirtAddr::new(0x0900_0000)).is_none());
        // Parent's heap PTE must be intact (the child unshared first).
        assert!(k.pte(zygote, VirtAddr::new(0x0900_0000)).unwrap().is_some());
    }

    #[test]
    fn mprotect_unshares_affected_chunks() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let code = VaRange::from_len(VirtAddr::new(0x4000_0000), 8 * PAGE_SIZE);
        k.mprotect(f.child, code, Perms::R, &mut NoTlb).unwrap();
        assert!(!k.mm(f.child).unwrap().root.entry_for(code.start).need_copy());
        // Parent keeps executable permissions.
        assert_eq!(
            k.pte(zygote, code.start).unwrap().unwrap().hw.perms,
            Perms::RX
        );
        assert_eq!(k.pte(f.child, code.start).unwrap().unwrap().hw.perms, Perms::R);
    }

    #[test]
    fn exit_skips_reclaiming_shared_ptps() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let ptps_before = k.ptps.len();
        k.exit(f.child, &mut NoTlb).unwrap();
        // All PTPs survive (the zygote still references them).
        assert_eq!(k.ptps.len(), ptps_before);
        assert!(k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().is_some());
        // Now the zygote exits too; everything is reclaimed.
        k.exit(zygote, &mut NoTlb).unwrap();
        assert!(k.ptps.is_empty());
    }

    #[test]
    fn many_children_share_one_set_of_ptps() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let baseline_ptps = k.ptps.len();
        let mut children = Vec::new();
        for _ in 0..8 {
            children.push(k.fork(zygote).unwrap().child);
        }
        // No new PTPs at all: everything is shared.
        assert_eq!(k.ptps.len(), baseline_ptps);
        let (shared, total) = k.ptp_share_snapshot(zygote).unwrap();
        assert_eq!(shared, total);
        for c in children {
            k.exit(c, &mut NoTlb).unwrap();
        }
        let (shared, _) = k.ptp_share_snapshot(zygote).unwrap();
        assert_eq!(shared, 0);
    }

    #[test]
    fn soft_fault_population_visible_to_later_children() {
        // Paper Section 4.2.1: "all subsequent applications can also
        // benefit from the PTEs populated by the applications launched
        // earlier".
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        // Extend the library mapping with untouched pages.
        let lib2 = k.files.register("libextra.so", 4 * PAGE_SIZE);
        k.mmap(zygote, &code_req(lib2, 4, 0x4008_0000), &mut NoTlb).unwrap();
        let f1 = k.fork(zygote).unwrap();
        // Child 1 faults a page the zygote never touched.
        let va = VirtAddr::new(0x4008_1000);
        let o = k.page_fault(f1.child, va, AccessType::Execute, &mut NoTlb).unwrap();
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Major);
        // A child forked afterwards sees the PTE without faulting.
        let f2 = k.fork(zygote).unwrap();
        assert!(k.pte(f2.child, va).unwrap().is_some());
        // So does the zygote itself.
        assert!(k.pte(zygote, va).unwrap().is_some());
    }

    /// A [`TlbMaintenance`] sink counting maintenance operations.
    #[derive(Default)]
    struct CountingTlb {
        asid_flushes: u64,
        non_global_flushes: u64,
        full_flushes: u64,
    }

    impl TlbMaintenance for CountingTlb {
        fn flush_asid(&mut self, _asid: Asid) {
            self.asid_flushes += 1;
        }
        fn flush_va_all_asids(&mut self, _va: VirtAddr) {}
        fn flush_all(&mut self) {
            self.full_flushes += 1;
        }
        fn flush_non_global(&mut self) {
            self.non_global_flushes += 1;
        }
    }

    #[test]
    fn asid_rollover_survives_hundreds_of_process_generations() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let parent = k.create_process().unwrap();
        // 600 fork/exit cycles exhaust the 8-bit space twice over; the
        // old free-list allocator would have coped only by recycling,
        // the generation allocator instead rolls over.
        for _ in 0..600 {
            let child = k.fork(parent).unwrap().child;
            k.exit(child, &mut NoTlb).unwrap();
        }
        // 601 allocations at 255 per generation = 2 rollovers.
        assert_eq!(k.stats.asid_rollovers, 2);
        assert_eq!(k.asid_generation(), 3);
    }

    #[test]
    fn rollover_flushes_non_global_exactly_once_and_reassigns_lazily() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let parent = k.create_process().unwrap();
        let mut tlb = CountingTlb::default();
        for _ in 0..255 {
            let child = k.fork(parent).unwrap().child;
            k.exit(child, &mut tlb).unwrap();
        }
        // Allocation 256 rolled the generation; the flush is deferred
        // until some process is switched in.
        assert_eq!(k.stats.asid_rollovers, 1);
        assert!(k.rollover_flush_pending());
        assert_eq!(tlb.non_global_flushes, 0);
        // The parent's gen-1 ASID (1) is stale; switch-in reassigns it
        // and issues exactly one non-global flush — never a full flush,
        // so global zygote entries survive.
        let before = k.mm(parent).unwrap().asid;
        assert_eq!(before.raw(), 1);
        let after = k.ensure_current_asid(parent, &mut tlb).unwrap();
        // Gen-2 value 1 went to the last child; the parent gets 2.
        assert_eq!(after.raw(), 2);
        assert_eq!(k.mm(parent).unwrap().asid, after);
        assert_eq!(tlb.non_global_flushes, 1);
        assert_eq!(tlb.full_flushes, 0);
        assert!(!k.rollover_flush_pending());
        // Idempotent once current: no second flush, no reassignment.
        let again = k.ensure_current_asid(parent, &mut tlb).unwrap();
        assert_eq!(again, after);
        assert_eq!(tlb.non_global_flushes, 1);
    }

    /// The high-severity aliasing window: a process current on a core
    /// over a rollover keeps running with its ASID, so the allocator
    /// must reserve that value instead of reissuing it.
    #[test]
    fn running_process_keeps_its_asid_across_rollover() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let p = k.create_process().unwrap();
        assert_eq!(k.mm(p).unwrap().asid.raw(), 1);
        k.note_running(0, p);
        let mut tlb = CountingTlb::default();
        for _ in 0..300 {
            let c = k.fork(p).unwrap().child;
            if k.asid_generation() > 1 {
                assert_ne!(
                    k.mm(c).unwrap().asid.raw(),
                    1,
                    "reserved value reissued while its owner is running"
                );
            }
            k.exit(c, &mut tlb).unwrap();
        }
        assert_eq!(k.stats.asid_rollovers, 1);
        // Reserved in place: same value, current generation; the
        // switch-in hook fires the deferred flush but does not
        // reassign.
        assert!(!k.asid_is_stale(p));
        let asid = k.ensure_current_asid(p, &mut tlb).unwrap();
        assert_eq!(asid.raw(), 1);
        assert_eq!(tlb.non_global_flushes, 1);
    }

    /// A stale-generation exit must not flush (or IPI) by raw ASID
    /// value: the rollover flush already covers its entries, and the
    /// value may since have been reissued to a live process.
    #[test]
    fn stale_generation_exit_skips_the_per_asid_flush() {
        let mut k = Kernel::new(KernelConfig::stock(), 16_384);
        let keeper = k.create_process().unwrap(); // value 1, gen 1
        let victim = k.create_process().unwrap(); // value 2, gen 1
        let mut tlb = CountingTlb::default();
        // Burn the rest of the space to force a rollover.
        for _ in 0..254 {
            let c = k.fork(keeper).unwrap().child;
            k.exit(c, &mut tlb).unwrap();
        }
        assert_eq!(k.stats.asid_rollovers, 1);
        assert!(k.asid_is_stale(victim));
        let flushes_before = tlb.asid_flushes;
        k.exit(victim, &mut tlb).unwrap();
        assert_eq!(tlb.asid_flushes, flushes_before, "stale exit over-flushed");
        // A current-generation exit still flushes its value.
        k.ensure_current_asid(keeper, &mut tlb).unwrap();
        k.exit(keeper, &mut tlb).unwrap();
        assert_eq!(tlb.asid_flushes, flushes_before + 1);
    }

    #[test]
    fn domain_fault_counter_increments() {
        let mut k = Kernel::new(KernelConfig::shared_ptp_tlb(), 1024);
        k.domain_fault(VirtAddr::new(0x4000_0000), &mut NoTlb);
        assert_eq!(k.stats.domain_faults, 1);
    }
}
