//! The patched kernel: process table plus the paper's hooks around
//! the stock VM paths.
//!
//! [`Kernel`] owns physical memory, the PTP arena, the file registry,
//! and every process's `Mm`, and exposes the system-call surface the
//! experiments drive. Each entry point applies the paper's logic in
//! exactly the place the patch hooks Linux:
//!
//! - `fork` → share PTPs ([`fork_share`]) when enabled, else the stock
//!   copy ([`sat_vm::fork_mm`]);
//! - `page_fault` → unshare on a write fault into a shared PTP
//!   (Section 3.1.2 case 1), then the stock handler;
//! - `mmap`/`munmap`/`mprotect` → eagerly unshare affected PTPs
//!   (cases 2-4), then the stock mechanics; a zygote `mmap` of library
//!   code marks the region *global* (Section 3.2.2);
//! - `exit` → drop PTP references, skipping reclamation of PTPs other
//!   processes still share (case 5);
//! - `domain_fault` → flush the TLB entries matching the faulting
//!   address (Section 3.2.3).

use std::collections::HashMap;

use sat_mmu::pte::PteSlot;
use sat_mmu::{Mapper, PtpStore};
use sat_phys::{FileRegistry, PhysMem};
use sat_types::{
    AccessType, Asid, Dacr, Domain, PageSize, Perms, Pid, SatError, SatResult, VaRange, VirtAddr,
    VpnRange,
};
use sat_vm::{
    demote_range, exit_mmap, fork_mm, handle_fault, mmap as vm_mmap, mprotect as vm_mprotect,
    munmap as vm_munmap, populate, Backing, FaultCtx, FaultOutcome, Mm, MmapRequest,
};

use crate::asid::AsidAllocator;
use crate::config::KernelConfig;
use crate::flush::FlushBatch;
use crate::registry::{RegistryStats, SharedPtpRegistry};
use crate::share::{fork_share, unshare, unshare_range, UnshareTrigger};
use crate::TlbMaintenance;

/// Kernel-global statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Forks performed.
    pub forks: u64,
    /// Forks that used PTP sharing.
    pub share_forks: u64,
    /// Domain faults handled (non-zygote process hit a global entry).
    pub domain_faults: u64,
    /// Processes exited.
    pub exits: u64,
    /// PTPs unshared, all causes; equals the sum of the four
    /// by-cause counters below. (Exit-time teardown dereferences
    /// shared PTPs without unsharing and is not counted.)
    pub ptp_unshares: u64,
    /// Unshares triggered by a write fault into a NEED_COPY PTP
    /// (Section 3.1.2 case 1).
    pub unshares_write_fault: u64,
    /// Unshares triggered by mapping a new region (case 3).
    pub unshares_new_region: u64,
    /// Unshares triggered by freeing a region (case 4).
    pub unshares_region_free: u64,
    /// Unshares triggered by a protection change (case 2).
    pub unshares_region_op: u64,
    /// ASID generation rollovers (8-bit space exhausted; non-global
    /// TLB entries flushed, live ASIDs reassigned lazily).
    pub asid_rollovers: u64,
    /// Reclaim passes run ([`Kernel::reclaim`]).
    pub reclaims: u64,
    /// File page-cache frames evicted by reclaim.
    pub reclaim_pages: u64,
    /// PTEs torn from private PTPs by reclaim.
    pub reclaim_pte_tears: u64,
    /// PTEs torn out of *shared* PTPs by reclaim (each tear repairs
    /// every sharer at once; the PTP stays shared).
    pub reclaim_shared_tears: u64,
    /// 64KB groups collapsed by the promotion scanner
    /// ([`crate::promote`]).
    pub promotions: u64,
    /// 1MB spans collapsed to level-1 sections.
    pub section_promotions: u64,
    /// Large mappings split back to 4KB PTEs (partial `munmap`/
    /// `mprotect`, COW write faults, fork over sections, reclaim).
    pub demotions: u64,
    /// 4KB PTEs written by those splits.
    pub split_ptes: u64,
    /// Frames the promotion scanner allocated for never-faulted holes
    /// — memory *mapped* but never *touched*, the waste side of the
    /// paper's reach-vs-footprint trade (Section 2's ≈2.6× figure).
    pub waste_frames: u64,
}

impl KernelStats {
    /// Mirrors the registry's authoritative share/unshare counters
    /// into this kernel-global stats block. The registry owns the
    /// Figure-6 cause attribution; `KernelStats` keeps its public
    /// shape so every consumer (experiments, conservation checks)
    /// reads the same fields as before.
    fn mirror_share(&mut self, r: &RegistryStats) {
        self.ptp_unshares = r.ptp_unshares;
        self.unshares_write_fault = r.unshares_write_fault;
        self.unshares_new_region = r.unshares_new_region;
        self.unshares_region_free = r.unshares_region_free;
        self.unshares_region_op = r.unshares_region_op;
    }
}

/// Records one large-mapping split: bumps the demotion counters,
/// emits the [`sat_obs::Payload::Demote`] event, and gathers the
/// span's invalidation into `batch` — one cached wide TLB entry
/// served the whole span, so the whole span must be flushed, tagged
/// [`sat_obs::FlushReason::Demote`] for blame attribution.
fn note_demote(
    stats: &mut KernelStats,
    pid: Pid,
    asid: Asid,
    va: VirtAddr,
    size: PageSize,
    cause: sat_obs::DemoteCause,
    batch: &mut FlushBatch,
) {
    let bytes = size.bytes();
    let pages = bytes / sat_types::PAGE_SIZE;
    stats.demotions += 1;
    stats.split_ptes += u64::from(pages);
    let span = VaRange::from_len(va, bytes);
    batch.range(
        asid,
        VpnRange::from_va_range(&span),
        sat_obs::FlushReason::Demote,
    );
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Kernel,
            pid.raw(),
            asid.raw(),
            sat_obs::Payload::Demote {
                va: va.raw(),
                bytes,
                pages: u64::from(pages),
                cause,
            },
        );
    }
}

/// What a fork did, merged across the sharing and copying paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForkOutcome {
    /// The new process.
    pub child: Pid,
    /// PTEs copied into the child.
    pub ptes_copied: u64,
    /// Of those, PTEs of file-backed mappings.
    pub ptes_copied_file: u64,
    /// PTPs allocated for the child.
    pub ptps_allocated: u64,
    /// PTPs shared with the child (zero on the stock paths).
    pub ptps_shared: u64,
    /// PTEs write-protected to establish PTP-level COW.
    pub write_protect_ops: u64,
}

impl Default for ForkOutcome {
    fn default() -> Self {
        ForkOutcome {
            child: Pid::new(0),
            ptes_copied: 0,
            ptes_copied_file: 0,
            ptps_allocated: 0,
            ptps_shared: 0,
            write_protect_ops: 0,
        }
    }
}

/// Combined result of [`Kernel::page_fault`].
#[derive(Clone, Copy, Debug)]
pub struct ProcFaultOutcome {
    /// The stock handler's resolution.
    pub vm: FaultOutcome,
    /// A PTP had to be unshared first (write fault in a shared PTP).
    pub unshared: bool,
    /// PTEs copied by that unshare.
    pub unshare_ptes_copied: u64,
}

/// The simulated (patched or stock) kernel.
pub struct Kernel {
    /// Active configuration.
    pub config: KernelConfig,
    /// Physical memory.
    pub phys: PhysMem,
    /// The machine-wide PTP arena.
    pub ptps: PtpStore,
    /// The refcounted registry of shared PTPs: one entry per shared
    /// table, owning the sharer count and the Figure-6 cause
    /// attribution ([`crate::registry`]).
    pub registry: SharedPtpRegistry,
    /// Registered files (libraries, binaries, data files).
    pub files: FileRegistry,
    /// Kernel-global statistics.
    pub stats: KernelStats,
    pub(crate) procs: HashMap<Pid, Mm>,
    next_pid: u32,
    /// The generational 8-bit ASID allocator (see [`crate::asid`]).
    asids: AsidAllocator,
}

impl Kernel {
    /// Creates a kernel over `frames` 4KB frames of physical memory.
    pub fn new(config: KernelConfig, frames: u32) -> Kernel {
        Kernel {
            config,
            phys: PhysMem::new(frames),
            ptps: PtpStore::new(),
            registry: SharedPtpRegistry::new(),
            files: FileRegistry::new(),
            stats: KernelStats::default(),
            procs: HashMap::new(),
            next_pid: 1,
            asids: AsidAllocator::new(),
        }
    }

    /// Creates a kernel with the Nexus 7's 1GB of memory.
    pub fn nexus7(config: KernelConfig) -> Kernel {
        Kernel::new(config, (1u32 << 30) >> sat_types::PAGE_SHIFT)
    }

    /// Creates a new, empty process.
    pub fn create_process(&mut self) -> SatResult<Pid> {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let asid = self.alloc_asid();
        let mm = Mm::new(&mut self.phys, pid, asid)?;
        self.procs.insert(pid, mm);
        self.asids.assign_current(pid);
        Ok(pid)
    }

    /// Allocates an 8-bit ASID through the generational allocator
    /// ([`crate::asid::AsidAllocator`]) and mirrors its rollover count
    /// into [`KernelStats::asid_rollovers`].
    fn alloc_asid(&mut self) -> Asid {
        let procs = &self.procs;
        let asid = self.asids.alloc(|pid| procs.get(&pid).map(|mm| mm.asid));
        self.stats.asid_rollovers = self.asids.rollovers();
        asid
    }

    /// Reports that `pid` is now current on `core`; the machine layer
    /// calls this on every context switch. A rollover reserves the
    /// ASIDs of the processes recorded here — they keep running (and
    /// filling TLBs) with their value without passing through the
    /// allocator, so the value must not be reissued until a flush
    /// separates the two owners.
    pub fn note_running(&mut self, core: usize, pid: Pid) {
        self.asids.note_running(core, pid);
    }

    /// True when `pid`'s ASID predates the current generation. Every
    /// TLB entry tagged with a stale value predates the rollover (the
    /// owner has not run since — running processes are re-generationed
    /// in place), so the rollover flush covers them: already issued,
    /// or pending and guaranteed to fire at the next switch-in before
    /// the recycled value can be consumed.
    pub fn asid_is_stale(&self, pid: Pid) -> bool {
        self.asids.is_stale(pid)
    }

    /// The current ASID generation (starts at 1).
    pub fn asid_generation(&self) -> u64 {
        self.asids.generation()
    }

    /// True when a rollover's deferred non-global flush has not been
    /// issued yet.
    pub fn rollover_flush_pending(&self) -> bool {
        self.asids.flush_pending()
    }

    /// Switch-in hook: returns `pid`'s valid ASID for the current
    /// generation, reassigning it first when a rollover made it stale,
    /// and issues the deferred rollover flush (non-global entries
    /// only — global zygote entries survive). Call before `pid` runs
    /// on any core.
    pub fn ensure_current_asid(
        &mut self,
        pid: Pid,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<Asid> {
        if !self.procs.contains_key(&pid) {
            return Err(SatError::NoSuchProcess);
        }
        if self.asid_is_stale(pid) {
            // No entry tagged with the old value can outlive this
            // reassignment: the pid has not run since the rollover
            // (running pids kept their generation), so its entries
            // predate the rollover flush — already issued, or issued
            // just below before the pid executes.
            let asid = self.alloc_asid();
            let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
            mm.asid = asid;
            self.asids.assign_current(pid);
        }
        if self.asids.take_flush_pending() {
            sat_obs::with_flush_reason(sat_obs::FlushReason::AsidRecycle, || {
                tlb.flush_non_global();
            });
        }
        Ok(self.procs[&pid].asid)
    }

    /// Marks `pid` as the zygote (the paper's `exec`-time zygote
    /// flag) and grants it access to the zygote domain when TLB
    /// sharing is enabled.
    pub fn exec_zygote(&mut self, pid: Pid) -> SatResult<()> {
        let share_tlb = self.config.share_tlb;
        let mm = self.mm_mut(pid)?;
        mm.is_zygote = true;
        if share_tlb {
            mm.dacr = Dacr::zygote_like();
        }
        Ok(())
    }

    /// Borrows a process's address space.
    pub fn mm(&self, pid: Pid) -> SatResult<&Mm> {
        self.procs.get(&pid).ok_or(SatError::NoSuchProcess)
    }

    /// Mutably borrows a process's address space.
    pub fn mm_mut(&mut self, pid: Pid) -> SatResult<&mut Mm> {
        self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)
    }

    /// Iterates over live processes.
    pub fn processes(&self) -> impl Iterator<Item = (&Pid, &Mm)> {
        self.procs.iter()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Publishes kernel-owned occupancy gauges (frame allocator, PTP
    /// slab, shared-PTP registry, process table, ASID generation) to
    /// the installed obs sink. Pure reads of existing bookkeeping —
    /// safe to call at any sampling point without perturbing the sim.
    pub fn publish_gauges(&self) {
        self.phys.publish_gauges();
        self.ptps.publish_gauges();
        let sharers: u64 = self
            .registry
            .iter()
            .map(|(_, e)| u64::from(e.sharers))
            .sum();
        sat_obs::gauge_set("registry.entries", self.registry.len() as u64);
        sat_obs::gauge_set("registry.sharers", sharers);
        sat_obs::gauge_set("kernel.processes", self.procs.len() as u64);
        sat_obs::gauge_set("kernel.asid.generation", self.asids.generation());
        // Page-size occupancy, counted per address space (a large
        // group in a shared PTP serves each sharer's VA range). Gated
        // so promotion-free runs publish the exact gauge set they
        // always have.
        if self.config.promote.enabled {
            let mut large_slots: u64 = 0;
            let mut sections: u64 = 0;
            for mm in self.procs.values() {
                sections += mm.root.section_count() as u64;
                for (_, frame) in mm.root.iter_ptps() {
                    if let Some(table) = self.ptps.get(frame) {
                        large_slots += table
                            .iter()
                            .filter(|(_, _, s)| s.hw.size == PageSize::Large64K)
                            .count() as u64;
                    }
                }
            }
            sat_obs::gauge_set("mmu.pages.large", large_slots / 16);
            sat_obs::gauge_set("mmu.pages.section", sections);
            sat_obs::gauge_set("mmu.waste.frames", self.stats.waste_frames);
        }
    }

    /// The fault-handling context for a process under the current
    /// configuration.
    pub fn fault_ctx(&self, mm: &Mm) -> FaultCtx {
        let zygote_like = mm.is_zygote_like();
        FaultCtx {
            mark_global: self.config.share_tlb && zygote_like,
            domain: if self.config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        }
    }

    /// `mmap(2)`: maps a region, eagerly unsharing any shared PTP in
    /// its range (Section 3.1.2 case 3) and — for the zygote mapping
    /// library code under TLB sharing — marking the region global
    /// (Section 3.2.2).
    pub fn mmap(
        &mut self,
        pid: Pid,
        req: &MmapRequest,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<VirtAddr> {
        // Allocation pressure check before the map materializes
        // anything (no-op without a frame budget).
        self.maybe_reclaim(tlb);
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid.raw();
        let addr = vm_mmap(mm, req)?;
        let len = req.len.div_ceil(sat_types::PAGE_SIZE) * sat_types::PAGE_SIZE;
        let range = VaRange::from_len(addr, len);
        // Gather the operation's TLB maintenance (the freshly mapped
        // pages held no translations, so only unsharing contributes)
        // and resolve it once at the end.
        let mut batch = FlushBatch::new(pid, mm.asid);
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                range,
                &config,
                &mut batch,
                UnshareTrigger::NewRegion,
            )? as u64;
            self.stats.mirror_share(&self.registry.stats);
        }
        if config.share_tlb
            && mm.is_zygote
            && matches!(req.backing, Backing::File { .. })
            && req.perms.execute()
        {
            if let Some(vma) = mm.vma_at_mut(addr) {
                vma.global = true;
            }
        }
        batch.apply(tlb);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Mmap,
                    va: addr.raw(),
                    pages: len / sat_types::PAGE_SIZE,
                    unshared,
                },
            );
        }
        Ok(addr)
    }

    /// `munmap(2)`: unshares affected PTPs (case 4: a region in the
    /// range of a shared PTP is freed), then unmaps.
    pub fn munmap(
        &mut self,
        pid: Pid,
        range: VaRange,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<usize> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid;
        let mut batch = FlushBatch::new(pid, asid);
        // Checked before vm_munmap removes the VMAs: a region carrying
        // global (zygote library) translations needs a machine-wide
        // flush — ASID-scoped maintenance cannot evict global entries.
        let any_global = mm.vmas_overlapping(range).any(|v| v.global);
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                range,
                &config,
                &mut batch,
                UnshareTrigger::RegionFree,
            )? as u64;
            self.stats.mirror_share(&self.registry.stats);
        }
        // A partial unmap cutting through a large page or section must
        // split it first (the vm layer repeats this defensively, but
        // splitting here attributes the event and the size-tagged
        // flush). Wholly covered large mappings stay intact — the zap
        // below releases them exactly.
        for (va, size) in demote_range(mm, &mut self.ptps, &mut self.phys, range)? {
            note_demote(
                &mut self.stats,
                pid,
                asid,
                va,
                size,
                sat_obs::DemoteCause::Munmap,
                &mut batch,
            );
        }
        let cleared = vm_munmap(mm, &mut self.ptps, &mut self.phys, range)?;
        // The unmapped translations must not survive (Linux's
        // flush_tlb_range on the munmap path). Eager unsharing means
        // no other address space holds a PTE that this unmap changed,
        // so the flush is scoped to the operating ASID — except when
        // the region was global.
        if any_global {
            batch.global(sat_obs::FlushReason::RegionOp);
        } else {
            batch.range(
                asid,
                VpnRange::from_va_range(&range),
                sat_obs::FlushReason::RegionOp,
            );
        }
        batch.apply(tlb);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid.raw(),
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Munmap,
                    va: range.start.raw(),
                    pages: range.pages().count() as u32,
                    unshared,
                },
            );
        }
        Ok(cleared)
    }

    /// `mprotect(2)`: unshares affected PTPs (case 2), then applies
    /// the protection change.
    pub fn mprotect(
        &mut self,
        pid: Pid,
        range: VaRange,
        perms: Perms,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<()> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid;
        let mut batch = FlushBatch::new(pid, asid);
        let any_global = mm.vmas_overlapping(range).any(|v| v.global);
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                range,
                &config,
                &mut batch,
                UnshareTrigger::RegionOp,
            )? as u64;
            self.stats.mirror_share(&self.registry.stats);
        }
        // As for munmap: a protection change over *part* of a large
        // mapping splits it (a whole-group change stays uniform and
        // keeps the wide descriptor).
        for (va, size) in demote_range(mm, &mut self.ptps, &mut self.phys, range)? {
            note_demote(
                &mut self.stats,
                pid,
                asid,
                va,
                size,
                sat_obs::DemoteCause::Mprotect,
                &mut batch,
            );
        }
        vm_mprotect(mm, &mut self.ptps, &mut self.phys, range, perms)?;
        // Old (possibly more-permissive) translations must be evicted
        // (Linux's flush_tlb_range on the mprotect path); as for
        // munmap, unsharing is eager so only the operating ASID — and
        // globals, when the region is global — can be stale.
        if any_global {
            batch.global(sat_obs::FlushReason::RegionOp);
        } else {
            batch.range(
                asid,
                VpnRange::from_va_range(&range),
                sat_obs::FlushReason::RegionOp,
            );
        }
        batch.apply(tlb);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid.raw(),
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::Mprotect,
                    va: range.start.raw(),
                    pages: range.pages().count() as u32,
                    unshared,
                },
            );
        }
        Ok(())
    }

    /// Handles a page fault. A *write* fault whose address falls in a
    /// NEED_COPY PTP first unshares it (case 1); the fault is then
    /// handled as in the stock kernel.
    pub fn page_fault(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        access: AccessType,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<ProcFaultOutcome> {
        // The fault path is where frames are actually allocated;
        // crossing the low watermark triggers a reclaim pass first
        // (no-op without a frame budget).
        self.maybe_reclaim(tlb);
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let mut batch = FlushBatch::new(pid, mm.asid);
        let mut unshared = false;
        let mut unshare_ptes_copied = 0;
        if access.is_write() && mm.root.entry_for(va).need_copy() {
            let r = unshare(
                mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                va,
                &config,
                &mut batch,
                UnshareTrigger::WriteFault,
            )?
            .expect("NEED_COPY checked above");
            unshared = true;
            unshare_ptes_copied = r.ptes_copied;
            self.stats.mirror_share(&self.registry.stats);
        }
        let zygote_like = mm.is_zygote_like();
        let ctx = FaultCtx {
            mark_global: config.share_tlb && zygote_like,
            domain: if config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        };
        let asid = mm.asid;
        let vm = handle_fault(mm, &mut self.ptps, &mut self.phys, va, access, ctx)?;
        // A write-protect fault that landed on one slot of a large
        // group had to split the group before the slot could diverge
        // (COW at 4KB granularity); attribute the demotion and flush
        // the group span the stale wide entry covered.
        if let Some(group) = vm.demoted {
            note_demote(
                &mut self.stats,
                pid,
                asid,
                group,
                PageSize::Large64K,
                sat_obs::DemoteCause::Cow,
                &mut batch,
            );
        }
        batch.apply(tlb);
        Ok(ProcFaultOutcome {
            vm,
            unshared,
            unshare_ptes_copied,
        })
    }

    /// Pre-faults `range` in `pid` (used by the zygote preload).
    pub fn populate(&mut self, pid: Pid, range: VaRange) -> SatResult<usize> {
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let zygote_like = mm.is_zygote_like();
        let ctx = FaultCtx {
            mark_global: config.share_tlb && zygote_like,
            domain: if config.share_tlb && zygote_like {
                Domain::ZYGOTE
            } else {
                Domain::USER
            },
        };
        populate(mm, &mut self.ptps, &mut self.phys, range, ctx)
    }

    /// Maps an anonymous region with 64KB large pages (the
    /// hugetlbfs-like path), eagerly populating it. Large-page
    /// regions compose with PTP sharing: their sixteen-slot groups
    /// live in ordinary PTPs, which fork can share.
    #[allow(clippy::too_many_arguments)]
    pub fn mmap_large(
        &mut self,
        pid: Pid,
        at: VirtAddr,
        len: u32,
        perms: Perms,
        tag: sat_types::RegionTag,
        name: &str,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<sat_vm::LargeMapReport> {
        // Eager population allocates the whole region up front; check
        // pressure first (no-op without a frame budget).
        self.maybe_reclaim(tlb);
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let zygote_like = mm.is_zygote_like();
        let domain = if config.share_tlb && zygote_like {
            Domain::ZYGOTE
        } else {
            Domain::USER
        };
        // Section 3.1.2 case 3 applies here exactly as in `mmap`: a
        // new region in the range of a shared PTP must unshare it
        // eagerly, or the eager PTE installs below would leak into the
        // other sharers' address spaces.
        let range = sat_vm::round_to_large(sat_types::VaRange::from_len(at, len));
        let asid = mm.asid.raw();
        let mut batch = FlushBatch::new(pid, mm.asid);
        let mut unshared = 0;
        if config.share_ptp {
            unshared = unshare_range(
                mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                range,
                &config,
                &mut batch,
                UnshareTrigger::NewRegion,
            )? as u64;
            self.stats.mirror_share(&self.registry.stats);
        }
        let report = sat_vm::mmap_large(
            mm,
            &mut self.ptps,
            &mut self.phys,
            at,
            len,
            perms,
            tag,
            name,
            domain,
        )?;
        batch.apply(tlb);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::RegionOp {
                    op: sat_obs::RegionOpKind::MmapLarge,
                    va: at.raw(),
                    pages: len.div_ceil(sat_types::PAGE_SIZE),
                    unshared,
                },
            );
        }
        Ok(report)
    }

    /// `fork(2)`: shares PTPs when enabled, else copies per the
    /// configured policy.
    ///
    /// Both paths may write-protect parent PTEs (COW and/or
    /// PTP-sharing protection). Callers that model a TLB must flush
    /// the parent's cached translations for the *protected* ranges
    /// afterwards, as Linux's `dup_mmap`/`flush_tlb_mm` does — use
    /// [`Kernel::fork_with_flush`] to learn which ranges those are
    /// ([`sat_sim::Machine::fork`] gathers them into a
    /// [`FlushBatch`]); direct kernel users with no TLB have nothing
    /// to go stale.
    pub fn fork(&mut self, parent: Pid) -> SatResult<ForkOutcome> {
        self.fork_with_flush(parent).map(|(outcome, _)| outcome)
    }

    /// [`Kernel::fork`] plus the VPN ranges of parent PTEs the fork
    /// write-protected (empty when nothing changed — e.g. every chunk
    /// was already `NEED_COPY` from an earlier fork). Only entries in
    /// these ranges can have gone stale in the parent's TLB.
    pub fn fork_with_flush(&mut self, parent: Pid) -> SatResult<(ForkOutcome, Vec<VpnRange>)> {
        let config = self.config;
        let child_pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let child_asid = self.alloc_asid();
        let parent_mm = self.procs.get_mut(&parent).ok_or(SatError::NoSuchProcess)?;
        let parent_asid = parent_mm.asid.raw();
        self.stats.forks += 1;

        // Sections are invisible to both fork paths (they walk PTPs; a
        // section lives directly in the level-1 entry), so the
        // parent's sections must split back to PTEs before the copy or
        // share pass — otherwise the child would silently lose those
        // anonymous mappings. The split itself preserves every
        // translation, but the COW protection that follows rewrites
        // per-PTE permissions a cached 1MB entry cannot reflect, so
        // each span joins the parent's to-flush set.
        let section_idxs: Vec<usize> = parent_mm.root.iter_sections().collect();
        let mut demoted_spans: Vec<VpnRange> = Vec::new();
        for idx in section_idxs {
            let va = VirtAddr::new((idx as u32) << 20);
            let ptes = {
                let mut mapper =
                    Mapper::new(&mut parent_mm.root, &mut self.ptps, &mut self.phys, parent);
                mapper.split_section(va)?
            };
            self.stats.demotions += 1;
            self.stats.split_ptes += u64::from(ptes);
            let bytes = PageSize::Section1M.bytes();
            demoted_spans.push(VpnRange::from_va_range(&VaRange::from_len(va, bytes)));
            if sat_obs::enabled() {
                sat_obs::emit(
                    sat_obs::Subsystem::Kernel,
                    parent.raw(),
                    parent_asid,
                    sat_obs::Payload::Demote {
                        va: va.raw(),
                        bytes,
                        pages: u64::from(ptes),
                        cause: sat_obs::DemoteCause::Fork,
                    },
                );
            }
        }

        let (child_mm, outcome, mut protected) = if config.share_ptp {
            self.stats.share_forks += 1;
            let (child_mm, r) = fork_share(
                parent_mm,
                &mut self.ptps,
                &mut self.phys,
                &mut self.registry,
                child_pid,
                child_asid,
                &config,
            )?;
            let outcome = ForkOutcome {
                child: child_pid,
                ptes_copied: r.ptes_copied,
                ptes_copied_file: r.ptes_copied_file,
                ptps_allocated: r.ptps_allocated,
                ptps_shared: r.ptps_shared,
                write_protect_ops: r.write_protect_ops,
            };
            (child_mm, outcome, r.protected)
        } else {
            let (child_mm, r) = fork_mm(
                parent_mm,
                &mut self.ptps,
                &mut self.phys,
                child_pid,
                child_asid,
                config.fork_policy,
                Domain::USER,
            )?;
            // The stock COW pass write-protects across every writable
            // region; their spans are the Linux `flush_tlb_mm`
            // equivalent (a wide enough total escalates to a full
            // per-ASID flush at the gather's ceiling).
            let protected: Vec<VpnRange> = if r.cow_protected > 0 {
                parent_mm
                    .vmas()
                    .filter(|v| v.perms.write())
                    .map(|v| VpnRange::from_va_range(&v.range))
                    .collect()
            } else {
                Vec::new()
            };
            let outcome = ForkOutcome {
                child: child_pid,
                ptes_copied: r.ptes_copied,
                ptes_copied_file: r.ptes_copied_file,
                ptps_allocated: r.ptps_allocated,
                ptps_shared: 0,
                write_protect_ops: r.cow_protected,
            };
            (child_mm, outcome, protected)
        };
        protected.extend(demoted_spans);
        self.procs.insert(child_pid, child_mm);
        self.asids.assign_current(child_pid);
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                parent.raw(),
                parent_asid,
                sat_obs::Payload::Fork {
                    child: child_pid.raw(),
                    ptps_shared: outcome.ptps_shared,
                    ptes_copied: outcome.ptes_copied,
                    shared: config.share_ptp,
                },
            );
        }
        Ok((outcome, protected))
    }

    /// Process exit: tears down the address space. Shared PTPs are
    /// dereferenced, not reclaimed, when other sharers remain (case
    /// 5).
    pub fn exit(&mut self, pid: Pid, tlb: &mut dyn TlbMaintenance) -> SatResult<()> {
        let stale = self.asid_is_stale(pid);
        let mut mm = self.procs.remove(&pid).ok_or(SatError::NoSuchProcess)?;
        // Drop this process's shared-PTP references from the registry
        // before teardown releases the frames (case 5: exit
        // dereferences without copying, so this is a detach, not an
        // unshare).
        for (idx, frame) in mm.root.iter_ptps() {
            if mm.root.entry(idx).need_copy() {
                self.registry.exit_detach(frame);
            }
        }
        exit_mmap(&mut mm, &mut self.ptps, &mut self.phys);
        if !stale {
            let mut batch = FlushBatch::new(pid, mm.asid);
            batch.asid(mm.asid, sat_obs::FlushReason::Exit);
            batch.apply(tlb);
        }
        // A stale generation's entries are covered by the rollover
        // flush; flushing the raw value here would only hit — and
        // charge shootdown IPIs to — a new-generation process that
        // was reissued the same value.
        self.asids.forget(pid);
        let asid = mm.asid.raw();
        mm.free_root(&mut self.phys);
        self.stats.exits += 1;
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                pid.raw(),
                asid,
                sat_obs::Payload::Exit,
            );
        }
        Ok(())
    }

    /// The domain-fault handler (Section 3.2.3): a non-zygote process
    /// matched a global TLB entry it has no domain rights to. The
    /// handler flushes every TLB entry matching the faulting address;
    /// on return the process re-faults into a normal table walk.
    pub fn domain_fault(&mut self, va: VirtAddr, tlb: &mut dyn TlbMaintenance) {
        self.stats.domain_faults += 1;
        sat_obs::with_flush_reason(sat_obs::FlushReason::DomainFault, || {
            tlb.flush_va_all_asids(va);
        });
        // The faulting process is not identified by the hardware (the
        // DACR check happens before translation completes), so the
        // event carries no pid/ASID.
        if sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                0,
                0,
                sat_obs::Payload::DomainFault { va: va.raw() },
            );
        }
    }

    /// Reads the PTE slot serving `va` in `pid`, if populated.
    pub fn pte(&mut self, pid: Pid, va: VirtAddr) -> SatResult<Option<PteSlot>> {
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let mapper = Mapper::new(&mut mm.root, &mut self.ptps, &mut self.phys, pid);
        Ok(mapper.get_pte(va))
    }

    /// Snapshot for the paper's Figure 12: of the PTPs currently
    /// referenced by `pid`, how many are shared with at least one
    /// other process. Returns `(shared, total)`. Answered from the
    /// registry — no mapcount scan.
    pub fn ptp_share_snapshot(&self, pid: Pid) -> SatResult<(usize, usize)> {
        let mm = self.mm(pid)?;
        let mut shared = 0;
        let mut total = 0;
        for (_, frame) in mm.root.iter_ptps() {
            total += 1;
            if self.registry.shared_with_others(frame) {
                shared += 1;
            }
        }
        Ok((shared, total))
    }

    /// Reconciliation check used by the property tests: every registry
    /// entry's sharer count must equal both the frame's mapcount and
    /// the number of live processes whose level-1 pair references the
    /// frame with `NEED_COPY` — and no `NEED_COPY` reference may exist
    /// outside the registry. Also checks that the four by-cause
    /// unshare counters sum to `ptp_unshares`. Returns a description
    /// of the first violation found.
    pub fn verify_share_accounting(&self) -> Result<(), String> {
        let mut refs: std::collections::BTreeMap<sat_types::Pfn, u32> =
            std::collections::BTreeMap::new();
        for mm in self.procs.values() {
            for (idx, frame) in mm.root.iter_ptps() {
                if mm.root.entry(idx).need_copy() {
                    *refs.entry(frame).or_insert(0) += 1;
                }
            }
        }
        for (frame, entry) in self.registry.iter() {
            let n = refs.remove(&frame).unwrap_or(0);
            if entry.sharers != n {
                return Err(format!(
                    "registry records {} sharers for {frame:?} but {n} NEED_COPY references exist",
                    entry.sharers
                ));
            }
            let mapcount = self.phys.mapcount(frame);
            if entry.sharers != mapcount {
                return Err(format!(
                    "registry records {} sharers for {frame:?} but mapcount is {mapcount}",
                    entry.sharers
                ));
            }
        }
        if let Some((frame, n)) = refs.into_iter().next() {
            return Err(format!(
                "{n} NEED_COPY references to {frame:?} with no registry entry"
            ));
        }
        let s = &self.registry.stats;
        let by_cause = s.unshares_write_fault
            + s.unshares_new_region
            + s.unshares_region_free
            + s.unshares_region_op;
        if s.ptp_unshares != by_cause {
            return Err(format!(
                "by-cause unshare counters sum to {by_cause}, ptp_unshares is {}",
                s.ptp_unshares
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoTlb;
    use sat_types::{RegionTag, PAGE_SIZE};

    fn code_req(file: sat_phys::FileId, pages: u32, at: u32) -> MmapRequest {
        MmapRequest::file(
            pages * PAGE_SIZE,
            Perms::RX,
            file,
            0,
            RegionTag::ZygoteNativeCode,
            "libtest.so",
        )
        .at(VirtAddr::new(at))
    }

    /// Boots a minimal zygote: one library (8 pages code) preloaded
    /// and touched, one heap page written.
    fn boot(config: KernelConfig) -> (Kernel, Pid) {
        let mut k = Kernel::new(config, 16384);
        let lib = k.files.register("libtest.so", 8 * PAGE_SIZE);
        let zygote = k.create_process().unwrap();
        k.exec_zygote(zygote).unwrap();
        k.mmap(zygote, &code_req(lib, 8, 0x4000_0000), &mut NoTlb)
            .unwrap();
        k.populate(
            zygote,
            VaRange::from_len(VirtAddr::new(0x4000_0000), 8 * PAGE_SIZE),
        )
        .unwrap();
        let heap = MmapRequest::anon(2 * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(0x0900_0000));
        k.mmap(zygote, &heap, &mut NoTlb).unwrap();
        k.page_fault(
            zygote,
            VirtAddr::new(0x0900_0000),
            AccessType::Write,
            &mut NoTlb,
        )
        .unwrap();
        (k, zygote)
    }

    #[test]
    fn stock_fork_refaults_code_in_child() {
        let (mut k, zygote) = boot(KernelConfig::stock());
        let f = k.fork(zygote).unwrap();
        assert_eq!(f.ptps_shared, 0);
        assert_eq!(f.ptes_copied, 1); // the heap page only
                                      // Child faults on code: soft fault (page cache warm).
        let o = k
            .page_fault(
                f.child,
                VirtAddr::new(0x4000_0000),
                AccessType::Execute,
                &mut NoTlb,
            )
            .unwrap();
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Minor);
        assert!(!o.unshared);
    }

    #[test]
    fn copied_ptes_fork_copies_code_too() {
        let (mut k, zygote) = boot(KernelConfig::copied_ptes());
        let f = k.fork(zygote).unwrap();
        assert_eq!(f.ptes_copied, 9); // 8 code + 1 heap
        assert!(k
            .pte(f.child, VirtAddr::new(0x4000_0000))
            .unwrap()
            .is_some());
    }

    #[test]
    fn shared_fork_eliminates_child_code_faults() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        assert!(f.ptps_shared >= 1);
        assert_eq!(f.ptes_copied, 0); // heap PTE is in a shared PTP too
                                      // The child's code PTEs are immediately present.
        assert!(k
            .pte(f.child, VirtAddr::new(0x4000_0000))
            .unwrap()
            .is_some());
    }

    #[test]
    fn write_fault_in_shared_ptp_unshares_then_cows() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let heap = VirtAddr::new(0x0900_0000);
        let o = k
            .page_fault(f.child, heap, AccessType::Write, &mut NoTlb)
            .unwrap();
        assert!(o.unshared);
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Cow);
        // Parent and child now map different frames.
        let p = k.pte(zygote, heap).unwrap().unwrap().hw.pfn;
        let c = k.pte(f.child, heap).unwrap().unwrap().hw.pfn;
        assert_ne!(p, c);
    }

    #[test]
    fn zygote_mmap_of_code_marks_region_global_under_tlb_sharing() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp_tlb());
        assert!(
            k.mm(zygote)
                .unwrap()
                .vma_at(VirtAddr::new(0x4000_0000))
                .unwrap()
                .global
        );
        // And the populated PTEs carry the global bit.
        let slot = k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().unwrap();
        assert!(slot.hw.global);
    }

    #[test]
    fn stock_kernel_never_sets_global() {
        let (mut k, zygote) = boot(KernelConfig::stock());
        let slot = k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().unwrap();
        assert!(!slot.hw.global);
        assert!(
            !k.mm(zygote)
                .unwrap()
                .vma_at(VirtAddr::new(0x4000_0000))
                .unwrap()
                .global
        );
    }

    #[test]
    fn child_inherits_global_regions_and_zygote_domain() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp_tlb());
        let f = k.fork(zygote).unwrap();
        let mm = k.mm(f.child).unwrap();
        assert!(mm.is_zygote_child);
        assert!(mm.vma_at(VirtAddr::new(0x4000_0000)).unwrap().global);
        assert_eq!(
            mm.dacr.access(Domain::ZYGOTE),
            sat_types::DomainAccess::Client
        );
        // Non-zygote process gets no zygote-domain access.
        let outsider = k.create_process().unwrap();
        assert_eq!(
            k.mm(outsider).unwrap().dacr.access(Domain::ZYGOTE),
            sat_types::DomainAccess::NoAccess
        );
    }

    #[test]
    fn mmap_into_shared_chunk_unshares_eagerly() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        // Child maps a new region in the code chunk's 2MB span.
        let req = MmapRequest::anon(PAGE_SIZE, Perms::RW, RegionTag::AppData, "newdata")
            .at(VirtAddr::new(0x4010_0000));
        k.mmap(f.child, &req, &mut NoTlb).unwrap();
        let child_mm = k.mm(f.child).unwrap();
        assert!(!child_mm
            .root
            .entry_for(VirtAddr::new(0x4000_0000))
            .need_copy());
        assert_eq!(child_mm.counters.unshares_by_region_op, 1);
        // The zygote still considers its PTP shared until it modifies.
        assert!(k
            .mm(zygote)
            .unwrap()
            .root
            .entry_for(VirtAddr::new(0x4000_0000))
            .need_copy());
    }

    #[test]
    fn munmap_unshares_then_frees_region() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let heap_range = VaRange::from_len(VirtAddr::new(0x0900_0000), 2 * PAGE_SIZE);
        k.munmap(f.child, heap_range, &mut NoTlb).unwrap();
        assert!(k
            .mm(f.child)
            .unwrap()
            .vma_at(VirtAddr::new(0x0900_0000))
            .is_none());
        // Parent's heap PTE must be intact (the child unshared first).
        assert!(k.pte(zygote, VirtAddr::new(0x0900_0000)).unwrap().is_some());
    }

    #[test]
    fn mprotect_unshares_affected_chunks() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let code = VaRange::from_len(VirtAddr::new(0x4000_0000), 8 * PAGE_SIZE);
        k.mprotect(f.child, code, Perms::R, &mut NoTlb).unwrap();
        assert!(!k
            .mm(f.child)
            .unwrap()
            .root
            .entry_for(code.start)
            .need_copy());
        // Parent keeps executable permissions.
        assert_eq!(
            k.pte(zygote, code.start).unwrap().unwrap().hw.perms,
            Perms::RX
        );
        assert_eq!(
            k.pte(f.child, code.start).unwrap().unwrap().hw.perms,
            Perms::R
        );
    }

    #[test]
    fn exit_skips_reclaiming_shared_ptps() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let f = k.fork(zygote).unwrap();
        let ptps_before = k.ptps.len();
        k.exit(f.child, &mut NoTlb).unwrap();
        // All PTPs survive (the zygote still references them).
        assert_eq!(k.ptps.len(), ptps_before);
        assert!(k.pte(zygote, VirtAddr::new(0x4000_0000)).unwrap().is_some());
        // Now the zygote exits too; everything is reclaimed.
        k.exit(zygote, &mut NoTlb).unwrap();
        assert!(k.ptps.is_empty());
    }

    #[test]
    fn many_children_share_one_set_of_ptps() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let baseline_ptps = k.ptps.len();
        let mut children = Vec::new();
        for _ in 0..8 {
            children.push(k.fork(zygote).unwrap().child);
        }
        // No new PTPs at all: everything is shared.
        assert_eq!(k.ptps.len(), baseline_ptps);
        let (shared, total) = k.ptp_share_snapshot(zygote).unwrap();
        assert_eq!(shared, total);
        for c in children {
            k.exit(c, &mut NoTlb).unwrap();
        }
        let (shared, _) = k.ptp_share_snapshot(zygote).unwrap();
        assert_eq!(shared, 0);
    }

    #[test]
    fn soft_fault_population_visible_to_later_children() {
        // Paper Section 4.2.1: "all subsequent applications can also
        // benefit from the PTEs populated by the applications launched
        // earlier".
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        // Extend the library mapping with untouched pages.
        let lib2 = k.files.register("libextra.so", 4 * PAGE_SIZE);
        k.mmap(zygote, &code_req(lib2, 4, 0x4008_0000), &mut NoTlb)
            .unwrap();
        let f1 = k.fork(zygote).unwrap();
        // Child 1 faults a page the zygote never touched.
        let va = VirtAddr::new(0x4008_1000);
        let o = k
            .page_fault(f1.child, va, AccessType::Execute, &mut NoTlb)
            .unwrap();
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Major);
        // A child forked afterwards sees the PTE without faulting.
        let f2 = k.fork(zygote).unwrap();
        assert!(k.pte(f2.child, va).unwrap().is_some());
        // So does the zygote itself.
        assert!(k.pte(zygote, va).unwrap().is_some());
    }

    // The ASID-rollover invariant tests live with the allocator in
    // `crate::asid`.

    #[test]
    fn domain_fault_counter_increments() {
        let mut k = Kernel::new(KernelConfig::shared_ptp_tlb(), 1024);
        k.domain_fault(VirtAddr::new(0x4000_0000), &mut NoTlb);
        assert_eq!(k.stats.domain_faults, 1);
    }
}
