//! The khugepaged-style large-page promotion scanner.
//!
//! The paper measures translation state at one fixed granularity; this
//! module makes page size a policy outcome instead. A scan pass walks
//! a process's regions looking for 64KB-aligned groups of sixteen
//! settled 4KB PTEs and collapses each into one replicated large-page
//! descriptor ([`sat_vm::collapse_group`]); optionally, a second pass
//! collapses fully large-mapped 1MB spans into level-1 section entries
//! ([`sat_mmu::Mapper::collapse_section`]). Like khugepaged, the
//! scanner tolerates holes: a group only `min_populated`/16 full is
//! still collapsed, the missing frames allocated fresh and never
//! touched — which is exactly the memory waste Section 2 of the paper
//! prices against the TLB-reach win, and why every fill is accounted
//! in [`KernelStats::waste_frames`](crate::kernel::KernelStats).
//!
//! Sharing-awareness: a group inside a `NEED_COPY` (shared) PTP is
//! never promoted — promotion rewrites PTEs, and shared tables may
//! only be rewritten through the unshare discipline. Individually
//! shared (COW) slots and slots whose hardware/software write bits
//! disagree are likewise rejected by the collapse primitive, so the
//! scanner can simply offer every group and let ineligible ones fall
//! out as [`SatError::InvalidArgument`]. The scan is idempotent:
//! already-large groups fail the Small4K eligibility check and are
//! skipped.
//!
//! TLB correctness: after a collapse the sixteen small translations a
//! TLB may hold are stale (wrong size tag, though same frames and
//! permissions); the scan gathers one group-span invalidation per
//! promotion into a [`FlushBatch`] tagged [`FlushReason::Promote`] and
//! resolves it once at the end.

use sat_mmu::{HwPte, Mapper, PtpStore};
use sat_obs::FlushReason;
use sat_phys::{FrameKind, PhysMem};
use sat_types::{
    Domain, PageSize, Pfn, Pid, SatError, SatResult, VaRange, VirtAddr, VpnRange, PAGE_SIZE,
};
use sat_vm::{Mm, LARGE_PAGE_BYTES};

use crate::flush::FlushBatch;
use crate::kernel::Kernel;
use crate::TlbMaintenance;

/// Bytes covered by a level-1 section entry.
const SECTION_BYTES: u32 = 1 << 20;

/// What one [`Kernel::promote_scan`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PromoteReport {
    /// 64KB groups collapsed to large pages.
    pub promoted: u64,
    /// 1MB spans collapsed to section entries.
    pub sections: u64,
    /// Frames allocated for never-faulted holes across all promoted
    /// groups — the memory the reach experiment reports as waste.
    pub filled: u64,
    /// Groups skipped because their PTP is shared (`NEED_COPY`):
    /// promotion never crosses a sharing boundary.
    pub skipped_shared: u64,
}

impl Kernel {
    /// Runs one promotion pass over `pid`'s address space (a no-op
    /// returning zeros unless `config.promote.enabled`).
    ///
    /// Every 64KB-aligned group lying wholly inside one region is
    /// offered for collapse when it has at least
    /// `config.promote.min_populated` settled 4KB PTEs and its PTP is
    /// not shared. With `config.promote.sections`, a second pass
    /// collapses 1MB spans that the first pass left fully
    /// large-mapped and physically contiguous. Stops early (reporting
    /// what it managed) if physical memory runs out mid-scan.
    pub fn promote_scan(
        &mut self,
        pid: Pid,
        tlb: &mut dyn TlbMaintenance,
    ) -> SatResult<PromoteReport> {
        let policy = self.config.promote;
        let mut report = PromoteReport::default();
        if !policy.enabled {
            return Ok(report);
        }
        let config = self.config;
        let mm = self.procs.get_mut(&pid).ok_or(SatError::NoSuchProcess)?;
        let asid = mm.asid;
        let zygote_like = mm.is_zygote_like();
        let domain = if config.share_tlb && zygote_like {
            Domain::ZYGOTE
        } else {
            Domain::USER
        };
        let vma_ranges: Vec<VaRange> = mm.vmas().map(|v| v.range).collect();
        let mut batch = FlushBatch::new(pid, asid);
        'scan: for range in &vma_ranges {
            let mut at = range.start.raw().next_multiple_of(LARGE_PAGE_BYTES);
            while at
                .checked_add(LARGE_PAGE_BYTES)
                .is_some_and(|e| e <= range.end.raw())
            {
                let group = VirtAddr::new(at);
                at += LARGE_PAGE_BYTES;
                if mm.root.entry_for(group).need_copy() {
                    report.skipped_shared += 1;
                    continue;
                }
                let span = VaRange::from_len(group, LARGE_PAGE_BYTES);
                {
                    // Cheap pre-survey: enforce the policy's population
                    // floor before paying for the collapse attempt.
                    let mapper = Mapper::new(&mut mm.root, &mut self.ptps, &mut self.phys, pid);
                    let populated = mapper.iter_range(span).len();
                    if populated < usize::from(policy.min_populated) {
                        continue;
                    }
                }
                match sat_vm::collapse_group(mm, &mut self.ptps, &mut self.phys, group, domain) {
                    Ok(out) => {
                        report.promoted += 1;
                        report.filled += u64::from(out.filled);
                        self.stats.promotions += 1;
                        self.stats.waste_frames += u64::from(out.filled);
                        batch.range(asid, VpnRange::from_va_range(&span), FlushReason::Promote);
                        if sat_obs::enabled() {
                            sat_obs::emit(
                                sat_obs::Subsystem::Kernel,
                                pid.raw(),
                                asid.raw(),
                                sat_obs::Payload::Promote {
                                    va: group.raw(),
                                    bytes: LARGE_PAGE_BYTES,
                                    pages: u64::from(LARGE_PAGE_BYTES / PAGE_SIZE),
                                    filled: u64::from(out.filled),
                                },
                            );
                        }
                    }
                    // Not eligible (partial population below the
                    // collapse floor, mixed permissions, COW-shared
                    // slots, already large): leave it small.
                    Err(SatError::InvalidArgument) => {}
                    // No frames left for hole filling: promotion is
                    // strictly optional work, so stop scanning rather
                    // than propagate pressure to the caller.
                    Err(SatError::OutOfMemory) => break 'scan,
                    Err(e) => return Err(e),
                }
            }
        }
        if policy.sections {
            'sections: for range in &vma_ranges {
                let mut at = range.start.raw().next_multiple_of(SECTION_BYTES);
                while at
                    .checked_add(SECTION_BYTES)
                    .is_some_and(|e| e <= range.end.raw())
                {
                    let va = VirtAddr::new(at);
                    at += SECTION_BYTES;
                    if mm.root.entry_for(va).need_copy() {
                        report.skipped_shared += 1;
                        continue;
                    }
                    match collapse_section_migrating(
                        mm,
                        &mut self.ptps,
                        &mut self.phys,
                        pid,
                        va,
                        domain,
                    ) {
                        Ok(true) => {
                            report.sections += 1;
                            self.stats.section_promotions += 1;
                            let span = VaRange::from_len(va, SECTION_BYTES);
                            batch.range(asid, VpnRange::from_va_range(&span), FlushReason::Promote);
                            if sat_obs::enabled() {
                                sat_obs::emit(
                                    sat_obs::Subsystem::Kernel,
                                    pid.raw(),
                                    asid.raw(),
                                    sat_obs::Payload::Promote {
                                        va: va.raw(),
                                        bytes: SECTION_BYTES,
                                        pages: u64::from(SECTION_BYTES / PAGE_SIZE),
                                        filled: 0,
                                    },
                                );
                            }
                        }
                        // Not fully large-mapped or not uniform.
                        Ok(false) => {}
                        Err(SatError::OutOfMemory) => break 'sections,
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        batch.apply(tlb);
        Ok(report)
    }
}

/// Collapses the 1MB span at `va` into a level-1 section, migrating
/// frames when necessary.
///
/// The fast path is [`Mapper::collapse_section`]: all 256 slots
/// already reference one physically contiguous, ascending run (the
/// refs transfer in place). When the span is fully large-mapped and
/// uniform but the sixteen group runs are scattered — the common case,
/// since each group's collapse allocated its run independently — the
/// span is *compacted*: a fresh 256-frame run is allocated, every slot
/// is rewritten onto its frame of the run, and the in-place collapse
/// then succeeds. This is the section-sized analogue of khugepaged's
/// copy-collapse, minus the data copy the simulator doesn't model.
///
/// Returns whether a section was installed; `Ok(false)` means the span
/// is not eligible (partially mapped, mixed sizes or permissions, or
/// unsettled slots). Out-of-memory aborts before any slot is touched.
fn collapse_section_migrating(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    pid: Pid,
    va: VirtAddr,
    domain: Domain,
) -> SatResult<bool> {
    {
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, pid);
        match mapper.collapse_section(va) {
            Ok(_base) => return Ok(true),
            Err(SatError::InvalidArgument) => {}
            Err(e) => return Err(e),
        }
    }
    let span = VaRange::from_len(va, SECTION_BYTES);
    let entries = (SECTION_BYTES / PAGE_SIZE) as usize;
    let slots = {
        let mapper = Mapper::new(&mut mm.root, ptps, phys, pid);
        mapper.iter_range(span)
    };
    if slots.len() != entries {
        return Ok(false);
    }
    let (perms, global) = (slots[0].1.hw.perms, slots[0].1.hw.global);
    let uniform = slots.iter().all(|(_, s)| {
        s.hw.size == PageSize::Large64K
            && s.hw.perms == perms
            && s.hw.global == global
            && !s.sw.shared
            && !s.sw.file_backed
            && s.sw.writable == perms.write()
    });
    if !uniform {
        return Ok(false);
    }
    let base = phys.alloc_run(FrameKind::Anon, entries as u32)?;
    for (i, (page, s)) in slots.iter().enumerate() {
        let frame = Pfn::new(base.raw() + i as u32);
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, pid);
        mapper.clear_pte(*page);
        mapper.set_pte(*page, HwPte::small(frame, perms, global), s.sw, domain)?;
        // Drop the allocation reference; the PTE holds its own.
        phys.put_page(frame);
    }
    let mut mapper = Mapper::new(&mut mm.root, ptps, phys, pid);
    mapper.collapse_section(va)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelConfig, PromotePolicy};
    use crate::NoTlb;
    use sat_types::{AccessType, PageSize, Perms, RegionTag, PAGE_SIZE};
    use sat_vm::MmapRequest;

    const HEAP: u32 = 0x0900_0000;

    fn promoting(mut config: KernelConfig, min_populated: u8, sections: bool) -> KernelConfig {
        config.promote = PromotePolicy {
            enabled: true,
            min_populated,
            sections,
        };
        config
    }

    /// Boots a kernel with one process holding a `pages`-page anon
    /// heap at [`HEAP`], faulting in `touch` (page indexes).
    fn boot(config: KernelConfig, pages: u32, touch: &[u32]) -> (Kernel, Pid) {
        let mut k = Kernel::new(config, 16384);
        let pid = k.create_process().unwrap();
        let req = MmapRequest::anon(pages * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(HEAP));
        k.mmap(pid, &req, &mut NoTlb).unwrap();
        for &i in touch {
            k.page_fault(
                pid,
                VirtAddr::new(HEAP + i * PAGE_SIZE),
                AccessType::Write,
                &mut NoTlb,
            )
            .unwrap();
        }
        (k, pid)
    }

    #[test]
    fn scan_is_inert_when_disabled() {
        let (mut k, pid) = boot(KernelConfig::stock(), 16, &[0, 5, 9]);
        let before = k.phys.frames_in_use();
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r, PromoteReport::default());
        assert_eq!(k.stats.promotions, 0);
        assert_eq!(k.phys.frames_in_use(), before);
        assert_eq!(
            k.pte(pid, VirtAddr::new(HEAP)).unwrap().unwrap().hw.size,
            PageSize::Small4K
        );
    }

    #[test]
    fn scan_collapses_sparse_groups_and_accounts_waste() {
        // Two groups: the first 6/16 populated, the second untouched.
        let (mut k, pid) = boot(
            promoting(KernelConfig::stock(), 1, false),
            32,
            &[0, 2, 5, 7, 11, 13],
        );
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r.promoted, 1, "empty group must not promote");
        assert_eq!(r.filled, 10);
        assert_eq!(k.stats.promotions, 1);
        assert_eq!(k.stats.waste_frames, 10);
        let slot = k.pte(pid, VirtAddr::new(HEAP)).unwrap().unwrap();
        assert_eq!(slot.hw.size, PageSize::Large64K);
        // Second pass finds nothing new: the scan is idempotent.
        let r2 = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r2.promoted, 0);
        assert_eq!(k.stats.waste_frames, 10);
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn population_floor_blocks_sparse_groups() {
        let (mut k, pid) = boot(
            promoting(KernelConfig::stock(), 8, false),
            16,
            &[0, 2, 5, 7, 11, 13],
        );
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r.promoted, 0, "6/16 is under the 8-slot floor");
        assert_eq!(
            k.pte(pid, VirtAddr::new(HEAP)).unwrap().unwrap().hw.size,
            PageSize::Small4K
        );
    }

    #[test]
    fn shared_ptps_are_never_promoted() {
        let (mut k, pid) = boot(
            promoting(KernelConfig::shared_ptp(), 1, false),
            16,
            &[0, 1, 2, 3],
        );
        let _child = k.fork(pid).unwrap().child;
        assert!(k
            .mm(pid)
            .unwrap()
            .root
            .entry_for(VirtAddr::new(HEAP))
            .need_copy());
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r.promoted, 0);
        assert!(r.skipped_shared >= 1);
        assert_eq!(
            k.pte(pid, VirtAddr::new(HEAP)).unwrap().unwrap().hw.size,
            PageSize::Small4K
        );
        k.verify_share_accounting().unwrap();
    }

    #[test]
    fn sections_form_over_fully_promoted_spans() {
        // A 1MB region, every page touched: 16 large groups form, and
        // the section pass compacts their scattered runs onto one
        // contiguous 256-frame run and installs a level-1 section.
        let (mut k, pid) = boot(
            promoting(KernelConfig::stock(), 1, true),
            256,
            &(0..256).collect::<Vec<u32>>(),
        );
        sat_obs::install(4096);
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        let rec = sat_obs::uninstall().unwrap();
        assert_eq!(r.promoted, 16);
        assert_eq!(r.sections, 1);
        assert_eq!(k.stats.section_promotions, 1);
        assert_eq!(k.mm(pid).unwrap().root.section_count(), 1);
        let t = k.mm(pid).unwrap().root.entry_for(VirtAddr::new(HEAP));
        assert!(matches!(t, sat_mmu::L1Entry::Section { .. }));
        let promotes = rec
            .events
            .iter()
            .filter(|e| matches!(e.payload, sat_obs::Payload::Promote { .. }))
            .count() as u64;
        assert_eq!(promotes, r.promoted + r.sections);
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn partial_munmap_demotes_with_event_and_counters() {
        let touched: Vec<u32> = (0..16).collect();
        let (mut k, pid) = boot(promoting(KernelConfig::stock(), 1, false), 16, &touched);
        assert_eq!(k.promote_scan(pid, &mut NoTlb).unwrap().promoted, 1);
        sat_obs::install(1024);
        k.munmap(
            pid,
            VaRange::from_len(VirtAddr::new(HEAP), PAGE_SIZE),
            &mut NoTlb,
        )
        .unwrap();
        let rec = sat_obs::uninstall().unwrap();
        assert_eq!(k.stats.demotions, 1);
        assert_eq!(k.stats.split_ptes, 16);
        let demote = rec
            .events
            .iter()
            .find_map(|e| match e.payload {
                sat_obs::Payload::Demote { va, cause, .. } => Some((va, cause)),
                _ => None,
            })
            .expect("partial munmap over a large page must emit Demote");
        assert_eq!(demote, (HEAP, sat_obs::DemoteCause::Munmap));
        // The fifteen survivors are small and still mapped.
        for i in 1..16 {
            let slot = k
                .pte(pid, VirtAddr::new(HEAP + i * PAGE_SIZE))
                .unwrap()
                .expect("survivor unmapped");
            assert_eq!(slot.hw.size, PageSize::Small4K);
        }
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn cow_write_fault_splits_promoted_group() {
        let touched: Vec<u32> = (0..16).collect();
        let (mut k, pid) = boot(promoting(KernelConfig::stock(), 1, false), 16, &touched);
        assert_eq!(k.promote_scan(pid, &mut NoTlb).unwrap().promoted, 1);
        // Stock fork write-protects the group (COW) slot by slot; the
        // group stays large and uniform on both sides.
        let child = k.fork(pid).unwrap().child;
        assert_eq!(
            k.pte(pid, VirtAddr::new(HEAP)).unwrap().unwrap().hw.size,
            PageSize::Large64K
        );
        sat_obs::install(1024);
        let o = k
            .page_fault(
                pid,
                VirtAddr::new(HEAP + 3 * PAGE_SIZE),
                AccessType::Write,
                &mut NoTlb,
            )
            .unwrap();
        let rec = sat_obs::uninstall().unwrap();
        assert_eq!(o.vm.demoted, Some(VirtAddr::new(HEAP)));
        assert_eq!(k.stats.demotions, 1);
        let cause = rec
            .events
            .iter()
            .find_map(|e| match e.payload {
                sat_obs::Payload::Demote { cause, .. } => Some(cause),
                _ => None,
            })
            .expect("COW split must emit Demote");
        assert_eq!(cause, sat_obs::DemoteCause::Cow);
        // The faulting page diverged; the child's group is untouched.
        assert_eq!(
            k.pte(child, VirtAddr::new(HEAP)).unwrap().unwrap().hw.size,
            PageSize::Large64K
        );
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn fork_splits_parent_sections_first() {
        let touched: Vec<u32> = (0..256).collect();
        let (mut k, pid) = boot(promoting(KernelConfig::stock(), 1, true), 256, &touched);
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert_eq!(r.sections, 1);
        assert_eq!(k.mm(pid).unwrap().root.section_count(), 1);
        let child = k.fork(pid).unwrap().child;
        // The section had to split (it is invisible to the fork walk);
        // the child sees every page.
        assert_eq!(k.mm(pid).unwrap().root.section_count(), 0);
        assert!(k.stats.demotions >= 1);
        for i in [0u32, 100, 255] {
            assert!(k
                .pte(child, VirtAddr::new(HEAP + i * PAGE_SIZE))
                .unwrap()
                .is_some());
        }
        k.phys.rmap_verify().unwrap();
        k.verify_share_accounting().unwrap();
    }

    #[test]
    fn scan_survives_memory_exhaustion() {
        // Small machine: the scan runs out of frames for hole filling
        // and stops early instead of failing the caller.
        let mut k = Kernel::new(promoting(KernelConfig::stock(), 1, false), 64);
        let pid = k.create_process().unwrap();
        let req = MmapRequest::anon(64 * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(HEAP));
        k.mmap(pid, &req, &mut NoTlb).unwrap();
        for i in 0..4 {
            for g in 0..4 {
                k.page_fault(
                    pid,
                    VirtAddr::new(HEAP + (g * 16 + i) * PAGE_SIZE),
                    AccessType::Write,
                    &mut NoTlb,
                )
                .unwrap();
            }
        }
        let r = k.promote_scan(pid, &mut NoTlb).unwrap();
        assert!(r.promoted < 4, "64 frames cannot fill four groups");
        k.phys.rmap_verify().unwrap();
    }
}
