//! Memory-pressure reclaim: clock-LRU eviction of file page-cache
//! frames under a soft physical-frame budget.
//!
//! The paper's sharing mechanisms change what page reclaim has to do.
//! In the stock kernel every PTE pointing at a victim frame is private
//! to one process, so `try_to_unmap` walks the rmap and clears one PTE
//! per mapping. With PTP sharing a single *physical* PTE in a shared
//! PTP serves every sharer — tearing it repairs all of them at once
//! (one rmap entry, one TLB-page invalidation across all address
//! spaces), but the tear mutates a table other processes are walking,
//! which the ordinary unshare discipline forbids. This module is the
//! sanctioned path:
//!
//! - [`Kernel::set_frame_budget`] installs a soft budget; the
//!   allocator tracks budget-relative free frames and watermarks
//!   ([`sat_phys::Watermarks`]) but never hard-fails — crossing the
//!   low watermark flags pressure instead.
//! - [`Kernel::maybe_reclaim`] is hooked where allocation happens
//!   (page fault, `mmap`) and runs a pass only under pressure, so
//!   budget-less runs take the zero-cost early return and stay
//!   byte-identical.
//! - [`Kernel::reclaim`] picks victims from the second-chance clock
//!   over file page-cache frames, tears every PTE the reverse map
//!   records for the victim, gathers the TLB maintenance into one
//!   [`FlushBatch`] tagged [`FlushReason::Reclaim`], evicts the frame,
//!   and emits one [`sat_obs::Payload::Reclaim`] event per pass.
//!
//! A torn PTE whose home PTP is shared is invalidated with a
//! one-page-all-ASIDs op (`TLBIMVAA` — the same instrument the
//! domain-fault handler uses), because every sharer may have cached
//! the translation; the tear is reported as a Figure-6 unshare with
//! the new `reclaim` cause, `ptes_copied: 0` (nothing is copied — the
//! PTP *stays shared* and the registry is untouched; one tear repairs
//! all sharers). Private victims get an ordinary ASID-scoped page
//! invalidation. Refaults repopulate through the page cache on the
//! normal fault path, charged to the existing `fault` cycle cause.

use sat_mmu::{Mapper, TableHalf};
use sat_obs::FlushReason;
use sat_types::{Asid, Pfn, Pid, VirtAddr};

use crate::flush::FlushBatch;
use crate::kernel::Kernel;
use crate::TlbMaintenance;

/// What one reclaim pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReclaimOutcome {
    /// File page-cache frames evicted.
    pub pages: u64,
    /// PTEs torn from private (non-shared) PTPs.
    pub pte_tears: u64,
    /// PTEs torn out of shared PTPs, each repairing all sharers.
    pub shared_tears: u64,
}

impl Kernel {
    /// Installs (or removes) the soft physical-frame budget that
    /// drives reclaim; watermarks are derived from it. `None` disables
    /// pressure entirely — [`Kernel::maybe_reclaim`] becomes a no-op.
    pub fn set_frame_budget(&mut self, frames: Option<u64>) {
        self.phys.set_budget(frames);
    }

    /// Runs a reclaim pass if allocation has crossed the low
    /// watermark; returns `None` (without touching anything) when
    /// there is no pressure or no budget is installed.
    pub fn maybe_reclaim(&mut self, tlb: &mut dyn TlbMaintenance) -> Option<ReclaimOutcome> {
        let target = self.phys.reclaim_target();
        if target == 0 {
            return None;
        }
        Some(self.reclaim(target, tlb))
    }

    /// Evicts up to `target_pages` file page-cache frames: for each
    /// clock victim, tears every PTE the reverse map records, gathers
    /// the TLB maintenance into one batch, and frees the frame. Stops
    /// early when the clock finds nothing evictable (every file page
    /// is referenced or the cache is empty).
    pub fn reclaim(&mut self, target_pages: u64, tlb: &mut dyn TlbMaintenance) -> ReclaimOutcome {
        let mut out = ReclaimOutcome::default();
        // Reclaim runs in kernel context, not on behalf of a faulting
        // process; its batch and events carry pid/ASID zero like the
        // domain-fault handler's.
        let mut batch = FlushBatch::new(Pid::new(0), Asid::new(0));
        while out.pages < target_pages {
            let Some(victim) = self.phys.clock_next_victim() else {
                break;
            };
            // Drain the *live* rmap rather than a snapshot: rmap
            // entries at one va are interchangeable across owners (a
            // fork re-owns private entries to the sentinel, a
            // last-sharer collapse strands sentinel entries on a
            // private table), so one tear may consume the PTE another
            // entry was recorded for. Each tear removes exactly one
            // entry, so this terminates.
            while let Some(&(pid, va)) = self.phys.rmap_entries(victim).first() {
                if pid.raw() == 0 {
                    self.tear_shared_slot(victim, va, &mut batch, &mut out);
                } else {
                    self.tear_private_pte(victim, pid, va, &mut batch, &mut out);
                }
            }
            debug_assert_eq!(
                self.phys.mapcount(victim),
                0,
                "victim {victim:?} still mapped after rmap tears"
            );
            if self.phys.evict_file_frame(victim) {
                out.pages += 1;
            }
        }
        batch.apply(tlb);
        self.stats.reclaims += 1;
        self.stats.reclaim_pages += out.pages;
        self.stats.reclaim_pte_tears += out.pte_tears;
        self.stats.reclaim_shared_tears += out.shared_tears;
        if out.pages > 0 && sat_obs::enabled() {
            sat_obs::emit(
                sat_obs::Subsystem::Kernel,
                0,
                0,
                sat_obs::Payload::Reclaim {
                    pages: out.pages,
                    pte_tears: out.pte_tears,
                    shared_tears: out.shared_tears,
                },
            );
        }
        out
    }

    /// Tears one sentinel-owned PTE (a PTE living in a shared PTP) for
    /// `victim` at `va`. The share registry locates the PTP: the entry
    /// whose chunk covers `va` and whose table actually maps the
    /// victim (two disjoint sharing groups can cover the same chunk).
    /// The slot is cleared in place — the PTP stays shared, nothing is
    /// copied, and the one tear repairs every sharer.
    fn tear_shared_slot(
        &mut self,
        victim: Pfn,
        va: VirtAddr,
        batch: &mut FlushBatch,
        out: &mut ReclaimOutcome,
    ) {
        let half = TableHalf::of(va);
        let idx = va.l2_index();
        let candidates: Vec<Pfn> = self
            .registry
            .iter()
            .filter(|(_, e)| e.chunk == va.ptp_base())
            .map(|(f, _)| f)
            .collect();
        for ptp_frame in candidates {
            let maps_victim = self
                .ptps
                .get(ptp_frame)
                .and_then(|t| t.get(half, idx))
                .is_some_and(|s| s.hw.frame_for_slot(idx) == victim);
            if !maps_victim {
                continue;
            }
            debug_assert!(
                self.ptps
                    .get(ptp_frame)
                    .and_then(|t| t.get(half, idx))
                    .is_some_and(|s| s.hw.size == sat_types::PageSize::Small4K),
                "file page-cache victim mapped by a wide descriptor at {va:?} — \
                 large slots are anonymous and must never reach the shared tear"
            );
            self.ptps
                .get_mut(ptp_frame)
                .expect("checked above")
                .clear(half, idx);
            self.phys.rmap_remove(victim, Pid::new(0), va);
            self.phys.map_dec(victim);
            self.phys.put_page(victim);
            // Every sharer may have cached the translation; TLBIMVAA
            // hits the page in all address spaces, globals included.
            batch.va_all_asids(va, FlushReason::Reclaim);
            out.shared_tears += 1;
            emit_reclaim_unshare(va);
            return;
        }
        // The PTP went private since the PTE was recorded: a
        // last-sharer unshare cleared NEED_COPY in place without
        // rewriting rmap ownership. Some live process still maps the
        // victim at `va` through a walkable table; find it and tear
        // through the ordinary per-process path.
        if self.tear_any_private(victim, va, batch, out) {
            return;
        }
        debug_assert!(
            false,
            "sentinel rmap entry for {victim:?} at {va:?} matches no shared or private PTP"
        );
        // Keep release builds making forward progress; the divergence
        // surfaces at the next rmap_verify.
        self.phys.rmap_remove(victim, Pid::new(0), va);
    }

    /// Tears one privately-owned PTE for `victim` at `va` in `pid`.
    /// When the home PTP has since been *shared* (the PTE predates a
    /// fork), the tear still goes through the owner's table — which is
    /// the table every sharer walks — so it is flushed and accounted
    /// as a shared tear. When the recorded owner no longer maps the
    /// victim (an earlier same-va tear consumed its PTE under another
    /// entry's name, or the owner exited after an attribution swap),
    /// whichever live process still maps it is torn instead.
    fn tear_private_pte(
        &mut self,
        victim: Pfn,
        pid: Pid,
        va: VirtAddr,
        batch: &mut FlushBatch,
        out: &mut ReclaimOutcome,
    ) {
        if self.tear_exact_private(victim, pid, va, batch, out) {
            return;
        }
        if self.tear_any_private(victim, va, batch, out) {
            return;
        }
        debug_assert!(
            false,
            "rmap entry for {victim:?} at {va:?} matches no live PTE"
        );
        // Keep release builds making forward progress; the divergence
        // surfaces at the next rmap_verify.
        self.phys.rmap_remove(victim, pid, va);
    }

    /// Tears `pid`'s PTE for `victim` at `va` if it exists; returns
    /// whether a PTE was torn (and one rmap entry at `va` consumed).
    fn tear_exact_private(
        &mut self,
        victim: Pfn,
        pid: Pid,
        va: VirtAddr,
        batch: &mut FlushBatch,
        out: &mut ReclaimOutcome,
    ) -> bool {
        let Some(mm) = self.procs.get_mut(&pid) else {
            return false;
        };
        let asid = mm.asid;
        let shared = mm.root.entry_for(va).need_copy();
        let mut mapper = Mapper::new(&mut mm.root, &mut self.ptps, &mut self.phys, pid);
        let Some(slot) = mapper.get_pte(va) else {
            return false;
        };
        if slot.hw.frame_for_slot(va.l2_index()) != victim {
            return false;
        }
        let global = slot.hw.global;
        // Tearing one slot of a sixteen-slot replicated large group
        // would leave fifteen stale descriptors, so the group splits
        // to 4KB PTEs first. Unreachable with today's victim policy —
        // large frames are anonymous and the clock only sweeps the
        // file page cache — but the split-before-tear discipline must
        // not depend on that.
        let mut demoted = None;
        if slot.hw.size == sat_types::PageSize::Large64K {
            let group = VirtAddr::new(va.raw() & !(sat_types::PageSize::Large64K.bytes() - 1));
            let split = mapper.split_large(va).unwrap_or(0);
            demoted = Some((group, split));
        }
        mapper.reclaim_pte(va);
        if let Some((group, split)) = demoted {
            self.stats.demotions += 1;
            self.stats.split_ptes += u64::from(split);
            let bytes = sat_types::PageSize::Large64K.bytes();
            let span = sat_types::VaRange::from_len(group, bytes);
            batch.range(
                asid,
                sat_types::VpnRange::from_va_range(&span),
                FlushReason::Demote,
            );
            if sat_obs::enabled() {
                sat_obs::emit(
                    sat_obs::Subsystem::Kernel,
                    pid.raw(),
                    asid.raw(),
                    sat_obs::Payload::Demote {
                        va: group.raw(),
                        bytes,
                        pages: u64::from(split),
                        cause: sat_obs::DemoteCause::Reclaim,
                    },
                );
            }
        }
        if shared {
            batch.va_all_asids(va, FlushReason::Reclaim);
            out.shared_tears += 1;
            emit_reclaim_unshare(va);
        } else if global {
            // A global translation survives ASID-scoped maintenance.
            batch.va_all_asids(va, FlushReason::Reclaim);
            out.pte_tears += 1;
        } else {
            batch.page(asid, va.vpn(), FlushReason::Reclaim);
            out.pte_tears += 1;
        }
        true
    }

    /// Scans live processes in pid order for any PTE mapping `victim`
    /// at `va` and tears the first one found. Attribution fallback:
    /// which process a same-va rmap entry names is advisory (entries
    /// are interchangeable at one va), so after exits, collapses, and
    /// earlier tears the surviving PTE may belong to a different pid
    /// than the entry being drained.
    fn tear_any_private(
        &mut self,
        victim: Pfn,
        va: VirtAddr,
        batch: &mut FlushBatch,
        out: &mut ReclaimOutcome,
    ) -> bool {
        let mut pids: Vec<Pid> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        pids.into_iter()
            .any(|pid| self.tear_exact_private(victim, pid, va, batch, out))
    }
}

/// Reports a shared-PTP tear as a Figure-6 unshare with the `reclaim`
/// cause. Nothing is copied and the PTP stays shared (the registry is
/// untouched), hence `ptes_copied: 0` / `last_sharer: false`; like
/// [`Kernel::domain_fault`], the operation runs in kernel context and
/// carries no pid/ASID.
fn emit_reclaim_unshare(va: VirtAddr) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Share,
            0,
            0,
            sat_obs::Payload::PtpUnshare {
                cause: sat_obs::UnshareCause::Reclaim,
                ptes_copied: 0,
                last_sharer: false,
                va: va.ptp_base().raw(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use crate::NoTlb;
    use sat_types::{AccessType, Perms, RegionTag, VaRange, PAGE_SIZE};
    use sat_vm::MmapRequest;

    fn code_req(file: sat_phys::FileId, pages: u32, at: u32) -> MmapRequest {
        MmapRequest::file(
            pages * PAGE_SIZE,
            Perms::RX,
            file,
            0,
            RegionTag::ZygoteNativeCode,
            "libtest.so",
        )
        .at(VirtAddr::new(at))
    }

    /// Boots a zygote with an 8-page library mapped and populated.
    fn boot(config: KernelConfig) -> (Kernel, Pid) {
        let mut k = Kernel::new(config, 16384);
        let lib = k.files.register("libtest.so", 8 * PAGE_SIZE);
        let zygote = k.create_process().unwrap();
        k.exec_zygote(zygote).unwrap();
        k.mmap(zygote, &code_req(lib, 8, 0x4000_0000), &mut NoTlb)
            .unwrap();
        k.populate(
            zygote,
            VaRange::from_len(VirtAddr::new(0x4000_0000), 8 * PAGE_SIZE),
        )
        .unwrap();
        (k, zygote)
    }

    // No explicit aging is needed before reclaiming in these tests:
    // the clock's sweep budget (two full passes) spends every page's
    // second chance and reaches a victim within a single
    // `clock_next_victim` call.

    #[test]
    fn reclaim_evicts_unreferenced_file_pages() {
        let (mut k, _zygote) = boot(KernelConfig::stock());
        let before = k.phys.page_cache_len();
        let out = k.reclaim(3, &mut NoTlb);
        assert_eq!(out.pages, 3);
        assert_eq!(out.pte_tears, 3);
        assert_eq!(out.shared_tears, 0);
        assert_eq!(k.phys.page_cache_len(), before - 3);
        assert_eq!(k.phys.stats().evictions, 3);
        assert_eq!(k.phys.still_evicted(), 3);
        k.verify_share_accounting().unwrap();
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn shared_ptp_tear_repairs_all_sharers_at_once() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let c1 = k.fork(zygote).unwrap().child;
        let c2 = k.fork(zygote).unwrap().child;
        let out = k.reclaim(1, &mut NoTlb);
        assert_eq!(out.pages, 1);
        // One tear in the shared PTP, not one per sharer.
        assert_eq!(out.shared_tears, 1);
        assert_eq!(out.pte_tears, 0);
        // All three sharers lost the PTE together.
        let va = VirtAddr::new(0x4000_0000);
        let evicted_va = (0..8)
            .map(|i| VirtAddr::new(va.raw() + i * PAGE_SIZE))
            .find(|&v| k.pte(zygote, v).unwrap().is_none())
            .expect("one code page was evicted");
        assert!(k.pte(c1, evicted_va).unwrap().is_none());
        assert!(k.pte(c2, evicted_va).unwrap().is_none());
        // The PTP stays shared: the registry is untouched.
        k.verify_share_accounting().unwrap();
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn refault_repopulates_and_conserves() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let child = k.fork(zygote).unwrap().child;
        let out = k.reclaim(2, &mut NoTlb);
        assert_eq!(out.pages, 2);
        let va = VirtAddr::new(0x4000_0000);
        let evicted_va = (0..8)
            .map(|i| VirtAddr::new(va.raw() + i * PAGE_SIZE))
            .find(|&v| k.pte(child, v).unwrap().is_none())
            .expect("one code page was evicted");
        // The child refaults the evicted page: a major fault re-reads
        // it from "disk" and the conservation ledger balances.
        let o = k
            .page_fault(child, evicted_va, AccessType::Execute, &mut NoTlb)
            .unwrap();
        assert_eq!(o.vm.kind, sat_vm::FaultKind::Major);
        let s = k.phys.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.refaults, 1);
        assert_eq!(s.evictions, s.refaults + k.phys.still_evicted() as u64);
        k.verify_share_accounting().unwrap();
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn maybe_reclaim_is_inert_without_budget() {
        let (mut k, _zygote) = boot(KernelConfig::shared_ptp());
        assert!(k.maybe_reclaim(&mut NoTlb).is_none());
        assert_eq!(k.stats.reclaims, 0);
        assert_eq!(k.phys.stats().evictions, 0);
    }

    #[test]
    fn pressure_triggers_reclaim_on_fault_path() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let in_use = k.phys.frames_in_use();
        // Budget tight enough that the next allocations cross the low
        // watermark (low = 8 for tiny budgets).
        k.set_frame_budget(Some(in_use + 4));
        let heap = MmapRequest::anon(4 * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(0x0900_0000));
        k.mmap(zygote, &heap, &mut NoTlb).unwrap();
        for i in 0..4 {
            k.page_fault(
                zygote,
                VirtAddr::new(0x0900_0000 + i * PAGE_SIZE),
                AccessType::Write,
                &mut NoTlb,
            )
            .unwrap();
        }
        assert!(k.stats.reclaims > 0, "pressure never triggered reclaim");
        assert!(k.phys.stats().evictions > 0);
        assert!(k.phys.stats().low_watermark_hits > 0);
        k.verify_share_accounting().unwrap();
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn sentinel_entry_survives_ptp_going_private() {
        // A PTE faulted into a shared PTP is recorded under the
        // sentinel; when the sharing group collapses back to one
        // process (last-sharer unshare), reclaim must still find and
        // tear it through the now-private table.
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let lib2 = k.files.register("libextra.so", 2 * PAGE_SIZE);
        k.mmap(zygote, &code_req(lib2, 2, 0x4010_0000), &mut NoTlb)
            .unwrap();
        let child = k.fork(zygote).unwrap().child;
        // Child faults a page the zygote never touched: the PTE goes
        // into the shared PTP under the sentinel owner.
        let va = VirtAddr::new(0x4010_0000);
        k.page_fault(child, va, AccessType::Execute, &mut NoTlb)
            .unwrap();
        // The child exits: the zygote becomes the last sharer, and its
        // next modification clears NEED_COPY in place.
        k.exit(child, &mut NoTlb).unwrap();
        let heap = MmapRequest::anon(PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
            .at(VirtAddr::new(0x4018_0000));
        k.mmap(zygote, &heap, &mut NoTlb).unwrap();
        assert!(!k.mm(zygote).unwrap().root.entry_for(va).need_copy());
        let out = k.reclaim(16, &mut NoTlb);
        assert!(out.pages >= 1);
        // The sentinel-owned PTE was torn through the fallback path.
        assert!(k.pte(zygote, va).unwrap().is_none());
        k.verify_share_accounting().unwrap();
        k.phys.rmap_verify().unwrap();
    }

    #[test]
    fn reclaim_emits_event_and_flushes_with_reclaim_reason() {
        let (mut k, zygote) = boot(KernelConfig::shared_ptp());
        let _child = k.fork(zygote).unwrap().child;
        sat_obs::install(1024);
        let out = k.reclaim(2, &mut NoTlb);
        let rec = sat_obs::uninstall().expect("sink installed");
        assert_eq!(out.pages, 2);
        let mut saw_reclaim = false;
        let mut saw_unshare = false;
        for ev in &rec.events {
            match ev.payload {
                sat_obs::Payload::Reclaim {
                    pages,
                    shared_tears,
                    ..
                } => {
                    saw_reclaim = true;
                    assert_eq!(pages, 2);
                    assert_eq!(shared_tears, 2);
                }
                sat_obs::Payload::PtpUnshare { cause, .. } => {
                    assert_eq!(cause, sat_obs::UnshareCause::Reclaim);
                    saw_unshare = true;
                }
                _ => {}
            }
        }
        assert!(saw_reclaim && saw_unshare);
    }
}
