//! Kernel configuration: which parts of the paper's mechanism are
//! enabled, plus the ablation knobs from the design discussion
//! (Section 3.1.3).

use sat_vm::ForkPtePolicy;

/// What an unshare copies into the new private PTP.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CopyOnUnshare {
    /// Copy every valid PTE (the paper's implementation).
    #[default]
    All,
    /// Copy only PTEs with the (software) referenced bit set — the
    /// cheaper alternative the paper discusses but does not implement.
    ReferencedOnly,
}

/// How shared global TLB entries are protected from non-zygote
/// processes (Section 3.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TlbProtection {
    /// The ARM domain protection model: non-zygote processes take a
    /// domain fault; the handler flushes only the conflicting entries.
    #[default]
    DomainFault,
    /// Architectures without domains: flush the entire TLB on every
    /// context switch from a zygote-like to a non-zygote process.
    FlushOnSwitch,
}

/// Policy knobs for the khugepaged-style large-page promotion
/// scanner ([`crate::promote`]). Off by default: page size stays a
/// pure 4KB world unless an experiment opts in, which keeps every
/// promotion-free run byte-identical to a build without the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PromotePolicy {
    /// Master switch for [`Kernel::promote_scan`]
    /// (`crate::kernel::Kernel`); when off the scan is a no-op and the
    /// promotion gauges are not published.
    pub enabled: bool,
    /// Minimum populated 4KB slots (of 16) a group needs before the
    /// scanner collapses it — khugepaged's
    /// `max_ptes_none` expressed from the other direction. Holes up
    /// to `16 - min_populated` are filled with freshly allocated,
    /// never-touched frames; those are the measured memory waste.
    pub min_populated: u8,
    /// Also collapse fully large-mapped, physically contiguous 1MB
    /// spans into level-1 section entries.
    pub sections: bool,
}

impl PromotePolicy {
    /// Promotion off — the default for every preset.
    pub fn off() -> Self {
        PromotePolicy {
            enabled: false,
            min_populated: 1,
            sections: false,
        }
    }

    /// Promotion on with khugepaged-like defaults: collapse any group
    /// with at least one populated slot, sections included.
    pub fn aggressive() -> Self {
        PromotePolicy {
            enabled: true,
            min_populated: 1,
            sections: true,
        }
    }
}

impl Default for PromotePolicy {
    fn default() -> Self {
        PromotePolicy::off()
    }
}

/// Full kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Enable PTP sharing at fork (the paper's Section 3.1).
    pub share_ptp: bool,
    /// Enable TLB-entry sharing via the global bit and zygote domain
    /// (the paper's Section 3.2).
    pub share_tlb: bool,
    /// Fork PTE policy used when PTP sharing is off, or for regions a
    /// shared fork cannot share.
    pub fork_policy: ForkPtePolicy,
    /// ASIDs available: when `false`, the main TLB must be flushed on
    /// every context switch (the Figure 13 "Disabled ASID" baseline).
    pub asid: bool,
    /// Protection scheme for shared TLB entries.
    pub tlb_protection: TlbProtection,
    /// Ablation: also share PTPs covering stacks (the paper excludes
    /// them because stacks are written immediately after fork).
    pub share_stack: bool,
    /// Ablation: what unshare copies.
    pub copy_on_unshare: CopyOnUnshare,
    /// Ablation: pretend the hardware supports write protection in
    /// level-1 PTEs (as x86 PDEs do), making the per-PTE
    /// write-protect pass at share time unnecessary.
    pub l1_write_protect: bool,
    /// Large-page promotion policy (off in every preset; the reach
    /// experiment turns it on per cell).
    pub promote: PromotePolicy,
}

impl KernelConfig {
    /// The stock Android kernel.
    pub fn stock() -> Self {
        KernelConfig {
            share_ptp: false,
            share_tlb: false,
            fork_policy: ForkPtePolicy::Stock,
            asid: true,
            tlb_protection: TlbProtection::DomainFault,
            share_stack: false,
            copy_on_unshare: CopyOnUnshare::All,
            l1_write_protect: false,
            promote: PromotePolicy::off(),
        }
    }

    /// The "Copied PTEs" comparison kernel of Table 4: stock, but fork
    /// copies the PTEs of file-backed (zygote-preloaded shared code)
    /// mappings too.
    pub fn copied_ptes() -> Self {
        KernelConfig {
            fork_policy: ForkPtePolicy::CopyAll,
            ..KernelConfig::stock()
        }
    }

    /// PTP sharing only (the "Shared PTP" configuration).
    pub fn shared_ptp() -> Self {
        KernelConfig {
            share_ptp: true,
            ..KernelConfig::stock()
        }
    }

    /// The full mechanism: PTP sharing plus TLB-entry sharing
    /// ("Shared PTP & TLB").
    pub fn shared_ptp_tlb() -> Self {
        KernelConfig {
            share_ptp: true,
            share_tlb: true,
            ..KernelConfig::stock()
        }
    }

    /// Disables ASIDs (full TLB flush on context switch), as in the
    /// Figure 13 baseline.
    pub fn without_asid(mut self) -> Self {
        self.asid = false;
        self
    }

    /// Enables the large-page promotion scanner with `policy`.
    pub fn with_promote(mut self, policy: PromotePolicy) -> Self {
        self.promote = policy;
        self
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configurations() {
        let stock = KernelConfig::stock();
        assert!(!stock.share_ptp && !stock.share_tlb);
        assert_eq!(stock.fork_policy, ForkPtePolicy::Stock);

        let copied = KernelConfig::copied_ptes();
        assert_eq!(copied.fork_policy, ForkPtePolicy::CopyAll);
        assert!(!copied.share_ptp);

        let shared = KernelConfig::shared_ptp();
        assert!(shared.share_ptp && !shared.share_tlb);

        let full = KernelConfig::shared_ptp_tlb();
        assert!(full.share_ptp && full.share_tlb);
        assert!(full.asid);
        assert!(!full.without_asid().asid);
    }

    #[test]
    fn promotion_is_off_in_every_preset() {
        for config in [
            KernelConfig::stock(),
            KernelConfig::copied_ptes(),
            KernelConfig::shared_ptp(),
            KernelConfig::shared_ptp_tlb(),
        ] {
            assert_eq!(config.promote, PromotePolicy::off());
        }
        let on = KernelConfig::stock().with_promote(PromotePolicy::aggressive());
        assert!(on.promote.enabled && on.promote.sections);
        assert_eq!(on.promote.min_populated, 1);
    }
}
