//! Kernel configuration: which parts of the paper's mechanism are
//! enabled, plus the ablation knobs from the design discussion
//! (Section 3.1.3).

use sat_vm::ForkPtePolicy;

/// What an unshare copies into the new private PTP.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CopyOnUnshare {
    /// Copy every valid PTE (the paper's implementation).
    #[default]
    All,
    /// Copy only PTEs with the (software) referenced bit set — the
    /// cheaper alternative the paper discusses but does not implement.
    ReferencedOnly,
}

/// How shared global TLB entries are protected from non-zygote
/// processes (Section 3.2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TlbProtection {
    /// The ARM domain protection model: non-zygote processes take a
    /// domain fault; the handler flushes only the conflicting entries.
    #[default]
    DomainFault,
    /// Architectures without domains: flush the entire TLB on every
    /// context switch from a zygote-like to a non-zygote process.
    FlushOnSwitch,
}

/// Full kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Enable PTP sharing at fork (the paper's Section 3.1).
    pub share_ptp: bool,
    /// Enable TLB-entry sharing via the global bit and zygote domain
    /// (the paper's Section 3.2).
    pub share_tlb: bool,
    /// Fork PTE policy used when PTP sharing is off, or for regions a
    /// shared fork cannot share.
    pub fork_policy: ForkPtePolicy,
    /// ASIDs available: when `false`, the main TLB must be flushed on
    /// every context switch (the Figure 13 "Disabled ASID" baseline).
    pub asid: bool,
    /// Protection scheme for shared TLB entries.
    pub tlb_protection: TlbProtection,
    /// Ablation: also share PTPs covering stacks (the paper excludes
    /// them because stacks are written immediately after fork).
    pub share_stack: bool,
    /// Ablation: what unshare copies.
    pub copy_on_unshare: CopyOnUnshare,
    /// Ablation: pretend the hardware supports write protection in
    /// level-1 PTEs (as x86 PDEs do), making the per-PTE
    /// write-protect pass at share time unnecessary.
    pub l1_write_protect: bool,
}

impl KernelConfig {
    /// The stock Android kernel.
    pub fn stock() -> Self {
        KernelConfig {
            share_ptp: false,
            share_tlb: false,
            fork_policy: ForkPtePolicy::Stock,
            asid: true,
            tlb_protection: TlbProtection::DomainFault,
            share_stack: false,
            copy_on_unshare: CopyOnUnshare::All,
            l1_write_protect: false,
        }
    }

    /// The "Copied PTEs" comparison kernel of Table 4: stock, but fork
    /// copies the PTEs of file-backed (zygote-preloaded shared code)
    /// mappings too.
    pub fn copied_ptes() -> Self {
        KernelConfig {
            fork_policy: ForkPtePolicy::CopyAll,
            ..KernelConfig::stock()
        }
    }

    /// PTP sharing only (the "Shared PTP" configuration).
    pub fn shared_ptp() -> Self {
        KernelConfig {
            share_ptp: true,
            ..KernelConfig::stock()
        }
    }

    /// The full mechanism: PTP sharing plus TLB-entry sharing
    /// ("Shared PTP & TLB").
    pub fn shared_ptp_tlb() -> Self {
        KernelConfig {
            share_ptp: true,
            share_tlb: true,
            ..KernelConfig::stock()
        }
    }

    /// Disables ASIDs (full TLB flush on context switch), as in the
    /// Figure 13 baseline.
    pub fn without_asid(mut self) -> Self {
        self.asid = false;
        self
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configurations() {
        let stock = KernelConfig::stock();
        assert!(!stock.share_ptp && !stock.share_tlb);
        assert_eq!(stock.fork_policy, ForkPtePolicy::Stock);

        let copied = KernelConfig::copied_ptes();
        assert_eq!(copied.fork_policy, ForkPtePolicy::CopyAll);
        assert!(!copied.share_ptp);

        let shared = KernelConfig::shared_ptp();
        assert!(shared.share_ptp && !shared.share_tlb);

        let full = KernelConfig::shared_ptp_tlb();
        assert!(full.share_ptp && full.share_tlb);
        assert!(full.asid);
        assert!(!full.without_asid().asid);
    }
}
