//! Differential property test for large-page promotion/demotion.
//!
//! Two kernels boot identically and replay the same random sequence of
//! mmap / fault / mprotect / munmap / fork / exit / scan ops. Kernel
//! `a` runs with the promotion scanner enabled (sections included);
//! kernel `b` is the 4KB-only reference — same configuration with
//! promotion off, so its walk is the paper's unmodified world.
//!
//! After every op, for every live process and every page of the
//! tracked regions, the two address spaces are compared through the
//! hardware walker ([`sat_mmu::walk`], which sees sections and large
//! pages; the PTE lens does not):
//!
//! - every page the reference maps must translate in the promoted
//!   kernel with the *same permissions and global bit* (frame numbers
//!   legitimately differ — promotion migrates frames). One slack is
//!   allowed: the promoted kernel may carry an early write bit where
//!   the reference is still COW-pending, because a promotion-filled
//!   hole inherits the group's settled RW while the reference's anon
//!   read fault maps write-protected; a later write reaches the same
//!   state in both. The promoted kernel may never map *narrower* than
//!   the reference, and never diverge on the global bit;
//! - pages the reference does **not** map may translate in the
//!   promoted kernel only as promotion-filled holes, never with
//!   permissions the reference never granted anywhere in the region;
//! - the promoted kernel's internal accounting must reconcile:
//!   registry/mapcount/rmap checks pass, and at the end the
//!   `Promote`/`Demote` event streams match the kernel counters
//!   exactly.
//!
//! Teardown asserts the promoted kernel leaks nothing: promotion
//! allocates frames and rewrites descriptor groups, so a refcount slip
//! anywhere in collapse/split/zap shows up as a leaked frame, PTP, or
//! rmap entry here.

use proptest::prelude::*;
use sat_core::{Kernel, KernelConfig, NoTlb, PromotePolicy};
use sat_types::{AccessType, Perms, Pid, RegionTag, VaRange, VirtAddr, PAGE_SIZE};
use sat_vm::MmapRequest;

const CODE_BASE: u32 = 0x4000_0000;
const CODE_PAGES: u32 = 8;
/// 64KB-aligned so whole groups fit: two groups plus a spare page.
const HEAP_BASE: u32 = 0x0900_0000;
const HEAP_PAGES: u32 = 33;

#[derive(Clone, Debug)]
enum Op {
    /// Fork from the `n`-th live process.
    Fork(usize),
    /// Write-fault heap page `p` in process `n`.
    Write(usize, u8),
    /// Read-fault heap page `p` in process `n`.
    Read(usize, u8),
    /// `mprotect` `1 + l % 8` heap pages at `p` to R (`rw` false) or
    /// back to RW.
    Mprotect(usize, u8, u8, bool),
    /// Unmap one heap page in process `n`.
    Munmap(usize, u8),
    /// Run the promotion scanner on process `n` (a no-op on the
    /// reference kernel).
    Scan(usize),
    /// Exit the `n`-th live child (the zygote outlives the ops).
    Exit(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest picks arms uniformly; Write and Scan are
    // listed twice to bias sequences toward populate-then-promote.
    prop_oneof![
        (0usize..64).prop_map(Op::Fork),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Write(n, p)),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Write(n, p)),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Read(n, p)),
        ((0usize..64), any::<u8>(), any::<u8>(), any::<bool>())
            .prop_map(|(n, p, l, rw)| Op::Mprotect(n, p, l, rw)),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Munmap(n, p)),
        (0usize..64).prop_map(Op::Scan),
        (0usize..64).prop_map(Op::Scan),
        (0usize..64).prop_map(Op::Exit),
    ]
}

fn boot(config: KernelConfig) -> (Kernel, Pid) {
    let mut k = Kernel::new(config, 16384);
    let lib = k.files.register("libtest.so", CODE_PAGES * PAGE_SIZE);
    let zygote = k.create_process().unwrap();
    k.exec_zygote(zygote).unwrap();
    let code = MmapRequest::file(
        CODE_PAGES * PAGE_SIZE,
        Perms::RX,
        lib,
        0,
        RegionTag::ZygoteNativeCode,
        "libtest.so",
    )
    .at(VirtAddr::new(CODE_BASE));
    k.mmap(zygote, &code, &mut NoTlb).unwrap();
    k.populate(
        zygote,
        VaRange::from_len(VirtAddr::new(CODE_BASE), CODE_PAGES * PAGE_SIZE),
    )
    .unwrap();
    let heap = MmapRequest::anon(HEAP_PAGES * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
        .at(VirtAddr::new(HEAP_BASE));
    k.mmap(zygote, &heap, &mut NoTlb).unwrap();
    (k, zygote)
}

/// The walker's view of one page: `(perms, global)` if mapped.
fn view(k: &Kernel, pid: Pid, va: VirtAddr) -> Option<(Perms, bool)> {
    let mm = k.mm(pid).ok()?;
    sat_mmu::walk(&mm.root, &k.ptps, va)
        .translation()
        .map(|t| (t.perms, t.global))
}

/// Compares one process's tracked pages across the two kernels.
fn compare(a: &Kernel, b: &Kernel, pid: Pid, op: &Op) {
    let pages = (0..CODE_PAGES)
        .map(|i| VirtAddr::new(CODE_BASE + i * PAGE_SIZE))
        .chain((0..HEAP_PAGES).map(|i| VirtAddr::new(HEAP_BASE + i * PAGE_SIZE)));
    for va in pages {
        let ref_view = view(b, pid, va);
        let promoted_view = view(a, pid, va);
        match ref_view {
            Some((eperms, eglobal)) => {
                let (gperms, gglobal) = promoted_view.unwrap_or_else(|| {
                    panic!(
                        "{pid:?} {va:?}: reference maps {eperms:?}, promoted faults (after {op:?})"
                    )
                });
                assert_eq!(
                    gglobal, eglobal,
                    "{pid:?} {va:?}: global bit diverged after {op:?}"
                );
                // Exact match, or the promoted side holds an early
                // write bit where the reference is COW-pending (a
                // promotion-filled hole is settled RW; the reference's
                // anon read fault maps write-protected).
                assert!(
                    gperms == eperms || gperms.without_write() == eperms,
                    "{pid:?} {va:?}: perms diverged after {op:?}: \
                     promoted {gperms:?} vs reference {eperms:?}"
                );
            }
            None => {
                // A hole the reference never filled may translate in
                // the promoted kernel (promotion filled it), but only
                // with the region's own permissions — never wider
                // than what some reference page of the region holds.
                if let Some((perms, global)) = promoted_view {
                    assert!(
                        !global,
                        "{pid:?} {va:?}: promotion-filled hole marked global after {op:?}"
                    );
                    assert!(
                        perms == Perms::RW || perms == Perms::R,
                        "{pid:?} {va:?}: filled hole has {perms:?} after {op:?}"
                    );
                }
            }
        }
    }
}

fn run_sequence(base: KernelConfig, ops: &[Op]) {
    let promoted_cfg = base.with_promote(PromotePolicy {
        enabled: true,
        min_populated: 1,
        sections: true,
    });
    sat_obs::install(1 << 16);
    let (mut a, zygote_a) = boot(promoted_cfg);
    let (mut b, zygote_b) = boot(base);
    assert_eq!(zygote_a, zygote_b);
    let mut live = vec![zygote_a];

    for op in ops {
        match *op {
            Op::Fork(n) => {
                let parent = live[n % live.len()];
                let oa = a.fork(parent).unwrap();
                let ob = b.fork(parent).unwrap();
                assert_eq!(oa.child, ob.child, "pid allocation diverged");
                live.push(oa.child);
            }
            Op::Write(n, p) | Op::Read(n, p) => {
                let pid = live[n % live.len()];
                let va = VirtAddr::new(HEAP_BASE + (u32::from(p) % HEAP_PAGES) * PAGE_SIZE);
                let access = if matches!(op, Op::Write(..)) {
                    AccessType::Write
                } else {
                    AccessType::Read
                };
                // The promoted kernel may have filled this hole (no
                // fault to take) or must COW-split a group first; both
                // kernels must nevertheless *succeed or fail alike*
                // when the page is reachable. A fault on an unmapped
                // (munmapped) page errors identically in both.
                let ra = a.page_fault(pid, va, access, &mut NoTlb);
                let rb = b.page_fault(pid, va, access, &mut NoTlb);
                assert_eq!(ra.is_ok(), rb.is_ok(), "fault outcome diverged at {va:?}");
            }
            Op::Mprotect(n, p, l, rw) => {
                let pid = live[n % live.len()];
                let start = u32::from(p) % HEAP_PAGES;
                let len = (1 + u32::from(l) % 8).min(HEAP_PAGES - start);
                let range = VaRange::from_len(
                    VirtAddr::new(HEAP_BASE + start * PAGE_SIZE),
                    len * PAGE_SIZE,
                );
                let perms = if rw { Perms::RW } else { Perms::R };
                let ra = a.mprotect(pid, range, perms, &mut NoTlb);
                let rb = b.mprotect(pid, range, perms, &mut NoTlb);
                assert_eq!(ra.is_ok(), rb.is_ok(), "mprotect outcome diverged");
            }
            Op::Munmap(n, p) => {
                let pid = live[n % live.len()];
                let va = VirtAddr::new(HEAP_BASE + (u32::from(p) % HEAP_PAGES) * PAGE_SIZE);
                let ra = a.munmap(pid, VaRange::from_len(va, PAGE_SIZE), &mut NoTlb);
                let rb = b.munmap(pid, VaRange::from_len(va, PAGE_SIZE), &mut NoTlb);
                assert_eq!(ra.is_ok(), rb.is_ok(), "munmap outcome diverged");
            }
            Op::Scan(n) => {
                let pid = live[n % live.len()];
                a.promote_scan(pid, &mut NoTlb).unwrap();
                let rb = b.promote_scan(pid, &mut NoTlb).unwrap();
                assert_eq!(rb.promoted + rb.sections, 0, "reference kernel promoted");
            }
            Op::Exit(n) => {
                if live.len() == 1 {
                    continue;
                }
                let pid = live.remove(1 + n % (live.len() - 1));
                a.exit(pid, &mut NoTlb).unwrap();
                b.exit(pid, &mut NoTlb).unwrap();
            }
        }
        for &pid in &live {
            compare(&a, &b, pid, op);
        }
        a.verify_share_accounting()
            .unwrap_or_else(|e| panic!("promoted kernel accounting after {op:?}: {e}"));
        a.phys
            .rmap_verify()
            .unwrap_or_else(|e| panic!("promoted kernel rmap after {op:?}: {e}"));
    }

    // Event streams reconcile with the counters.
    let rec = sat_obs::uninstall().expect("sink installed");
    let mut promote_events = 0u64;
    let mut demote_events = 0u64;
    for ev in &rec.events {
        match ev.payload {
            sat_obs::Payload::Promote { .. } => promote_events += 1,
            sat_obs::Payload::Demote { .. } => demote_events += 1,
            _ => {}
        }
    }
    assert_eq!(
        promote_events,
        a.stats.promotions + a.stats.section_promotions,
        "Promote events do not reconcile with the promotion counters"
    );
    assert_eq!(
        demote_events, a.stats.demotions,
        "Demote events do not reconcile with the demotion counter"
    );
    assert_eq!(b.stats.promotions + b.stats.section_promotions, 0);

    // Teardown: the promoted kernel must leak nothing despite all the
    // migration and descriptor rewriting.
    while live.len() > 1 {
        let pid = live.pop().unwrap();
        a.exit(pid, &mut NoTlb).unwrap();
        b.exit(pid, &mut NoTlb).unwrap();
    }
    a.exit(zygote_a, &mut NoTlb).unwrap();
    assert!(a.ptps.is_empty(), "PTPs leaked past the last exit");
    assert!(a.phys.rmap_is_empty(), "rmap leaked past the last exit");
    assert_eq!(
        a.phys.frames_in_use(),
        a.phys.page_cache_len() as u64,
        "promoted kernel leaked non-cache frames"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Promotion on stock (no PTP sharing): pure page-size mechanics.
    #[test]
    fn promoted_translations_match_reference_stock(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        run_sequence(KernelConfig::stock(), &ops);
    }

    /// Promotion under PTP sharing: the scanner must respect sharing
    /// boundaries and unshare-copied groups must stay coherent.
    #[test]
    fn promoted_translations_match_reference_shared(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        run_sequence(KernelConfig::shared_ptp(), &ops);
    }
}
