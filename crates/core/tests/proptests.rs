//! Property tests for the shared-PTP registry's accounting.
//!
//! The registry's invariant (see `registry.rs`): for every entry,
//! `sharers` equals the frame's mapcount in `sat-phys` *and* the
//! number of live level-1 pairs referencing the frame with
//! `NEED_COPY`, and the four Figure-6 by-cause unshare counters sum to
//! `ptp_unshares`. These tests drive random fork / write / mmap /
//! munmap / exit sequences against a zygote image and reconcile after
//! every step via [`Kernel::verify_share_accounting`], then tear the
//! whole system down and check nothing leaked: no registry entries, no
//! PTPs in the arena (a double-free would underflow the slab first),
//! and every physical frame back on the free list.
//!
//! Reclaim rides along: every sequence runs under a tight frame
//! budget (so allocation pressure fires organic reclaim through the
//! mmap/fault hooks), explicit `Reclaim` ops force extra passes, and
//! `Refault` ops fault evicted code pages back in. After every op the
//! reverse map must reconcile against live PTEs
//! ([`sat_phys::PhysMem::rmap_verify`]) and the eviction ledger must
//! conserve (`evictions == refaults + still_evicted`); at teardown
//! the rmap must be empty and the cache deficit must equal the
//! still-evicted count exactly.

use proptest::prelude::*;
use sat_core::{Kernel, KernelConfig, NoTlb};
use sat_types::{AccessType, Perms, Pid, RegionTag, VaRange, VirtAddr, PAGE_SIZE};
use sat_vm::MmapRequest;

const CODE_BASE: u32 = 0x4000_0000;
const CODE_PAGES: u32 = 8;
const HEAP_BASE: u32 = 0x0900_0000;
const HEAP_PAGES: u32 = 2;
/// Fresh 1-page regions land in the upper half of the code chunk, so
/// every `MmapNew` hits a shared PTP (Figure 6 case 3) when sharing
/// is on. Slots advance globally, so two regions never collide.
const MMAP_BASE: u32 = 0x4010_0000;

#[derive(Clone, Debug)]
enum Op {
    /// Fork from the `n`-th live process (zygote included).
    Fork(usize),
    /// Write-fault the `n`-th live process's heap page `p`.
    Write(usize, u8),
    /// Map a fresh private page into the code chunk of process `n`.
    MmapNew(usize),
    /// Unmap the most recent `MmapNew` region of process `n`.
    Munmap(usize),
    /// Exit the `n`-th live *child* (the zygote outlives the ops).
    Exit(usize),
    /// Force a reclaim pass evicting up to `1 + p % 4` file pages.
    Reclaim(u8),
    /// Refault code page `p` in process `n` if reclaim evicted it
    /// (no-op while the PTE is still live).
    Refault(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::Fork),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Write(n, p)),
        (0usize..64).prop_map(Op::MmapNew),
        (0usize..64).prop_map(Op::Munmap),
        (0usize..64).prop_map(Op::Exit),
        any::<u8>().prop_map(Op::Reclaim),
        ((0usize..64), any::<u8>()).prop_map(|(n, p)| Op::Refault(n, p)),
    ]
}

/// Boots the test zygote: one 8-page RX library (pre-faulted, the
/// shared image) and a 2-page written heap.
fn boot(config: KernelConfig) -> (Kernel, Pid) {
    let mut k = Kernel::new(config, 16384);
    let lib = k.files.register("libtest.so", CODE_PAGES * PAGE_SIZE);
    let zygote = k.create_process().unwrap();
    k.exec_zygote(zygote).unwrap();
    let code = MmapRequest::file(
        CODE_PAGES * PAGE_SIZE,
        Perms::RX,
        lib,
        0,
        RegionTag::ZygoteNativeCode,
        "libtest.so",
    )
    .at(VirtAddr::new(CODE_BASE));
    k.mmap(zygote, &code, &mut NoTlb).unwrap();
    k.populate(
        zygote,
        VaRange::from_len(VirtAddr::new(CODE_BASE), CODE_PAGES * PAGE_SIZE),
    )
    .unwrap();
    let heap = MmapRequest::anon(HEAP_PAGES * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
        .at(VirtAddr::new(HEAP_BASE));
    k.mmap(zygote, &heap, &mut NoTlb).unwrap();
    k.page_fault(
        zygote,
        VirtAddr::new(HEAP_BASE),
        AccessType::Write,
        &mut NoTlb,
    )
    .unwrap();
    (k, zygote)
}

/// Frames still allocated after a boot followed by an immediate full
/// teardown: the library's page-cache residency (the cache keeps file
/// pages past the last unmap, as Linux does). Any sequence of ops must
/// tear back down to exactly this floor — every op only creates
/// anonymous memory or page tables, both of which must free fully.
fn teardown_floor(config: KernelConfig) -> u64 {
    let (mut k, zygote) = boot(config);
    k.exit(zygote, &mut NoTlb).unwrap();
    k.phys.frames_in_use()
}

/// Applies `ops`, reconciling registry / mapcount / stats after every
/// step, then exits everything and checks for leaks.
fn run_sequence(config: KernelConfig, ops: &[Op]) {
    let floor = teardown_floor(config);
    let (mut k, zygote) = boot(config);
    // A budget just above the boot footprint: forks and fresh
    // mappings cross the low watermark organically, so reclaim also
    // fires through the mmap/fault hooks, not only via Op::Reclaim.
    k.set_frame_budget(Some(k.phys.frames_in_use() + 32));
    let mut live = vec![zygote]; // index 0 is always the zygote
    let mut mapped: Vec<(Pid, VirtAddr)> = Vec::new();
    let mut next_slot = 0u32;

    for op in ops {
        match *op {
            Op::Fork(n) => {
                let parent = live[n % live.len()];
                let out = k.fork(parent).unwrap();
                live.push(out.child);
            }
            Op::Write(n, p) => {
                let pid = live[n % live.len()];
                let va = VirtAddr::new(HEAP_BASE + (p as u32 % HEAP_PAGES) * PAGE_SIZE);
                k.page_fault(pid, va, AccessType::Write, &mut NoTlb)
                    .unwrap();
            }
            Op::MmapNew(n) => {
                let pid = live[n % live.len()];
                let va = VirtAddr::new(MMAP_BASE + next_slot * PAGE_SIZE);
                next_slot += 1;
                let req =
                    MmapRequest::anon(PAGE_SIZE, Perms::RW, RegionTag::Unknown, "[anon]").at(va);
                k.mmap(pid, &req, &mut NoTlb).unwrap();
                k.page_fault(pid, va, AccessType::Write, &mut NoTlb)
                    .unwrap();
                mapped.push((pid, va));
            }
            Op::Munmap(n) => {
                if mapped.is_empty() {
                    continue;
                }
                let (pid, va) = mapped.remove(n % mapped.len());
                if !live.contains(&pid) {
                    continue; // the owner already exited
                }
                k.munmap(pid, VaRange::from_len(va, PAGE_SIZE), &mut NoTlb)
                    .unwrap();
            }
            Op::Exit(n) => {
                if live.len() == 1 {
                    continue; // only the zygote is left
                }
                let pid = live.remove(1 + n % (live.len() - 1));
                k.exit(pid, &mut NoTlb).unwrap();
            }
            Op::Reclaim(p) => {
                k.reclaim(1 + (p as u64) % 4, &mut NoTlb);
            }
            Op::Refault(n, p) => {
                let pid = live[n % live.len()];
                let va = VirtAddr::new(CODE_BASE + (p as u32 % CODE_PAGES) * PAGE_SIZE);
                if k.pte(pid, va).unwrap().is_none() {
                    k.page_fault(pid, va, AccessType::Execute, &mut NoTlb)
                        .unwrap();
                }
            }
        }
        k.verify_share_accounting()
            .unwrap_or_else(|e| panic!("after {op:?}: {e}"));
        assert_eq!(
            k.stats.ptp_unshares, k.registry.stats.ptp_unshares,
            "KernelStats out of sync with the registry after {op:?}"
        );
        k.phys
            .rmap_verify()
            .unwrap_or_else(|e| panic!("rmap broken after {op:?}: {e}"));
        let s = k.phys.stats();
        assert_eq!(
            s.evictions,
            s.refaults + k.phys.still_evicted() as u64,
            "eviction ledger does not conserve after {op:?}"
        );
    }

    // Full teardown: children first, then the zygote itself.
    while live.len() > 1 {
        let pid = live.pop().unwrap();
        k.exit(pid, &mut NoTlb).unwrap();
        k.verify_share_accounting().unwrap();
    }
    k.exit(zygote, &mut NoTlb).unwrap();
    assert_eq!(
        k.registry.iter().count(),
        0,
        "registry entries leaked past the last exit"
    );
    assert!(k.ptps.is_empty(), "PTPs leaked past the last exit");
    assert!(
        k.phys.rmap_is_empty(),
        "rmap entries leaked past the last exit"
    );
    // Only page-cache residency survives the last exit, and evicted
    // pages that never refaulted account for the whole cache deficit.
    assert_eq!(
        k.phys.frames_in_use(),
        k.phys.page_cache_len() as u64,
        "non-cache frames leaked past the last exit"
    );
    assert_eq!(
        k.phys.frames_in_use() + k.phys.still_evicted() as u64,
        floor,
        "physical frames leaked past the last exit"
    );
    let stats = k.ptps.slab_stats();
    assert_eq!(
        stats.allocs, stats.frees,
        "slab alloc/free counts diverge (double free or leak)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole invariant, on the full shared configuration.
    #[test]
    fn registry_reconciles_under_random_lifecycles_shared(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        run_sequence(KernelConfig::shared_ptp_tlb(), &ops);
    }

    /// Same sequences on PTP sharing without TLB sharing.
    #[test]
    fn registry_reconciles_under_random_lifecycles_ptp_only(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        run_sequence(KernelConfig::shared_ptp(), &ops);
    }

    /// Stock never creates registry entries, and the same teardown
    /// leak checks hold.
    #[test]
    fn stock_keeps_the_registry_empty(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        run_sequence(KernelConfig::stock(), &ops);
    }
}
