//! The machine-independent virtual memory layer: a faithful analogue
//! of the Linux MM subsystem the paper's patch is written against.
//!
//! Provides memory regions ([`Vma`], the `vm_area_struct` analogue),
//! per-process address spaces ([`Mm`], the `mm_struct` analogue), the
//! region system calls (`mmap`/`munmap`/`mprotect`), demand paging
//! with soft (minor) and hard (major) fault classification, COW write
//! faults, and the stock `fork` implementation — which copies PTEs for
//! anonymous memory but skips the PTEs of file-backed mappings,
//! letting soft page faults refill them in the child. That skipped
//! work is exactly what Android pays for on every zygote fork, and
//! what the paper's shared-PTP fork (in `sat-core`) eliminates.
//!
//! Everything here is policy-free with respect to PTP sharing: the
//! paper's mechanism wraps these operations (unsharing before
//! modification) rather than changing them.

#![forbid(unsafe_code)]

pub mod fault;
pub mod fork;
pub mod largepage;
pub mod mm;
pub mod smaps;
pub mod syscalls;
pub mod vma;

pub use fault::{handle_fault, FaultCtx, FaultKind, FaultOutcome};
pub use fork::{copies_ptes, copy_vma_ptes_in_range, fork_mm, ForkPtePolicy, ForkReport};
pub use largepage::{
    collapse_group, map_large, mmap_large, round_to_large, CollapseOutcome, LargeMapReport,
    LARGE_PAGE_BYTES,
};
pub use mm::{Mm, MmCounters};
pub use smaps::{smaps, smaps_rollup, SmapsEntry};
pub use syscalls::{
    demote_range, exit_mmap, free_unused_ptps, mmap, mprotect, munmap, populate, MmapRequest,
};
pub use vma::{Backing, Vma};
