//! `/proc/pid/smaps`-style reporting.
//!
//! The paper's instruction-footprint methodology interprets page-fault
//! traces "using the mapping information from /proc/pid/smaps". This
//! module produces the same per-region accounting for a simulated
//! address space — RSS, proportional-set-size (PSS, where each frame
//! is charged 1/mapcount to each mapper), shared/private clean/dirty —
//! plus a field smaps does not have but this paper makes interesting:
//! the page-table bytes attributed to the region, proportionally
//! shared when its PTPs are.

use sat_mmu::PtpStore;
use sat_phys::PhysMem;
use sat_types::{RegionTag, VaRange, PAGE_SIZE};

use crate::mm::Mm;

/// Per-region memory accounting (one `smaps` entry).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SmapsEntry {
    /// Region range.
    pub range: Option<VaRange>,
    /// Region name.
    pub name: String,
    /// Region classification.
    pub tag: RegionTag,
    /// Resident bytes (pages with a PTE).
    pub rss: u64,
    /// Proportional set size: each resident page charged
    /// `size / mapcount`.
    pub pss: u64,
    /// Resident bytes mapped by exactly this process (mapcount 1).
    pub private_clean: u64,
    /// Private resident bytes that are dirty.
    pub private_dirty: u64,
    /// Resident bytes shared with other mappers (mapcount > 1).
    pub shared_clean: u64,
    /// Shared resident bytes that are dirty.
    pub shared_dirty: u64,
    /// Page-table bytes serving this region, charged proportionally
    /// when the PTP is shared across address spaces (this paper's
    /// contribution made visible in the accounting).
    pub page_table_pss: u64,
}

/// Produces the smaps entries for every region of `mm`, in address
/// order.
pub fn smaps(mm: &Mm, ptps: &PtpStore, phys: &PhysMem) -> Vec<SmapsEntry> {
    let mut out = Vec::new();
    for vma in mm.vmas() {
        let mut e = SmapsEntry {
            range: Some(vma.range),
            name: vma.name.to_string(),
            tag: vma.tag,
            ..SmapsEntry::default()
        };
        let mut charged_ptps = std::collections::BTreeSet::new();
        for page in vma.range.pages() {
            let entry = mm.root.entry_for(page);
            let Some(ptp) = entry.ptp() else { continue };
            let Some(table) = ptps.get(ptp) else { continue };
            let half = sat_mmu::TableHalf::of(page);
            let Some(slot) = table.get(half, page.l2_index()) else {
                continue;
            };
            let page_bytes = PAGE_SIZE as u64;
            e.rss += page_bytes;
            // A 64KB slot's own 4KB frame.
            let frame = match slot.hw.size {
                sat_types::PageSize::Large64K => {
                    sat_types::Pfn::new(slot.hw.pfn.raw() + (page.l2_index() as u32 % 16))
                }
                _ => slot.hw.pfn,
            };
            // Effective mappers: each PTE of the frame is one mapper,
            // except that a PTE living in a PTP shared by S processes
            // serves S of them. We know S for *this* page's PTP; other
            // PTEs are assumed private (exact when they are).
            let sharers = phys.mapcount(ptp).max(1) as u64;
            let mapcount = (phys.mapcount(frame).max(1) as u64 - 1) + sharers;
            e.pss += page_bytes / mapcount;
            match (mapcount > 1, slot.sw.dirty) {
                (false, false) => e.private_clean += page_bytes,
                (false, true) => e.private_dirty += page_bytes,
                (true, false) => e.shared_clean += page_bytes,
                (true, true) => e.shared_dirty += page_bytes,
            }
            // Page-table attribution: charge each PTP once per region,
            // divided by its sharer count — under the paper's
            // mechanism a PTP shared by N processes costs each 1/N.
            if charged_ptps.insert(ptp) {
                let sharers = phys.mapcount(ptp).max(1) as u64;
                e.page_table_pss += PAGE_SIZE as u64 / sharers;
            }
        }
        out.push(e);
    }
    out
}

/// Whole-process totals (the `smaps_rollup` analogue).
pub fn smaps_rollup(mm: &Mm, ptps: &PtpStore, phys: &PhysMem) -> SmapsEntry {
    let mut total = SmapsEntry {
        name: "[rollup]".to_string(),
        ..SmapsEntry::default()
    };
    for e in smaps(mm, ptps, phys) {
        total.rss += e.rss;
        total.pss += e.pss;
        total.private_clean += e.private_clean;
        total.private_dirty += e.private_dirty;
        total.shared_clean += e.shared_clean;
        total.shared_dirty += e.shared_dirty;
        total.page_table_pss += e.page_table_pss;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{handle_fault, FaultCtx};
    use crate::fork::{fork_mm, ForkPtePolicy};
    use crate::vma::Vma;
    use sat_phys::FileId;
    use sat_types::{AccessType, Asid, Domain, Perms, Pid, VirtAddr};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(8192);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
        }
    }

    fn touch(f: &mut Fx, va: u32, access: AccessType) {
        handle_fault(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(va),
            access,
            FaultCtx::default(),
        )
        .unwrap();
    }

    #[test]
    fn rss_counts_only_resident_pages() {
        let mut f = fx();
        f.mm.insert_vma(Vma::anon(
            VaRange::from_len(VirtAddr::new(0x0800_0000), 8 * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        ))
        .unwrap();
        touch(&mut f, 0x0800_0000, AccessType::Write);
        touch(&mut f, 0x0800_3000, AccessType::Write);
        let entries = smaps(&f.mm, &f.ptps, &f.phys);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rss, 2 * PAGE_SIZE as u64);
        assert_eq!(entries[0].private_dirty, 2 * PAGE_SIZE as u64);
        assert_eq!(entries[0].shared_clean, 0);
        assert_eq!(entries[0].pss, 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn pss_splits_shared_file_pages() {
        // Two processes mapping the same file page: each gets PSS of
        // half a page.
        let mut f = fx();
        let file = FileId(0);
        {
            let base = 0x4000_0000u32;
            f.mm.insert_vma(Vma::file(
                VaRange::from_len(VirtAddr::new(base), PAGE_SIZE),
                Perms::RX,
                file,
                0,
                RegionTag::ZygoteNativeCode,
                "lib.so",
            ))
            .unwrap();
        }
        touch(&mut f, 0x4000_0000, AccessType::Execute);
        let mut other = Mm::new(&mut f.phys, Pid::new(2), Asid::new(2)).unwrap();
        other
            .insert_vma(Vma::file(
                VaRange::from_len(VirtAddr::new(0x4000_0000), PAGE_SIZE),
                Perms::RX,
                file,
                0,
                RegionTag::ZygoteNativeCode,
                "lib.so",
            ))
            .unwrap();
        handle_fault(
            &mut other,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x4000_0000),
            AccessType::Execute,
            FaultCtx::default(),
        )
        .unwrap();
        let e = &smaps(&f.mm, &f.ptps, &f.phys)[0];
        assert_eq!(e.rss, PAGE_SIZE as u64);
        assert_eq!(e.pss, PAGE_SIZE as u64 / 2);
        assert_eq!(e.shared_clean, PAGE_SIZE as u64);
    }

    #[test]
    fn page_table_pss_halves_under_ptp_sharing() {
        // The accounting novelty: after a shared fork, each process is
        // charged half the PTP.
        let mut f = fx();
        f.mm.insert_vma(Vma::anon(
            VaRange::from_len(VirtAddr::new(0x0800_0000), 4 * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        ))
        .unwrap();
        touch(&mut f, 0x0800_0000, AccessType::Write);
        let before = smaps_rollup(&f.mm, &f.ptps, &f.phys).page_table_pss;
        assert_eq!(before, PAGE_SIZE as u64);
        // Simulate a shared fork: bump the PTP's sharer count.
        let ptp =
            f.mm.root
                .entry_for(VirtAddr::new(0x0800_0000))
                .ptp()
                .unwrap();
        f.phys.map_inc(ptp);
        let after = smaps_rollup(&f.mm, &f.ptps, &f.phys).page_table_pss;
        assert_eq!(after, PAGE_SIZE as u64 / 2);
    }

    #[test]
    fn stock_fork_doubles_pagetable_pss_shared_fork_does_not() {
        let mut f = fx();
        f.mm.insert_vma(Vma::anon(
            VaRange::from_len(VirtAddr::new(0x0800_0000), 4 * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        ))
        .unwrap();
        for i in 0..4 {
            touch(&mut f, 0x0800_0000 + i * PAGE_SIZE, AccessType::Write);
        }
        let (child, _) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        // Stock: parent and child each have a whole private PTP.
        let p = smaps_rollup(&f.mm, &f.ptps, &f.phys);
        let c = smaps_rollup(&child, &f.ptps, &f.phys);
        assert_eq!(p.page_table_pss, PAGE_SIZE as u64);
        assert_eq!(c.page_table_pss, PAGE_SIZE as u64);
        // Data PSS halves: pages are COW-shared between the two.
        assert_eq!(p.pss, 4 * PAGE_SIZE as u64 / 2);
    }
}
