//! 64KB large-page mappings (the hugetlbfs-like path).
//!
//! The paper's Section 2.3.3 weighs 64KB ARM large pages against
//! shared translation for zygote-preloaded code and finds them
//! wasteful (≈2.6× the physical memory); Section 3.1.3 notes the two
//! compose — a shared PTP can hold 64KB mappings, since a large page
//! is just sixteen consecutive, aligned second-level entries. This
//! module provides the eager large-page mapping path used by the
//! large-page comparison experiments: regions are mapped up-front
//! (like hugetlbfs), not demand-paged.

use sat_mmu::{HwPte, Mapper, PtpStore, SwPte};
use sat_phys::{FrameKind, PhysMem};
use sat_types::{
    Domain, PageSize, Perms, SatError, SatResult, VaRange, VirtAddr, PAGES_PER_64K, PAGE_SIZE,
};

use crate::mm::Mm;
use crate::vma::{Backing, Vma};

/// Bytes in a 64KB large page.
pub const LARGE_PAGE_BYTES: u32 = 64 * 1024;

/// Statistics from a large-page mapping operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LargeMapReport {
    /// 64KB pages established.
    pub large_pages: u64,
    /// 4KB frames consumed (16 per large page).
    pub frames: u64,
    /// PTPs allocated.
    pub ptps_allocated: u64,
}

/// Eagerly maps `vma`'s range with 64KB pages.
///
/// The range must be 64KB-aligned at both ends. For file-backed
/// regions, all sixteen frames of each large page are read through the
/// page cache; because the hardware requires the sixteen frames to be
/// *physically contiguous and aligned*, file pages are copied into
/// fresh anonymous 16-frame groups (matching Linux's requirement that
/// hugepage-backed code be staged into huge pages rather than mapped
/// from the ordinary page cache).
///
/// Returns the mapping statistics; the paper's memory-waste argument
/// is `report.frames * 4KB` versus the 4KB-page footprint.
pub fn map_large(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    vma: &Vma,
    domain: Domain,
) -> SatResult<LargeMapReport> {
    let range = vma.range;
    if !range.start.raw().is_multiple_of(LARGE_PAGE_BYTES)
        || !range.end.raw().is_multiple_of(LARGE_PAGE_BYTES)
    {
        return Err(SatError::InvalidArgument);
    }
    let mut report = LargeMapReport::default();
    let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
    // Pre-check every target slot: a large page must never overwrite
    // an existing translation (the caller would leak its frames).
    for page in range.pages() {
        if mapper.get_pte(page).is_some() {
            return Err(SatError::MappingOverlap);
        }
    }
    let mut va = range.start;
    while va < range.end {
        // Allocate sixteen frames; the simulator's allocator hands out
        // ascending PFNs, giving us the contiguous aligned group the
        // hardware descriptor encodes as a single base. On exhaustion
        // mid-group, roll the group back so no frame leaks (already
        // established pages of the range stay mapped; the caller sees
        // ENOMEM, as Linux's hugetlb reservation failure would).
        let mut group = Vec::with_capacity(PAGES_PER_64K);
        for _ in 0..PAGES_PER_64K {
            match mapper.phys.alloc(FrameKind::Anon) {
                Ok(f) => group.push(f),
                Err(e) => {
                    for g in group {
                        mapper.phys.put_page(g);
                    }
                    return Err(e);
                }
            }
        }
        report.frames += PAGES_PER_64K as u64;
        let base = group[0];
        // When file-backed, charge the page-cache reads (a hard fault
        // per resident 4KB page of content being staged in).
        if let Backing::File { .. } = vma.backing {
            for i in 0..PAGES_PER_64K as u32 {
                let page = VirtAddr::new(va.raw() + i * PAGE_SIZE);
                if let Some((file, index)) = vma.file_page_index(page) {
                    let _ = mapper.phys.file_page(file, index)?;
                }
            }
        }
        // Sixteen consecutive second-level slots, all pointing into
        // the contiguous frame group, marked as one 64KB page.
        let hw = HwPte::large(base, vma.perms, vma.global);
        let sw = SwPte {
            young: true,
            dirty: vma.perms.write(),
            writable: vma.perms.write(),
            shared: vma.shared,
            file_backed: false, // staged copies are anonymous
        };
        for i in 0..PAGES_PER_64K as u32 {
            let page = VirtAddr::new(va.raw() + i * PAGE_SIZE);
            let (ptp, allocated) = mapper.ensure_ptp(page, domain)?;
            if allocated {
                report.ptps_allocated += 1;
            }
            let half = sat_mmu::TableHalf::of(page);
            let prev = mapper
                .ptps
                .get_mut(ptp)
                .ok_or(SatError::Internal("PTP vanished"))?
                .set(
                    half,
                    page.l2_index(),
                    HwPte {
                        size: PageSize::Large64K,
                        ..hw
                    },
                    sw,
                );
            debug_assert!(prev.is_none(), "pre-checked: no existing PTE");
            // Reference counting: each slot holds a reference on its
            // own 4KB frame of the group.
            let frame = sat_types::Pfn::new(base.raw() + i);
            mapper.phys.get_page(frame);
            mapper.phys.map_inc(frame);
            mapper.phys.rmap_add(frame, mapper.pid, page);
        }
        // Drop the allocation references: the PTEs now own the frames.
        for i in 0..PAGES_PER_64K as u32 {
            mapper.phys.put_page(sat_types::Pfn::new(base.raw() + i));
        }
        report.large_pages += 1;
        va = VirtAddr::new(va.raw() + LARGE_PAGE_BYTES);
    }
    mm.counters.ptps_allocated += report.ptps_allocated;
    Ok(report)
}

/// Rejects ranges whose boundaries cut through a 64KB large page.
///
/// Like Linux's hugetlb regions, large-page mappings may only be
/// unmapped or re-protected in whole 64KB units: a partial operation
/// would leave the surviving replicated descriptors advertising a
/// translation that spans freed or re-protected frames.
pub fn check_large_boundaries(mm: &Mm, ptps: &PtpStore, range: VaRange) -> SatResult<()> {
    for addr in [range.start.raw(), range.end.raw()] {
        if addr.is_multiple_of(LARGE_PAGE_BYTES) {
            continue;
        }
        // The page containing the boundary (for the exclusive end,
        // the page just inside the range).
        let probe = if addr == range.end.raw() {
            addr - 1
        } else {
            addr
        };
        let page = VirtAddr::new(probe).page_base();
        let entry = mm.root.entry_for(page);
        let slot = entry
            .ptp()
            .and_then(|f| ptps.get(f))
            .and_then(|t| t.get(sat_mmu::TableHalf::of(page), page.l2_index()));
        if let Some(slot) = slot {
            if slot.hw.size == PageSize::Large64K {
                return Err(SatError::InvalidArgument);
            }
        }
    }
    Ok(())
}

/// Rounds a range outward to 64KB boundaries (what a large-page
/// mapping of `range` must actually cover).
pub fn round_to_large(range: VaRange) -> VaRange {
    let start = range.start.raw() & !(LARGE_PAGE_BYTES - 1);
    let end = range
        .end
        .raw()
        .div_ceil(LARGE_PAGE_BYTES)
        .saturating_mul(LARGE_PAGE_BYTES);
    VaRange::new(VirtAddr::new(start), VirtAddr::new(end))
}

/// Convenience: inserts a 64KB-aligned anonymous region and maps it
/// with large pages.
#[allow(clippy::too_many_arguments)]
pub fn mmap_large(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    at: VirtAddr,
    len: u32,
    perms: Perms,
    tag: sat_types::RegionTag,
    name: &str,
    domain: Domain,
) -> SatResult<LargeMapReport> {
    let range = round_to_large(VaRange::from_len(at, len));
    let vma = Vma::anon(range, perms, tag, name);
    mm.insert_vma(vma.clone())?;
    map_large(mm, ptps, phys, &vma, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_mmu::walk;
    use sat_types::{Asid, Pid, RegionTag};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(16384);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
        }
    }

    #[test]
    fn maps_one_large_page_as_16_slots() {
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        let r = mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            LARGE_PAGE_BYTES,
            Perms::RX,
            RegionTag::ZygoteNativeCode,
            "huge",
            Domain::USER,
        )
        .unwrap();
        assert_eq!(r.large_pages, 1);
        assert_eq!(r.frames, 16);
        assert_eq!(r.ptps_allocated, 1);
        // Every 4KB page of the range translates, with the large size.
        for i in 0..16u32 {
            let res = walk(&f.mm.root, &f.ptps, VirtAddr::new(at.raw() + i * PAGE_SIZE));
            let t = res.translation().unwrap();
            assert_eq!(t.size, PageSize::Large64K);
        }
        // And translations are consistent: VA offset maps linearly.
        let t0 = walk(&f.mm.root, &f.ptps, at).translation().unwrap();
        let pa0 = t0.translate(at);
        let pa9 = walk(&f.mm.root, &f.ptps, VirtAddr::new(at.raw() + 9 * PAGE_SIZE))
            .translation()
            .unwrap()
            .translate(VirtAddr::new(at.raw() + 9 * PAGE_SIZE));
        assert_eq!(pa9.raw() - pa0.raw(), 9 * PAGE_SIZE);
    }

    #[test]
    fn unaligned_large_map_rejected() {
        let mut f = fx();
        let vma = Vma::anon(
            VaRange::from_len(VirtAddr::new(0x4000_1000), LARGE_PAGE_BYTES),
            Perms::RW,
            RegionTag::Heap,
            "x",
        );
        f.mm.insert_vma(vma.clone()).unwrap();
        assert_eq!(
            map_large(&mut f.mm, &mut f.ptps, &mut f.phys, &vma, Domain::USER).unwrap_err(),
            SatError::InvalidArgument
        );
    }

    #[test]
    fn round_to_large_covers_range() {
        let r = round_to_large(VaRange::from_len(VirtAddr::new(0x4000_3000), 0x5000));
        assert_eq!(r.start.raw(), 0x4000_0000);
        assert_eq!(r.end.raw(), 0x4001_0000);
    }

    #[test]
    fn large_pages_cost_16_frames_per_64k() {
        // The Figure 4 memory-waste argument in miniature: 1 touched
        // 4KB page out of 64KB costs 16 frames under large pages.
        let mut f = fx();
        let before = f.phys.frames_in_use();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x5000_0000),
            LARGE_PAGE_BYTES,
            Perms::RX,
            RegionTag::ZygoteNativeCode,
            "waste",
            Domain::USER,
        )
        .unwrap();
        // 16 data frames + 1 PTP.
        assert_eq!(f.phys.frames_in_use(), before + 17);
    }

    #[test]
    fn large_mapped_region_survives_exit_teardown() {
        let mut f = fx();
        let baseline = f.phys.frames_in_use();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x5000_0000),
            2 * LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "huge-heap",
            Domain::USER,
        )
        .unwrap();
        crate::syscalls::exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
        assert_eq!(f.phys.frames_in_use(), baseline);
        assert!(f.ptps.is_empty());
    }
}
