//! 64KB large-page mapping mechanics.
//!
//! The paper's Section 2.3.3 weighs 64KB ARM large pages against
//! shared translation for zygote-preloaded code and finds them
//! wasteful (≈2.6× the physical memory); Section 3.1.3 notes the two
//! compose — a shared PTP can hold 64KB mappings, since a large page
//! is just sixteen consecutive, aligned second-level entries. This
//! module provides the two ways a large page comes to exist:
//!
//! * [`map_large`] — the eager, hugetlbfs-like path: a 64KB-aligned
//!   region is mapped up-front, all frames allocated immediately.
//! * [`collapse_group`] — the khugepaged-like path driven by
//!   `sat-core`'s promotion scanner: an already fault-populated 64KB
//!   run migrates onto a fresh physically contiguous frame group, and
//!   never-touched hole pages get frames allocated just to let the
//!   run go wide — the *measured* memory waste of Section 2.3.3.
//!
//! Demotion (splitting a large mapping back to 4KB PTEs) lives in
//! `sat_mmu::Mapper::split_large`; the syscall and fault paths invoke
//! it instead of rejecting partial operations.

use sat_mmu::{HwPte, Mapper, PtpStore, SwPte};
use sat_phys::{FrameKind, PhysMem};
use sat_types::{
    Domain, PageSize, Perms, Pfn, SatError, SatResult, VaRange, VirtAddr, PAGES_PER_64K, PAGE_SIZE,
};

use crate::mm::Mm;
use crate::vma::{Backing, Vma};

/// Bytes in a 64KB large page.
pub const LARGE_PAGE_BYTES: u32 = 64 * 1024;

/// Statistics from a large-page mapping operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LargeMapReport {
    /// 64KB pages established.
    pub large_pages: u64,
    /// 4KB frames consumed (16 per large page).
    pub frames: u64,
    /// PTPs allocated.
    pub ptps_allocated: u64,
}

/// Eagerly maps `vma`'s range with 64KB pages.
///
/// The range must be 64KB-aligned at both ends. For file-backed
/// regions, all sixteen frames of each large page are read through the
/// page cache; because the hardware requires the sixteen frames to be
/// *physically contiguous and aligned*, file pages are copied into
/// fresh anonymous 16-frame groups (matching Linux's requirement that
/// hugepage-backed code be staged into huge pages rather than mapped
/// from the ordinary page cache).
///
/// Returns the mapping statistics; the paper's memory-waste argument
/// is `report.frames * 4KB` versus the 4KB-page footprint.
pub fn map_large(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    vma: &Vma,
    domain: Domain,
) -> SatResult<LargeMapReport> {
    let range = vma.range;
    if !range.start.raw().is_multiple_of(LARGE_PAGE_BYTES)
        || !range.end.raw().is_multiple_of(LARGE_PAGE_BYTES)
    {
        return Err(SatError::InvalidArgument);
    }
    let mut report = LargeMapReport::default();
    let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
    // Pre-check every target slot: a large page must never overwrite
    // an existing translation (the caller would leak its frames).
    for page in range.pages() {
        if mapper.get_pte(page).is_some() {
            return Err(SatError::MappingOverlap);
        }
    }
    let mut va = range.start;
    while va < range.end {
        // Allocate sixteen frames; a fresh allocator hands out
        // ascending PFNs, giving us the contiguous group the hardware
        // descriptor encodes as a single base. After free-list churn
        // that stops being true, so verify and fall back to the
        // explicit contiguous-run allocator. On exhaustion mid-group,
        // roll the group back so no frame leaks (already established
        // pages of the range stay mapped; the caller sees ENOMEM, as
        // Linux's hugetlb reservation failure would).
        let mut group = Vec::with_capacity(PAGES_PER_64K);
        for _ in 0..PAGES_PER_64K {
            match mapper.phys.alloc(FrameKind::Anon) {
                Ok(f) => group.push(f),
                Err(e) => {
                    for g in group {
                        mapper.phys.put_page(g);
                    }
                    return Err(e);
                }
            }
        }
        if group.windows(2).any(|w| w[1].raw() != w[0].raw() + 1) {
            for g in group.drain(..) {
                mapper.phys.put_page(g);
            }
            let base = mapper
                .phys
                .alloc_run(FrameKind::Anon, PAGES_PER_64K as u32)?;
            group.extend((0..PAGES_PER_64K as u32).map(|i| sat_types::Pfn::new(base.raw() + i)));
        }
        report.frames += PAGES_PER_64K as u64;
        let base = group[0];
        // When file-backed, charge the page-cache reads (a hard fault
        // per resident 4KB page of content being staged in).
        if let Backing::File { .. } = vma.backing {
            for i in 0..PAGES_PER_64K as u32 {
                let page = VirtAddr::new(va.raw() + i * PAGE_SIZE);
                if let Some((file, index)) = vma.file_page_index(page) {
                    let _ = mapper.phys.file_page(file, index)?;
                }
            }
        }
        // Sixteen consecutive second-level slots, all pointing into
        // the contiguous frame group, marked as one 64KB page.
        let hw = HwPte::large(base, vma.perms, vma.global);
        let sw = SwPte {
            young: true,
            dirty: vma.perms.write(),
            writable: vma.perms.write(),
            shared: vma.shared,
            file_backed: false, // staged copies are anonymous
        };
        for i in 0..PAGES_PER_64K as u32 {
            let page = VirtAddr::new(va.raw() + i * PAGE_SIZE);
            let (ptp, allocated) = mapper.ensure_ptp(page, domain)?;
            if allocated {
                report.ptps_allocated += 1;
            }
            let half = sat_mmu::TableHalf::of(page);
            let prev = mapper
                .ptps
                .get_mut(ptp)
                .ok_or(SatError::Internal("PTP vanished"))?
                .set(
                    half,
                    page.l2_index(),
                    HwPte {
                        size: PageSize::Large64K,
                        ..hw
                    },
                    sw,
                );
            debug_assert!(prev.is_none(), "pre-checked: no existing PTE");
            // Reference counting: each slot holds a reference on its
            // own 4KB frame of the group.
            let frame = sat_types::Pfn::new(base.raw() + i);
            mapper.phys.get_page(frame);
            mapper.phys.map_inc(frame);
            mapper.phys.rmap_add(frame, mapper.pid, page);
        }
        // Drop the allocation references: the PTEs now own the frames.
        for i in 0..PAGES_PER_64K as u32 {
            mapper.phys.put_page(sat_types::Pfn::new(base.raw() + i));
        }
        report.large_pages += 1;
        va = VirtAddr::new(va.raw() + LARGE_PAGE_BYTES);
    }
    mm.counters.ptps_allocated += report.ptps_allocated;
    Ok(report)
}

/// Outcome of promoting one 64KB group of 4KB PTEs into a large page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollapseOutcome {
    /// Pages that were already fault-populated and migrated onto the
    /// contiguous frame group.
    pub migrated: u32,
    /// Hole pages that had never been touched but received frames
    /// anyway — the numerator of the paper's memory-waste figure.
    pub filled: u32,
}

/// Collapses the sixteen 4KB slots of the 64KB-aligned group at
/// `group` into one large page (the khugepaged-style promotion the
/// `sat-core` scanner drives).
///
/// Eligibility, checked here so the scanner can simply try every
/// candidate group (ineligible groups return `InvalidArgument`):
///
/// * `group` is 64KB-aligned and lies wholly inside one VMA;
/// * the group's level-1 entry is a *private* table — `NEED_COPY`
///   shared translations are never promoted, since collapsing would
///   rewrite every sharer's view of the sixteen slots;
/// * at least one slot is populated; every populated slot is a
///   *settled* `Small4K` mapping (hardware permissions match the
///   software intent — no COW pending — and not `MAP_SHARED`), and
///   permissions/global are uniform across the populated slots.
///
/// Mechanics: a fresh physically contiguous 16-frame group is
/// allocated, populated pages migrate onto it (copy + remap), and
/// hole pages get frames with `young == false` — *mapped but never
/// touched*, which is exactly the mapped-vs-touched gap behind the
/// paper's ≈2.6× waste figure (Section 2.3.3). For file-backed
/// regions hole content is staged through the page cache (charged as
/// reads); migrated pages are already resident and copy
/// frame-to-frame. On ENOMEM nothing is changed.
pub fn collapse_group(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    group: VirtAddr,
    domain: Domain,
) -> SatResult<CollapseOutcome> {
    if !group.raw().is_multiple_of(LARGE_PAGE_BYTES) {
        return Err(SatError::InvalidArgument);
    }
    let range = VaRange::from_len(group, LARGE_PAGE_BYTES);
    let vma = match mm.vma_at(group) {
        Some(v) if range.end.raw() <= v.range.end.raw() => v.clone(),
        _ => return Err(SatError::InvalidArgument),
    };
    if mm.root.entry_for(group).need_copy() {
        return Err(SatError::InvalidArgument);
    }
    let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
    // Survey the sixteen slots: settled, uniform, at least one present.
    let slots: Vec<Option<sat_mmu::PteSlot>> = range.pages().map(|p| mapper.get_pte(p)).collect();
    let mut uniform: Option<(Perms, bool)> = None;
    for s in slots.iter().flatten() {
        if s.hw.size != PageSize::Small4K {
            return Err(SatError::InvalidArgument);
        }
        // A slot mid-COW (write-protected while the software intent
        // is writable) or MAP_SHARED is not settled; promoting it
        // would freeze the wrong state into the wide descriptor.
        if s.sw.shared || s.sw.writable != s.hw.perms.write() {
            return Err(SatError::InvalidArgument);
        }
        match uniform {
            None => uniform = Some((s.hw.perms, s.hw.global)),
            Some(u) if u != (s.hw.perms, s.hw.global) => {
                return Err(SatError::InvalidArgument);
            }
            Some(_) => {}
        }
    }
    let Some((perms, global)) = uniform else {
        return Err(SatError::InvalidArgument); // fully empty group
    };
    // Fresh contiguous frames; ENOMEM propagates before any change.
    let base = mapper
        .phys
        .alloc_run(FrameKind::Anon, PAGES_PER_64K as u32)?;
    // Stage hole content for file regions (charged page-cache reads);
    // populated pages are already resident and copy frame-to-frame.
    if let Backing::File { .. } = vma.backing {
        for (i, s) in slots.iter().enumerate() {
            if s.is_some() {
                continue;
            }
            let page = VirtAddr::new(group.raw() + i as u32 * PAGE_SIZE);
            if let Some((file, index)) = vma.file_page_index(page) {
                if let Err(e) = mapper.phys.file_page(file, index) {
                    for j in 0..PAGES_PER_64K as u32 {
                        mapper.phys.put_page(Pfn::new(base.raw() + j));
                    }
                    return Err(e);
                }
            }
        }
    }
    let mut outcome = CollapseOutcome::default();
    let hw = HwPte::large(base, perms, global);
    for (i, old) in slots.iter().enumerate() {
        let page = VirtAddr::new(group.raw() + i as u32 * PAGE_SIZE);
        let sw = match old {
            Some(s) => {
                // Migrate: drop the old 4KB frame, keep the software
                // bits (dirty state survives the copy).
                mapper.clear_pte(page);
                outcome.migrated += 1;
                SwPte {
                    young: s.sw.young,
                    dirty: s.sw.dirty,
                    writable: s.sw.writable,
                    shared: false,
                    file_backed: false, // the copy is anonymous
                }
            }
            None => {
                outcome.filled += 1;
                // Mapped but never touched: the waste the paper
                // measures. `young == false` keeps it countable.
                SwPte {
                    young: false,
                    dirty: false,
                    writable: perms.write(),
                    shared: false,
                    file_backed: false,
                }
            }
        };
        // The group's PTP exists (a slot was populated), so set_pte
        // cannot need an allocation here.
        mapper.set_pte(page, hw, sw, domain)?;
    }
    // Drop the allocation references: the PTEs now own the frames.
    for j in 0..PAGES_PER_64K as u32 {
        mapper.phys.put_page(Pfn::new(base.raw() + j));
    }
    Ok(outcome)
}

/// Rounds a range outward to 64KB boundaries (what a large-page
/// mapping of `range` must actually cover).
pub fn round_to_large(range: VaRange) -> VaRange {
    let start = range.start.raw() & !(LARGE_PAGE_BYTES - 1);
    let end = range
        .end
        .raw()
        .div_ceil(LARGE_PAGE_BYTES)
        .saturating_mul(LARGE_PAGE_BYTES);
    VaRange::new(VirtAddr::new(start), VirtAddr::new(end))
}

/// Convenience: inserts a 64KB-aligned anonymous region and maps it
/// with large pages.
#[allow(clippy::too_many_arguments)]
pub fn mmap_large(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    at: VirtAddr,
    len: u32,
    perms: Perms,
    tag: sat_types::RegionTag,
    name: &str,
    domain: Domain,
) -> SatResult<LargeMapReport> {
    let range = round_to_large(VaRange::from_len(at, len));
    let vma = Vma::anon(range, perms, tag, name);
    mm.insert_vma(vma.clone())?;
    map_large(mm, ptps, phys, &vma, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_mmu::walk;
    use sat_types::{Asid, Pid, RegionTag};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(16384);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
        }
    }

    #[test]
    fn maps_one_large_page_as_16_slots() {
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        let r = mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            LARGE_PAGE_BYTES,
            Perms::RX,
            RegionTag::ZygoteNativeCode,
            "huge",
            Domain::USER,
        )
        .unwrap();
        assert_eq!(r.large_pages, 1);
        assert_eq!(r.frames, 16);
        assert_eq!(r.ptps_allocated, 1);
        // Every 4KB page of the range translates, with the large size.
        for i in 0..16u32 {
            let res = walk(&f.mm.root, &f.ptps, VirtAddr::new(at.raw() + i * PAGE_SIZE));
            let t = res.translation().unwrap();
            assert_eq!(t.size, PageSize::Large64K);
        }
        // And translations are consistent: VA offset maps linearly.
        let t0 = walk(&f.mm.root, &f.ptps, at).translation().unwrap();
        let pa0 = t0.translate(at);
        let pa9 = walk(&f.mm.root, &f.ptps, VirtAddr::new(at.raw() + 9 * PAGE_SIZE))
            .translation()
            .unwrap()
            .translate(VirtAddr::new(at.raw() + 9 * PAGE_SIZE));
        assert_eq!(pa9.raw() - pa0.raw(), 9 * PAGE_SIZE);
    }

    #[test]
    fn unaligned_large_map_rejected() {
        let mut f = fx();
        let vma = Vma::anon(
            VaRange::from_len(VirtAddr::new(0x4000_1000), LARGE_PAGE_BYTES),
            Perms::RW,
            RegionTag::Heap,
            "x",
        );
        f.mm.insert_vma(vma.clone()).unwrap();
        assert_eq!(
            map_large(&mut f.mm, &mut f.ptps, &mut f.phys, &vma, Domain::USER).unwrap_err(),
            SatError::InvalidArgument
        );
    }

    #[test]
    fn round_to_large_covers_range() {
        let r = round_to_large(VaRange::from_len(VirtAddr::new(0x4000_3000), 0x5000));
        assert_eq!(r.start.raw(), 0x4000_0000);
        assert_eq!(r.end.raw(), 0x4001_0000);
    }

    #[test]
    fn large_pages_cost_16_frames_per_64k() {
        // The Figure 4 memory-waste argument in miniature: 1 touched
        // 4KB page out of 64KB costs 16 frames under large pages.
        let mut f = fx();
        let before = f.phys.frames_in_use();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x5000_0000),
            LARGE_PAGE_BYTES,
            Perms::RX,
            RegionTag::ZygoteNativeCode,
            "waste",
            Domain::USER,
        )
        .unwrap();
        // 16 data frames + 1 PTP.
        assert_eq!(f.phys.frames_in_use(), before + 17);
    }

    #[test]
    fn enomem_mid_group_rolls_back_without_leaking() {
        // Satellite: a mid-group allocation failure must leave no
        // leaked frames and keep already-established large pages
        // intact. Size physical memory so the *second* group runs out
        // partway: Mm::new takes 4 frames for the root, the first
        // large page takes 16 data frames + 1 PTP, and the remainder
        // is too small for another 16-frame group.
        let mut phys = PhysMem::new(4 + 16 + 1 + 7);
        let mut mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        let mut ptps = PtpStore::new();
        let err = mmap_large(
            &mut mm,
            &mut ptps,
            &mut phys,
            VirtAddr::new(0x4000_0000),
            2 * LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "oom",
            Domain::USER,
        )
        .unwrap_err();
        assert_eq!(err, SatError::OutOfMemory);
        // The first group's 16 frames + 1 PTP are the only survivors;
        // the failed group's partial allocation was fully returned.
        assert_eq!(phys.frames_in_use(), 4 + 16 + 1);
        // The established large page still translates end to end.
        for i in 0..16u32 {
            let va = VirtAddr::new(0x4000_0000 + i * PAGE_SIZE);
            let t = walk(&mm.root, &ptps, va).translation().unwrap();
            assert_eq!(t.size, PageSize::Large64K);
        }
        // And tearing the space down leaks nothing.
        crate::syscalls::exit_mmap(&mut mm, &mut ptps, &mut phys);
        assert_eq!(phys.frames_in_use(), 4);
    }

    #[test]
    fn map_large_survives_fragmented_free_list() {
        // Free-list churn makes sequential alloc() non-contiguous;
        // map_large must detect that and fall back to alloc_run.
        let mut f = fx();
        let churn: Vec<_> = (0..33)
            .map(|_| f.phys.alloc(sat_phys::FrameKind::Anon).unwrap())
            .collect();
        // Free every other frame: the LIFO free list now yields a
        // non-contiguous sequence first.
        for (i, pfn) in churn.iter().enumerate() {
            if i % 2 == 0 {
                f.phys.put_page(*pfn);
            }
        }
        let at = VirtAddr::new(0x4000_0000);
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "frag",
            Domain::USER,
        )
        .unwrap();
        // Consecutive pages translate to consecutive frames.
        let t0 = walk(&f.mm.root, &f.ptps, at).translation().unwrap();
        for i in 0..16u32 {
            let va = VirtAddr::new(at.raw() + i * PAGE_SIZE);
            let t = walk(&f.mm.root, &f.ptps, va).translation().unwrap();
            assert_eq!(
                t.translate(va).raw(),
                t0.translate(at).raw() + i * PAGE_SIZE
            );
        }
    }

    #[test]
    fn collapse_migrates_populated_and_fills_holes() {
        use crate::fault::{handle_fault, FaultCtx};
        use sat_types::AccessType;
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        let vma = Vma::anon(
            VaRange::from_len(at, LARGE_PAGE_BYTES),
            Perms::RW,
            RegionTag::Heap,
            "promo",
        );
        f.mm.insert_vma(vma).unwrap();
        // Fault 6 of 16 pages by writes (the Figure 4 density).
        for i in [0u32, 2, 5, 7, 11, 13] {
            handle_fault(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                VirtAddr::new(at.raw() + i * PAGE_SIZE),
                AccessType::Write,
                FaultCtx::default(),
            )
            .unwrap();
        }
        let before = f.phys.frames_in_use();
        let out = collapse_group(&mut f.mm, &mut f.ptps, &mut f.phys, at, Domain::USER).unwrap();
        assert_eq!(out.migrated, 6);
        assert_eq!(out.filled, 10);
        // 16 new frames in, 6 old frames out: net +10 — the waste.
        assert_eq!(f.phys.frames_in_use(), before + 10);
        // All sixteen pages now translate large and linearly.
        let t0 = walk(&f.mm.root, &f.ptps, at).translation().unwrap();
        assert_eq!(t0.size, PageSize::Large64K);
        for i in 0..16u32 {
            let va = VirtAddr::new(at.raw() + i * PAGE_SIZE);
            let t = walk(&f.mm.root, &f.ptps, va).translation().unwrap();
            assert_eq!(t.size, PageSize::Large64K);
            assert_eq!(
                t.translate(va).raw(),
                t0.translate(at).raw() + i * PAGE_SIZE
            );
        }
        // Migrated pages kept their touched state; holes are cold.
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert!(m.get_pte(at).unwrap().sw.young);
        assert!(
            !m.get_pte(VirtAddr::new(at.raw() + PAGE_SIZE))
                .unwrap()
                .sw
                .young
        );
        let _ = m;
        // Teardown balances the books.
        crate::syscalls::exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
    }

    #[test]
    fn collapse_rejects_empty_unaligned_and_mixed_groups() {
        use crate::fault::{handle_fault, FaultCtx};
        use sat_types::AccessType;
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        let vma = Vma::anon(
            VaRange::from_len(at, 2 * LARGE_PAGE_BYTES),
            Perms::RW,
            RegionTag::Heap,
            "promo",
        );
        f.mm.insert_vma(vma).unwrap();
        // Unaligned group address.
        assert_eq!(
            collapse_group(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                VirtAddr::new(at.raw() + PAGE_SIZE),
                Domain::USER,
            )
            .unwrap_err(),
            SatError::InvalidArgument
        );
        // Fully empty group.
        assert_eq!(
            collapse_group(&mut f.mm, &mut f.ptps, &mut f.phys, at, Domain::USER).unwrap_err(),
            SatError::InvalidArgument
        );
        // Mid-COW slot (read fault leaves it write-protected while the
        // software intent is writable): not settled, not promotable.
        handle_fault(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            AccessType::Read,
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(
            collapse_group(&mut f.mm, &mut f.ptps, &mut f.phys, at, Domain::USER).unwrap_err(),
            SatError::InvalidArgument
        );
    }

    #[test]
    fn large_mapped_region_survives_exit_teardown() {
        let mut f = fx();
        let baseline = f.phys.frames_in_use();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x5000_0000),
            2 * LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "huge-heap",
            Domain::USER,
        )
        .unwrap();
        crate::syscalls::exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
        assert_eq!(f.phys.frames_in_use(), baseline);
        assert!(f.ptps.is_empty());
    }
}
