//! Region system calls: `mmap`, `munmap`, `mprotect`, and address
//! space teardown.
//!
//! These are the stock-kernel paths. Under the paper's kernel each of
//! them is an *unsharing trigger* (Section 3.1.2, cases 2-5): the
//! `sat-core` wrapper unshares affected PTPs first and then calls
//! these mechanics unchanged.

use sat_mmu::{L1Entry, Mapper, PtpStore};
use sat_phys::{FileId, PhysMem};
use sat_types::{
    AccessType, PageSize, Perms, RegionTag, SatError, SatResult, VaRange, VirtAddr, PAGE_SIZE,
    PTP_SPAN,
};

use crate::fault::{handle_fault, FaultCtx};
use crate::mm::Mm;
use crate::vma::{Backing, Vma};

/// Parameters for [`mmap`].
#[derive(Clone, Debug)]
pub struct MmapRequest {
    /// Fixed address (must be page-aligned and free), or `None` to let
    /// the kernel choose.
    pub addr: Option<VirtAddr>,
    /// Length in bytes (rounded up to whole pages).
    pub len: u32,
    /// Access permissions.
    pub perms: Perms,
    /// Backing store.
    pub backing: Backing,
    /// `MAP_SHARED`.
    pub shared: bool,
    /// Alignment for automatic placement (the paper's 2MB-aligned
    /// library layout passes [`PTP_SPAN`] here).
    pub align: u32,
    /// Region classification.
    pub tag: RegionTag,
    /// Region name.
    pub name: String,
}

impl MmapRequest {
    /// An anonymous private mapping at a kernel-chosen address.
    pub fn anon(len: u32, perms: Perms, tag: RegionTag, name: &str) -> Self {
        MmapRequest {
            addr: None,
            len,
            perms,
            backing: Backing::Anon,
            shared: false,
            align: PAGE_SIZE,
            tag,
            name: name.to_string(),
        }
    }

    /// A private file mapping at a kernel-chosen address.
    pub fn file(
        len: u32,
        perms: Perms,
        file: FileId,
        offset_pages: u32,
        tag: RegionTag,
        name: &str,
    ) -> Self {
        MmapRequest {
            addr: None,
            len,
            perms,
            backing: Backing::File { file, offset_pages },
            shared: false,
            align: PAGE_SIZE,
            tag,
            name: name.to_string(),
        }
    }

    /// Requests placement at a fixed address.
    pub fn at(mut self, addr: VirtAddr) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Requests a minimum alignment for automatic placement.
    pub fn aligned(mut self, align: u32) -> Self {
        self.align = align;
        self
    }
}

/// Maps a new region, returning its start address.
///
/// The paper's kernel hooks this path twice: a zygote mapping of
/// library code sets the region's `global` flag (done by the caller in
/// `sat-core`), and mapping into the range of a shared PTP triggers an
/// eager unshare (also done by the caller).
pub fn mmap(mm: &mut Mm, req: &MmapRequest) -> SatResult<VirtAddr> {
    if req.len == 0 {
        return Err(SatError::InvalidArgument);
    }
    let len = req.len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    let start = match req.addr {
        Some(addr) => {
            if !addr.is_page_aligned() {
                return Err(SatError::InvalidArgument);
            }
            addr
        }
        None => mm.find_free(len, req.align)?,
    };
    let range = VaRange::from_len(start, len);
    let mut vma = match req.backing {
        Backing::Anon => Vma::anon(range, req.perms, req.tag, &req.name),
        Backing::File { file, offset_pages } => {
            Vma::file(range, req.perms, file, offset_pages, req.tag, &req.name)
        }
    };
    vma.shared = req.shared;
    mm.insert_vma(vma)?;
    Ok(start)
}

/// Pre-faults every page of `range` (the `MAP_POPULATE` analogue),
/// using a read or execute access per the region's permissions.
pub fn populate(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    range: VaRange,
    ctx: FaultCtx,
) -> SatResult<usize> {
    let mut populated = 0;
    for page in range.pages() {
        let access = match mm.vma_at(page) {
            Some(v) if v.perms.execute() => AccessType::Execute,
            Some(_) => AccessType::Read,
            None => continue,
        };
        handle_fault(mm, ptps, phys, page, access, ctx)?;
        populated += 1;
    }
    Ok(populated)
}

/// Demotes large mappings so `range` can be operated on at 4KB
/// granularity (Linux's split-before-zap): a 1MB section overlapping
/// `range` is split back to a table of small PTEs, and a 64KB large
/// page cut by a range *boundary* is split back to sixteen small
/// PTEs. Groups lying wholly inside the range stay large — clearing
/// all sixteen replicated descriptors releases the group exactly, and
/// a whole-group permission change keeps the descriptors uniform.
///
/// Returns the demoted mappings as `(start_va, size)`; the `sat-core`
/// wrapper calls this ahead of the mechanics below to turn each entry
/// into a `Demote` event and a size-tagged TLB flush (the calls here
/// then find nothing left to split).
pub fn demote_range(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    range: VaRange,
) -> SatResult<Vec<(VirtAddr, PageSize)>> {
    if range.is_empty() {
        return Ok(Vec::new());
    }
    let mut demoted = Vec::new();
    // Sections first: splitting one leaves 64KB groups behind, which
    // the boundary pass below may then need to split further.
    for mb in (range.start.raw() >> 20)..=((range.end.raw() - 1) >> 20) {
        let va = VirtAddr::new(mb << 20);
        if matches!(mm.root.entry(mb as usize), L1Entry::Section { .. }) {
            let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
            mapper.split_section(va)?;
            demoted.push((va, PageSize::Section1M));
        }
    }
    // 64KB groups cut by a boundary. Large pages are installed at
    // 64KB-aligned starts, so an aligned boundary never cuts one.
    let large = PageSize::Large64K.bytes();
    for edge in [range.start.raw(), range.end.raw()] {
        if edge.is_multiple_of(large) {
            continue;
        }
        // For the exclusive end, probe the page just inside the range.
        let probe = if edge == range.end.raw() {
            VirtAddr::new(edge - 1).page_base()
        } else {
            VirtAddr::new(edge)
        };
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
        if mapper.split_large(probe).is_some() {
            demoted.push((
                VirtAddr::new(probe.raw() & !(large - 1)),
                PageSize::Large64K,
            ));
        }
    }
    Ok(demoted)
}

/// Unmaps `range`: removes the covered region pieces, demotes large
/// mappings cut by the boundaries, clears their PTEs, and frees
/// page-table pages whose 2MB span no longer contains any region.
///
/// Returns the number of PTEs cleared.
pub fn munmap(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    range: VaRange,
) -> SatResult<usize> {
    if !range.start.is_page_aligned() || range.is_empty() {
        return Err(SatError::InvalidArgument);
    }
    demote_range(mm, ptps, phys, range)?;
    let removed = mm.carve(range);
    let mut cleared = 0;
    {
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
        for piece in &removed {
            cleared += mapper.clear_range(piece.range);
        }
    }
    free_unused_ptps(mm, ptps, phys, range);
    Ok(cleared)
}

/// Frees the page tables for every 2MB chunk touching `range` that no
/// longer contains any region (Linux's `free_pgtables`).
pub fn free_unused_ptps(mm: &mut Mm, ptps: &mut PtpStore, phys: &mut PhysMem, range: VaRange) {
    for chunk in range.ptps() {
        let span = VaRange::from_len(chunk, PTP_SPAN);
        if mm.any_vma_overlaps(span) {
            continue;
        }
        if mm.root.entry_for(chunk).ptp().is_some() {
            let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
            mapper.release_ptp_pair(chunk);
        }
    }
}

/// Changes the permissions of every whole page of mapped regions in
/// `range`, splitting regions at the boundaries.
///
/// Hardware PTEs are given the new permissions, except that write
/// permission is withheld from private mappings (a subsequent write
/// fault re-enables it or COWs, exactly as after `fork`).
pub fn mprotect(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    range: VaRange,
    perms: Perms,
) -> SatResult<()> {
    if !range.start.is_page_aligned() || !range.end.is_page_aligned() || range.is_empty() {
        return Err(SatError::InvalidArgument);
    }
    if !mm.any_vma_overlaps(range) {
        return Err(SatError::NotMapped(range.start));
    }
    // A partial re-protection would leave a large page's sixteen
    // replicated descriptors disagreeing, and the TLB could serve the
    // stale permission from any of them — demote at the boundaries
    // first; whole-group changes below stay uniform and stay large.
    demote_range(mm, ptps, phys, range)?;
    let pieces = mm.carve(range);
    for mut piece in pieces {
        piece.perms = perms;
        let shared = piece.shared;
        let piece_range = piece.range;
        mm.insert_vma(piece)
            .expect("carved range is free by construction");
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
        for page in piece_range.pages() {
            mapper.update_pte(page, |hw, sw| {
                hw.perms = if shared { perms } else { perms.without_write() };
                sw.writable = perms.write();
            });
        }
    }
    Ok(())
}

/// Tears down the whole address space at process exit: drops every
/// PTP reference (freeing PTPs whose last reference this was, along
/// with their mappings) and removes all regions.
///
/// Returns the number of PTPs freed outright (as opposed to merely
/// dereferenced because other processes still share them — the
/// paper's Section 3.1.2 case 5).
pub fn exit_mmap(mm: &mut Mm, ptps: &mut PtpStore, phys: &mut PhysMem) -> usize {
    let chunks: Vec<usize> = mm.root.iter_ptps().map(|(idx, _)| idx).collect();
    let sections: Vec<usize> = mm.root.iter_sections().collect();
    let mut freed = 0;
    {
        let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);
        // Sections are level-1 entries, invisible to the PTP sweep:
        // drop their frame references directly.
        for idx in sections {
            mapper.clear_section(VirtAddr::new((idx as u32) << 20));
        }
        for pair_idx in chunks {
            let va = VirtAddr::new((pair_idx as u32) << 20);
            if mapper.release_ptp_pair(va) {
                freed += 1;
            }
        }
    }
    mm.clear_vmas();
    freed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Asid, Pid};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(8192);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
        }
    }

    fn heap_req(pages: u32) -> MmapRequest {
        MmapRequest::anon(pages * PAGE_SIZE, Perms::RW, RegionTag::Heap, "[heap]")
    }

    #[test]
    fn mmap_rounds_length_and_places_automatically() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(1)).unwrap();
        let b = mmap(&mut f.mm, &heap_req(2)).unwrap();
        assert_eq!(b.raw() - a.raw(), PAGE_SIZE);
        let c = mmap(
            &mut f.mm,
            &MmapRequest::anon(100, Perms::RW, RegionTag::Heap, "x"),
        )
        .unwrap();
        let vma = f.mm.vma_at(c).unwrap();
        assert_eq!(vma.range.len(), PAGE_SIZE); // rounded to a page
    }

    #[test]
    fn mmap_fixed_overlap_rejected() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(2)).unwrap();
        let err = mmap(&mut f.mm, &heap_req(1).at(a)).unwrap_err();
        assert_eq!(err, SatError::MappingOverlap);
    }

    #[test]
    fn mmap_2mb_alignment() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(3).aligned(PTP_SPAN)).unwrap();
        assert!(a.is_ptp_aligned());
    }

    #[test]
    fn populate_faults_every_page() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(4)).unwrap();
        let n = populate(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(a, 4 * PAGE_SIZE),
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(n, 4);
        assert_eq!(f.mm.counters.faults_total, 4);
    }

    #[test]
    fn munmap_clears_ptes_and_frees_empty_ptps() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(4)).unwrap();
        let range = VaRange::from_len(a, 4 * PAGE_SIZE);
        populate(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            range,
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(f.ptps.len(), 1);
        let frames_mapped = f.phys.frames_in_use();
        let cleared = munmap(&mut f.mm, &mut f.ptps, &mut f.phys, range).unwrap();
        assert_eq!(cleared, 4);
        assert_eq!(f.ptps.len(), 0);
        // 4 data frames + 1 PTP returned.
        assert_eq!(f.phys.frames_in_use(), frames_mapped - 5);
        assert!(f.mm.vma_at(a).is_none());
    }

    #[test]
    fn partial_munmap_keeps_ptp_for_remaining_region() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(4)).unwrap();
        let range = VaRange::from_len(a, 4 * PAGE_SIZE);
        populate(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            range,
            FaultCtx::default(),
        )
        .unwrap();
        // Unmap the middle two pages.
        let middle = VaRange::from_len(VirtAddr::new(a.raw() + PAGE_SIZE), 2 * PAGE_SIZE);
        let cleared = munmap(&mut f.mm, &mut f.ptps, &mut f.phys, middle).unwrap();
        assert_eq!(cleared, 2);
        assert_eq!(f.ptps.len(), 1); // head and tail regions still use it
        assert_eq!(f.mm.vma_count(), 2);
    }

    #[test]
    fn mprotect_updates_vma_and_ptes() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(2)).unwrap();
        let range = VaRange::from_len(a, 2 * PAGE_SIZE);
        populate(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            range,
            FaultCtx::default(),
        )
        .unwrap();
        mprotect(&mut f.mm, &mut f.ptps, &mut f.phys, range, Perms::R).unwrap();
        assert_eq!(f.mm.vma_at(a).unwrap().perms, Perms::R);
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert_eq!(m.get_pte(a).unwrap().hw.perms, Perms::R);
        assert!(!m.get_pte(a).unwrap().sw.writable);
    }

    #[test]
    fn mprotect_splits_region() {
        let mut f = fx();
        let a = mmap(&mut f.mm, &heap_req(4)).unwrap();
        let sub = VaRange::from_len(VirtAddr::new(a.raw() + PAGE_SIZE), PAGE_SIZE);
        mprotect(&mut f.mm, &mut f.ptps, &mut f.phys, sub, Perms::R).unwrap();
        assert_eq!(f.mm.vma_count(), 3);
        assert_eq!(f.mm.vma_at(a).unwrap().perms, Perms::RW);
        assert_eq!(f.mm.vma_at(sub.start).unwrap().perms, Perms::R);
    }

    #[test]
    fn mprotect_unmapped_errors() {
        let mut f = fx();
        let err = mprotect(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(VirtAddr::new(0x7000_0000), PAGE_SIZE),
            Perms::R,
        )
        .unwrap_err();
        assert_eq!(err, SatError::NotMapped(VirtAddr::new(0x7000_0000)));
    }

    #[test]
    fn partial_munmap_splits_large_page() {
        use crate::largepage::{mmap_large, LARGE_PAGE_BYTES};
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "huge",
            sat_types::Domain::USER,
        )
        .unwrap();
        // Unmap the first 4KB only: the group must demote, the other
        // fifteen pages must survive as small PTEs.
        let cleared = munmap(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(at, PAGE_SIZE),
        )
        .unwrap();
        assert_eq!(cleared, 1);
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert!(m.get_pte(at).is_none());
        for i in 1..16u32 {
            let slot = m.get_pte(VirtAddr::new(at.raw() + i * PAGE_SIZE)).unwrap();
            assert_eq!(slot.hw.size, PageSize::Small4K);
        }
        let _ = m;
        exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
    }

    #[test]
    fn demote_range_reports_boundary_splits_only() {
        use crate::largepage::{mmap_large, LARGE_PAGE_BYTES};
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            2 * LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "huge",
            sat_types::Domain::USER,
        )
        .unwrap();
        // A range cutting into the second group splits only that one;
        // the first group is wholly inside and stays large.
        let range = VaRange::new(
            at,
            VirtAddr::new(at.raw() + LARGE_PAGE_BYTES + 4 * PAGE_SIZE),
        );
        let demoted = demote_range(&mut f.mm, &mut f.ptps, &mut f.phys, range).unwrap();
        assert_eq!(
            demoted,
            vec![(
                VirtAddr::new(at.raw() + LARGE_PAGE_BYTES),
                PageSize::Large64K
            )]
        );
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert_eq!(m.get_pte(at).unwrap().hw.size, PageSize::Large64K);
        assert_eq!(
            m.get_pte(VirtAddr::new(at.raw() + LARGE_PAGE_BYTES))
                .unwrap()
                .hw
                .size,
            PageSize::Small4K
        );
        let _ = m;
        // Idempotent: a second call finds nothing left to split.
        assert!(demote_range(&mut f.mm, &mut f.ptps, &mut f.phys, range)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn whole_group_mprotect_keeps_large_partial_splits() {
        use crate::largepage::{mmap_large, LARGE_PAGE_BYTES};
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            2 * LARGE_PAGE_BYTES,
            Perms::RW,
            RegionTag::Heap,
            "huge",
            sat_types::Domain::USER,
        )
        .unwrap();
        // Whole-group re-protection keeps the replicated descriptors
        // uniform: the first group stays large.
        mprotect(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(at, LARGE_PAGE_BYTES),
            Perms::R,
        )
        .unwrap();
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        let slot = m.get_pte(at).unwrap();
        assert_eq!(slot.hw.size, PageSize::Large64K);
        assert_eq!(slot.hw.perms, Perms::R);
        let _ = m;
        // Partial re-protection inside the second group demotes it.
        let second = VirtAddr::new(at.raw() + LARGE_PAGE_BYTES);
        mprotect(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(second, 4 * PAGE_SIZE),
            Perms::R,
        )
        .unwrap();
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert_eq!(m.get_pte(second).unwrap().hw.size, PageSize::Small4K);
        assert_eq!(m.get_pte(second).unwrap().hw.perms, Perms::R);
        // Pages past the re-protected span keep their old perms.
        let tail = VirtAddr::new(second.raw() + 5 * PAGE_SIZE);
        assert_eq!(m.get_pte(tail).unwrap().hw.size, PageSize::Small4K);
        assert!(m.get_pte(tail).unwrap().hw.perms.write());
    }

    #[test]
    fn munmap_splits_section_at_boundary() {
        use crate::largepage::mmap_large;
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000); // 1MB-aligned
                                             // Pre-allocate the PTP so the 256 data frames form one
                                             // contiguous run, then build the section from 16 large pages.
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .ensure_ptp(at, sat_types::Domain::USER)
            .unwrap();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            0x10_0000,
            Perms::RW,
            RegionTag::Heap,
            "sect",
            sat_types::Domain::USER,
        )
        .unwrap();
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .collapse_section(at)
            .unwrap();
        assert_eq!(f.mm.root.section_count(), 1);
        // Unmapping 8KB out of the middle demotes the section (and
        // the large group the boundary then cuts), clears two pages.
        let range = VaRange::from_len(VirtAddr::new(at.raw() + 0x8_0000), 2 * PAGE_SIZE);
        let demoted = demote_range(&mut f.mm, &mut f.ptps, &mut f.phys, range).unwrap();
        assert_eq!(demoted[0], (at, PageSize::Section1M));
        let cleared = munmap(&mut f.mm, &mut f.ptps, &mut f.phys, range).unwrap();
        assert_eq!(cleared, 2);
        assert_eq!(f.mm.root.section_count(), 0);
        // Every page outside the hole still translates.
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert!(m.get_pte(at).is_some());
        assert!(m.get_pte(VirtAddr::new(at.raw() + 0x8_0000)).is_none());
        assert!(m.get_pte(VirtAddr::new(at.raw() + 0x8_2000)).is_some());
        let _ = m;
        let baseline = 4; // root table
        exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
        assert_eq!(f.phys.frames_in_use(), baseline);
        assert!(f.ptps.is_empty());
    }

    #[test]
    fn exit_mmap_tears_down_sections() {
        use crate::largepage::mmap_large;
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .ensure_ptp(at, sat_types::Domain::USER)
            .unwrap();
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            0x10_0000,
            Perms::RW,
            RegionTag::Heap,
            "sect",
            sat_types::Domain::USER,
        )
        .unwrap();
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .collapse_section(at)
            .unwrap();
        exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
        assert_eq!(f.phys.frames_in_use(), 4); // just the root table
        assert_eq!(f.mm.root.section_count(), 0);
        assert!(f.ptps.is_empty());
    }

    #[test]
    fn exit_mmap_releases_everything() {
        let mut f = fx();
        let baseline = f.phys.frames_in_use();
        let a = mmap(&mut f.mm, &heap_req(8)).unwrap();
        populate(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VaRange::from_len(a, 8 * PAGE_SIZE),
            FaultCtx::default(),
        )
        .unwrap();
        let freed = exit_mmap(&mut f.mm, &mut f.ptps, &mut f.phys);
        assert_eq!(freed, 1);
        assert_eq!(f.mm.vma_count(), 0);
        assert_eq!(f.phys.frames_in_use(), baseline);
        assert!(f.ptps.is_empty());
    }
}
