//! Per-process address spaces: the `mm_struct` analogue.

use std::collections::BTreeMap;

use sat_mmu::RootTable;
use sat_phys::PhysMem;
use sat_types::{Asid, Dacr, Pid, SatError, SatResult, VaRange, VirtAddr, PAGE_SIZE};

use crate::vma::Vma;

/// Software counters, mirroring the counters the paper added to the
/// kernel plus the standard fault counters ("we also add new software
/// counters into the kernel to gather statistics for the number of
/// page faults, PTPs allocated, shared PTPs, PTPs unshared, and PTEs
/// copied").
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MmCounters {
    /// All page faults handled.
    pub faults_total: u64,
    /// Page faults on file-backed mappings — the paper's headline
    /// steady-state metric (Figures 9 and 10).
    pub faults_file: u64,
    /// Soft (minor) faults: resolved without I/O.
    pub faults_soft: u64,
    /// Hard (major) faults: required a simulated disk read.
    pub faults_hard: u64,
    /// COW copies performed on write faults.
    pub faults_cow: u64,
    /// Write faults resolved by re-enabling write permission.
    pub faults_write_enable: u64,
    /// Faults that found a PTE already sufficient (e.g. raced with a
    /// sharer that populated it).
    pub faults_spurious: u64,
    /// Page-table pages allocated for this address space.
    pub ptps_allocated: u64,
    /// PTEs copied at fork time (into this, the child, address space).
    pub ptes_copied_fork: u64,
    /// PTEs copied by PTP-unshare operations.
    pub ptes_copied_unshare: u64,
    /// PTPs this process attached to as shared at fork.
    pub ptps_shared_at_fork: u64,
    /// Unshare operations performed by this process.
    pub ptps_unshared: u64,
    /// Unshares triggered eagerly by region operations (mmap/munmap/
    /// mprotect/new-region) rather than by write faults.
    pub unshares_by_region_op: u64,
}

impl MmCounters {
    /// Total PTEs copied (fork + unshare), the paper's Section 4.2.3
    /// unsharing-cost metric.
    pub fn ptes_copied_total(&self) -> u64 {
        self.ptes_copied_fork + self.ptes_copied_unshare
    }
}

/// A process address space: root table, regions, and counters.
pub struct Mm {
    /// Owning process.
    pub pid: Pid,
    /// Hardware ASID assigned to the process.
    pub asid: Asid,
    /// The first-level translation table.
    pub root: RootTable,
    /// Domain access rights, loaded into the DACR on context switch.
    pub dacr: Dacr,
    /// Set by `exec` when the zygote starts (paper Section 3.2.2).
    pub is_zygote: bool,
    /// Set by `fork` for children of the zygote.
    pub is_zygote_child: bool,
    /// Software counters.
    pub counters: MmCounters,
    vmas: BTreeMap<u32, Vma>,
}

/// Default base address for automatic mmap placement.
pub const MMAP_BASE: VirtAddr = VirtAddr::new(0x4000_0000);

impl Mm {
    /// Creates an empty address space, allocating a root table.
    pub fn new(phys: &mut PhysMem, pid: Pid, asid: Asid) -> SatResult<Mm> {
        Ok(Mm {
            pid,
            asid,
            root: RootTable::alloc(phys)?,
            dacr: Dacr::stock_user(),
            is_zygote: false,
            is_zygote_child: false,
            counters: MmCounters::default(),
            vmas: BTreeMap::new(),
        })
    }

    /// Returns `true` if the process is the zygote or a zygote child.
    pub fn is_zygote_like(&self) -> bool {
        self.is_zygote || self.is_zygote_child
    }

    /// Returns the region containing `va`, if any.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(va))
    }

    /// Returns a mutable reference to the region containing `va`.
    ///
    /// Used by the paper's kernel to set the `global` flag on regions
    /// mapped by the zygote (Section 3.2.2).
    pub fn vma_at_mut(&mut self, va: VirtAddr) -> Option<&mut Vma> {
        self.vmas
            .range_mut(..=va.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(va))
    }

    /// Returns regions overlapping `range`.
    pub fn vmas_overlapping(&self, range: VaRange) -> impl Iterator<Item = &Vma> {
        self.vmas.values().filter(move |v| v.range.overlaps(&range))
    }

    /// Returns `true` if any region overlaps `range`.
    pub fn any_vma_overlaps(&self, range: VaRange) -> bool {
        self.vmas_overlapping(range).next().is_some()
    }

    /// Iterates all regions in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of regions.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Inserts a region; fails if it overlaps an existing one.
    pub fn insert_vma(&mut self, vma: Vma) -> SatResult<()> {
        if vma.range.is_empty() {
            return Err(SatError::InvalidArgument);
        }
        if !vma.range.start.is_page_aligned() || !vma.range.end.is_page_aligned() {
            return Err(SatError::InvalidArgument);
        }
        if self.any_vma_overlaps(vma.range) {
            return Err(SatError::MappingOverlap);
        }
        self.vmas.insert(vma.range.start.raw(), vma);
        Ok(())
    }

    /// Removes the portions of regions overlapping `range`, splitting
    /// regions that straddle its edges, and returns the removed
    /// pieces. The address space is left covering everything outside
    /// `range` exactly as before.
    pub fn carve(&mut self, range: VaRange) -> Vec<Vma> {
        let keys: Vec<u32> = self
            .vmas
            .values()
            .filter(|v| v.range.overlaps(&range))
            .map(|v| v.range.start.raw())
            .collect();
        let mut removed = Vec::new();
        for key in keys {
            let mut vma = self.vmas.remove(&key).expect("key just collected");
            // Leading piece stays.
            if vma.range.start < range.start {
                let tail = vma.split_at(range.start);
                self.vmas.insert(vma.range.start.raw(), vma);
                vma = tail;
            }
            // Trailing piece stays.
            if vma.range.end > range.end {
                let tail = vma.split_at(range.end);
                self.vmas.insert(tail.range.start.raw(), tail);
            }
            removed.push(vma);
        }
        removed
    }

    /// Finds a free, `align`-aligned address range of `len` bytes at
    /// or above [`MMAP_BASE`], in the user portion of the address
    /// space.
    pub fn find_free(&self, len: u32, align: u32) -> SatResult<VirtAddr> {
        assert!(align.is_power_of_two() && align >= PAGE_SIZE);
        let align_up = |addr: u32| addr.checked_add(align - 1).map(|a| a & !(align - 1));
        let mut candidate = match align_up(MMAP_BASE.raw()) {
            Some(c) => c,
            None => return Err(SatError::OutOfMemory),
        };
        for vma in self.vmas.values() {
            if vma.range.end.raw() <= candidate {
                continue;
            }
            if vma.range.start.raw() >= candidate && vma.range.start.raw() - candidate >= len {
                break;
            }
            candidate = match align_up(vma.range.end.raw()) {
                Some(c) => c,
                None => return Err(SatError::OutOfMemory),
            };
        }
        let end = candidate as u64 + len as u64;
        if end > sat_types::KERNEL_SPACE_START as u64 {
            return Err(SatError::OutOfMemory);
        }
        Ok(VirtAddr::new(candidate))
    }

    /// Releases the address space's root table. The caller must have
    /// torn down mappings first (see [`crate::syscalls::exit_mmap`]).
    pub fn free_root(self, phys: &mut PhysMem) {
        self.root.free(phys);
    }

    /// Clones the region map (used by fork).
    pub fn clone_vmas(&self) -> BTreeMap<u32, Vma> {
        self.vmas.clone()
    }

    /// Replaces the region map (used by fork to install the inherited
    /// regions into the child).
    pub fn set_vmas(&mut self, vmas: BTreeMap<u32, Vma>) {
        self.vmas = vmas;
    }

    /// Removes every region (used by exit).
    pub(crate) fn clear_vmas(&mut self) {
        self.vmas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::{Perms, RegionTag};

    fn mm() -> (PhysMem, Mm) {
        let mut phys = PhysMem::new(1024);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        (phys, mm)
    }

    fn anon(start: u32, pages: u32) -> Vma {
        Vma::anon(
            VaRange::from_len(VirtAddr::new(start), pages * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[anon]",
        )
    }

    #[test]
    fn insert_and_lookup() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 4)).unwrap();
        assert!(mm.vma_at(VirtAddr::new(0x4000_0000)).is_some());
        assert!(mm.vma_at(VirtAddr::new(0x4000_3FFF)).is_some());
        assert!(mm.vma_at(VirtAddr::new(0x4000_4000)).is_none());
        assert!(mm.vma_at(VirtAddr::new(0x3FFF_FFFF)).is_none());
    }

    #[test]
    fn overlapping_insert_rejected() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 4)).unwrap();
        assert_eq!(
            mm.insert_vma(anon(0x4000_3000, 2)).unwrap_err(),
            SatError::MappingOverlap
        );
        // Abutting is fine.
        mm.insert_vma(anon(0x4000_4000, 2)).unwrap();
        assert_eq!(mm.vma_count(), 2);
    }

    #[test]
    fn unaligned_insert_rejected() {
        let (_p, mut mm) = mm();
        let v = Vma::anon(
            VaRange::from_len(VirtAddr::new(0x4000_0100), PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "x",
        );
        assert_eq!(mm.insert_vma(v).unwrap_err(), SatError::InvalidArgument);
    }

    #[test]
    fn carve_splits_straddling_region() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 10)).unwrap();
        let removed = mm.carve(VaRange::from_len(VirtAddr::new(0x4000_3000), 4 * PAGE_SIZE));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].range.start.raw(), 0x4000_3000);
        assert_eq!(removed[0].range.len(), 4 * PAGE_SIZE);
        // Head and tail survive.
        assert!(mm.vma_at(VirtAddr::new(0x4000_0000)).is_some());
        assert!(mm.vma_at(VirtAddr::new(0x4000_2FFF)).is_some());
        assert!(mm.vma_at(VirtAddr::new(0x4000_3000)).is_none());
        assert!(mm.vma_at(VirtAddr::new(0x4000_7000)).is_some());
        assert_eq!(mm.vma_count(), 2);
    }

    #[test]
    fn carve_spanning_multiple_regions() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 2)).unwrap();
        mm.insert_vma(anon(0x4000_2000, 2)).unwrap();
        mm.insert_vma(anon(0x4000_4000, 2)).unwrap();
        let removed = mm.carve(VaRange::from_len(VirtAddr::new(0x4000_1000), 4 * PAGE_SIZE));
        assert_eq!(removed.len(), 3);
        assert_eq!(mm.vma_count(), 2);
        assert!(mm.vma_at(VirtAddr::new(0x4000_0000)).is_some());
        assert!(mm.vma_at(VirtAddr::new(0x4000_5000)).is_some());
    }

    #[test]
    fn find_free_respects_alignment_and_gaps() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 4)).unwrap();
        let free = mm.find_free(2 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(free.raw(), 0x4000_4000);
        let aligned = mm.find_free(2 * PAGE_SIZE, 2 << 20).unwrap();
        assert_eq!(aligned.raw(), 0x4020_0000);
        assert!(aligned.is_ptp_aligned());
    }

    #[test]
    fn find_free_skips_occupied_gaps() {
        let (_p, mut mm) = mm();
        mm.insert_vma(anon(0x4000_0000, 1)).unwrap();
        mm.insert_vma(anon(0x4000_2000, 1)).unwrap();
        // The 1-page hole at 0x4000_1000 fits a 1-page request.
        assert_eq!(
            mm.find_free(PAGE_SIZE, PAGE_SIZE).unwrap().raw(),
            0x4000_1000
        );
        // A 2-page request must go after the second region.
        assert_eq!(
            mm.find_free(2 * PAGE_SIZE, PAGE_SIZE).unwrap().raw(),
            0x4000_3000
        );
    }

    #[test]
    fn zygote_like_flagging() {
        let (_p, mut mm) = mm();
        assert!(!mm.is_zygote_like());
        mm.is_zygote_child = true;
        assert!(mm.is_zygote_like());
    }
}
