//! The stock `fork` implementation (`dup_mm`/`copy_page_range`).
//!
//! Linux skips copying PTEs for file-backed mappings — soft page
//! faults refill them in the child — but must copy PTEs for anonymous
//! memory (and write-protect private writable pages in both parent and
//! child for COW). The paper's Table 4 compares three fork variants on
//! the zygote:
//!
//! - **Stock** ([`ForkPtePolicy::Stock`]): copy anonymous PTEs only.
//! - **Copied PTEs** ([`ForkPtePolicy::CopyAll`]): additionally copy
//!   the file-backed PTEs of the zygote-preloaded shared code — faster
//!   launches but a 58.6% slower fork and more PTPs.
//! - **Shared PTPs**: the paper's mechanism, implemented in
//!   `sat-core`; it reuses this module for the regions it cannot
//!   share.

use sat_mmu::{Mapper, PtpStore};
use sat_phys::PhysMem;
use sat_types::{Asid, Domain, Pid, SatResult, VaRange};

use crate::mm::Mm;
use crate::vma::{Backing, Vma};

/// Which PTEs `fork` copies eagerly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForkPtePolicy {
    /// Stock Linux: copy anonymous mappings, skip file-backed ones.
    Stock,
    /// Copy every populated PTE, including file-backed mappings (the
    /// paper's "Copied PTEs" comparison kernel).
    CopyAll,
}

/// What a fork did, for the Table 4 accounting.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ForkReport {
    /// PTEs copied from parent to child.
    pub ptes_copied: u64,
    /// Of those, PTEs belonging to file-backed mappings (cheaper to
    /// copy than anonymous ones, which also need COW protection).
    pub ptes_copied_file: u64,
    /// PTPs allocated for the child.
    pub ptps_allocated: u64,
    /// Parent PTEs newly write-protected for COW.
    pub cow_protected: u64,
    /// Regions inherited.
    pub vmas: usize,
}

/// Returns `true` if the policy copies this region's PTEs at fork.
///
/// Stock Linux copies anonymous mappings and any private *writable*
/// file mapping (data segments acquire anonymous COW pages from
/// relocation processing, and refaulting those from the file would
/// lose the written data); read-only/executable file mappings are
/// skipped and refault in the child.
pub fn copies_ptes(policy: ForkPtePolicy, vma: &Vma) -> bool {
    match policy {
        ForkPtePolicy::Stock => match vma.backing {
            Backing::Anon => true,
            Backing::File { .. } => !vma.shared && vma.perms.write(),
        },
        ForkPtePolicy::CopyAll => true,
    }
}

/// Forks `parent` into a new address space, copying PTEs per `policy`.
///
/// `child_domain` is the domain used for the child's level-1 entries
/// (the zygote domain for zygote-like children under the paper's TLB
/// sharing, the user domain otherwise).
pub fn fork_mm(
    parent: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    child_pid: Pid,
    child_asid: Asid,
    policy: ForkPtePolicy,
    child_domain: Domain,
) -> SatResult<(Mm, ForkReport)> {
    let mut child = Mm::new(phys, child_pid, child_asid)?;
    child.dacr = parent.dacr;
    child.is_zygote_child = parent.is_zygote_like();
    child.set_vmas(parent.clone_vmas());

    let mut report = ForkReport {
        vmas: child.vma_count(),
        ..ForkReport::default()
    };

    let vmas: Vec<Vma> = parent.vmas().cloned().collect();
    for vma in &vmas {
        if !copies_ptes(policy, vma) {
            continue;
        }
        copy_vma_ptes(
            parent,
            &mut child,
            ptps,
            phys,
            vma,
            child_domain,
            &mut report,
        )?;
    }
    child.counters.ptes_copied_fork = report.ptes_copied;
    child.counters.ptps_allocated = report.ptps_allocated;
    Ok((child, report))
}

/// Copies the populated PTEs of one region from `parent` to `child`,
/// COW-protecting private writable pages in both.
pub fn copy_vma_ptes(
    parent: &mut Mm,
    child: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    vma: &Vma,
    child_domain: Domain,
    report: &mut ForkReport,
) -> SatResult<()> {
    copy_vma_ptes_in_range(
        parent,
        child,
        ptps,
        phys,
        vma,
        vma.range,
        child_domain,
        report,
    )
}

/// Copies the populated PTEs of `vma` that fall within `clamp` from
/// `parent` to `child`, COW-protecting private writable pages in both.
///
/// The paper's shared-PTP fork uses the clamped form for the regions a
/// shared PTP chunk cannot cover (e.g. the stack's chunk).
#[allow(clippy::too_many_arguments)]
pub fn copy_vma_ptes_in_range(
    parent: &mut Mm,
    child: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    vma: &Vma,
    clamp: VaRange,
    child_domain: Domain,
    report: &mut ForkReport,
) -> SatResult<()> {
    let Some(range) = vma.range.intersect(&clamp) else {
        return Ok(());
    };
    // Collect the parent's populated PTEs first (cannot hold a borrow
    // of the parent's tables while mutating the child's).
    let parent_ptes = {
        let parent_mapper = Mapper::new(&mut parent.root, ptps, phys, parent.pid);
        parent_mapper.iter_range(range)
    };
    let cow = vma.is_private_writable();
    for (va, slot) in parent_ptes {
        let mut hw = slot.hw;
        if cow && hw.perms.write() {
            // Write-protect in the parent...
            let mut pm = Mapper::new(&mut parent.root, ptps, phys, parent.pid);
            pm.update_pte(va, |hw, _| *hw = hw.write_protected());
            report.cow_protected += 1;
            // ...and copy the protected version into the child.
            hw = hw.write_protected();
        }
        let mut cm = Mapper::new(&mut child.root, ptps, phys, child.pid);
        let res = cm.set_pte(va, hw, slot.sw, child_domain)?;
        report.ptes_copied += 1;
        if matches!(vma.backing, Backing::File { .. }) {
            report.ptes_copied_file += 1;
        }
        if res.ptp_allocated {
            report.ptps_allocated += 1;
        }
    }
    Ok(())
}

/// Clears the COW write protection bookkeeping check: after a fork,
/// both parent and child map each private page; this helper asserts
/// the frame reference counts reflect that. Intended for tests and
/// debug builds.
pub fn assert_cow_invariants(mm: &Mm, ptps: &PtpStore, phys: &PhysMem, range: VaRange) {
    for page in range.pages() {
        let slot = match mm
            .root
            .entry_for(page)
            .ptp()
            .and_then(|f| ptps.get(f))
            .and_then(|t| t.get(sat_mmu::TableHalf::of(page), page.l2_index()))
        {
            Some(s) => s,
            None => continue,
        };
        let mapcount = phys.mapcount(slot.hw.pfn);
        if mapcount > 1 {
            assert!(
                !slot.hw.perms.write() || slot.sw.shared,
                "page {page:?} mapped {mapcount}x but writable and not shared"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{handle_fault, FaultCtx, FaultKind};
    use sat_phys::FileId;
    use sat_types::{AccessType, Perms, RegionTag, VirtAddr, PAGE_SIZE};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(8192);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
        }
    }

    fn touch(fx_mm: &mut Mm, ptps: &mut PtpStore, phys: &mut PhysMem, va: u32, access: AccessType) {
        handle_fault(
            fx_mm,
            ptps,
            phys,
            VirtAddr::new(va),
            access,
            FaultCtx::default(),
        )
        .unwrap();
    }

    fn add_heap(f: &mut Fx, start: u32, pages: u32) {
        f.mm.insert_vma(Vma::anon(
            VaRange::from_len(VirtAddr::new(start), pages * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        ))
        .unwrap();
    }

    fn add_code(f: &mut Fx, start: u32, pages: u32) {
        f.mm.insert_vma(Vma::file(
            VaRange::from_len(VirtAddr::new(start), pages * PAGE_SIZE),
            Perms::RX,
            FileId(0),
            0,
            RegionTag::ZygoteNativeCode,
            "libc.so",
        ))
        .unwrap();
    }

    #[test]
    fn stock_fork_copies_anon_skips_file() {
        let mut f = fx();
        add_heap(&mut f, 0x0800_0000, 4);
        add_code(&mut f, 0x4000_0000, 4);
        for i in 0..4 {
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0x0800_0000 + i * PAGE_SIZE,
                AccessType::Write,
            );
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0x4000_0000 + i * PAGE_SIZE,
                AccessType::Execute,
            );
        }
        let (child, report) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        assert_eq!(report.ptes_copied, 4); // heap only
        assert_eq!(report.cow_protected, 4);
        assert_eq!(report.vmas, 2);
        assert_eq!(report.ptps_allocated, 1);
        // Child has the heap PTEs but not the code PTEs.
        let cm = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        assert!(cm.get_pte(VirtAddr::new(0x0800_0000)).is_some());
        let _ = cm;
        let mut child = child;
        let ccm = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, child.pid);
        assert!(ccm.get_pte(VirtAddr::new(0x0800_0000)).is_some());
        assert!(ccm.get_pte(VirtAddr::new(0x4000_0000)).is_none());
    }

    #[test]
    fn copy_all_policy_copies_file_backed_too() {
        let mut f = fx();
        add_code(&mut f, 0x4000_0000, 4);
        for i in 0..4 {
            touch(
                &mut f.mm,
                &mut f.ptps,
                &mut f.phys,
                0x4000_0000 + i * PAGE_SIZE,
                AccessType::Execute,
            );
        }
        let (_child, report) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::CopyAll,
            Domain::USER,
        )
        .unwrap();
        assert_eq!(report.ptes_copied, 4);
        assert_eq!(report.cow_protected, 0); // code is not writable
    }

    #[test]
    fn cow_protects_both_parent_and_child() {
        let mut f = fx();
        add_heap(&mut f, 0x0800_0000, 1);
        touch(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            0x0800_0000,
            AccessType::Write,
        );
        let (mut child, _) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        let va = VirtAddr::new(0x0800_0000);
        let parent_pte = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(va)
            .unwrap();
        let child_pte = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, child.pid)
            .get_pte(va)
            .unwrap();
        assert!(!parent_pte.hw.perms.write());
        assert!(!child_pte.hw.perms.write());
        assert_eq!(parent_pte.hw.pfn, child_pte.hw.pfn); // same frame
        assert_eq!(f.phys.mapcount(parent_pte.hw.pfn), 2);
        assert_cow_invariants(&f.mm, &f.ptps, &f.phys, VaRange::from_len(va, PAGE_SIZE));
    }

    #[test]
    fn write_after_fork_triggers_cow_copy() {
        let mut f = fx();
        add_heap(&mut f, 0x0800_0000, 1);
        touch(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            0x0800_0000,
            AccessType::Write,
        );
        let (mut child, _) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        let va = VirtAddr::new(0x0800_0000);
        // Child writes: gets its own copy.
        let o = handle_fault(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            va,
            AccessType::Write,
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(o.kind, FaultKind::Cow);
        let child_pfn = Mapper::new(&mut child.root, &mut f.ptps, &mut f.phys, child.pid)
            .get_pte(va)
            .unwrap()
            .hw
            .pfn;
        let parent_pfn = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(va)
            .unwrap()
            .hw
            .pfn;
        assert_ne!(child_pfn, parent_pfn);
        // Parent now writes: sole mapper again, so write is re-enabled
        // without copying.
        let o2 = handle_fault(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            va,
            AccessType::Write,
            FaultCtx::default(),
        )
        .unwrap();
        assert_eq!(o2.kind, FaultKind::WriteEnable);
    }

    #[test]
    fn grandchild_fork_inherits_zygote_child_flag() {
        let mut f = fx();
        f.mm.is_zygote = true;
        let (mut child, _) = fork_mm(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(2),
            Asid::new(2),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        assert!(child.is_zygote_child);
        assert!(!child.is_zygote);
        let (grandchild, _) = fork_mm(
            &mut child,
            &mut f.ptps,
            &mut f.phys,
            Pid::new(3),
            Asid::new(3),
            ForkPtePolicy::Stock,
            Domain::USER,
        )
        .unwrap();
        assert!(grandchild.is_zygote_child);
    }
}
