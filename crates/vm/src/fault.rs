//! The page-fault handler: demand paging, COW, and write-enable.
//!
//! This is the stock Linux path. A soft (minor) fault finds its page
//! already in memory — for Android's zygote-preloaded shared code that
//! is the overwhelmingly common case, since the zygote warmed the page
//! cache at boot — and only has to populate the PTE. The paper
//! measures such a fault at ≈2.25µs/2,700 cycles on the Nexus 7 and
//! eliminates most of them by making PTEs populated in a *shared* PTP
//! visible to every sharer.

use sat_mmu::{HwPte, L1Entry, Mapper, PtpStore, SwPte};
use sat_phys::{FrameKind, PhysMem};
use sat_types::{AccessType, Domain, PageSize, Perms, SatError, SatResult, VirtAddr};

use crate::mm::Mm;
use crate::vma::{Backing, Vma};

/// How a fault was resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Resolved without I/O (page already resident); a *soft* fault.
    Minor,
    /// Required a simulated disk read; a *hard* fault.
    Major,
    /// Copy-on-write: a private copy of the page was made.
    Cow,
    /// Write to a write-protected PTE resolved by re-enabling write
    /// (MAP_SHARED pages and exclusively-owned anonymous pages).
    WriteEnable,
    /// The PTE was already present and sufficient (e.g. another
    /// process sharing the PTP populated it first, or a stale TLB
    /// entry); nothing to do.
    Spurious,
}

impl FaultKind {
    /// Returns `true` if the fault required no I/O.
    pub fn is_soft(self) -> bool {
        !matches!(self, FaultKind::Major)
    }
}

/// Resolution details returned by [`handle_fault`].
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// How the fault was resolved.
    pub kind: FaultKind,
    /// A PTP had to be allocated.
    pub ptp_allocated: bool,
    /// The faulting region is file-backed (the class counted by the
    /// paper's "page faults for file-based mappings" metric).
    pub file_backed: bool,
    /// The PTE that now serves the access carries the global bit.
    pub global: bool,
    /// Resolving the fault split a 64KB large page back to 4KB PTEs
    /// (write-protect fault on a replicated descriptor); holds the
    /// group's start address so the caller can emit the demotion and
    /// flush the stale wide translation.
    pub demoted: Option<VirtAddr>,
}

/// Per-process fault-handling policy knobs, fixed by the kernel
/// configuration and the process's zygote status.
#[derive(Clone, Copy, Debug)]
pub struct FaultCtx {
    /// Create PTEs in `global`-flagged regions with the hardware
    /// global bit set (the paper's TLB sharing, Section 3.2.3).
    pub mark_global: bool,
    /// Domain for this process's user-space level-1 entries
    /// ([`Domain::ZYGOTE`] for zygote-like processes under the paper's
    /// kernel, [`Domain::USER`] otherwise).
    pub domain: Domain,
}

impl Default for FaultCtx {
    fn default() -> Self {
        FaultCtx {
            mark_global: false,
            domain: Domain::USER,
        }
    }
}

/// Handles a page fault at `va` for `access`, exactly as the stock
/// kernel would.
///
/// The caller (the `sat-core` kernel wrapper) is responsible for
/// unsharing a NEED_COPY PTP *before* calling this for a write access;
/// the stock kernel has no shared PTPs, so this path never sees one.
pub fn handle_fault(
    mm: &mut Mm,
    ptps: &mut PtpStore,
    phys: &mut PhysMem,
    va: VirtAddr,
    access: AccessType,
    ctx: FaultCtx,
) -> SatResult<FaultOutcome> {
    let vma = mm.vma_at(va).ok_or(SatError::NotMapped(va))?.clone();
    if !vma.perms.allows(access) {
        return Err(SatError::PermissionDenied(va));
    }
    let file_backed = matches!(vma.backing, Backing::File { .. });
    let page = va.page_base();
    let mut mapper = Mapper::new(&mut mm.root, ptps, phys, mm.pid);

    let outcome = match mapper.get_pte(page) {
        Some(slot) => {
            if access.is_write() && !slot.hw.perms.write() {
                let (slot, demoted) = if slot.hw.size == PageSize::Large64K {
                    // A write-protected large page can neither COW nor
                    // re-enable one 4KB page wide: split the group
                    // first, then resolve against the small PTE.
                    mapper.split_large(page);
                    let group = VirtAddr::new(page.raw() & !(PageSize::Large64K.bytes() - 1));
                    (
                        mapper.get_pte(page).expect("split preserves the slot"),
                        Some(group),
                    )
                } else {
                    (slot, None)
                };
                let mut o = resolve_write_protect_fault(&mut mapper, &vma, page, slot.hw, slot.sw)?;
                o.demoted = demoted;
                o
            } else {
                FaultOutcome {
                    kind: FaultKind::Spurious,
                    ptp_allocated: false,
                    file_backed,
                    global: slot.hw.global,
                    demoted: None,
                }
            }
        }
        None => {
            if let L1Entry::Section { perms, global, .. } = mapper.root.entry_for(page) {
                // A 1MB section already serves the access: the
                // promotion policy only builds sections from settled
                // mappings (never mid-COW), so this is a stale-TLB
                // spurious fault, not demand paging.
                debug_assert!(!access.is_write() || perms.write());
                FaultOutcome {
                    kind: FaultKind::Spurious,
                    ptp_allocated: false,
                    file_backed,
                    global,
                    demoted: None,
                }
            } else {
                resolve_not_present(&mut mapper, &vma, page, access, ctx)?
            }
        }
    };

    // Mirror the paper's software counters.
    let c = &mut mm.counters;
    c.faults_total += 1;
    if file_backed {
        c.faults_file += 1;
    }
    match outcome.kind {
        FaultKind::Minor => c.faults_soft += 1,
        FaultKind::Major => c.faults_hard += 1,
        FaultKind::Cow => {
            c.faults_soft += 1;
            c.faults_cow += 1;
        }
        FaultKind::WriteEnable => {
            c.faults_soft += 1;
            c.faults_write_enable += 1;
        }
        FaultKind::Spurious => c.faults_spurious += 1,
    }
    if outcome.ptp_allocated {
        c.ptps_allocated += 1;
    }
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::VmFault,
            mm.pid.raw(),
            mm.asid.raw(),
            sat_obs::Payload::PageFault {
                class: match outcome.kind {
                    FaultKind::Minor => sat_obs::FaultClass::Minor,
                    FaultKind::Major => sat_obs::FaultClass::Major,
                    FaultKind::Cow => sat_obs::FaultClass::Cow,
                    FaultKind::WriteEnable => sat_obs::FaultClass::WriteEnable,
                    FaultKind::Spurious => sat_obs::FaultClass::Spurious,
                },
                va: page.raw(),
                file_backed,
            },
        );
    }
    Ok(outcome)
}

/// Write to a present but write-protected PTE: COW, or re-enable.
fn resolve_write_protect_fault(
    mapper: &mut Mapper<'_>,
    vma: &Vma,
    page: VirtAddr,
    hw: HwPte,
    sw: SwPte,
) -> SatResult<FaultOutcome> {
    debug_assert!(vma.perms.write(), "checked against VMA perms already");
    let reuse = if sw.shared {
        // MAP_SHARED: the write goes straight to the shared frame.
        true
    } else {
        // Private: reuse the frame only if we are its sole mapper
        // (do_wp_page's reuse path), otherwise copy.
        !sw.file_backed && mapper.phys.mapcount(hw.pfn) == 1
    };
    if reuse {
        mapper.update_pte(page, |hw, sw| {
            hw.perms |= Perms::W;
            sw.dirty = true;
            sw.young = true;
        });
        return Ok(FaultOutcome {
            kind: FaultKind::WriteEnable,
            ptp_allocated: false,
            file_backed: sw.file_backed,
            global: hw.global,
            demoted: None,
        });
    }
    // COW: allocate a private anonymous copy. The copy is private to
    // this process, so it must not carry the global bit.
    let copy = mapper.phys.alloc(FrameKind::Anon)?;
    let new_hw = HwPte::small(copy, vma.perms, false);
    let mut new_sw = SwPte::anon(true);
    new_sw.dirty = true;
    new_sw.young = true;
    let res = mapper.set_pte(page, new_hw, new_sw, Domain::USER)?;
    debug_assert!(res.replaced);
    mapper.phys.put_page(copy); // the PTE now holds the only reference
    Ok(FaultOutcome {
        kind: FaultKind::Cow,
        ptp_allocated: res.ptp_allocated,
        file_backed: sw.file_backed,
        global: false,
        demoted: None,
    })
}

/// Not-present fault: demand paging.
fn resolve_not_present(
    mapper: &mut Mapper<'_>,
    vma: &Vma,
    page: VirtAddr,
    access: AccessType,
    ctx: FaultCtx,
) -> SatResult<FaultOutcome> {
    match vma.backing {
        Backing::File { .. } => {
            let (file, index) = vma
                .file_page_index(page)
                .expect("file backing produces an index");
            let (frame, cached) = mapper.phys.file_page(file, index)?;
            let kind = if cached {
                FaultKind::Minor
            } else {
                FaultKind::Major
            };

            if access.is_write() && !vma.shared {
                // Private file write: COW immediately into an
                // anonymous page (the file page stays clean in the
                // page cache).
                let copy = mapper.phys.alloc(FrameKind::Anon)?;
                let mut sw = SwPte::anon(true);
                sw.dirty = true;
                sw.young = true;
                let res =
                    mapper.set_pte(page, HwPte::small(copy, vma.perms, false), sw, ctx.domain)?;
                mapper.phys.put_page(copy);
                return Ok(FaultOutcome {
                    kind,
                    ptp_allocated: res.ptp_allocated,
                    file_backed: true,
                    global: false,
                    demoted: None,
                });
            }

            // Map the page-cache frame. Private writable mappings stay
            // write-protected until the first write (COW pending);
            // shared writable mappings get write access directly.
            let hw_perms = if vma.shared {
                vma.perms
            } else {
                vma.perms.without_write()
            };
            let global = ctx.mark_global && vma.global;
            let mut sw = SwPte::file(vma.perms.write(), vma.shared);
            sw.young = true;
            if access.is_write() {
                sw.dirty = true;
            }
            let res =
                mapper.set_pte(page, HwPte::small(frame, hw_perms, global), sw, ctx.domain)?;
            Ok(FaultOutcome {
                kind,
                ptp_allocated: res.ptp_allocated,
                file_backed: true,
                global,
                demoted: None,
            })
        }
        Backing::Anon => {
            // Zero-fill on demand. (The shared zero page is not
            // modeled; the frame is allocated on first touch.) A read
            // fault maps the page write-protected — as Linux's
            // zero-page mapping would be — so that populating a PTE in
            // a *shared* PTP can never hand write access to every
            // sharer; the first write re-enables or COWs.
            let frame = mapper.phys.alloc(FrameKind::Anon)?;
            let hw_perms = if access.is_write() || vma.shared {
                vma.perms
            } else {
                vma.perms.without_write()
            };
            let mut sw = SwPte::anon(vma.perms.write());
            sw.young = true;
            sw.dirty = access.is_write();
            sw.shared = vma.shared;
            let res = mapper.set_pte(page, HwPte::small(frame, hw_perms, false), sw, ctx.domain)?;
            mapper.phys.put_page(frame);
            Ok(FaultOutcome {
                kind: FaultKind::Minor,
                ptp_allocated: res.ptp_allocated,
                file_backed: false,
                global: false,
                demoted: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_phys::FileId;
    use sat_types::{Asid, Pid, RegionTag, VaRange, PAGE_SIZE};

    struct Fx {
        phys: PhysMem,
        ptps: PtpStore,
        mm: Mm,
        file: FileId,
    }

    fn fx() -> Fx {
        let mut phys = PhysMem::new(4096);
        let mm = Mm::new(&mut phys, Pid::new(1), Asid::new(1)).unwrap();
        Fx {
            phys,
            ptps: PtpStore::new(),
            mm,
            file: FileId(0),
        }
    }

    fn fault(fx: &mut Fx, va: u32, access: AccessType) -> SatResult<FaultOutcome> {
        handle_fault(
            &mut fx.mm,
            &mut fx.ptps,
            &mut fx.phys,
            VirtAddr::new(va),
            access,
            FaultCtx::default(),
        )
    }

    fn add_code_vma(fx: &mut Fx, start: u32, pages: u32) {
        let vma = Vma::file(
            VaRange::from_len(VirtAddr::new(start), pages * PAGE_SIZE),
            Perms::RX,
            fx.file,
            0,
            RegionTag::ZygoteNativeCode,
            "libfoo.so",
        );
        fx.mm.insert_vma(vma).unwrap();
    }

    fn add_anon_vma(fx: &mut Fx, start: u32, pages: u32) {
        let vma = Vma::anon(
            VaRange::from_len(VirtAddr::new(start), pages * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        );
        fx.mm.insert_vma(vma).unwrap();
    }

    #[test]
    fn unmapped_address_segfaults() {
        let mut f = fx();
        assert_eq!(
            fault(&mut f, 0x7000_0000, AccessType::Read).unwrap_err(),
            SatError::NotMapped(VirtAddr::new(0x7000_0000))
        );
    }

    #[test]
    fn permission_violation_detected() {
        let mut f = fx();
        add_code_vma(&mut f, 0x4000_0000, 1);
        assert_eq!(
            fault(&mut f, 0x4000_0000, AccessType::Write).unwrap_err(),
            SatError::PermissionDenied(VirtAddr::new(0x4000_0000))
        );
    }

    #[test]
    fn first_file_touch_is_major_then_minor_elsewhere() {
        let mut f = fx();
        add_code_vma(&mut f, 0x4000_0000, 2);
        let o = fault(&mut f, 0x4000_0123, AccessType::Execute).unwrap();
        assert_eq!(o.kind, FaultKind::Major);
        assert!(o.file_backed);
        assert!(o.ptp_allocated);
        // Re-fault on the same page in a fresh mm is minor (page
        // cache warm). Simulate by clearing the PTE.
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .clear_pte(VirtAddr::new(0x4000_0000));
        let o2 = fault(&mut f, 0x4000_0123, AccessType::Execute).unwrap();
        assert_eq!(o2.kind, FaultKind::Minor);
        assert!(!o2.ptp_allocated);
        assert_eq!(f.mm.counters.faults_file, 2);
        assert_eq!(f.mm.counters.faults_hard, 1);
        assert_eq!(f.mm.counters.faults_soft, 1);
    }

    #[test]
    fn anon_fault_allocates_frame() {
        let mut f = fx();
        add_anon_vma(&mut f, 0x0800_0000, 4);
        let before = f.phys.frames_in_use();
        let o = fault(&mut f, 0x0800_1000, AccessType::Write).unwrap();
        assert_eq!(o.kind, FaultKind::Minor);
        assert!(!o.file_backed);
        // One frame for the page, one for the PTP.
        assert_eq!(f.phys.frames_in_use(), before + 2);
        let slot = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(VirtAddr::new(0x0800_1000))
            .unwrap();
        assert!(slot.hw.perms.write());
        assert!(slot.sw.dirty);
    }

    #[test]
    fn private_file_write_cows_immediately() {
        let mut f = fx();
        let vma = Vma::file(
            VaRange::from_len(VirtAddr::new(0x5000_0000), PAGE_SIZE),
            Perms::RW,
            f.file,
            0,
            RegionTag::ZygoteNativeData,
            "libfoo.so(data)",
        );
        f.mm.insert_vma(vma).unwrap();
        let o = fault(&mut f, 0x5000_0000, AccessType::Write).unwrap();
        assert_eq!(o.kind, FaultKind::Major); // first touch read the file page
        let slot = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(VirtAddr::new(0x5000_0000))
            .unwrap();
        assert!(!slot.sw.file_backed); // the mapping is now anonymous
        assert!(slot.hw.perms.write());
    }

    #[test]
    fn private_file_read_then_write_cows_on_second_fault() {
        let mut f = fx();
        let vma = Vma::file(
            VaRange::from_len(VirtAddr::new(0x5000_0000), PAGE_SIZE),
            Perms::RW,
            f.file,
            0,
            RegionTag::ZygoteNativeData,
            "libfoo.so(data)",
        );
        f.mm.insert_vma(vma).unwrap();
        let o1 = fault(&mut f, 0x5000_0000, AccessType::Read).unwrap();
        assert_eq!(o1.kind, FaultKind::Major);
        // Mapped write-protected (COW pending).
        let slot = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(VirtAddr::new(0x5000_0000))
            .unwrap();
        assert!(!slot.hw.perms.write());
        assert!(slot.sw.writable);
        let o2 = fault(&mut f, 0x5000_0000, AccessType::Write).unwrap();
        assert_eq!(o2.kind, FaultKind::Cow);
        assert_eq!(f.mm.counters.faults_cow, 1);
    }

    #[test]
    fn exclusive_anon_write_reenables_instead_of_copying() {
        let mut f = fx();
        add_anon_vma(&mut f, 0x0800_0000, 1);
        fault(&mut f, 0x0800_0000, AccessType::Read).unwrap();
        // Write-protect it, as a fork would.
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .write_protect_range(VaRange::from_len(VirtAddr::new(0x0800_0000), PAGE_SIZE));
        let frames_before = f.phys.frames_in_use();
        let o = fault(&mut f, 0x0800_0000, AccessType::Write).unwrap();
        assert_eq!(o.kind, FaultKind::WriteEnable);
        assert_eq!(f.phys.frames_in_use(), frames_before); // no copy
    }

    #[test]
    fn shared_file_write_enables_write() {
        let mut f = fx();
        let mut vma = Vma::file(
            VaRange::from_len(VirtAddr::new(0x6000_0000), PAGE_SIZE),
            Perms::RW,
            f.file,
            5,
            RegionTag::AppData,
            "shared.dat",
        );
        vma.shared = true;
        f.mm.insert_vma(vma).unwrap();
        let o1 = fault(&mut f, 0x6000_0000, AccessType::Read).unwrap();
        assert_eq!(o1.kind, FaultKind::Major);
        // Shared mapping maps writable right away.
        let slot = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .get_pte(VirtAddr::new(0x6000_0000))
            .unwrap();
        assert!(slot.hw.perms.write());
        let o2 = fault(&mut f, 0x6000_0000, AccessType::Write).unwrap();
        assert_eq!(o2.kind, FaultKind::Spurious);
    }

    #[test]
    fn global_bit_set_only_with_ctx_and_vma_flag() {
        let mut f = fx();
        add_code_vma(&mut f, 0x4000_0000, 2);
        // VMA not marked global: no global bit even with ctx on.
        let ctx = FaultCtx {
            mark_global: true,
            domain: Domain::ZYGOTE,
        };
        let o = handle_fault(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            VirtAddr::new(0x4000_0000),
            AccessType::Execute,
            ctx,
        )
        .unwrap();
        assert!(!o.global);
        // Mark the VMA global (as the paper's zygote mmap path does).
        let mut f2 = fx();
        let mut vma = Vma::file(
            VaRange::from_len(VirtAddr::new(0x4000_0000), 2 * PAGE_SIZE),
            Perms::RX,
            f2.file,
            0,
            RegionTag::ZygoteNativeCode,
            "libfoo.so",
        );
        vma.global = true;
        f2.mm.insert_vma(vma).unwrap();
        let o2 = handle_fault(
            &mut f2.mm,
            &mut f2.ptps,
            &mut f2.phys,
            VirtAddr::new(0x4000_0000),
            AccessType::Execute,
            ctx,
        )
        .unwrap();
        assert!(o2.global);
        let slot = Mapper::new(&mut f2.mm.root, &mut f2.ptps, &mut f2.phys, f2.mm.pid)
            .get_pte(VirtAddr::new(0x4000_0000))
            .unwrap();
        assert!(slot.hw.global);
    }

    #[test]
    fn write_fault_on_protected_large_page_splits_group() {
        use crate::largepage::{mmap_large, LARGE_PAGE_BYTES};
        let mut f = fx();
        let at = VirtAddr::new(0x4000_0000);
        mmap_large(
            &mut f.mm,
            &mut f.ptps,
            &mut f.phys,
            at,
            LARGE_PAGE_BYTES,
            Perms::RW,
            sat_types::RegionTag::Heap,
            "huge",
            Domain::USER,
        )
        .unwrap();
        // Write-protect the whole group, as fork's COW arming does —
        // uniform across the sixteen replicated descriptors, so the
        // mapping legitimately stays large.
        Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid)
            .write_protect_range(VaRange::from_len(at, LARGE_PAGE_BYTES));
        // The next write cannot resolve one 4KB page wide against a
        // 64KB descriptor: the fault must demote the group first.
        let target = VirtAddr::new(at.raw() + 3 * PAGE_SIZE);
        let o = fault(&mut f, target.raw(), AccessType::Write).unwrap();
        assert_eq!(o.kind, FaultKind::WriteEnable); // sole mapper: no copy
        assert_eq!(o.demoted, Some(at));
        let m = Mapper::new(&mut f.mm.root, &mut f.ptps, &mut f.phys, f.mm.pid);
        let hit = m.get_pte(target).unwrap();
        assert_eq!(hit.hw.size, sat_types::PageSize::Small4K);
        assert!(hit.hw.perms.write());
        // The untouched neighbours are small and still protected.
        let other = m.get_pte(at).unwrap();
        assert_eq!(other.hw.size, sat_types::PageSize::Small4K);
        assert!(!other.hw.perms.write());
    }

    #[test]
    fn counters_accumulate() {
        let mut f = fx();
        add_code_vma(&mut f, 0x4000_0000, 4);
        for i in 0..4 {
            fault(&mut f, 0x4000_0000 + i * PAGE_SIZE, AccessType::Execute).unwrap();
        }
        assert_eq!(f.mm.counters.faults_total, 4);
        assert_eq!(f.mm.counters.faults_file, 4);
        assert_eq!(f.mm.counters.faults_hard, 4);
        assert_eq!(f.mm.counters.ptps_allocated, 1);
    }
}
