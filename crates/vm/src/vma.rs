//! Memory regions: the `vm_area_struct` analogue.

use std::sync::Arc;

use sat_phys::FileId;
use sat_types::{Perms, RegionTag, VaRange, VirtAddr};

/// What backs a region's pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// Anonymous (zero-fill on demand).
    Anon,
    /// File-backed: page `i` of the region maps file page
    /// `offset_pages + i`.
    File {
        /// Backing file.
        file: FileId,
        /// 4KB page offset of the region's start within the file.
        offset_pages: u32,
    },
}

/// A memory region (`vm_area_struct`).
#[derive(Clone, Debug)]
pub struct Vma {
    /// The region's address range (page-aligned).
    pub range: VaRange,
    /// Maximal access permissions of the mapping.
    pub perms: Perms,
    /// Backing store.
    pub backing: Backing,
    /// `MAP_SHARED`: writes are visible through the file, no COW.
    pub shared: bool,
    /// The paper's new `vm_area_struct` flag: this region is
    /// zygote-preloaded shared code whose PTEs should be created with
    /// the global bit, enabling TLB-entry sharing.
    pub global: bool,
    /// Excluded from PTP sharing at fork (the paper's design choice
    /// for stacks, which are written immediately after fork).
    pub dont_share_ptp: bool,
    /// Classification for analytics and sharing policy.
    pub tag: RegionTag,
    /// Human-readable name (library or mapping name), shared to make
    /// fork-time clones cheap.
    pub name: Arc<str>,
}

impl Vma {
    /// Creates an anonymous private region.
    pub fn anon(range: VaRange, perms: Perms, tag: RegionTag, name: &str) -> Vma {
        Vma {
            range,
            perms,
            backing: Backing::Anon,
            shared: false,
            global: false,
            dont_share_ptp: matches!(tag, RegionTag::Stack),
            tag,
            name: Arc::from(name),
        }
    }

    /// Creates a private file-backed region (the shape of library code
    /// and data segments).
    pub fn file(
        range: VaRange,
        perms: Perms,
        file: FileId,
        offset_pages: u32,
        tag: RegionTag,
        name: &str,
    ) -> Vma {
        Vma {
            range,
            perms,
            backing: Backing::File { file, offset_pages },
            shared: false,
            global: false,
            dont_share_ptp: false,
            tag,
            name: Arc::from(name),
        }
    }

    /// Returns the file page index backing `va`, for file regions.
    pub fn file_page_index(&self, va: VirtAddr) -> Option<(FileId, u32)> {
        match self.backing {
            Backing::File { file, offset_pages } => {
                debug_assert!(self.range.contains(va));
                let rel = (va.page_base().raw() - self.range.start.page_base().raw())
                    >> sat_types::PAGE_SHIFT;
                Some((file, offset_pages + rel))
            }
            Backing::Anon => None,
        }
    }

    /// Splits the region at `at` (page-aligned, strictly inside),
    /// truncating `self` to `[start, at)` and returning the tail
    /// `[at, end)` with adjusted file offset.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly inside the region or not
    /// page-aligned.
    pub fn split_at(&mut self, at: VirtAddr) -> Vma {
        assert!(at.is_page_aligned(), "split at unaligned address");
        assert!(
            self.range.start < at && at < self.range.end,
            "split point {at:?} outside {:?}",
            self.range
        );
        let mut tail = self.clone();
        let skipped_pages = (at.raw() - self.range.start.raw()) >> sat_types::PAGE_SHIFT;
        if let Backing::File { offset_pages, .. } = &mut tail.backing {
            *offset_pages += skipped_pages;
        }
        tail.range = VaRange::new(at, self.range.end);
        self.range = VaRange::new(self.range.start, at);
        tail
    }

    /// Returns `true` if the region is private (COW) and writable —
    /// the class of regions earlier page-table-sharing work refused to
    /// share, and the paper's mechanism handles.
    pub fn is_private_writable(&self) -> bool {
        !self.shared && self.perms.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_types::PAGE_SIZE;

    fn range(start: u32, len: u32) -> VaRange {
        VaRange::from_len(VirtAddr::new(start), len)
    }

    #[test]
    fn file_page_index_accounts_for_offset() {
        let v = Vma::file(
            range(0x4000_0000, 8 * PAGE_SIZE),
            Perms::RX,
            FileId(3),
            10,
            RegionTag::ZygoteNativeCode,
            "libc.so",
        );
        assert_eq!(
            v.file_page_index(VirtAddr::new(0x4000_0000)),
            Some((FileId(3), 10))
        );
        assert_eq!(
            v.file_page_index(VirtAddr::new(0x4000_3ABC)),
            Some((FileId(3), 13))
        );
    }

    #[test]
    fn split_adjusts_ranges_and_offsets() {
        let mut v = Vma::file(
            range(0x4000_0000, 8 * PAGE_SIZE),
            Perms::RX,
            FileId(3),
            10,
            RegionTag::ZygoteNativeCode,
            "libc.so",
        );
        let tail = v.split_at(VirtAddr::new(0x4000_3000));
        assert_eq!(v.range, range(0x4000_0000, 3 * PAGE_SIZE));
        assert_eq!(tail.range, range(0x4000_3000, 5 * PAGE_SIZE));
        assert_eq!(
            tail.file_page_index(VirtAddr::new(0x4000_3000)),
            Some((FileId(3), 13))
        );
    }

    #[test]
    fn stack_regions_opt_out_of_ptp_sharing() {
        let v = Vma::anon(
            range(0xBF00_0000, 16 * PAGE_SIZE),
            Perms::RW,
            RegionTag::Stack,
            "[stack]",
        );
        assert!(v.dont_share_ptp);
        let h = Vma::anon(
            range(0x0800_0000, 16 * PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        );
        assert!(!h.dont_share_ptp);
    }

    #[test]
    fn private_writable_classification() {
        let mut v = Vma::anon(
            range(0x1000_0000, PAGE_SIZE),
            Perms::RW,
            RegionTag::Heap,
            "[heap]",
        );
        assert!(v.is_private_writable());
        v.shared = true;
        assert!(!v.is_private_writable());
        let code = Vma::file(
            range(0x2000_0000, PAGE_SIZE),
            Perms::RX,
            FileId(0),
            0,
            RegionTag::OtherLibCode,
            "lib.so",
        );
        assert!(!code.is_private_writable());
    }
}
