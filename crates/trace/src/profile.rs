//! Per-application footprint generation.
//!
//! Every library has a deterministic *popularity order* over its code
//! pages (a seeded shuffle in two-page clusters, so that the popular
//! pages are scattered across the library's address range — the
//! function-level locality that makes 64KB regions sparse, Figure 4).
//! An application touches a prefix of each used library's popularity
//! order plus a sprinkling of app-specific pages beyond it; prefixes
//! shared across applications produce the Table 2 overlap, while the
//! scatter keeps footprints distinct.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sat_types::RegionTag;

use crate::apps::AppSpec;
use crate::catalog::{Catalog, LibId};

/// A code page: a library page or a private application page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CodePage {
    /// Page `page` of library `lib`'s code segment.
    Lib {
        /// The library.
        lib: LibId,
        /// 4KB page index within the code segment.
        page: u32,
    },
    /// Page `page` of the application's private code.
    Private {
        /// 4KB page index within the private code image.
        page: u32,
    },
}

/// Fraction of an application's per-library quota drawn from the
/// library's popularity prefix (shared with other applications).
const PREFIX_FRACTION: f64 = 0.75;

/// Pages per popularity cluster. Clusters model function-group
/// locality: consecutive pages that are hot (or cold) together.
/// Calibrated so that the Figure 4 sparsity comes out like the
/// paper's: touched pages cover roughly 6 of the 16 4KB pages in an
/// occupied 64KB region, giving a ≈2.6× memory blow-up for 64KB
/// pages.
const POPULARITY_CLUSTER: u32 = 6;

/// Returns the popularity order of a library's code pages:
/// a deterministic permutation of `0..pages` in six-page clusters,
/// seeded only by the library id (so all applications agree on it).
pub fn popularity_order(lib: LibId, pages: u32) -> Vec<u32> {
    let mut clusters: Vec<u32> = (0..pages.div_ceil(POPULARITY_CLUSTER)).collect();
    let mut rng = SmallRng::seed_from_u64(0x9E3779B9_7F4A7C15 ^ (lib.0 as u64));
    clusters.shuffle(&mut rng);
    let mut order = Vec::with_capacity(pages as usize);
    for c in clusters {
        for page in (c * POPULARITY_CLUSTER)..((c + 1) * POPULARITY_CLUSTER).min(pages) {
            order.push(page);
        }
    }
    order
}

/// The pages the zygote itself touches during preload: the most
/// popular `quota` pages of each preloaded library, with quotas
/// proportional to size and scaled to `total_pages` overall (the
/// paper's zygote had populated ≈5,900 instruction PTEs of shared
/// code before any fork).
pub fn zygote_preload_pages(catalog: &Catalog, total_pages: u32) -> Vec<CodePage> {
    let libs = catalog.zygote_preloaded();
    let weights: Vec<f64> = libs
        .iter()
        .map(|id| (catalog.lib(*id).code_pages as f64).powf(0.85))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut out = Vec::new();
    for (id, w) in libs.iter().zip(&weights) {
        let lib = catalog.lib(*id);
        let quota = ((total_pages as f64) * w / wsum).round() as u32;
        let quota = quota.min(lib.code_pages);
        let order = popularity_order(*id, lib.code_pages);
        for &page in order.iter().take(quota as usize) {
            out.push(CodePage::Lib { lib: *id, page });
        }
    }
    out
}

/// An application's generated instruction footprint.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// The application's spec.
    pub spec: AppSpec,
    /// Index of the application in the suite (selects its
    /// app-specific libraries in the catalog).
    pub app_index: usize,
    /// Every code page the application fetches from, with its
    /// category.
    pub pages: Vec<(CodePage, RegionTag)>,
}

impl AppProfile {
    /// Generates the footprint for application `app_index` of the
    /// suite.
    pub fn generate(catalog: &Catalog, spec: &AppSpec, app_index: usize, seed: u64) -> AppProfile {
        let mut rng = SmallRng::seed_from_u64(seed ^ ((app_index as u64) << 32));
        let n = spec.footprint_pages as f64;
        let mut pages: Vec<(CodePage, RegionTag)> = Vec::new();

        // Category targets in pages.
        let native_target = (n * spec.page_shares[0]).round() as u32;
        let java_target = (n * spec.page_shares[1]).round() as u32;
        let proc_target = ((n * spec.page_shares[2]).round() as u32).max(2);
        let other_target = (n * spec.page_shares[3]).round() as u32;
        let private_target = (n * spec.page_shares[4]).round() as u32;

        // Zygote-preloaded native libraries: a seeded subset.
        let mut native: Vec<LibId> = catalog.zygote_native.clone();
        native.shuffle(&mut rng);
        native.truncate(spec.native_libs_used);
        select_from_libs(
            catalog,
            &native,
            native_target,
            RegionTag::ZygoteNativeCode,
            &mut rng,
            &mut pages,
        );

        // Java .oat libraries: all of them.
        select_from_libs(
            catalog,
            &catalog.zygote_java,
            java_target,
            RegionTag::ZygoteJavaCode,
            &mut rng,
            &mut pages,
        );

        // app_process.
        select_from_libs(
            catalog,
            std::slice::from_ref(&catalog.app_process),
            proc_target,
            RegionTag::ZygoteBinaryCode,
            &mut rng,
            &mut pages,
        );

        // Other (platform + app-specific) libraries.
        let others = &catalog.other_per_app[app_index];
        select_from_libs(
            catalog,
            others,
            other_target,
            RegionTag::OtherLibCode,
            &mut rng,
            &mut pages,
        );

        // Private code: a contiguous-ish set of the app's own pages.
        for page in 0..private_target {
            pages.push((CodePage::Private { page }, RegionTag::AppCode));
        }

        AppProfile {
            spec: spec.clone(),
            app_index,
            pages,
        }
    }

    /// Total pages in the footprint.
    pub fn footprint(&self) -> usize {
        self.pages.len()
    }

    /// Pages belonging to zygote-preloaded shared code.
    pub fn zygote_preloaded_pages(&self) -> BTreeSet<CodePage> {
        self.pages
            .iter()
            .filter(|(_, tag)| tag.is_zygote_preloaded_code())
            .map(|(p, _)| *p)
            .collect()
    }

    /// Pages belonging to any shared code (zygote-preloaded plus other
    /// dynamic libraries).
    pub fn shared_code_pages(&self) -> BTreeSet<CodePage> {
        self.pages
            .iter()
            .filter(|(_, tag)| tag.is_shared_code())
            .map(|(p, _)| *p)
            .collect()
    }

    /// Pages per category, in the Figure 2 order (zygote native,
    /// zygote Java, app_process, other libs, private).
    pub fn category_counts(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for (_, tag) in &self.pages {
            let idx = match tag {
                RegionTag::ZygoteNativeCode => 0,
                RegionTag::ZygoteJavaCode => 1,
                RegionTag::ZygoteBinaryCode => 2,
                RegionTag::OtherLibCode => 3,
                _ => 4,
            };
            counts[idx] += 1;
        }
        counts
    }
}

/// Selects ~`target` pages across `libs`, weighting big libraries
/// more, taking each library's popularity prefix plus an app-specific
/// scatter.
fn select_from_libs(
    catalog: &Catalog,
    libs: &[LibId],
    target: u32,
    tag: RegionTag,
    rng: &mut SmallRng,
    out: &mut Vec<(CodePage, RegionTag)>,
) {
    if libs.is_empty() || target == 0 {
        return;
    }
    let weights: Vec<f64> = libs
        .iter()
        .map(|id| (catalog.lib(*id).code_pages as f64).powf(0.85))
        .collect();
    let wsum: f64 = weights.iter().sum();
    for (id, w) in libs.iter().zip(&weights) {
        let lib = catalog.lib(*id);
        let quota = (((target as f64) * w / wsum).round() as u32).min(lib.code_pages);
        if quota == 0 {
            continue;
        }
        let order = popularity_order(*id, lib.code_pages);
        let prefix = ((quota as f64) * PREFIX_FRACTION).round() as usize;
        let mut chosen: BTreeSet<u32> = order.iter().take(prefix).copied().collect();
        // App-specific scatter from beyond the prefix, taken in whole
        // popularity clusters so the Figure 4 sparsity stays
        // function-grained rather than page-grained.
        let tail: Vec<u32> = order.iter().skip(prefix).copied().collect();
        let mut tail_clusters: Vec<&[u32]> = tail.chunks(POPULARITY_CLUSTER as usize).collect();
        tail_clusters.shuffle(rng);
        for cluster in tail_clusters {
            if chosen.len() >= quota as usize {
                break;
            }
            chosen.extend(cluster.iter().copied());
        }
        // Defensive: if the tail was too small, top up from anywhere.
        while chosen.len() < quota as usize && chosen.len() < lib.code_pages as usize {
            chosen.insert(rng.gen_range(0..lib.code_pages));
        }
        out.extend(
            chosen
                .into_iter()
                .map(|page| (CodePage::Lib { lib: *id, page }, tag)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app_specs;

    fn suite() -> (Catalog, Vec<AppProfile>) {
        let catalog = Catalog::generate(1, 11);
        let specs = app_specs();
        let profiles = specs
            .iter()
            .enumerate()
            .map(|(i, s)| AppProfile::generate(&catalog, s, i, 7))
            .collect();
        (catalog, profiles)
    }

    #[test]
    fn generation_is_deterministic() {
        let catalog = Catalog::generate(1, 11);
        let spec = &app_specs()[0];
        let a = AppProfile::generate(&catalog, spec, 0, 7);
        let b = AppProfile::generate(&catalog, spec, 0, 7);
        assert_eq!(a.pages, b.pages);
    }

    #[test]
    fn footprints_near_targets() {
        let (_c, profiles) = suite();
        for p in &profiles {
            let target = p.spec.footprint_pages as f64;
            let actual = p.footprint() as f64;
            assert!(
                (actual - target).abs() / target < 0.15,
                "{}: target {target}, actual {actual}",
                p.spec.name
            );
        }
    }

    #[test]
    fn category_shares_near_spec() {
        let (_c, profiles) = suite();
        for p in &profiles {
            let counts = p.category_counts();
            let total: usize = counts.iter().sum();
            // Zygote-native share within 6 points of spec.
            let native = counts[0] as f64 / total as f64;
            assert!(
                (native - p.spec.page_shares[0]).abs() < 0.06,
                "{}: native share {native} vs {}",
                p.spec.name,
                p.spec.page_shares[0]
            );
        }
    }

    #[test]
    fn popularity_order_is_permutation() {
        let order = popularity_order(LibId(3), 101);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..101).collect::<Vec<_>>());
        // And it scatters: the first 10 pages of the order are not the
        // first 10 pages of the library.
        assert_ne!(&order[..10], &(0..10).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn pairwise_overlap_in_paper_range() {
        // Table 2: zygote-preloaded intersection averages 37.9% of a
        // footprint; all-shared-code, 45.7%.
        let (_c, profiles) = suite();
        let mut zyg_sum = 0.0;
        let mut all_sum = 0.0;
        let mut count = 0;
        for a in &profiles {
            let a_zyg = a.zygote_preloaded_pages();
            let a_all = a.shared_code_pages();
            for b in &profiles {
                if a.spec.name == b.spec.name {
                    continue;
                }
                let b_zyg = b.zygote_preloaded_pages();
                let b_all = b.shared_code_pages();
                zyg_sum += a_zyg.intersection(&b_zyg).count() as f64 / a.footprint() as f64;
                all_sum += a_all.intersection(&b_all).count() as f64 / a.footprint() as f64;
                count += 1;
            }
        }
        let zyg_avg = zyg_sum / count as f64;
        let all_avg = all_sum / count as f64;
        assert!(
            (0.28..=0.48).contains(&zyg_avg),
            "zygote-preloaded overlap {zyg_avg:.3} outside plausible range"
        );
        assert!(
            all_avg > zyg_avg + 0.03,
            "all-shared overlap {all_avg:.3} should exceed preloaded {zyg_avg:.3}"
        );
        assert!(all_avg < 0.60, "all-shared overlap {all_avg:.3} too high");
    }

    #[test]
    fn zygote_preload_size_matches_paper() {
        let catalog = Catalog::generate(1, 11);
        let preload = zygote_preload_pages(&catalog, 5900);
        let n = preload.len() as f64;
        assert!((n - 5900.0).abs() / 5900.0 < 0.1, "preload {n} pages");
        // All pages belong to preloaded libraries.
        let preloaded: BTreeSet<LibId> = catalog.zygote_preloaded().into_iter().collect();
        for p in &preload {
            match p {
                CodePage::Lib { lib, .. } => assert!(preloaded.contains(lib)),
                CodePage::Private { .. } => panic!("zygote preload has no private pages"),
            }
        }
    }

    #[test]
    fn apps_inherit_most_preload_from_zygote() {
        // Table 3's cold-start measurement is 640..2,300 instruction
        // PTEs inherited *at launch*. What this test measures is the
        // whole-footprint overlap with the preload — an upper bound on
        // the launch number, since it counts every preloaded page the
        // app will ever fetch, not just those populated by launch
        // time. So the window is wider than Table 3's: substantial
        // inheritance for every app (lower bound), but never a
        // dominant share of the ~5,900-page preload (upper bound),
        // which would mean footprints had stopped being distinct.
        let (catalog, profiles) = suite();
        let preload: BTreeSet<CodePage> =
            zygote_preload_pages(&catalog, 5900).into_iter().collect();
        for p in &profiles {
            let app_pages = p.zygote_preloaded_pages();
            let inherited = app_pages.intersection(&preload).count();
            assert!(
                (300..=4000).contains(&inherited),
                "{}: inherited {inherited} preloaded PTEs",
                p.spec.name
            );
        }
    }
}
