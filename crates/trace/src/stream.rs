//! Instruction-fetch streams: the dynamic access sequence driving the
//! TLB/cache simulation.
//!
//! Fetches are generated at cache-line granularity with sequential
//! runs (straight-line execution within a page) punctuated by jumps to
//! a page drawn from the application's footprint — category chosen by
//! the Figure 3 fetch mix, page chosen with a popularity skew. A
//! configurable fraction of fetches executes kernel code (Table 1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sat_types::RegionTag;

use crate::profile::{AppProfile, CodePage};

/// Cache lines per 4KB page (32-byte lines).
pub const LINES_PER_PAGE: u32 = 4096 / 32;

/// One instruction fetch (one cache line's worth of instructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchEvent {
    /// A user-space fetch from `page`, at line `line` (0..128).
    User {
        /// The code page.
        page: CodePage,
        /// Cache-line index within the page.
        line: u32,
    },
    /// A kernel-space fetch from kernel-text page `page`.
    Kernel {
        /// Page index within the kernel text.
        page: u32,
        /// Cache-line index within the page.
        line: u32,
    },
}

/// Number of kernel-text pages the kernel fetch mix draws from.
pub const KERNEL_TEXT_PAGES: u32 = 256;

/// A deterministic generator of [`FetchEvent`]s for one application.
pub struct FetchStream {
    rng: SmallRng,
    // Per category: the candidate pages, most popular first.
    by_category: [Vec<CodePage>; 5],
    fetch_shares: [f64; 5],
    kernel_fraction: f64,
    // Current sequential run.
    current: Option<FetchEvent>,
    run_left: u32,
}

impl FetchStream {
    /// Creates a stream for `profile`, seeded by `seed`.
    pub fn new(profile: &AppProfile, seed: u64) -> FetchStream {
        let mut by_category: [Vec<CodePage>; 5] = Default::default();
        for (page, tag) in &profile.pages {
            let idx = match tag {
                RegionTag::ZygoteNativeCode => 0,
                RegionTag::ZygoteJavaCode => 1,
                RegionTag::ZygoteBinaryCode => 2,
                RegionTag::OtherLibCode => 3,
                _ => 4,
            };
            by_category[idx].push(*page);
        }
        FetchStream {
            rng: SmallRng::seed_from_u64(seed ^ 0x0FE7_C57A_EA11),
            by_category,
            fetch_shares: profile.spec.fetch_shares,
            kernel_fraction: profile.spec.kernel_fetch_pct / 100.0,
            current: None,
            run_left: 0,
        }
    }

    /// Produces the next fetch event.
    pub fn next_event(&mut self) -> FetchEvent {
        if self.run_left > 0 {
            if let Some(ev) = self.current {
                self.run_left -= 1;
                let next = advance(ev);
                self.current = Some(next);
                return next;
            }
        }
        // Start a new run: kernel or user?
        let ev = if self.rng.gen_bool(self.kernel_fraction) {
            FetchEvent::Kernel {
                page: skewed_index(&mut self.rng, KERNEL_TEXT_PAGES as usize) as u32,
                line: self.rng.gen_range(0..LINES_PER_PAGE),
            }
        } else {
            // Pick a category by the fetch mix, then a page with a
            // popularity skew (quadratic toward the front).
            let mut r = self.rng.gen_range(0.0..1.0f64);
            let mut cat = 4;
            for (i, share) in self.fetch_shares.iter().enumerate() {
                if r < *share {
                    cat = i;
                    break;
                }
                r -= share;
            }
            // Fall back to the first non-empty category.
            let pages = if self.by_category[cat].is_empty() {
                self.by_category
                    .iter()
                    .find(|v| !v.is_empty())
                    .expect("profile has pages")
            } else {
                &self.by_category[cat]
            };
            FetchEvent::User {
                page: pages[skewed_index(&mut self.rng, pages.len())],
                line: self.rng.gen_range(0..LINES_PER_PAGE),
            }
        };
        // Sequential run of 4..64 lines.
        self.run_left = self.rng.gen_range(4..64);
        self.current = Some(ev);
        ev
    }

    /// Generates `n` events.
    pub fn take(&mut self, n: usize) -> Vec<FetchEvent> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

/// Advances an event one cache line, wrapping within the page.
fn advance(ev: FetchEvent) -> FetchEvent {
    match ev {
        FetchEvent::User { page, line } => FetchEvent::User {
            page,
            line: (line + 1) % LINES_PER_PAGE,
        },
        FetchEvent::Kernel { page, line } => FetchEvent::Kernel {
            page,
            line: (line + 1) % LINES_PER_PAGE,
        },
    }
}

/// Samples an index in `[0, len)` skewed quadratically toward 0.
fn skewed_index(rng: &mut SmallRng, len: usize) -> usize {
    let r: f64 = rng.gen_range(0.0..1.0);
    ((r * r * len as f64) as usize).min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app_specs;
    use crate::catalog::Catalog;
    use crate::profile::AppProfile;

    fn stream_for(app: usize) -> (AppProfile, FetchStream) {
        let catalog = Catalog::generate(1, 11);
        let spec = &app_specs()[app];
        let profile = AppProfile::generate(&catalog, spec, app, 7);
        let stream = FetchStream::new(&profile, 99);
        (profile, stream)
    }

    #[test]
    fn stream_is_deterministic() {
        let (_p, mut a) = stream_for(0);
        let (_p2, mut b) = stream_for(0);
        assert_eq!(a.take(1000), b.take(1000));
    }

    #[test]
    fn kernel_fraction_tracks_table1() {
        // WPS runs 52.9% of fetches in kernel mode.
        let (_p, mut s) = stream_for(10);
        let events = s.take(200_000);
        let kernel = events
            .iter()
            .filter(|e| matches!(e, FetchEvent::Kernel { .. }))
            .count() as f64
            / events.len() as f64;
        assert!((kernel - 0.529).abs() < 0.05, "kernel fraction {kernel:.3}");
    }

    #[test]
    fn user_fetches_stay_within_footprint() {
        let (p, mut s) = stream_for(2);
        let footprint: std::collections::BTreeSet<CodePage> =
            p.pages.iter().map(|(pg, _)| *pg).collect();
        for e in s.take(20_000) {
            if let FetchEvent::User { page, .. } = e {
                assert!(footprint.contains(&page));
            }
        }
    }

    #[test]
    fn runs_are_sequential() {
        let (_p, mut s) = stream_for(0);
        let events = s.take(1000);
        let mut sequential = 0;
        for w in events.windows(2) {
            if let (
                FetchEvent::User { page: p1, line: l1 },
                FetchEvent::User { page: p2, line: l2 },
            ) = (w[0], w[1])
            {
                if p1 == p2 && l2 == (l1 + 1) % LINES_PER_PAGE {
                    sequential += 1;
                }
            }
        }
        // The bulk of fetches continue the current run.
        assert!(sequential > 500, "only {sequential} sequential pairs");
    }

    #[test]
    fn shared_code_dominates_fetches() {
        let (_p, mut s) = stream_for(0);
        let events = s.take(100_000);
        let mut user = 0;
        let mut private = 0;
        for e in &events {
            if let FetchEvent::User { page, .. } = e {
                user += 1;
                if matches!(page, CodePage::Private { .. }) {
                    private += 1;
                }
            }
        }
        let private_share = private as f64 / user as f64;
        assert!(private_share < 0.06, "private share {private_share:.3}");
    }
}
