//! The Figure 4 sparsity analysis: can 64KB large pages serve
//! zygote-preloaded shared code without wasting memory?
//!
//! The paper maps every accessed instruction to its 4KB and 64KB
//! pages and, for each 64KB page, counts the 4KB pages inside it that
//! were never touched. The answer: in 60% of the 64KB pages more than
//! nine 4KB pages are untouched, so 64KB pages would cost ≈2.6× the
//! physical memory of 4KB pages (≈16MB vs ≈6MB per application, 36MB
//! vs 18MB for the union) — large pages are a poor fit, motivating
//! shared translation instead.

use std::collections::{BTreeMap, BTreeSet};

use sat_types::PAGES_PER_64K;

use crate::catalog::LibId;
use crate::profile::CodePage;

/// Result of the sparsity analysis over one page set.
#[derive(Clone, Debug)]
pub struct SparsityReport {
    /// `histogram[u]` = number of 64KB pages with exactly `u`
    /// untouched 4KB pages (u in 0..=15).
    pub histogram: [u64; PAGES_PER_64K],
    /// Touched 4KB pages (= memory needed with 4KB pages, in pages).
    pub pages_4k: u64,
    /// Occupied 64KB pages (memory with 64KB pages = this × 64KB).
    pub chunks_64k: u64,
}

impl SparsityReport {
    /// Builds the report from a set of touched library code pages.
    /// Private pages are ignored (the analysis targets
    /// zygote-preloaded shared code).
    pub fn from_pages<'a>(pages: impl IntoIterator<Item = &'a CodePage>) -> SparsityReport {
        // Group touched pages by (library, 64KB chunk index).
        let mut chunks: BTreeMap<(LibId, u32), BTreeSet<u32>> = BTreeMap::new();
        let mut pages_4k = 0u64;
        for page in pages {
            if let CodePage::Lib { lib, page } = page {
                chunks
                    .entry((*lib, page / PAGES_PER_64K as u32))
                    .or_default()
                    .insert(page % PAGES_PER_64K as u32);
                pages_4k += 1;
            }
        }
        let mut histogram = [0u64; PAGES_PER_64K];
        for touched in chunks.values() {
            let untouched = PAGES_PER_64K - touched.len();
            histogram[untouched] += 1;
        }
        SparsityReport {
            histogram,
            pages_4k,
            chunks_64k: chunks.len() as u64,
        }
    }

    /// Cumulative distribution: fraction of 64KB pages with **at
    /// least** `u` untouched 4KB pages.
    pub fn cdf_at_least(&self, u: usize) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let tail: u64 = self.histogram[u..].iter().sum();
        tail as f64 / total as f64
    }

    /// Memory required with 4KB pages, in bytes.
    pub fn bytes_4k(&self) -> u64 {
        self.pages_4k * 4096
    }

    /// Memory required with 64KB pages, in bytes.
    pub fn bytes_64k(&self) -> u64 {
        self.chunks_64k * 64 * 1024
    }

    /// The 64KB-over-4KB memory blow-up factor (the paper reports
    /// ≈2.6× on average across applications).
    pub fn blowup(&self) -> f64 {
        if self.pages_4k == 0 {
            return 1.0;
        }
        self.bytes_64k() as f64 / self.bytes_4k() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app_specs;
    use crate::catalog::Catalog;
    use crate::profile::AppProfile;

    #[test]
    fn dense_chunk_has_zero_untouched() {
        let lib = LibId(0);
        let pages: Vec<CodePage> = (0..16).map(|page| CodePage::Lib { lib, page }).collect();
        let r = SparsityReport::from_pages(&pages);
        assert_eq!(r.histogram[0], 1);
        assert_eq!(r.chunks_64k, 1);
        assert_eq!(r.pages_4k, 16);
        assert!((r.blowup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_page_chunk_has_15_untouched() {
        let pages = [CodePage::Lib {
            lib: LibId(0),
            page: 5,
        }];
        let r = SparsityReport::from_pages(&pages);
        assert_eq!(r.histogram[15], 1);
        assert!((r.blowup() - 16.0).abs() < 1e-9);
        assert!((r.cdf_at_least(9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn private_pages_are_ignored() {
        let pages = [
            CodePage::Private { page: 1 },
            CodePage::Lib {
                lib: LibId(1),
                page: 0,
            },
        ];
        let r = SparsityReport::from_pages(&pages);
        assert_eq!(r.pages_4k, 1);
    }

    #[test]
    fn app_footprints_are_sparse_like_the_paper() {
        // Figure 4: for ~60% of 64KB pages, more than 9 of the 16 4KB
        // pages are untouched; blow-up ≈2.6×.
        let catalog = Catalog::generate(1, 11);
        let specs = app_specs();
        let mut blowups = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let p = AppProfile::generate(&catalog, spec, i, 7);
            let zyg = p.zygote_preloaded_pages();
            let r = SparsityReport::from_pages(zyg.iter());
            assert!(
                r.cdf_at_least(10) > 0.35,
                "{}: only {:.2} of chunks have >9 untouched",
                spec.name,
                r.cdf_at_least(10)
            );
            blowups.push(r.blowup());
        }
        let avg: f64 = blowups.iter().sum::<f64>() / blowups.len() as f64;
        assert!(
            (1.8..=4.5).contains(&avg),
            "average 64KB blow-up {avg:.2} outside the paper's ballpark"
        );
    }

    #[test]
    fn union_is_denser_than_individual_apps() {
        // The paper: even the union wastes >7 of 16 pages most of the
        // time, but it is denser than any single application.
        let catalog = Catalog::generate(1, 11);
        let specs = app_specs();
        let profiles: Vec<AppProfile> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| AppProfile::generate(&catalog, s, i, 7))
            .collect();
        let union: BTreeSet<CodePage> = profiles
            .iter()
            .flat_map(|p| p.zygote_preloaded_pages())
            .collect();
        let union_report = SparsityReport::from_pages(union.iter());
        let first = SparsityReport::from_pages(profiles[0].zygote_preloaded_pages().iter());
        assert!(union_report.blowup() < first.blowup());
        assert!(union_report.cdf_at_least(8) > 0.3);
    }
}
