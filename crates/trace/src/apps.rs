//! The eleven applications of the paper's evaluation (Section 4.1.2).
//!
//! Per-application parameters are taken from the paper where
//! published (the Table 1 kernel-mode fetch fractions) and otherwise
//! set to plausible values consistent with the paper's aggregate
//! statistics (footprint sizes in the Figure 2 range, category shares
//! averaging to the Figure 2/3 breakdowns).

/// Names of the eleven application scenarios (Chrome is three
/// processes and appears as three entries, as in the paper's plots).
pub const APP_NAMES: [&str; 11] = [
    "Angrybirds",
    "Adobe Reader",
    "Android Browser",
    "Chrome",
    "Chrome Sandbox",
    "Chrome Privilege",
    "Email",
    "Google Calendar",
    "MX Player",
    "Laya Music Player",
    "WPS",
];

/// Per-application workload parameters.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// Target user-space instruction footprint in 4KB pages.
    pub footprint_pages: u32,
    /// Percent of instruction fetches executed in kernel mode
    /// (Table 1).
    pub kernel_fetch_pct: f64,
    /// Fractions of the instruction-page footprint per category
    /// (zygote native .so / zygote Java .oat / app_process / other
    /// libs / private), summing to 1 (Figure 2).
    pub page_shares: [f64; 5],
    /// Fractions of user-space instruction *fetches* per the same
    /// categories (Figure 3).
    pub fetch_shares: [f64; 5],
    /// Number of zygote-preloaded native libraries the application
    /// invokes (the paper saw up to 62 of the 88).
    pub native_libs_used: usize,
}

/// Returns the specs for all eleven applications.
pub fn app_specs() -> Vec<AppSpec> {
    // Category order: [zygote native, zygote java, app_process,
    // other libs, private]. Suite averages target the paper's
    // 35.4/32.4/0.1/24.9/7.2 page shares and 61/11/./26/2 fetch
    // shares.
    let specs = [
        // name, footprint, kernel%, page shares, fetch shares, libs
        (
            "Angrybirds",
            4060,
            7.8,
            [0.33, 0.31, 0.001, 0.28, 0.079],
            [0.58, 0.12, 0.001, 0.28, 0.019],
            56,
        ),
        (
            "Adobe Reader",
            5320,
            6.7,
            [0.34, 0.30, 0.001, 0.29, 0.069],
            [0.55, 0.10, 0.001, 0.32, 0.029],
            58,
        ),
        (
            "Android Browser",
            5180,
            14.2,
            [0.40, 0.33, 0.001, 0.20, 0.069],
            [0.66, 0.12, 0.001, 0.20, 0.019],
            62,
        ),
        (
            "Chrome",
            4340,
            14.7,
            [0.30, 0.28, 0.001, 0.33, 0.089],
            [0.52, 0.08, 0.001, 0.37, 0.029],
            52,
        ),
        (
            "Chrome Sandbox",
            2310,
            11.2,
            [0.36, 0.33, 0.001, 0.24, 0.069],
            [0.62, 0.11, 0.001, 0.25, 0.019],
            44,
        ),
        (
            "Chrome Privilege",
            2520,
            72.1,
            [0.35, 0.34, 0.001, 0.24, 0.069],
            [0.63, 0.12, 0.001, 0.23, 0.019],
            46,
        ),
        (
            "Email",
            1890,
            13.0,
            [0.38, 0.36, 0.001, 0.19, 0.069],
            [0.67, 0.13, 0.001, 0.18, 0.019],
            40,
        ),
        (
            "Google Calendar",
            4480,
            3.8,
            [0.37, 0.35, 0.001, 0.21, 0.069],
            [0.65, 0.12, 0.001, 0.21, 0.019],
            54,
        ),
        (
            "MX Player",
            6790,
            40.7,
            [0.36, 0.32, 0.001, 0.26, 0.059],
            [0.60, 0.10, 0.001, 0.28, 0.019],
            62,
        ),
        (
            "Laya Music Player",
            5110,
            17.4,
            [0.35, 0.33, 0.001, 0.25, 0.069],
            [0.62, 0.11, 0.001, 0.25, 0.019],
            58,
        ),
        (
            "WPS",
            4410,
            52.9,
            [0.35, 0.32, 0.001, 0.25, 0.079],
            [0.61, 0.10, 0.001, 0.26, 0.029],
            56,
        ),
    ];
    specs
        .into_iter()
        .map(
            |(
                name,
                footprint_pages,
                kernel_fetch_pct,
                page_shares,
                fetch_shares,
                native_libs_used,
            )| AppSpec {
                name,
                footprint_pages,
                kernel_fetch_pct,
                page_shares,
                fetch_shares,
                native_libs_used,
            },
        )
        .collect()
}

impl AppSpec {
    /// Fraction of the footprint that is *shared code* (everything but
    /// private).
    pub fn shared_code_page_share(&self) -> f64 {
        1.0 - self.page_shares[4]
    }

    /// Fraction of user-space fetches that hit shared code.
    pub fn shared_code_fetch_share(&self) -> f64 {
        1.0 - self.fetch_shares[4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_apps_with_consistent_shares() {
        let specs = app_specs();
        assert_eq!(specs.len(), 11);
        for s in &specs {
            let page_sum: f64 = s.page_shares.iter().sum();
            let fetch_sum: f64 = s.fetch_shares.iter().sum();
            assert!(
                (page_sum - 1.0).abs() < 0.01,
                "{}: page shares {page_sum}",
                s.name
            );
            assert!(
                (fetch_sum - 1.0).abs() < 0.01,
                "{}: fetch shares {fetch_sum}",
                s.name
            );
            assert!(s.native_libs_used <= 62);
        }
    }

    #[test]
    fn suite_averages_match_paper_aggregates() {
        let specs = app_specs();
        let n = specs.len() as f64;
        // Figure 2: shared code ≈ 92.8% of the instruction pages.
        let shared_pages: f64 = specs
            .iter()
            .map(AppSpec::shared_code_page_share)
            .sum::<f64>()
            / n;
        assert!(
            (shared_pages - 0.928).abs() < 0.02,
            "shared pages {shared_pages}"
        );
        // Figure 3: shared code ≈ 98% of the fetches.
        let shared_fetches: f64 = specs
            .iter()
            .map(AppSpec::shared_code_fetch_share)
            .sum::<f64>()
            / n;
        assert!(
            (shared_fetches - 0.98).abs() < 0.02,
            "shared fetches {shared_fetches}"
        );
        // Table 1: kernel fractions reproduced verbatim.
        let chrome_priv = &specs[5];
        assert_eq!(chrome_priv.kernel_fetch_pct, 72.1);
    }

    #[test]
    fn most_apps_fetch_mostly_from_user_space() {
        // Table 1's headline: >80% user-space fetches except Chrome
        // Privilege, MX Player and WPS.
        let heavy_io = ["Chrome Privilege", "MX Player", "WPS"];
        for s in app_specs() {
            if heavy_io.contains(&s.name) {
                assert!(s.kernel_fetch_pct > 20.0);
            } else {
                assert!(s.kernel_fetch_pct < 20.0, "{}", s.name);
            }
        }
    }
}
