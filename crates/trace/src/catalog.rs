//! The library catalog: the shared-code universe applications draw
//! from.
//!
//! On the paper's Nexus 7, the zygote preloads 88 dynamic shared
//! libraries (4KB to ≈35MB of code each), the ART ahead-of-time
//! compiled Java libraries (`boot.oat` and friends), and the
//! `app_process` program binary. Each application additionally links
//! a handful of platform- or application-specific libraries that the
//! zygote does not preload.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sat_types::RegionTag;

/// Index of a library in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LibId(pub u32);

/// One library (or program binary) in the catalog.
#[derive(Clone, Debug)]
pub struct LibrarySpec {
    /// Name, e.g. `libandroid_runtime.so`.
    pub name: String,
    /// Code-segment size in 4KB pages.
    pub code_pages: u32,
    /// Data-segment size in 4KB pages.
    pub data_pages: u32,
    /// Code classification ([`RegionTag::ZygoteNativeCode`],
    /// [`RegionTag::ZygoteJavaCode`], [`RegionTag::ZygoteBinaryCode`],
    /// or [`RegionTag::OtherLibCode`]).
    pub category: RegionTag,
}

impl LibrarySpec {
    /// The matching data-segment tag for this library's category.
    pub fn data_tag(&self) -> RegionTag {
        match self.category {
            RegionTag::ZygoteNativeCode => RegionTag::ZygoteNativeData,
            RegionTag::ZygoteJavaCode => RegionTag::ZygoteJavaData,
            RegionTag::ZygoteBinaryCode => RegionTag::ZygoteBinaryData,
            _ => RegionTag::OtherLibData,
        }
    }
}

/// Number of zygote-preloaded dynamic shared libraries (the paper's
/// measured count on the Nexus 7).
pub const ZYGOTE_NATIVE_LIBS: usize = 88;

/// Number of ART-compiled Java shared-library images.
pub const ZYGOTE_JAVA_LIBS: usize = 4;

/// Per-application count of non-preloaded dynamic shared libraries
/// (platform-specific plus application-specific; the paper saw 0-19
/// extra libraries per application).
pub const OTHER_LIBS_PER_APP: usize = 12;

/// The whole shared-code universe.
pub struct Catalog {
    /// All libraries; zygote-preloaded first, then per-app extras.
    pub libs: Vec<LibrarySpec>,
    /// Ids of the zygote-preloaded native libraries.
    pub zygote_native: Vec<LibId>,
    /// Ids of the zygote-preloaded Java (.oat) libraries.
    pub zygote_java: Vec<LibId>,
    /// Id of the `app_process` binary.
    pub app_process: LibId,
    /// Per application: ids of its non-preloaded libraries.
    pub other_per_app: Vec<Vec<LibId>>,
}

impl Catalog {
    /// Builds the catalog deterministically from `seed` for `apps`
    /// applications.
    pub fn generate(seed: u64, apps: usize) -> Catalog {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut libs = Vec::new();
        let mut zygote_native = Vec::new();

        // Zygote-preloaded native libraries: sizes follow the paper's
        // "4KB to around 35MB", heavily skewed small with a few large
        // ones (libwebviewchromium-class).
        for i in 0..ZYGOTE_NATIVE_LIBS {
            let code_pages = sample_lib_pages(&mut rng);
            let data_pages = (code_pages / 8).clamp(1, 64);
            zygote_native.push(LibId(libs.len() as u32));
            libs.push(LibrarySpec {
                name: format!("libzygote{i:02}.so"),
                code_pages,
                data_pages,
                category: RegionTag::ZygoteNativeCode,
            });
        }

        // ART-compiled Java libraries: a few large .oat images
        // (boot.oat is ~25MB of code on KitKat/ART devices).
        let mut zygote_java = Vec::new();
        for (i, pages) in [6400u32, 1200, 600, 300]
            .iter()
            .take(ZYGOTE_JAVA_LIBS)
            .enumerate()
        {
            zygote_java.push(LibId(libs.len() as u32));
            libs.push(LibrarySpec {
                name: format!("boot{i}.oat"),
                code_pages: *pages,
                data_pages: pages / 10,
                category: RegionTag::ZygoteJavaCode,
            });
        }

        // app_process: a tiny program binary (~20KB of code).
        let app_process = LibId(libs.len() as u32);
        libs.push(LibrarySpec {
            name: "app_process".to_string(),
            code_pages: 5,
            data_pages: 2,
            category: RegionTag::ZygoteBinaryCode,
        });

        // Per-app non-preloaded libraries. A prefix of each app's list
        // is drawn from a shared platform pool (graphics drivers etc.)
        // so the "all shared code" overlap of Table 2 exceeds the
        // zygote-preloaded overlap.
        let mut platform_pool = Vec::new();
        for i in 0..8 {
            let code_pages = sample_lib_pages(&mut rng);
            platform_pool.push(LibId(libs.len() as u32));
            libs.push(LibrarySpec {
                name: format!("libplatform{i}.so"),
                code_pages,
                data_pages: (code_pages / 8).max(1),
                category: RegionTag::OtherLibCode,
            });
        }
        let mut other_per_app = Vec::new();
        for app in 0..apps {
            let mut ids: Vec<LibId> = platform_pool.clone();
            for i in platform_pool.len()..OTHER_LIBS_PER_APP {
                let code_pages = sample_lib_pages(&mut rng);
                ids.push(LibId(libs.len() as u32));
                libs.push(LibrarySpec {
                    name: format!("libapp{app}_{i}.so"),
                    code_pages,
                    data_pages: (code_pages / 8).max(1),
                    category: RegionTag::OtherLibCode,
                });
            }
            other_per_app.push(ids);
        }

        Catalog {
            libs,
            zygote_native,
            zygote_java,
            app_process,
            other_per_app,
        }
    }

    /// Borrows a library's spec.
    pub fn lib(&self, id: LibId) -> &LibrarySpec {
        &self.libs[id.0 as usize]
    }

    /// Total code pages across the zygote-preloaded shared code.
    pub fn zygote_preloaded_code_pages(&self) -> u32 {
        self.zygote_native
            .iter()
            .chain(self.zygote_java.iter())
            .chain(std::iter::once(&self.app_process))
            .map(|id| self.lib(*id).code_pages)
            .sum()
    }

    /// All zygote-preloaded library ids (native + Java + binary).
    pub fn zygote_preloaded(&self) -> Vec<LibId> {
        self.zygote_native
            .iter()
            .chain(self.zygote_java.iter())
            .chain(std::iter::once(&self.app_process))
            .copied()
            .collect()
    }
}

/// Samples a library code size in pages: log-uniform between 1 page
/// (4KB) and ~2,000 pages (8MB), with a 3% chance of a huge
/// (webview-class, up to ~35MB) library.
fn sample_lib_pages(rng: &mut SmallRng) -> u32 {
    if rng.gen_bool(0.03) {
        rng.gen_range(4000..9000)
    } else {
        // log-uniform in [1, 2048].
        let exp = rng.gen_range(0.0..11.0f64);
        (2.0f64.powf(exp) as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic() {
        let a = Catalog::generate(42, 3);
        let b = Catalog::generate(42, 3);
        assert_eq!(a.libs.len(), b.libs.len());
        for (x, y) in a.libs.iter().zip(&b.libs) {
            assert_eq!(x.code_pages, y.code_pages);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn catalog_structure_matches_paper_counts() {
        let c = Catalog::generate(1, 11);
        assert_eq!(c.zygote_native.len(), 88);
        assert_eq!(c.other_per_app.len(), 11);
        for ids in &c.other_per_app {
            assert_eq!(ids.len(), OTHER_LIBS_PER_APP);
        }
        // app_process is tiny and classified as the zygote binary.
        assert_eq!(c.lib(c.app_process).category, RegionTag::ZygoteBinaryCode);
        assert!(c.lib(c.app_process).code_pages < 16);
    }

    #[test]
    fn zygote_preloaded_code_is_tens_of_mb() {
        // The paper's union of *accessed* preloaded code is ~30MB; the
        // mapped total must comfortably exceed that.
        let c = Catalog::generate(1, 11);
        let pages = c.zygote_preloaded_code_pages();
        let mb = pages as f64 * 4096.0 / (1024.0 * 1024.0);
        assert!(mb > 40.0, "preloaded code too small: {mb:.1}MB");
        assert!(mb < 400.0, "preloaded code absurdly large: {mb:.1}MB");
    }

    #[test]
    fn library_sizes_span_paper_range() {
        let c = Catalog::generate(7, 11);
        let min = c.libs.iter().map(|l| l.code_pages).min().unwrap();
        let max = c.libs.iter().map(|l| l.code_pages).max().unwrap();
        assert_eq!(min, 1); // 4KB
        assert!(max >= 2000, "largest lib only {max} pages");
    }

    #[test]
    fn data_tags_match_categories() {
        let c = Catalog::generate(1, 2);
        assert_eq!(
            c.lib(c.zygote_native[0]).data_tag(),
            RegionTag::ZygoteNativeData
        );
        assert_eq!(
            c.lib(c.zygote_java[0]).data_tag(),
            RegionTag::ZygoteJavaData
        );
        assert_eq!(c.lib(c.app_process).data_tag(), RegionTag::ZygoteBinaryData);
        assert_eq!(
            c.lib(c.other_per_app[0][0]).data_tag(),
            RegionTag::OtherLibData
        );
    }
}
