//! Footprint analytics: the data behind Table 1, Table 2, Figure 2,
//! and Figure 3.

use std::collections::BTreeSet;

use crate::profile::AppProfile;

/// Per-category shares, in the paper's Figure 2/3 order: zygote
/// native `.so`, zygote Java `.oat`, `app_process`, other dynamic
/// libraries, private code.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CategoryShares {
    /// Zygote-preloaded dynamic shared libraries.
    pub zygote_native: f64,
    /// Zygote-preloaded Java (ART .oat) libraries.
    pub zygote_java: f64,
    /// The zygote's `app_process` program binary.
    pub app_process: f64,
    /// Non-preloaded (application- and platform-specific) libraries.
    pub other_libs: f64,
    /// Application-private code.
    pub private: f64,
}

impl CategoryShares {
    /// Builds shares from raw per-category counts.
    pub fn from_counts(counts: [usize; 5]) -> CategoryShares {
        let total: usize = counts.iter().sum();
        if total == 0 {
            return CategoryShares::default();
        }
        let f = |c: usize| c as f64 / total as f64;
        CategoryShares {
            zygote_native: f(counts[0]),
            zygote_java: f(counts[1]),
            app_process: f(counts[2]),
            other_libs: f(counts[3]),
            private: f(counts[4]),
        }
    }

    /// The shared-code share (everything but private).
    pub fn shared(&self) -> f64 {
        1.0 - self.private
    }

    /// The zygote-preloaded share (native + Java + app_process).
    pub fn zygote_preloaded(&self) -> f64 {
        self.zygote_native + self.zygote_java + self.app_process
    }
}

/// Figure 2: for each application, the breakdown of its instruction
/// *pages* by category. Returns `(name, counts, shares)`.
pub fn page_breakdown(profiles: &[AppProfile]) -> Vec<(String, [usize; 5], CategoryShares)> {
    profiles
        .iter()
        .map(|p| {
            let counts = p.category_counts();
            (
                p.spec.name.to_string(),
                counts,
                CategoryShares::from_counts(counts),
            )
        })
        .collect()
}

/// Figure 3: for each application, the breakdown of its user-space
/// instruction *fetches* by category (from the calibrated fetch mix).
pub fn fetch_breakdown(profiles: &[AppProfile]) -> Vec<(String, CategoryShares)> {
    profiles
        .iter()
        .map(|p| {
            let s = p.spec.fetch_shares;
            (
                p.spec.name.to_string(),
                CategoryShares {
                    zygote_native: s[0],
                    zygote_java: s[1],
                    app_process: s[2],
                    other_libs: s[3],
                    private: s[4],
                },
            )
        })
        .collect()
}

/// Table 2: the pairwise footprint-intersection matrix.
///
/// `matrix[i][j]` is the percentage of application `i`'s instruction
/// footprint that intersects application `j`'s, as
/// `(zygote_preloaded_pct, all_shared_pct)`; the diagonal is
/// `(100, 100)`.
pub struct OverlapMatrix {
    /// Application names, indexing the matrix.
    pub names: Vec<String>,
    /// The percentage pairs.
    pub matrix: Vec<Vec<(f64, f64)>>,
}

impl OverlapMatrix {
    /// Suite averages over the off-diagonal cells, as
    /// `(zygote_preloaded_pct, all_shared_pct)` — the paper reports
    /// 37.9% and 45.7%.
    pub fn averages(&self) -> (f64, f64) {
        let mut zyg = 0.0;
        let mut all = 0.0;
        let mut n = 0;
        for (i, row) in self.matrix.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if i != j {
                    zyg += cell.0;
                    all += cell.1;
                    n += 1;
                }
            }
        }
        (zyg / n as f64, all / n as f64)
    }
}

/// Computes the Table 2 overlap matrix.
pub fn pairwise_overlap(profiles: &[AppProfile]) -> OverlapMatrix {
    let zyg_sets: Vec<BTreeSet<_>> = profiles
        .iter()
        .map(|p| p.zygote_preloaded_pages())
        .collect();
    let all_sets: Vec<BTreeSet<_>> = profiles.iter().map(|p| p.shared_code_pages()).collect();
    let mut matrix = Vec::new();
    for i in 0..profiles.len() {
        let mut row = Vec::new();
        let footprint = profiles[i].footprint() as f64;
        for j in 0..profiles.len() {
            if i == j {
                row.push((100.0, 100.0));
                continue;
            }
            let zyg = zyg_sets[i].intersection(&zyg_sets[j]).count() as f64;
            let all = all_sets[i].intersection(&all_sets[j]).count() as f64;
            row.push((100.0 * zyg / footprint, 100.0 * all / footprint));
        }
        matrix.push(row);
    }
    OverlapMatrix {
        names: profiles.iter().map(|p| p.spec.name.to_string()).collect(),
        matrix,
    }
}

/// Table 1: `(name, user_pct, kernel_pct)` of instruction fetches.
pub fn user_kernel_split(profiles: &[AppProfile]) -> Vec<(String, f64, f64)> {
    profiles
        .iter()
        .map(|p| {
            let k = p.spec.kernel_fetch_pct;
            (p.spec.name.to_string(), 100.0 - k, k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app_specs;
    use crate::catalog::Catalog;

    fn profiles() -> Vec<AppProfile> {
        let catalog = Catalog::generate(1, 11);
        app_specs()
            .iter()
            .enumerate()
            .map(|(i, s)| AppProfile::generate(&catalog, s, i, 7))
            .collect()
    }

    #[test]
    fn page_breakdown_shares_sum_to_one() {
        for (_, _, shares) in page_breakdown(&profiles()) {
            let sum = shares.zygote_native
                + shares.zygote_java
                + shares.app_process
                + shares.other_libs
                + shares.private;
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn suite_page_share_average_near_93pct_shared() {
        let rows = page_breakdown(&profiles());
        let avg: f64 = rows.iter().map(|(_, _, s)| s.shared()).sum::<f64>() / rows.len() as f64;
        assert!((avg - 0.928).abs() < 0.04, "avg shared page share {avg:.3}");
    }

    #[test]
    fn fetch_breakdown_average_near_98pct_shared() {
        let rows = fetch_breakdown(&profiles());
        let avg: f64 = rows.iter().map(|(_, s)| s.shared()).sum::<f64>() / rows.len() as f64;
        assert!(
            (avg - 0.98).abs() < 0.015,
            "avg shared fetch share {avg:.3}"
        );
    }

    #[test]
    fn overlap_matrix_diagonal_and_symmetry_properties() {
        let m = pairwise_overlap(&profiles());
        assert_eq!(m.matrix.len(), 11);
        for (i, row) in m.matrix.iter().enumerate() {
            assert_eq!(row[i], (100.0, 100.0));
            for (j, &(zyg, all)) in row.iter().enumerate() {
                assert!(zyg <= all + 1e-9, "[{i}][{j}] zygote {zyg} > all {all}");
                assert!((0.0..=100.0).contains(&zyg));
            }
        }
        let (zyg_avg, all_avg) = m.averages();
        assert!((28.0..=48.0).contains(&zyg_avg), "zygote avg {zyg_avg:.1}%");
        assert!(
            all_avg > zyg_avg,
            "all {all_avg:.1}% vs zygote {zyg_avg:.1}%"
        );
    }

    #[test]
    fn user_kernel_split_reproduces_table1() {
        let rows = user_kernel_split(&profiles());
        let angry = rows.iter().find(|(n, _, _)| n == "Angrybirds").unwrap();
        assert!((angry.1 - 92.2).abs() < 1e-9);
        assert!((angry.2 - 7.8).abs() < 1e-9);
    }
}
