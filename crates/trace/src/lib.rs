//! Synthetic Android application workloads and instruction-footprint
//! analytics.
//!
//! The paper's motivation study (Section 2.3) characterizes eleven
//! popular Android applications via page-fault traces, `perf`
//! sampling, and `/proc/pid/smaps`. The raw traces are not available,
//! so this crate generates *synthetic* per-application instruction
//! footprints and fetch streams that are calibrated to the paper's
//! published aggregates:
//!
//! - ≈93% of user-space instruction pages and ≈98% of fetches come
//!   from shared code (Figures 2 and 3),
//! - the pairwise intersection of two applications' footprints is
//!   ≈38% of a footprint for zygote-preloaded shared code and ≈46%
//!   including all shared code (Table 2),
//! - access within a 64KB region is sparse: in most 64KB chunks more
//!   than 9 of the 16 4KB pages are untouched (Figure 4),
//! - kernel-mode fetch fractions per application as in Table 1.
//!
//! Generation is fully deterministic given a seed, so every experiment
//! is reproducible.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod apps;
pub mod catalog;
pub mod profile;
pub mod sparsity;
pub mod stream;

pub use analysis::{fetch_breakdown, page_breakdown, pairwise_overlap, CategoryShares};
pub use apps::{app_specs, AppSpec, APP_NAMES};
pub use catalog::{Catalog, LibId, LibrarySpec};
pub use profile::{popularity_order, zygote_preload_pages, AppProfile, CodePage};
pub use sparsity::SparsityReport;
pub use stream::{FetchEvent, FetchStream};
