//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 2 - 1)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push('\n');
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a count with thousands separators.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Five-number summary for box-and-whisker output.
#[derive(Clone, Copy, Debug, Default)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNum {
    /// Computes the summary of `xs` (must be non-empty).
    pub fn of(xs: &[f64]) -> FiveNum {
        assert!(!xs.is_empty());
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        FiveNum {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
    }

    #[test]
    fn count_inserts_separators() {
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(42), "42");
        assert_eq!(count(1_000), "1,000");
    }

    #[test]
    fn fivenum_of_known_data() {
        let f = FiveNum::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
    }
}
