//! Application-launch experiments: Figures 7, 8, and 9
//! (Section 4.2.2).

use sat_android::{launch_app, AndroidSystem, LaunchOptions, LaunchReport, LibraryLayout};
use sat_core::{KernelConfig, NoTlb};
use sat_types::SatResult;

use crate::motivation::SEED;
use crate::render::{count, FiveNum, Table};
use crate::zygotebench::boot_opts;
use crate::Scale;

/// The four launch configurations of Figures 7-9.
pub fn launch_configs() -> [(&'static str, KernelConfig, LibraryLayout); 4] {
    [
        (
            "Stock Android",
            KernelConfig::stock(),
            LibraryLayout::Original,
        ),
        (
            "Shared PTP & TLB",
            KernelConfig::shared_ptp_tlb(),
            LibraryLayout::Original,
        ),
        (
            "Stock Android-2MB",
            KernelConfig::stock(),
            LibraryLayout::Aligned2Mb,
        ),
        (
            "Shared PTP & TLB-2MB",
            KernelConfig::shared_ptp_tlb(),
            LibraryLayout::Aligned2Mb,
        ),
    ]
}

/// Launch-workload sizing per scale.
pub fn launch_opts(scale: Scale) -> LaunchOptions {
    match scale {
        Scale::Paper => LaunchOptions::paper(),
        Scale::Quick => LaunchOptions::small(),
    }
}

/// Runs `n` sequential launches (each exits before the next) under
/// one configuration and returns the reports.
pub fn run_launches(
    config: KernelConfig,
    layout: LibraryLayout,
    scale: Scale,
    n: usize,
) -> SatResult<Vec<LaunchReport>> {
    let mut sys = AndroidSystem::boot(config, layout, SEED, 11, boot_opts(scale))?;
    let opts = launch_opts(scale);
    let mut reports = Vec::new();
    for _ in 0..n {
        let (pid, report) = launch_app(&mut sys, &opts)?;
        reports.push(report);
        sys.machine.syscall(|k, _tlb| k.exit(pid, &mut NoTlb))?;
    }
    Ok(reports)
}

/// Number of launch repetitions per configuration.
pub fn repetitions(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 20,
        Scale::Quick => 4,
    }
}

/// Figures 7-9 plus the per-launch fork cost, in one sweep. The four
/// configuration cells are independent (each boots its own system
/// from [`SEED`]) and run on the worker pool; results are reassembled
/// in grid order, so the rendered tables are byte-identical to a
/// serial run.
pub fn launch_experiment(scale: Scale) -> SatResult<String> {
    let n = repetitions(scale);
    let jobs: Vec<_> = launch_configs()
        .into_iter()
        .map(|(label, config, layout)| move || (label, run_launches(config, layout, scale, n)))
        .collect();
    let mut all: Vec<(&str, Vec<LaunchReport>)> = Vec::new();
    for (label, reports) in crate::pool::run_cells(jobs) {
        all.push((label, reports?));
    }

    let mut out = String::new();

    // Figure 7: execution-time box-and-whisker.
    let mut t7 = Table::new(
        "Figure 7: application-launch execution time (cycles)",
        &["Config", "min", "Q1", "median", "Q3", "max"],
    );
    for (label, reports) in &all {
        let xs: Vec<f64> = reports.iter().map(|r| r.window_cycles as f64).collect();
        let f = FiveNum::of(&xs);
        t7.row(vec![
            label.to_string(),
            count(f.min as u64),
            count(f.q1 as u64),
            count(f.median as u64),
            count(f.q3 as u64),
            count(f.max as u64),
        ]);
    }
    out.push_str(&t7.render());
    let median = |i: usize| {
        let xs: Vec<f64> = all[i].1.iter().map(|r| r.window_cycles as f64).collect();
        FiveNum::of(&xs).median
    };
    out.push_str(&format!(
        "Launch speed-up vs stock: shared {:.1}% (paper: 7%), shared-2MB {:.1}% (paper: 10%)\n\n",
        100.0 * (1.0 - median(1) / median(0)),
        100.0 * (1.0 - median(3) / median(0)),
    ));

    // Figure 8: L1-I stall cycles.
    let mut t8 = Table::new(
        "Figure 8: application-launch L1 instruction-cache stall cycles",
        &["Config", "min", "Q1", "median", "Q3", "max"],
    );
    for (label, reports) in &all {
        let xs: Vec<f64> = reports
            .iter()
            .map(|r| r.icache_stall_cycles as f64)
            .collect();
        let f = FiveNum::of(&xs);
        t8.row(vec![
            label.to_string(),
            count(f.min as u64),
            count(f.q1 as u64),
            count(f.median as u64),
            count(f.q3 as u64),
            count(f.max as u64),
        ]);
    }
    out.push_str(&t8.render());

    // Figure 9: PTPs allocated and file-backed faults, normalized to
    // stock with the original alignment (median launch).
    let med = |xs: Vec<f64>| FiveNum::of(&xs).median;
    let base_ptps = med(all[0].1.iter().map(|r| r.ptps_allocated as f64).collect());
    let base_faults = med(all[0].1.iter().map(|r| r.file_faults as f64).collect());
    let mut t9 = Table::new(
        "Figure 9: PTPs allocated and file-backed page faults during launch",
        &[
            "Config",
            "# PTPs",
            "PTPs vs stock",
            "# file faults",
            "faults vs stock",
        ],
    );
    for (label, reports) in &all {
        let ptps = med(reports.iter().map(|r| r.ptps_allocated as f64).collect());
        let faults = med(reports.iter().map(|r| r.file_faults as f64).collect());
        t9.row(vec![
            label.to_string(),
            format!("{ptps:.0}"),
            format!("{:.0}%", 100.0 * ptps / base_ptps),
            format!("{faults:.0}"),
            format!("{:.0}%", 100.0 * faults / base_faults),
        ]);
    }
    out.push_str(&t9.render());
    out.push_str(
        "Paper: stock 72 PTPs / 1,900 faults; shared 23 PTPs / 110 faults; shared-2MB 28 PTPs / 93 faults\n\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_experiment_quick_shapes() {
        let out = launch_experiment(Scale::Quick).unwrap();
        assert!(out.contains("Figure 7"));
        assert!(out.contains("Figure 8"));
        assert!(out.contains("Figure 9"));
        // Shared beats stock on launch time.
        let speedup: f64 = out
            .split("shared ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(speedup > 0.0, "no launch speedup: {speedup}");
    }

    #[test]
    fn shared_launch_eliminates_faults_quick() {
        let stock = run_launches(
            KernelConfig::stock(),
            LibraryLayout::Original,
            Scale::Quick,
            2,
        )
        .unwrap();
        let shared = run_launches(
            KernelConfig::shared_ptp_tlb(),
            LibraryLayout::Original,
            Scale::Quick,
            2,
        )
        .unwrap();
        assert!(shared[0].file_faults * 2 < stock[0].file_faults);
        // Stock launches are repeatable: every child refaults.
        assert_eq!(stock[0].file_faults, stock[1].file_faults);
        // Shared launches improve further as PTEs accumulate.
        assert!(shared[1].file_faults <= shared[0].file_faults);
    }
}
