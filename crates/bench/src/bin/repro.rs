//! `repro` — regenerates every table and figure of "Shared Address
//! Translation Revisited" (EuroSys '16) on the simulated stack.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick] [--trace <path>] [--out <path>]
//! repro serve [--mem-frames N] [--quick] [--trace <path>] [--out <path>]
//! repro check [--trace <path>] [--out <path>]
//! repro report [--trace] <trace.json> [--format text|json|folded] [--experiment <name>]
//! repro timeline [--trace] <trace.json> [--window N] [--experiment <name>]
//! repro tails [--trace] <trace.json> [--top K] [--experiment <name>]
//! repro diff <old.json> <new.json> [--threshold-pct N]
//!
//! experiments:
//!   table1 fig2 fig3 table2 fig4   motivation study (Section 2.3)
//!   latfault                       soft-fault latency anchor
//!   table3 table4                  zygote fork (Section 4.2.1)
//!   fig7 fig8 fig9 launch          application launch (Section 4.2.2)
//!   fig10 fig11 fig12 steady       steady state (Section 4.2.3)
//!   fig13                          binder IPC (Section 4.2.4)
//!   ablations                      Section 3.1.3/3.2.3 design choices
//!   scalability grouped extensions
//!   reach                          translation reach: 4KB vs shared vs 64KB promotion
//!   timeshare                      N apps timesharing 4 cores (sat-sched)
//!   fleet                          fork/timeshare/reap fleets to 4096 apps
//!   serve                          bursty request serving, stock vs shared
//!   pressure                       serving under a frame budget, stock vs shared
//!   all                            everything, in paper order
//! ```
//!
//! `--quick` runs scaled-down workloads (seconds instead of minutes).
//!
//! `--mem-frames N` (serve only) installs a physical-frame budget of N
//! frames before the servers fork: allocations that cross the low
//! watermark trigger LRU reclaim, which evicts file page-cache frames
//! and tears the PTEs mapping them — through the shared PTP when one
//! exists — so the working set refaults under pressure. The serve
//! table grows reclaim columns and the snapshot records carry
//! `"mem_frames"` and `"reclaim"` totals. The `pressure` experiment
//! runs the whole stock-vs-shared grid over budgets it derives itself
//! (`inf`/`tight`/`starved` from the uncapped peak footprint).
//!
//! `--trace <path>` installs the `sat-obs` recorder for the whole run
//! and writes a Chrome trace-event JSON (load it at `chrome://tracing`
//! or <https://ui.perfetto.dev>). Ring capacity comes from
//! `SAT_OBS_RING` (default 65,536 events; overflow drops the oldest
//! and is reported, never silent).
//!
//! `--out <path>` (or `SAT_BENCH_OUT`) overrides where the metrics
//! snapshot is written; the default remains `BENCH_repro.json` in the
//! working directory.
//!
//! `repro check` re-opens both artifacts and validates them: schema
//! string, non-empty event stream, subsystem coverage, per-thread
//! tick monotonicity, and span begin/end pairing. The verify smoke
//! test runs it after `repro all --quick --trace`.
//!
//! `repro report` re-ingests a trace and renders the analytics rollup
//! (Figure-6 unshare causes, flush attribution, span latencies with
//! p50/p95/p99, footprint overlap, gauge series) as text tables,
//! JSON, or folded flamegraph stacks. `repro timeline` rebuckets the
//! trace into tick windows — per-window fork/fault/flush-IPI rates
//! plus per-gauge min/max/high-water — and `--experiment <name>`
//! slices either verb to one experiment's `exp.<name>` bracket.
//! `repro tails` rebuilds per-request critical paths from the
//! `Flow*`/`CycleCharge` stream of a traced serve run and prints the
//! `--top K` slowest requests with their blame broken down by cause
//! (exact on lossless traces: every request's charges sum to its
//! wall). `repro diff` compares two snapshots and exits non-zero on
//! above-threshold regressions (wall time, counters, and gauge
//! high-water marks) — the perf gate the verify skill runs against
//! the committed `BENCH_baseline.json`.
//!
//! Independent sweep cells fan out across cores (see
//! `sat_bench::pool`); `SAT_BENCH_THREADS=1` forces a serial run. The
//! rendered tables are byte-identical either way (trace timing fields
//! are wall-clock and naturally vary).
//!
//! Besides the tables on stdout, every run writes the
//! `sat-bench/repro-v7` snapshot: per-experiment wall time, scale,
//! worker count, sweep cell counts, per-experiment observability
//! counter deltas, gauge high-water marks, serve latency percentiles,
//! frame budgets and reclaim totals for budgeted cells, translation
//! totals (promotions/demotions/splits/waste) for the reach cells,
//! and the run-wide counter/histogram/gauge registry.

use std::process::ExitCode;
use std::time::Instant;

use sat_bench::{
    ablation, extensions, fleetbench, ipcbench, launchbench, motivation, pool, pressurebench,
    reachbench, servebench, snapshot, steadybench, timesharebench, zygotebench, Scale,
};
use sat_obs::json::Json;
use sat_obs::report::ReportFormat;

/// One timed experiment: name, wall time, how many independent cells
/// its sweep fanned out to the worker pool (1 = no fan-out), and the
/// observability counters it moved (empty without `--trace`).
struct Record {
    name: String,
    wall_ms: f64,
    cells: usize,
    events: std::collections::BTreeMap<String, u64>,
    /// Per-gauge high-water marks over the experiment's sampling
    /// window (empty without `--trace`).
    gauges: std::collections::BTreeMap<String, u64>,
    /// Request-latency percentiles in simulated cycles (serve cells
    /// only) — deterministic, so `repro diff` gates the p99 tail.
    latency: Option<(u64, u64, u64)>,
    /// Frame budget the cell ran under (budgeted serve / pressure
    /// cells only).
    mem_frames: Option<u64>,
    /// Reclaim totals of a budgeted cell — deterministic, so `repro
    /// diff` gates eviction volume like any counter.
    reclaim: Option<ReclaimTotals>,
    /// Promotion/demotion totals of a reach cell — deterministic, so
    /// `repro diff` gates the large-page machinery like any counter.
    translation: Option<reachbench::TranslationTotals>,
}

/// What a budgeted cell's reclaim did, for the snapshot.
struct ReclaimTotals {
    passes: u64,
    pages: u64,
    pte_tears: u64,
    shared_tears: u64,
    refaults: u64,
}

impl ReclaimTotals {
    fn of(r: &sat_sched::ServeReport) -> ReclaimTotals {
        ReclaimTotals {
            passes: r.reclaims,
            pages: r.reclaimed_pages,
            pte_tears: r.reclaim_pte_tears,
            shared_tears: r.reclaim_shared_tears,
            refaults: r.refaults,
        }
    }
}

/// Parsed command line.
struct Cli {
    cmd: String,
    /// Positionals after the command (`repro diff <old> <new>`).
    rest: Vec<String>,
    scale: Scale,
    trace: Option<String>,
    out: String,
    format: ReportFormat,
    threshold_pct: f64,
    /// Timeline window width in ticks (0 = auto: span/20).
    window: u64,
    /// Restrict report/timeline to one experiment's bracket.
    experiment: Option<String>,
    /// Slowest requests `repro tails` breaks down.
    top: usize,
    /// Physical-frame budget for `repro serve` (None = uncapped).
    mem_frames: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cmd: Option<String> = None;
    let mut rest = Vec::new();
    let mut trace = None;
    let mut out = None;
    let mut quick = false;
    let mut format = ReportFormat::Text;
    let mut threshold_pct = 25.0;
    let mut window = 0u64;
    let mut experiment = None;
    let mut top = 10usize;
    let mut mem_frames = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--trace" => {
                i += 1;
                let path = args.get(i).ok_or("--trace requires a path argument")?;
                trace = Some(path.clone());
            }
            "--out" => {
                i += 1;
                let path = args.get(i).ok_or("--out requires a path argument")?;
                out = Some(path.clone());
            }
            "--format" => {
                i += 1;
                let name = args.get(i).ok_or("--format requires text|json|folded")?;
                format = ReportFormat::parse(name)
                    .ok_or_else(|| format!("unknown format '{name}' (want text|json|folded)"))?;
            }
            "--threshold-pct" => {
                i += 1;
                let raw = args.get(i).ok_or("--threshold-pct requires a number")?;
                threshold_pct = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t >= 0.0)
                    .ok_or_else(|| format!("bad --threshold-pct '{raw}' (want a number >= 0)"))?;
            }
            "--window" => {
                i += 1;
                let raw = args.get(i).ok_or("--window requires a tick count")?;
                window = raw
                    .parse::<u64>()
                    .ok()
                    .filter(|w| *w >= 1)
                    .ok_or_else(|| format!("bad --window '{raw}' (want an integer >= 1)"))?;
            }
            "--experiment" => {
                i += 1;
                let name = args.get(i).ok_or("--experiment requires a name")?;
                experiment = Some(name.clone());
            }
            "--top" => {
                i += 1;
                let raw = args.get(i).ok_or("--top requires a count")?;
                top = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|t| *t >= 1)
                    .ok_or_else(|| format!("bad --top '{raw}' (want an integer >= 1)"))?;
            }
            "--mem-frames" => {
                i += 1;
                let raw = args.get(i).ok_or("--mem-frames requires a frame count")?;
                mem_frames =
                    Some(raw.parse::<u64>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("bad --mem-frames '{raw}' (want an integer >= 1)")
                    })?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag '{flag}' (known: --quick --trace --out --format \
                     --threshold-pct --window --experiment --top --mem-frames)"
                ));
            }
            positional => {
                if cmd.is_none() {
                    cmd = Some(positional.to_string());
                } else {
                    rest.push(positional.to_string());
                }
            }
        }
        i += 1;
    }
    let cmd = cmd.unwrap_or_else(|| "all".to_string());
    match cmd.as_str() {
        "diff" if rest.len() != 2 => {
            return Err(format!(
                "diff takes exactly two snapshots (got {}): repro diff <old.json> <new.json>",
                rest.len()
            ));
        }
        "diff" | "report" | "timeline" | "tails" => {}
        _ if !rest.is_empty() => {
            return Err(format!(
                "unexpected argument '{}' (command already given: '{cmd}')",
                rest[0]
            ));
        }
        _ => {}
    }
    if mem_frames.is_some() && cmd != "serve" {
        return Err(format!(
            "--mem-frames only applies to the serve experiment (got '{cmd}'; \
             the pressure grid derives its own budgets)"
        ));
    }
    let out = out
        .or_else(|| {
            std::env::var("SAT_BENCH_OUT")
                .ok()
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "BENCH_repro.json".to_string());
    Ok(Cli {
        cmd,
        rest,
        scale: if quick { Scale::Quick } else { Scale::Paper },
        trace,
        out,
        format,
        threshold_pct,
        window,
        experiment,
        top,
        mem_frames,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cli.cmd == "check" {
        return match snapshot::check(cli.trace.as_deref(), &cli.out) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("repro check: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cli.cmd == "report" || cli.cmd == "timeline" || cli.cmd == "tails" {
        // The trace may arrive as `--trace <path>` or a positional.
        let path = cli
            .trace
            .as_deref()
            .or(cli.rest.first().map(String::as_str));
        let Some(path) = path else {
            eprintln!(
                "repro {0}: no trace given (repro {0} <trace.json>)",
                cli.cmd
            );
            return ExitCode::FAILURE;
        };
        let result = match cli.cmd.as_str() {
            "timeline" => timeline(path, cli.window, cli.experiment.as_deref()),
            "tails" => tails(path, cli.top, cli.experiment.as_deref()),
            _ => report(path, cli.format, cli.experiment.as_deref()),
        };
        return match result {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("repro {}: {e}", cli.cmd);
                ExitCode::FAILURE
            }
        };
    }

    if cli.cmd == "diff" {
        return match diff_snapshots(&cli.rest[0], &cli.rest[1], cli.threshold_pct) {
            Ok(report) => {
                print!("{}", report.render(cli.threshold_pct));
                if report.regressions() > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("repro diff: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cli.trace.is_some() {
        sat_obs::install(sat_obs::env_ring_capacity());
    }

    let mut records = Vec::new();
    let started = Instant::now();
    match run(&cli.cmd, cli.scale, cli.mem_frames, &mut records) {
        Ok(output) => {
            let recording = if cli.trace.is_some() {
                sat_obs::uninstall()
            } else {
                None
            };
            print!("{output}");
            if let (Some(path), Some(rec)) = (&cli.trace, &recording) {
                if let Err(e) = std::fs::write(path, sat_obs::chrome_trace_json(rec)) {
                    eprintln!("repro: could not write trace {path}: {e}");
                }
            }
            let json = render_json(
                &cli.cmd,
                cli.scale,
                &records,
                started.elapsed().as_secs_f64() * 1e3,
                recording.as_ref(),
            );
            if let Err(e) = std::fs::write(&cli.out, json) {
                eprintln!("repro: could not write {}: {e}", cli.out);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro {}: {e}", cli.cmd);
            ExitCode::FAILURE
        }
    }
}

type Fallible = Result<String, Box<dyn std::error::Error>>;

/// Runs `body`, appending a timing record on success. With a recorder
/// installed, the record also carries the observability counters the
/// experiment moved (snapshot delta), so the snapshot attributes event
/// volume per experiment.
fn timed(
    records: &mut Vec<Record>,
    name: &str,
    cells: usize,
    body: impl FnOnce() -> Fallible,
) -> Fallible {
    let before = sat_obs::counters_snapshot().unwrap_or_default();
    // Bracket the experiment with an `exp.<name>` span (machine-level:
    // pid 0) so `repro report/timeline --experiment <name>` can slice
    // the trace, and open a fresh gauge window so the snapshot carries
    // this experiment's own high-water marks.
    if sat_obs::enabled() {
        sat_obs::begin_gauge_window();
        sat_obs::emit(
            sat_obs::Subsystem::Bench,
            0,
            0,
            sat_obs::Payload::SpanBegin {
                name: format!("exp.{name}"),
            },
        );
    }
    let t = Instant::now();
    let out = body()?;
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Bench,
            0,
            0,
            sat_obs::Payload::SpanEnd {
                name: format!("exp.{name}"),
                value: t.elapsed().as_micros() as u64,
                unit: sat_obs::SpanUnit::Micros,
            },
        );
    }
    let gauges = sat_obs::window_gauge_high_waters().unwrap_or_default();
    let mut events = std::collections::BTreeMap::new();
    if let Some(after) = sat_obs::counters_snapshot() {
        for (key, v) in after {
            let delta = v - before.get(&key).copied().unwrap_or(0);
            if delta > 0 {
                events.insert(key, delta);
            }
        }
    }
    records.push(Record {
        name: name.to_string(),
        wall_ms,
        cells,
        events,
        gauges,
        latency: None,
        mem_frames: None,
        reclaim: None,
        translation: None,
    });
    Ok(out)
}

/// Worker-pool cells of each sweep (1 for serial experiments).
fn launch_cells() -> usize {
    launchbench::launch_configs().len()
}

fn steady_cells() -> usize {
    4 // suite configurations
}

fn scalability_cells(scale: Scale) -> usize {
    2 * extensions::scalability_counts(scale).len()
}

fn timeshare_cells(scale: Scale) -> usize {
    3 * timesharebench::timeshare_counts(scale).len()
}

/// Runs both serve kernels as separate timed records (static names:
/// `repro diff` gates each kernel's p99 tail on its own), then the
/// cross-kernel summary line. A budgeted run (`--mem-frames N`) gets
/// `_mem`-suffixed record names so diffing against an uncapped
/// baseline never pits capped tails against uncapped ones.
fn run_serve_pair(records: &mut Vec<Record>, scale: Scale, mem_frames: Option<u64>) -> Fallible {
    let mut s = String::new();
    let mut reports = Vec::new();
    for (name, label, config) in servebench::serve_kernels() {
        let record = match mem_frames {
            Some(_) => format!("{name}_mem"),
            None => name.to_string(),
        };
        let cells = servebench::serve_counts(scale).len();
        let mut rep = None;
        s.push_str(&timed(records, &record, cells, || {
            let (text, r) = servebench::serve_kernel(scale, label, config, mem_frames)?;
            rep = Some(r);
            Ok(text)
        })?);
        let r = rep.expect("serve_kernel returns a report on success");
        let rec = records.last_mut().expect("timed pushed a record");
        rec.latency = Some((r.p50, r.p95, r.p99));
        if mem_frames.is_some() {
            rec.mem_frames = mem_frames;
            rec.reclaim = Some(ReclaimTotals::of(&r));
        }
        reports.push(r);
    }
    s.push_str(&servebench::serve_summary(scale, &reports[0], &reports[1]));
    Ok(s)
}

/// Runs the sharing-under-pressure grid: one timed record per cell
/// (static names from `pressurebench::record_names`), each carrying
/// latency percentiles and — for the finite-budget cells — the frame
/// budget and reclaim totals `repro diff` gates.
fn run_pressure_grid(records: &mut Vec<Record>, scale: Scale) -> Fallible {
    let (text, _) = pressurebench::grid(scale, |name, opts, config| {
        let budget = opts.mem_frames;
        let mut rep = None;
        timed(records, name, 1, || {
            let r = sat_sched::run_serve(config, opts)?;
            rep = Some(r);
            Ok(String::new())
        })?;
        let r = rep.expect("run_serve returns a report on success");
        let rec = records.last_mut().expect("timed pushed a record");
        rec.latency = Some((r.p50, r.p95, r.p99));
        if budget.is_some() {
            rec.mem_frames = budget;
            rec.reclaim = Some(ReclaimTotals::of(&r));
        }
        Ok::<_, Box<dyn std::error::Error>>(r)
    })?;
    Ok(text)
}

/// Runs the three translation-reach strategies as separate timed
/// records (static names: `repro diff` gates each strategy's
/// promotion/demotion totals on its own), then the combined table.
fn run_reach(records: &mut Vec<Record>, scale: Scale) -> Fallible {
    let mut cells = Vec::new();
    for (name, label, config) in reachbench::reach_kernels() {
        let mut cell = None;
        timed(records, name, 1, || {
            cell = Some(reachbench::reach_cell(name, label, config, scale)?);
            Ok(String::new())
        })?;
        let c = cell.expect("reach_cell returns a cell on success");
        let rec = records.last_mut().expect("timed pushed a record");
        rec.translation = Some(c.translation);
        cells.push(c);
    }
    Ok(reachbench::reach_render(scale, &cells))
}

/// Runs every fleet size of the scale's grid, one timed record per N
/// (static names: `repro diff` gates each fleet size on its own).
fn run_fleet_grid(records: &mut Vec<Record>, scale: Scale) -> Fallible {
    let mut s = String::new();
    for &(apps, cores) in fleetbench::fleet_counts(scale) {
        s.push_str(&timed(records, fleetbench::record_name(apps), 2, || {
            Ok(fleetbench::fleet_n(apps, cores)?)
        })?);
    }
    Ok(s)
}

fn run(cmd: &str, scale: Scale, mem_frames: Option<u64>, records: &mut Vec<Record>) -> Fallible {
    let r = records;
    let out = match cmd {
        "table1" => timed(r, "table1", 1, || Ok(motivation::table1()))?,
        "fig2" => timed(r, "fig2", 1, || Ok(motivation::fig2()))?,
        "fig3" => timed(r, "fig3", 1, || Ok(motivation::fig3()))?,
        "table2" => timed(r, "table2", 1, || Ok(motivation::table2()))?,
        "fig4" => timed(r, "fig4", 1, || Ok(motivation::fig4()))?,
        "latfault" => timed(r, "latfault", 1, || Ok(zygotebench::latfault(scale)?))?,
        "table3" => timed(r, "table3", 1, || Ok(zygotebench::table3(scale)?))?,
        "table4" => timed(r, "table4", 1, || Ok(zygotebench::table4(scale)?))?,
        // Figures 7-9 come from one launch sweep.
        "fig7" | "fig8" | "fig9" | "launch" => timed(r, "launch", launch_cells(), || {
            Ok(launchbench::launch_experiment(scale)?)
        })?,
        // Figures 10-12 come from one steady-state sweep.
        "fig10" | "fig11" | "fig12" | "ptecopies" | "steady" => {
            timed(r, "steady", steady_cells(), || {
                Ok(steadybench::steady_experiment(scale)?)
            })?
        }
        "fig13" => timed(r, "fig13", 1, || Ok(ipcbench::fig13(scale)?))?,
        "ablations" => timed(r, "ablations", 1, || Ok(ablation::all(scale)?))?,
        "scalability" => timed(r, "scalability", scalability_cells(scale), || {
            Ok(extensions::scalability(scale)?)
        })?,
        "grouped" => timed(r, "grouped", 1, || Ok(extensions::grouped_layout(scale)?))?,
        "pollution" => timed(r, "pollution", 1, || Ok(extensions::pte_pollution(scale)?))?,
        "smaps" => timed(r, "smaps", 1, || Ok(extensions::memory_accounting(scale)?))?,
        "extensions" => timed(r, "extensions", scalability_cells(scale) + 3, || {
            Ok(extensions::all(scale)?)
        })?,
        "reach" => run_reach(r, scale)?,
        "timeshare" => timed(r, "timeshare", timeshare_cells(scale), || {
            Ok(timesharebench::timeshare(scale)?)
        })?,
        "fleet" => run_fleet_grid(r, scale)?,
        "serve" => run_serve_pair(r, scale, mem_frames)?,
        "pressure" => run_pressure_grid(r, scale)?,
        "all" => {
            let mut s = String::new();
            s.push_str(&format!(
                "# Shared Address Translation Revisited — experiment suite ({scale:?} scale)\n\n"
            ));
            s.push_str(&timed(r, "table1", 1, || Ok(motivation::table1()))?);
            s.push_str(&timed(r, "fig2", 1, || Ok(motivation::fig2()))?);
            s.push_str(&timed(r, "fig3", 1, || Ok(motivation::fig3()))?);
            s.push_str(&timed(r, "table2", 1, || Ok(motivation::table2()))?);
            s.push_str(&timed(r, "fig4", 1, || Ok(motivation::fig4()))?);
            s.push_str(&timed(r, "latfault", 1, || {
                Ok(zygotebench::latfault(scale)?)
            })?);
            s.push_str(&timed(r, "table3", 1, || Ok(zygotebench::table3(scale)?))?);
            s.push_str(&timed(r, "table4", 1, || Ok(zygotebench::table4(scale)?))?);
            s.push_str(&timed(r, "launch", launch_cells(), || {
                Ok(launchbench::launch_experiment(scale)?)
            })?);
            s.push_str(&timed(r, "steady", steady_cells(), || {
                Ok(steadybench::steady_experiment(scale)?)
            })?);
            s.push_str(&timed(r, "fig13", 1, || Ok(ipcbench::fig13(scale)?))?);
            s.push_str(&timed(r, "ablations", 1, || Ok(ablation::all(scale)?))?);
            s.push_str(&timed(
                r,
                "extensions",
                scalability_cells(scale) + 3,
                || Ok(extensions::all(scale)?),
            )?);
            s.push_str(&run_reach(r, scale)?);
            s.push_str(&timed(r, "timeshare", timeshare_cells(scale), || {
                Ok(timesharebench::timeshare(scale)?)
            })?);
            s.push_str(&run_fleet_grid(r, scale)?);
            s.push_str(&run_serve_pair(r, scale, None)?);
            s
        }
        other => {
            return Err(format!(
                "unknown experiment '{other}' (try: table1 fig2 fig3 table2 fig4 latfault \
                 table3 table4 launch steady fig13 ablations scalability grouped \
                 pollution smaps extensions reach timeshare fleet serve pressure all)"
            )
            .into())
        }
    };
    Ok(out)
}

/// Hand-rolled JSON (the workspace vendors no serializer): flat,
/// stable key order, floats with fixed precision.
fn render_json(
    cmd: &str,
    scale: Scale,
    records: &[Record],
    total_ms: f64,
    recording: Option<&sat_obs::Recording>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{}\",\n", snapshot::SCHEMA));
    s.push_str(&format!("  \"command\": \"{cmd}\",\n"));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    ));
    s.push_str(&format!("  \"threads\": {},\n", pool::thread_count()));
    s.push_str("  \"experiments\": [\n");
    for (i, rec) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"cells\": {}, ",
            rec.name, rec.wall_ms, rec.cells,
        ));
        if let Some((p50, p95, p99)) = rec.latency {
            s.push_str(&format!(
                "\"latency\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}, "
            ));
        }
        if let Some(frames) = rec.mem_frames {
            s.push_str(&format!("\"mem_frames\": {frames}, "));
        }
        if let Some(rc) = &rec.reclaim {
            s.push_str(&format!(
                "\"reclaim\": {{\"passes\": {}, \"pages\": {}, \"pte_tears\": {}, \
                 \"shared_tears\": {}, \"refaults\": {}}}, ",
                rc.passes, rc.pages, rc.pte_tears, rc.shared_tears, rc.refaults
            ));
        }
        if let Some(tr) = &rec.translation {
            s.push_str(&format!(
                "\"translation\": {{\"promotions\": {}, \"demotions\": {}, \
                 \"splits\": {}, \"waste_frames\": {}}}, ",
                tr.promotions, tr.demotions, tr.splits, tr.waste_frames
            ));
        }
        s.push_str("\"events\": {");
        for (j, (key, v)) in rec.events.iter().enumerate() {
            s.push_str(&format!(
                "\"{key}\": {v}{}",
                if j + 1 < rec.events.len() { ", " } else { "" }
            ));
        }
        s.push_str("}, \"gauges\": {");
        for (j, (key, v)) in rec.gauges.iter().enumerate() {
            s.push_str(&format!(
                "\"{key}\": {v}{}",
                if j + 1 < rec.gauges.len() { ", " } else { "" }
            ));
        }
        s.push_str(&format!(
            "}}}}{}\n",
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"total_wall_ms\": {total_ms:.3},\n"));
    s.push_str("  \"obs\": ");
    match recording {
        Some(rec) => s.push_str(&sat_obs::metrics_json(
            &rec.metrics,
            true,
            rec.dropped,
            "  ",
        )),
        None => {
            let empty = sat_obs::MetricsRegistry::default();
            s.push_str(&sat_obs::metrics_json(&empty, false, 0, "  "));
        }
    }
    s.push('\n');
    s.push_str("}\n");
    s
}

/// Re-ingests a Chrome trace, optionally sliced to one experiment's
/// `exp.<name>` bracket.
fn load_trace(
    trace_path: &str,
    experiment: Option<&str>,
) -> Result<(Vec<sat_obs::Event>, u64), Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    let parsed = sat_obs::parse_chrome_trace(&doc).map_err(|e| format!("{trace_path}: {e}"))?;
    match experiment {
        Some(name) => {
            let events = sat_obs::analyze::filter_experiment(&parsed.events, name)?;
            Ok((events, parsed.dropped))
        }
        None => Ok((parsed.events, parsed.dropped)),
    }
}

/// Re-ingests a Chrome trace and renders the analytics rollup.
fn report(trace_path: &str, format: ReportFormat, experiment: Option<&str>) -> Fallible {
    let (events, dropped) = load_trace(trace_path, experiment)?;
    let rollup = sat_obs::analyze::Rollup::from_events(&events, dropped);
    Ok(sat_obs::report::render(&rollup, format))
}

/// Re-ingests a Chrome trace and renders the windowed timeline
/// (per-window event rates plus gauge series).
fn timeline(trace_path: &str, window: u64, experiment: Option<&str>) -> Fallible {
    let (events, dropped) = load_trace(trace_path, experiment)?;
    let rollup = sat_obs::analyze::Rollup::from_events(&events, dropped);
    let tl = sat_obs::analyze::Timeline::from_events(&events, window)?;
    Ok(sat_obs::report::render_timeline(&rollup, &tl))
}

/// Re-ingests a trace and renders per-request tail blame. Defaults to
/// the serve experiments' `exp.serve_*` brackets when present (each
/// gets its own section); `--experiment` narrows to one bracket, and a
/// trace with flows but no brackets is read whole.
fn tails(trace_path: &str, top: usize, experiment: Option<&str>) -> Fallible {
    let (all_events, dropped) = load_trace(trace_path, None)?;
    let slices: Vec<(String, Vec<sat_obs::Event>)> = match experiment {
        Some(name) => vec![(
            name.to_string(),
            sat_obs::analyze::filter_experiment(&all_events, name)?,
        )],
        None => {
            // Every bracket that can carry flows: the serve kernels,
            // their budgeted `_mem` variants, and the pressure cells.
            let mut candidates: Vec<String> = Vec::new();
            for (name, _, _) in servebench::serve_kernels() {
                candidates.push(name.to_string());
                candidates.push(format!("{name}_mem"));
            }
            candidates.extend(pressurebench::record_names());
            let mut v = Vec::new();
            for name in &candidates {
                if let Ok(events) = sat_obs::analyze::filter_experiment(&all_events, name) {
                    v.push((name.clone(), events));
                }
            }
            if v.is_empty() {
                v.push(("whole trace".to_string(), all_events));
            }
            v
        }
    };
    let mut out = String::new();
    if dropped > 0 {
        out.push_str(&format!(
            "repro tails: warning: {dropped} events were dropped from the ring — \
             blame attribution is partial\n\n"
        ));
    }
    let mut any = false;
    for (label, events) in &slices {
        let table = sat_obs::analyze::FlowTable::from_events(events);
        if table.completed() == 0 && table.charges == 0 {
            continue;
        }
        any = true;
        out.push_str(&sat_obs::report::render_tails(label, &table, top));
        out.push('\n');
    }
    if !any {
        return Err(
            "no flow events in this trace (produce one with: repro serve --quick --trace <path>)"
                .into(),
        );
    }
    Ok(out)
}

/// Loads and compares two snapshots (see `sat_bench::snapshot::diff`).
fn diff_snapshots(
    old_path: &str,
    new_path: &str,
    threshold_pct: f64,
) -> Result<snapshot::DiffReport, Box<dyn std::error::Error>> {
    let old_text =
        std::fs::read_to_string(old_path).map_err(|e| format!("read {old_path}: {e}"))?;
    let new_text =
        std::fs::read_to_string(new_path).map_err(|e| format!("read {new_path}: {e}"))?;
    let old = snapshot::Snapshot::parse(&old_text, old_path)?;
    let new = snapshot::Snapshot::parse(&new_text, new_path)?;
    Ok(snapshot::diff(&old, &new, threshold_pct))
}
