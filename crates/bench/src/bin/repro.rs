//! `repro` — regenerates every table and figure of "Shared Address
//! Translation Revisited" (EuroSys '16) on the simulated stack.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   table1 fig2 fig3 table2 fig4   motivation study (Section 2.3)
//!   latfault                       soft-fault latency anchor
//!   table3 table4                  zygote fork (Section 4.2.1)
//!   fig7 fig8 fig9 launch          application launch (Section 4.2.2)
//!   fig10 fig11 fig12 steady       steady state (Section 4.2.3)
//!   fig13                          binder IPC (Section 4.2.4)
//!   ablations                      Section 3.1.3/3.2.3 design choices
//!   scalability largepages grouped extensions
//!   all                            everything, in paper order
//! ```
//!
//! `--quick` runs scaled-down workloads (seconds instead of minutes).
//!
//! Independent sweep cells fan out across cores (see
//! `sat_bench::pool`); `SAT_BENCH_THREADS=1` forces a serial run. The
//! rendered output is byte-identical either way.
//!
//! Besides the tables on stdout, every run writes `BENCH_repro.json`
//! to the working directory: per-experiment wall time, scale, worker
//! count, and sweep cell counts, for machine consumption (CI trend
//! lines, perf comparisons).

use std::process::ExitCode;
use std::time::Instant;

use sat_bench::{
    ablation, extensions, ipcbench, launchbench, motivation, pool, steadybench, zygotebench,
    Scale,
};

/// One timed experiment: name, wall time, and how many independent
/// cells its sweep fanned out to the worker pool (1 = no fan-out).
struct Record {
    name: &'static str,
    wall_ms: f64,
    cells: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let mut records = Vec::new();
    let started = Instant::now();
    match run(cmd, scale, &mut records) {
        Ok(output) => {
            print!("{output}");
            let json = render_json(cmd, scale, &records, started.elapsed().as_secs_f64() * 1e3);
            if let Err(e) = std::fs::write("BENCH_repro.json", json) {
                eprintln!("repro: could not write BENCH_repro.json: {e}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

type Fallible = Result<String, Box<dyn std::error::Error>>;

/// Runs `body`, appending a timing record on success.
fn timed(
    records: &mut Vec<Record>,
    name: &'static str,
    cells: usize,
    body: impl FnOnce() -> Fallible,
) -> Fallible {
    let t = Instant::now();
    let out = body()?;
    records.push(Record {
        name,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        cells,
    });
    Ok(out)
}

/// Worker-pool cells of each sweep (1 for serial experiments).
fn launch_cells() -> usize {
    launchbench::launch_configs().len()
}

fn steady_cells() -> usize {
    4 // suite configurations
}

fn scalability_cells(scale: Scale) -> usize {
    2 * extensions::scalability_counts(scale).len()
}

fn run(cmd: &str, scale: Scale, records: &mut Vec<Record>) -> Fallible {
    let r = records;
    let out = match cmd {
        "table1" => timed(r, "table1", 1, || Ok(motivation::table1()))?,
        "fig2" => timed(r, "fig2", 1, || Ok(motivation::fig2()))?,
        "fig3" => timed(r, "fig3", 1, || Ok(motivation::fig3()))?,
        "table2" => timed(r, "table2", 1, || Ok(motivation::table2()))?,
        "fig4" => timed(r, "fig4", 1, || Ok(motivation::fig4()))?,
        "latfault" => timed(r, "latfault", 1, || Ok(zygotebench::latfault(scale)?))?,
        "table3" => timed(r, "table3", 1, || Ok(zygotebench::table3(scale)?))?,
        "table4" => timed(r, "table4", 1, || Ok(zygotebench::table4(scale)?))?,
        // Figures 7-9 come from one launch sweep.
        "fig7" | "fig8" | "fig9" | "launch" => timed(r, "launch", launch_cells(), || {
            Ok(launchbench::launch_experiment(scale)?)
        })?,
        // Figures 10-12 come from one steady-state sweep.
        "fig10" | "fig11" | "fig12" | "ptecopies" | "steady" => {
            timed(r, "steady", steady_cells(), || {
                Ok(steadybench::steady_experiment(scale)?)
            })?
        }
        "fig13" => timed(r, "fig13", 1, || Ok(ipcbench::fig13(scale)?))?,
        "ablations" => timed(r, "ablations", 1, || Ok(ablation::all(scale)?))?,
        "scalability" => timed(r, "scalability", scalability_cells(scale), || {
            Ok(extensions::scalability(scale)?)
        })?,
        "largepages" => timed(r, "largepages", 1, || Ok(extensions::large_pages(scale)?))?,
        "grouped" => timed(r, "grouped", 1, || Ok(extensions::grouped_layout(scale)?))?,
        "pollution" => timed(r, "pollution", 1, || Ok(extensions::pte_pollution(scale)?))?,
        "smaps" => timed(r, "smaps", 1, || Ok(extensions::memory_accounting(scale)?))?,
        "extensions" => timed(r, "extensions", scalability_cells(scale) + 4, || {
            Ok(extensions::all(scale)?)
        })?,
        "all" => {
            let mut s = String::new();
            s.push_str(&format!(
                "# Shared Address Translation Revisited — experiment suite ({scale:?} scale)\n\n"
            ));
            s.push_str(&timed(r, "table1", 1, || Ok(motivation::table1()))?);
            s.push_str(&timed(r, "fig2", 1, || Ok(motivation::fig2()))?);
            s.push_str(&timed(r, "fig3", 1, || Ok(motivation::fig3()))?);
            s.push_str(&timed(r, "table2", 1, || Ok(motivation::table2()))?);
            s.push_str(&timed(r, "fig4", 1, || Ok(motivation::fig4()))?);
            s.push_str(&timed(r, "latfault", 1, || Ok(zygotebench::latfault(scale)?))?);
            s.push_str(&timed(r, "table3", 1, || Ok(zygotebench::table3(scale)?))?);
            s.push_str(&timed(r, "table4", 1, || Ok(zygotebench::table4(scale)?))?);
            s.push_str(&timed(r, "launch", launch_cells(), || {
                Ok(launchbench::launch_experiment(scale)?)
            })?);
            s.push_str(&timed(r, "steady", steady_cells(), || {
                Ok(steadybench::steady_experiment(scale)?)
            })?);
            s.push_str(&timed(r, "fig13", 1, || Ok(ipcbench::fig13(scale)?))?);
            s.push_str(&timed(r, "ablations", 1, || Ok(ablation::all(scale)?))?);
            s.push_str(&timed(r, "extensions", scalability_cells(scale) + 4, || {
                Ok(extensions::all(scale)?)
            })?);
            s
        }
        other => {
            return Err(format!(
                "unknown experiment '{other}' (try: table1 fig2 fig3 table2 fig4 latfault \
                 table3 table4 launch steady fig13 ablations scalability largepages \
                 grouped pollution smaps extensions all)"
            )
            .into())
        }
    };
    Ok(out)
}

/// Hand-rolled JSON (the workspace vendors no serializer): flat,
/// stable key order, floats with fixed precision.
fn render_json(cmd: &str, scale: Scale, records: &[Record], total_ms: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"sat-bench/repro-v1\",\n");
    s.push_str(&format!("  \"command\": \"{cmd}\",\n"));
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    ));
    s.push_str(&format!("  \"threads\": {},\n", pool::thread_count()));
    s.push_str("  \"experiments\": [\n");
    for (i, rec) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"cells\": {}}}{}\n",
            rec.name,
            rec.wall_ms,
            rec.cells,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"total_wall_ms\": {total_ms:.3}\n"));
    s.push_str("}\n");
    s
}
