//! `repro` — regenerates every table and figure of "Shared Address
//! Translation Revisited" (EuroSys '16) on the simulated stack.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   table1 fig2 fig3 table2 fig4   motivation study (Section 2.3)
//!   latfault                       soft-fault latency anchor
//!   table3 table4                  zygote fork (Section 4.2.1)
//!   fig7 fig8 fig9 launch          application launch (Section 4.2.2)
//!   fig10 fig11 fig12 steady       steady state (Section 4.2.3)
//!   fig13                          binder IPC (Section 4.2.4)
//!   ablations                      Section 3.1.3/3.2.3 design choices
//!   scalability largepages grouped extensions
//!   all                            everything, in paper order
//! ```
//!
//! `--quick` runs scaled-down workloads (seconds instead of minutes).

use std::process::ExitCode;

use sat_bench::{ablation, extensions, ipcbench, launchbench, motivation, steadybench, zygotebench, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match run(cmd, scale) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("repro {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, scale: Scale) -> Result<String, Box<dyn std::error::Error>> {
    let out = match cmd {
        "table1" => motivation::table1(),
        "fig2" => motivation::fig2(),
        "fig3" => motivation::fig3(),
        "table2" => motivation::table2(),
        "fig4" => motivation::fig4(),
        "latfault" => zygotebench::latfault(scale)?,
        "table3" => zygotebench::table3(scale)?,
        "table4" => zygotebench::table4(scale)?,
        // Figures 7-9 come from one launch sweep.
        "fig7" | "fig8" | "fig9" | "launch" => launchbench::launch_experiment(scale)?,
        // Figures 10-12 come from one steady-state sweep.
        "fig10" | "fig11" | "fig12" | "ptecopies" | "steady" => {
            steadybench::steady_experiment(scale)?
        }
        "fig13" => ipcbench::fig13(scale)?,
        "ablations" => ablation::all(scale)?,
        "scalability" => extensions::scalability(scale)?,
        "largepages" => extensions::large_pages(scale)?,
        "grouped" => extensions::grouped_layout(scale)?,
        "pollution" => extensions::pte_pollution(scale)?,
        "smaps" => extensions::memory_accounting(scale)?,
        "extensions" => extensions::all(scale)?,
        "all" => {
            let mut s = String::new();
            s.push_str(&format!(
                "# Shared Address Translation Revisited — experiment suite ({scale:?} scale)\n\n"
            ));
            s.push_str(&motivation::table1());
            s.push_str(&motivation::fig2());
            s.push_str(&motivation::fig3());
            s.push_str(&motivation::table2());
            s.push_str(&motivation::fig4());
            s.push_str(&zygotebench::latfault(scale)?);
            s.push_str(&zygotebench::table3(scale)?);
            s.push_str(&zygotebench::table4(scale)?);
            s.push_str(&launchbench::launch_experiment(scale)?);
            s.push_str(&steadybench::steady_experiment(scale)?);
            s.push_str(&ipcbench::fig13(scale)?);
            s.push_str(&ablation::all(scale)?);
            s.push_str(&extensions::all(scale)?);
            s
        }
        other => {
            return Err(format!(
                "unknown experiment '{other}' (try: table1 fig2 fig3 table2 fig4 latfault \
                 table3 table4 launch steady fig13 ablations scalability largepages \
                 grouped pollution smaps extensions all)"
            )
            .into())
        }
    };
    Ok(out)
}
