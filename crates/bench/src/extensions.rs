//! Extension experiments beyond the paper's figures: the scalability
//! argument of the introduction made quantitative and the paper's
//! suggested grouped-segment layout. (The large-page alternative
//! lives in [`crate::reachbench`] now, driven by the real promotion
//! engine instead of an eager mapping loop.)

use sat_android::{AndroidSystem, LibraryLayout};
use sat_core::KernelConfig;
use sat_types::{AccessType, VirtAddr, PAGE_SIZE};

use crate::motivation::SEED;
use crate::render::{count, pct, Table};
use crate::zygotebench::boot_opts;
use crate::Scale;

/// Process counts of the scalability sweep per scale (the sweep's
/// worker-pool grid is one cell per count per kernel config).
pub fn scalability_counts(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Paper => &[1, 2, 4, 8, 16, 32, 64],
        Scale::Quick => &[1, 4, 16],
    }
}

/// Scalability: "while the amount of memory required for mapping a
/// physical page of private data is small and constant, for shared
/// memory regions this overhead grows linearly with the number of
/// processes." Forks N processes from a zygote and reports total
/// page-table frames and the duplicated PTE cache lines a shared L2
/// would hold.
pub fn scalability(scale: Scale) -> sat_types::SatResult<String> {
    let counts = scalability_counts(scale);
    let mut t = Table::new(
        "Scalability: page-table pages vs process count",
        &[
            "processes",
            "stock PTPs",
            "stock PT KB",
            "shared PTPs",
            "shared PT KB",
            "duplication factor",
        ],
    );
    // Every (process count, kernel config) cell boots its own system,
    // so the grid fans out on the worker pool; reassembly in grid
    // order keeps the table byte-identical to a serial run.
    let cell = |n: usize, config: KernelConfig| -> sat_types::SatResult<usize> {
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let mut pids = Vec::new();
        for _ in 0..n {
            let (o, _) = sys.machine.fork(0, sys.zygote)?;
            pids.push(o.child);
        }
        // Each child faults the same library working set, as
        // co-resident applications do.
        for &pid in &pids {
            sys.machine.context_switch(0, pid)?;
            let lib = sys.catalog.zygote_native[1];
            let base = sys.map.code_base(lib).unwrap();
            let pages = sys.catalog.lib(lib).code_pages.min(16);
            for p in 0..pages {
                sys.machine.access(
                    0,
                    VirtAddr::new(base.raw() + p * PAGE_SIZE),
                    AccessType::Execute,
                )?;
            }
        }
        Ok(sys.machine.kernel.ptps.len())
    };
    let jobs: Vec<_> = counts
        .iter()
        .flat_map(|&n| {
            [KernelConfig::stock(), KernelConfig::shared_ptp()]
                .map(|config| move || cell(n, config))
        })
        .collect();
    let mut results = crate::pool::run_cells(jobs).into_iter();
    for &n in counts {
        let stock = results.next().expect("one cell per grid point")?;
        let shared = results.next().expect("one cell per grid point")?;
        t.row(vec![
            n.to_string(),
            count(stock as u64),
            count(4 * stock as u64),
            count(shared as u64),
            count(4 * shared as u64),
            format!("{:.1}x", stock as f64 / shared as f64),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Stock page-table memory grows linearly with process count; with shared PTPs it is\n\
         near-constant — the introduction's scalability argument, measured.\n\n",
    );
    Ok(out)
}

/// The grouped-segment layout (Section 3.1.3's suggested refinement):
/// compare all three layouts' address-space cost and post-launch
/// sharing.
pub fn grouped_layout(scale: Scale) -> sat_types::SatResult<String> {
    let mut t = Table::new(
        "Extension: grouped code/data segments vs per-library 2MB alignment",
        &[
            "layout",
            "preloaded VA (MB)",
            "PTPs shared after launch",
            "shared fraction",
        ],
    );
    for (label, layout) in [
        ("Original", LibraryLayout::Original),
        ("2MB-aligned", LibraryLayout::Aligned2Mb),
        ("Grouped", LibraryLayout::Grouped),
    ] {
        let mut sys = AndroidSystem::boot(
            KernelConfig::shared_ptp(),
            layout,
            SEED,
            11,
            boot_opts(scale),
        )?;
        let va_mb = (sys.map.end.raw() - sat_android::layout::LIB_BASE) as f64 / (1 << 20) as f64;
        let opts = crate::launchbench::launch_opts(scale);
        let (pid, _) = sat_android::launch_app(&mut sys, &opts)?;
        let (shared, total) = sys.machine.kernel.ptp_share_snapshot(pid)?;
        t.row(vec![
            label.into(),
            format!("{va_mb:.0}"),
            format!("{shared}/{total}"),
            pct(shared as f64 / total.max(1) as f64),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Grouping keeps the 2MB layout's code/data isolation (data writes never unshare\n\
         code PTPs) at roughly the original layout's address-space cost.\n\n",
    );
    Ok(out)
}

/// The Figure 1 cache-pollution claim, measured: "multiple copies of
/// a page table entry mapping the same physical page might exist in
/// the shared cache, displacing other data." N processes execute the
/// same library working set; afterwards we count how many distinct
/// PTE cache lines are resident in the shared L2.
pub fn pte_pollution(scale: Scale) -> sat_types::SatResult<String> {
    let procs = match scale {
        Scale::Paper => 8usize,
        Scale::Quick => 4,
    };
    let mut t = Table::new(
        "Extension: duplicated PTE lines in the shared L2 cache (Figure 1's claim)",
        &[
            "kernel",
            "resident PTE lines",
            "PTE bytes in L2",
            "per-process copies",
        ],
    );
    for (label, config) in [
        ("Stock Android", KernelConfig::stock()),
        ("Shared PTP", KernelConfig::shared_ptp()),
    ] {
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let mut pids = vec![sys.zygote];
        for _ in 0..procs {
            pids.push(sys.machine.fork(0, sys.zygote)?.0.child);
        }
        // All processes execute the same pages of one library,
        // interleaved (walks load each process's PTEs into the L2).
        let lib = sys.catalog.zygote_native[1];
        let base = sys.map.code_base(lib).unwrap();
        let pages = sys.catalog.lib(lib).code_pages.min(32);
        for _round in 0..2 {
            for &pid in &pids {
                sys.machine.context_switch(0, pid)?;
                for p in 0..pages {
                    sys.machine.access(
                        0,
                        VirtAddr::new(base.raw() + p * PAGE_SIZE),
                        AccessType::Execute,
                    )?;
                }
            }
        }
        // Count the distinct PTE lines of the library's chunk that are
        // resident in the shared L2, across all processes.
        let mut resident = std::collections::BTreeSet::new();
        for &pid in &pids {
            let mm = sys.machine.kernel.mm(pid)?;
            let entry = mm.root.entry_for(base);
            let Some(ptp) = entry.ptp() else { continue };
            for p in 0..pages {
                let va = VirtAddr::new(base.raw() + p * PAGE_SIZE);
                let pa = sat_mmu::Ptp::hw_pte_addr(ptp, sat_mmu::TableHalf::of(va), va.l2_index());
                // One cache line holds eight 4-byte PTEs.
                let line = pa.raw() & !31;
                if sys.machine.l2.probe(sat_types::PhysAddr::new(line)) {
                    resident.insert(line);
                }
            }
        }
        t.row(vec![
            label.into(),
            count(resident.len() as u64),
            count(32 * resident.len() as u64),
            format!("{:.1}", resident.len() as f64 / (pages as f64 / 8.0)),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "With {procs} applications plus the zygote executing the same library, the stock
         kernel holds one copy of each PTE line per process in the shared L2; sharing
         PTPs collapses them to one.

",
    ));
    Ok(out)
}

/// Per-process memory accounting under sharing: the smaps/PSS view.
/// Reports, for one launched application, resident data and the
/// page-table bytes charged to it (proportionally split when PTPs are
/// shared) under both kernels.
pub fn memory_accounting(scale: Scale) -> sat_types::SatResult<String> {
    let mut t = Table::new(
        "Extension: smaps-style accounting for one launched application",
        &[
            "kernel",
            "RSS KB",
            "PSS KB",
            "shared-clean KB",
            "page-table PSS KB",
        ],
    );
    for (label, config) in [
        ("Stock Android", KernelConfig::stock()),
        ("Shared PTP", KernelConfig::shared_ptp()),
    ] {
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let opts = crate::launchbench::launch_opts(scale);
        let (pid, _) = sat_android::launch_app(&mut sys, &opts)?;
        let mm = sys.machine.kernel.mm(pid)?;
        let rollup = sat_vm::smaps_rollup(mm, &sys.machine.kernel.ptps, &sys.machine.kernel.phys);
        t.row(vec![
            label.into(),
            count(rollup.rss / 1024),
            count(rollup.pss / 1024),
            count(rollup.shared_clean / 1024),
            count(rollup.page_table_pss / 1024),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "Data PSS is already split by COW in both kernels; the page-table column is the
         per-process cost the paper's mechanism removes (charged 1/sharers per PTP).

",
    );
    Ok(out)
}

/// Runs all extension experiments.
pub fn all(scale: Scale) -> sat_types::SatResult<String> {
    let mut out = String::new();
    out.push_str(&scalability(scale)?);
    out.push_str(&grouped_layout(scale)?);
    out.push_str(&pte_pollution(scale)?);
    out.push_str(&memory_accounting(scale)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_shows_constant_shared_ptps() {
        let out = scalability(Scale::Quick).unwrap();
        // Parse the duplication factors: they must grow with N.
        let factors: Vec<f64> = out
            .lines()
            .filter(|l| l.starts_with('|') && !l.contains("processes") && !l.contains("--"))
            .filter_map(|l| {
                let cell = l.split('|').nth(6)?.trim();
                cell.strip_suffix('x')?.parse().ok()
            })
            .collect();
        assert!(factors.len() >= 2);
        assert!(
            factors.last().unwrap() > factors.first().unwrap(),
            "{factors:?}"
        );
    }

    #[test]
    fn shared_ptps_collapse_duplicate_pte_lines() {
        let out = pte_pollution(Scale::Quick).unwrap();
        let lines = |label: &str| -> u64 {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            line.split('|')
                .nth(2)
                .unwrap()
                .trim()
                .replace(',', "")
                .parse()
                .unwrap()
        };
        assert!(
            lines("Stock Android") >= 2 * lines("Shared PTP"),
            "stock {} vs shared {}",
            lines("Stock Android"),
            lines("Shared PTP")
        );
    }

    #[test]
    fn shared_kernel_slashes_pagetable_pss() {
        let out = memory_accounting(Scale::Quick).unwrap();
        let pt = |label: &str| -> u64 {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            line.split('|')
                .nth(5)
                .unwrap()
                .trim()
                .replace(',', "")
                .parse()
                .unwrap()
        };
        assert!(
            pt("Shared PTP") < pt("Stock Android"),
            "shared {} vs stock {}",
            pt("Shared PTP"),
            pt("Stock Android")
        );
    }

    #[test]
    fn grouped_layout_compromise() {
        let out = grouped_layout(Scale::Quick).unwrap();
        let va = |label: &str| -> f64 {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            line.split('|').nth(2).unwrap().trim().parse().unwrap()
        };
        assert!(va("Grouped") < va("2MB-aligned") / 2.0);
    }
}
