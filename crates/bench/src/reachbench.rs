//! Translation reach (`repro reach`): the Section 2.3.3 trade made
//! measurable — stock 4KB paging vs shared translation vs the
//! promotion engine collapsing the same sparse working set into 64KB
//! large pages.
//!
//! The paper *asserts* that zygote-shared code is too sparse for
//! large pages ("the 2.6x memory waste"); this experiment measures
//! it. One image is mapped three ways, the zygote demand-faults the
//! Figure 4 access pattern (≈6 of every 16 pages), and then:
//!
//! - **stock**: nothing else happens — the resident set is exactly
//!   the touched pages, one TLB entry each;
//! - **shared**: PTP sharing + global TLB entries — same resident
//!   set, one *global* entry per touched page serves every process;
//! - **promoted**: a khugepaged-style [`Kernel::promote_scan`] pass
//!   collapses every 64KB group around the touched pages, filling
//!   the untouched holes with allocated frames — translation reach
//!   ×16 per entry, paid for in mapped-but-never-touched memory
//!   (`waste_frames`, the paper's figure as a counter).
//!
//! Each cell then forks two applications and runs the timeshare-style
//! alternating sweep of the launch working set, so the reach win
//! (fewer entries → fewer stalls) lands in the same row as its
//! fragmentation cost. The promoted cell finishes by demoting: a
//! partial munmap and a partial mprotect each split a large group
//! back to 4KB PTEs, so the `translation` snapshot block carries
//! nonzero demotions/splits and `repro check` can see the whole
//! promote/demote cycle ran.

use sat_core::{Kernel, KernelConfig, NoTlb, PromotePolicy};
use sat_types::{AccessType, Perms, RegionTag, VaRange, VirtAddr, PAGE_SIZE};
use sat_vm::MmapRequest;

use crate::render::{count, pct, Table};
use crate::Scale;

/// Base of the image every cell maps.
const IMAGE_BASE: u32 = 0x4000_0000;

/// Touched 4KB pages of the sparse working set per scale (the image
/// is `touched * 16 / 6` pages — the Figure 4 density).
pub fn touched_pages(scale: Scale) -> u32 {
    match scale {
        Scale::Paper => 1_536, // ~6MB accessed, as the paper measures
        Scale::Quick => 192,
    }
}

/// Alternating two-process sweeps the stall measurement runs.
const SWEEPS: usize = 4;

/// What one cell's promotion/demotion machinery did — the snapshot's
/// per-experiment `"translation"` block (schema v7).
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslationTotals {
    /// 64KB groups + 1MB sections the scanner collapsed.
    pub promotions: u64,
    /// Large mappings split back to 4KB (munmap/mprotect/COW/...).
    pub demotions: u64,
    /// Small PTEs written by those splits.
    pub splits: u64,
    /// Frames mapped by promotion that no process ever touched — the
    /// paper's ≈2.6× waste, measured.
    pub waste_frames: u64,
}

/// One measured cell of the reach grid.
#[derive(Clone, Debug)]
pub struct ReachCell {
    /// Snapshot record name (`reach_stock` / `reach_shared` /
    /// `reach_promoted`).
    pub record: &'static str,
    /// Table label.
    pub label: &'static str,
    /// Resident bytes of the image region in the zygote after the
    /// working set settled (smaps, so large pages count per-frame).
    pub image_rss_kb: u64,
    /// Main-TLB entries the per-process working set needs.
    pub tlb_entries: u64,
    /// Instruction main-TLB stall cycles over the alternating sweeps.
    pub stalls: u64,
    /// Promotion/demotion counters after the cell completed.
    pub translation: TranslationTotals,
}

/// The three strategies: record name, label, kernel config. The
/// promoted cell layers the scanner onto the stock kernel — sharing
/// and promotion stay separable axes (the scanner refuses to collapse
/// across a shared-PTP boundary anyway).
pub fn reach_kernels() -> [(&'static str, &'static str, KernelConfig); 3] {
    [
        ("reach_stock", "4KB pages, stock", KernelConfig::stock()),
        (
            "reach_shared",
            "4KB + shared PTP & TLB",
            KernelConfig::shared_ptp_tlb(),
        ),
        (
            "reach_promoted",
            "64KB promoted, stock",
            KernelConfig::stock().with_promote(PromotePolicy {
                enabled: true,
                min_populated: 1,
                // Sections stay off here so smaps (which walks PTPs)
                // keeps seeing every resident page; the section path
                // is pinned by the sat-core tests.
                sections: false,
            }),
        ),
    ]
}

/// Runs one strategy end to end and measures it.
pub fn reach_cell(
    record: &'static str,
    label: &'static str,
    config: KernelConfig,
    scale: Scale,
) -> sat_types::SatResult<ReachCell> {
    let touched = touched_pages(scale);
    let image_pages = touched * 16 / 6; // Figure 4 density
    let groups = image_pages / 16;
    let promoted = config.promote.enabled;

    let mut kernel = Kernel::new(config, 1 << 18);
    let zygote = kernel.create_process()?;
    kernel.exec_zygote(zygote)?;
    let file = kernel
        .files
        .register("image".to_string(), image_pages * PAGE_SIZE);
    kernel.mmap(
        zygote,
        &MmapRequest::file(
            image_pages * PAGE_SIZE,
            Perms::RX,
            file,
            0,
            RegionTag::ZygoteNativeCode,
            "image",
        )
        .at(VirtAddr::new(IMAGE_BASE)),
        &mut NoTlb,
    )?;
    // Launch: the zygote demand-faults the sparse working set.
    let touched_va = |i: u32| VirtAddr::new(IMAGE_BASE + (i as u64 * 16 / 6) as u32 * PAGE_SIZE);
    for i in 0..touched {
        kernel.page_fault(zygote, touched_va(i), AccessType::Execute, &mut NoTlb)?;
    }
    // The khugepaged pass (inert unless the policy enables it).
    kernel.promote_scan(zygote, &mut NoTlb)?;

    // Resident footprint of the image, per smaps: touched pages under
    // 4KB paging, every page of every collapsed group under promotion.
    let image_rss_kb = {
        let mm = kernel.mm(zygote)?;
        sat_vm::smaps(mm, &kernel.ptps, &kernel.phys)
            .iter()
            .filter(|e| e.tag == RegionTag::ZygoteNativeCode)
            .map(|e| e.rss)
            .sum::<u64>()
            / 1024
    };

    // Timeshare: two forked applications alternately sweep the
    // working set (warm pass first, then the measured sweeps).
    let a = kernel.fork(zygote)?.child;
    let b = kernel.fork(zygote)?.child;
    let mut m = sat_sim::Machine::single_core(kernel);
    for &pid in &[a, b] {
        m.context_switch(0, pid)?;
        for i in 0..touched {
            m.access(0, touched_va(i), AccessType::Execute)?;
        }
    }
    // khugepaged visits the apps too: under stock fork the file-backed
    // image is demand-refaulted per child, so each app pays its own
    // collapse (and its own waste — private large pages cannot be
    // shared, which is the paper's point). Inert when promotion is
    // off, so every cell runs the identical call sequence.
    m.syscall(|k, tlb| k.promote_scan(a, tlb))?;
    m.syscall(|k, tlb| k.promote_scan(b, tlb))?;
    m.reset_hw_stats();
    for _ in 0..SWEEPS {
        for &pid in &[a, b] {
            m.context_switch(0, pid)?;
            for i in 0..touched {
                m.access(0, touched_va(i), AccessType::Execute)?;
            }
        }
    }
    let stalls = m.cores[0].stats.inst_main_tlb_stall_cycles;

    // Demotion: partial region ops on large mappings must split them
    // (no-ops under 4KB paging — the same calls run in every cell so
    // the workloads stay identical).
    m.syscall(|k, tlb| {
        k.munmap(
            a,
            VaRange::from_len(VirtAddr::new(IMAGE_BASE), PAGE_SIZE),
            tlb,
        )
    })?;
    m.syscall(|k, tlb| {
        k.mprotect(
            b,
            VaRange::from_len(VirtAddr::new(IMAGE_BASE + 16 * PAGE_SIZE), PAGE_SIZE),
            Perms::R,
            tlb,
        )
    })?;

    let stats = &m.kernel.stats;
    Ok(ReachCell {
        record,
        label,
        image_rss_kb,
        tlb_entries: if promoted {
            u64::from(groups)
        } else {
            u64::from(touched)
        },
        stalls,
        translation: TranslationTotals {
            promotions: stats.promotions + stats.section_promotions,
            demotions: stats.demotions,
            splits: stats.split_ptes,
            waste_frames: stats.waste_frames,
        },
    })
}

/// Renders the reach table plus the waste-vs-paper summary from the
/// three measured cells (in `reach_kernels` order).
pub fn reach_render(scale: Scale, cells: &[ReachCell]) -> String {
    let touched = touched_pages(scale);
    let mut t = Table::new(
        "Extension: translation reach — stock vs shared vs 64KB promotion",
        &[
            "strategy",
            "image RSS KB",
            "waste frames",
            "TLB entries needed",
            "inst TLB stalls (2 procs)",
            "promote/demote",
        ],
    );
    for c in cells {
        t.row(vec![
            c.label.into(),
            count(c.image_rss_kb),
            count(c.translation.waste_frames),
            count(c.tlb_entries),
            count(c.stalls),
            format!("{}/{}", c.translation.promotions, c.translation.demotions),
        ]);
    }
    let stock = &cells[0];
    let shared = &cells[1];
    let promoted = &cells[2];
    let waste_ratio = promoted.image_rss_kb as f64 / stock.image_rss_kb as f64;
    let mut out = t.render();
    out.push_str(&format!(
        "Promotion reaches the image with {}x fewer TLB entries and cuts \
         cross-process stalls by {},\nbut maps {:.1}x the 4KB resident \
         footprint (paper Section 2.3.3: ~2.6x): {} frames were\nmapped and \
         never touched ({} of the {}-page working set is promotion fill).\n\
         Shared translation cuts stalls by {} at the 4KB footprint — reach \
         without the waste.\n\n",
        stock.tlb_entries / promoted.tlb_entries,
        pct(1.0 - promoted.stalls as f64 / stock.stalls as f64),
        waste_ratio,
        count(promoted.translation.waste_frames),
        pct(promoted.translation.waste_frames as f64
            / (promoted.translation.waste_frames as f64 + f64::from(touched))),
        count(u64::from(touched)),
        pct(1.0 - shared.stalls as f64 / stock.stalls as f64),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promoted_cell_reaches_further_and_wastes_memory() {
        let cells: Vec<ReachCell> = reach_kernels()
            .into_iter()
            .map(|(record, label, config)| reach_cell(record, label, config, Scale::Quick).unwrap())
            .collect();
        let (stock, shared, promoted) = (&cells[0], &cells[1], &cells[2]);
        // 4KB cells: resident = touched, no promotion machinery.
        assert_eq!(stock.image_rss_kb, 192 * 4);
        assert_eq!(stock.translation.promotions, 0);
        assert_eq!(stock.translation.waste_frames, 0);
        assert_eq!(shared.image_rss_kb, stock.image_rss_kb);
        // The promoted cell collapses every group in the zygote and
        // both apps, and each pays its own waste: the paper's >=2x
        // claim, measured (16/6 ~ 2.67x here, per process).
        assert_eq!(promoted.translation.promotions, 3 * 512 / 16);
        assert!(promoted.image_rss_kb >= 2 * stock.image_rss_kb);
        assert_eq!(
            promoted.translation.waste_frames,
            3 * (promoted.image_rss_kb / 4 - 192)
        );
        // Reach: one entry per group instead of one per touched page
        // (6x fewer at the Figure 4 density), fewer stalls than stock.
        assert_eq!(promoted.tlb_entries, 512 / 16);
        assert_eq!(stock.tlb_entries, 192);
        assert!(promoted.stalls < stock.stalls);
        // The demote tail ran: both partial ops split a group.
        assert_eq!(promoted.translation.demotions, 2);
        assert!(promoted.translation.splits > 0);
        let text = reach_render(Scale::Quick, &cells);
        assert!(text.contains("translation reach"));
        assert!(text.contains("paper Section 2.3.3"));
    }

    #[test]
    fn rendered_table_is_deterministic() {
        let run = || {
            let cells: Vec<ReachCell> = reach_kernels()
                .into_iter()
                .map(|(record, label, config)| {
                    reach_cell(record, label, config, Scale::Quick).unwrap()
                })
                .collect();
            reach_render(Scale::Quick, &cells)
        };
        assert_eq!(run(), run());
    }
}
