//! Fleet-scale experiment: fork N apps from the zygote, timeshare
//! them briefly on `sat-sched`, then reap the whole fleet — stock vs
//! shared translation at N up to 4096 on up to 64 cores.
//!
//! The point is wall-clock *scaling*, not the TLB columns the other
//! extensions already cover: the scheduled work is held roughly
//! constant across fleet sizes (see [`FleetOptions::new`]), so the
//! wall time of each cell isolates the per-process fork and teardown
//! cost. With the shared-PTP registry, fork of the fully-shared
//! zygote image is O(shared regions) refcount bumps and exit is
//! O(referenced PTPs) detaches, so the shared kernel's wall clock
//! should stay near-flat as N grows 4× per step. `repro diff` gates
//! each fleet size as its own experiment record (see
//! [`record_name`]) so a regression at N=4096 cannot hide behind a
//! flat aggregate.

use sat_core::KernelConfig;
use sat_sched::{run_fleet, FleetOptions, FleetReport};

use crate::render::{count, pct, Table};
use crate::Scale;

/// The (apps, cores) grid per scale. Cores grow with the fleet the
/// way the paper's scalability projection scales hardware.
pub fn fleet_counts(scale: Scale) -> &'static [(usize, usize)] {
    match scale {
        Scale::Paper => &[(256, 16), (1024, 32), (4096, 64)],
        Scale::Quick => &[(64, 8), (256, 16)],
    }
}

/// The snapshot record name for one fleet size. Static per-N names
/// make every fleet size its own experiment in `BENCH_repro.json`,
/// so the `repro diff` wall-clock gate fires per N — a regression at
/// N=4096 is not masked by an in-threshold aggregate.
pub fn record_name(apps: usize) -> &'static str {
    match apps {
        64 => "fleet_n64",
        256 => "fleet_n256",
        1024 => "fleet_n1024",
        4096 => "fleet_n4096",
        _ => "fleet",
    }
}

/// The two kernels under comparison. The ASID/no-ASID ablation adds
/// nothing here — the fleet measures fork/teardown cost, not TLB
/// reach — so the grid stays two cells per N.
fn configs() -> [(&'static str, KernelConfig); 2] {
    [
        ("Stock Android", KernelConfig::stock()),
        ("Shared PTP & TLB", KernelConfig::shared_ptp_tlb()),
    ]
}

/// One fleet size: the stock and shared cells fan out on the worker
/// pool; the table prints only deterministic counters (wall times go
/// to the snapshot, where `repro diff` gates them per N).
pub fn fleet_n(apps: usize, cores: usize) -> sat_types::SatResult<String> {
    let jobs: Vec<_> = configs()
        .map(|(_, config)| move || run_fleet(config, FleetOptions::new(apps, cores)))
        .into_iter()
        .collect();
    let mut results = crate::pool::run_cells(jobs).into_iter();
    let mut t = Table::new(
        &format!("Fleet: {apps} apps on {cores} cores (fork, timeshare, reap all)"),
        &[
            "kernel",
            "share forks",
            "ptp unshares",
            "page faults",
            "inst TLB stalls",
            "frames after",
            "live procs",
        ],
    );
    let mut stock: Option<FleetReport> = None;
    let mut shared: Option<FleetReport> = None;
    for (label, _) in configs() {
        let r: FleetReport = results.next().expect("one cell per kernel")?;
        // Every cell must create and reap the full fleet, and
        // teardown must leave nothing shared and only the zygote
        // alive — the registry/arena leak witnesses.
        assert_eq!(r.processes_created, apps as u64);
        assert_eq!(r.exits, apps as u64);
        assert_eq!(r.registry_shared_after, 0, "shared PTPs leaked at {label}");
        assert_eq!(r.live_processes_after, 1, "processes leaked at {label}");
        t.row(vec![
            label.into(),
            count(r.share_forks),
            count(r.ptp_unshares),
            count(r.page_faults),
            count(r.inst_tlb_stall),
            count(r.frames_in_use_after),
            count(r.live_processes_after as u64),
        ]);
        match label {
            "Stock Android" => stock = Some(r),
            _ => shared = Some(r),
        }
    }
    let stock = stock.expect("grid includes stock");
    let shared = shared.expect("grid includes shared");
    let mut out = t.render();
    out.push_str(&format!(
        "All {} forks of the {}-app fleet attached to the zygote's page tables by\n\
         refcount bump; the shared kernel took {} fewer launch-path page faults than\n\
         stock and both kernels tore back down to the zygote's {} frames.\n\n",
        count(shared.share_forks),
        apps,
        pct(1.0 - shared.page_faults as f64 / stock.page_faults.max(1) as f64),
        count(shared.frames_in_use_after),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_value(out: &str, kernel: &str, col: usize) -> u64 {
        out.lines()
            .find(|l| l.starts_with('|') && l.contains(kernel))
            .unwrap_or_else(|| panic!("no row for {kernel}"))
            .split('|')
            .nth(col)
            .unwrap()
            .trim()
            .replace(',', "")
            .parse()
            .unwrap()
    }

    #[test]
    fn fleet_cell_is_deterministic_and_shared_forks_cheaper() {
        let (apps, cores) = fleet_counts(Scale::Quick)[0];
        let a = fleet_n(apps, cores).unwrap();
        let b = fleet_n(apps, cores).unwrap();
        assert_eq!(a, b, "fleet table must be byte-identical across runs");
        let stock_faults = cell_value(&a, "Stock Android", 4);
        let shared_faults = cell_value(&a, "Shared PTP & TLB", 4);
        assert!(
            shared_faults < stock_faults,
            "shared fleet faults {shared_faults} not below stock {stock_faults}"
        );
        let share_forks = cell_value(&a, "Shared PTP & TLB", 2);
        assert_eq!(share_forks, apps as u64, "every fork must share");
        // Stock never shares, and both kernels print a lone zygote.
        assert_eq!(cell_value(&a, "Stock Android", 2), 0);
        assert_eq!(cell_value(&a, "Stock Android", 7), 1);
        assert_eq!(cell_value(&a, "Shared PTP & TLB", 7), 1);
    }

    #[test]
    fn every_grid_size_has_a_static_record_name() {
        for scale in [Scale::Paper, Scale::Quick] {
            for &(apps, _) in fleet_counts(scale) {
                assert_ne!(record_name(apps), "fleet", "no per-N name for {apps}");
            }
        }
    }
}
