//! The sharing-under-pressure extension (`repro pressure`): the serve
//! workload re-run under finite physical-frame budgets, stock vs
//! shared, so reclaim's two PTE-teardown paths face off.
//!
//! The grid is kernels × budgets. Budgets derive from the *uncapped*
//! runs' peak frame footprint (deterministic, so the grid is too):
//! `inf` (no budget), `tight` (15/16 of the peak — reclaim engages
//! near the peak), and `starved` (3/4 of the peak — sustained
//! pressure). Under pressure the clock-LRU evicts file page-cache
//! frames; every PTE mapping a victim is torn via the reverse map.
//! Under the stock kernel that is one tear per *process* that mapped
//! the page; under PTP sharing the zygote-preloaded working set lives
//! in shared PTPs, so one tear through the shared PTP repairs every
//! sharer at once — the `reclaim` unshare cause in Figure-6 terms,
//! except the PTP *stays* shared. The refaults then repopulate from
//! the page cache on the next touch, and their cost lands on request
//! critical paths (`repro tails` on a traced pressure run breaks the
//! tail down by cause).

use sat_core::KernelConfig;
use sat_sched::{ServeOptions, ServeReport};

use crate::render::{count, pct, Table};
use crate::servebench::{serve_counts, serve_kernels, serve_opts};
use crate::Scale;

/// The finite budget levels, as fractions of the uncapped peak:
/// label, numerator, denominator.
const LEVELS: [(&str, u64, u64); 2] = [("tight", 15, 16), ("starved", 3, 4)];

/// Servers in every pressure cell: the scale's largest serve count.
pub fn pressure_servers(scale: Scale) -> usize {
    *serve_counts(scale)
        .last()
        .expect("serve_counts is never empty")
}

/// Workload sizing for one pressure cell: the serve sweep's largest
/// configuration with the budget applied.
pub fn pressure_opts(scale: Scale, mem_frames: Option<u64>) -> ServeOptions {
    let mut opts = serve_opts(pressure_servers(scale), scale);
    opts.mem_frames = mem_frames;
    opts
}

/// Finite budgets derived from the uncapped peak footprint, in
/// tightening order.
pub fn derive_budgets(peak: u64) -> Vec<(&'static str, u64)> {
    LEVELS
        .iter()
        .map(|&(label, num, den)| (label, (peak * num / den).max(1)))
        .collect()
}

/// Snapshot record names of every cell the grid produces, in run
/// order (`repro tails` scans these for traced pressure brackets).
pub fn record_names() -> Vec<String> {
    let mut names = Vec::new();
    for (kname, _, _) in serve_kernels() {
        names.push(format!("pressure_{}_inf", short(kname)));
    }
    for (kname, _, _) in serve_kernels() {
        for (blabel, _, _) in LEVELS {
            names.push(format!("pressure_{}_{blabel}", short(kname)));
        }
    }
    names
}

/// `serve_stock` -> `stock`.
fn short(record: &str) -> &str {
    record.strip_prefix("serve_").unwrap_or(record)
}

/// One grid cell: snapshot record name, frame budget (`None` for the
/// uncapped baselines), and the cell's report.
pub type PressureCell = (String, Option<u64>, ServeReport);

/// Runs the whole grid through `run_cell` (the `repro` binary wraps
/// each call in a timed snapshot record; tests pass `run_serve`
/// directly) and renders one table per kernel plus the cross-kernel
/// summary. Returns the text and every cell as
/// `(record_name, mem_frames, report)` in run order.
pub fn grid<E>(
    scale: Scale,
    mut run_cell: impl FnMut(&str, ServeOptions, KernelConfig) -> Result<ServeReport, E>,
) -> Result<(String, Vec<PressureCell>), E> {
    // Wave 1: the uncapped baselines, whose peak footprint sizes the
    // finite budgets.
    let mut cells: Vec<PressureCell> = Vec::new();
    for (kname, _, config) in serve_kernels() {
        let record = format!("pressure_{}_inf", short(kname));
        let report = run_cell(&record, pressure_opts(scale, None), config)?;
        cells.push((record, None, report));
    }
    let peak = cells
        .iter()
        .map(|(_, _, r)| r.frames_peak)
        .max()
        .unwrap_or(0);
    let budgets = derive_budgets(peak);

    // Wave 2: the same workload squeezed under each finite budget.
    for (kname, _, config) in serve_kernels() {
        for &(blabel, frames) in &budgets {
            let record = format!("pressure_{}_{blabel}", short(kname));
            let report = run_cell(&record, pressure_opts(scale, Some(frames)), config)?;
            cells.push((record, Some(frames), report));
        }
    }

    let mut s = String::new();
    for (kname, label, _) in serve_kernels() {
        let prefix = format!("pressure_{}_", short(kname));
        let mut t = Table::new(
            &format!(
                "Extension: serving under memory pressure, {label} \
                 ({} servers, budgets from the {}-frame uncapped peak)",
                pressure_servers(scale),
                count(peak)
            ),
            &[
                "budget", "frames", "p50", "p95", "p99", "reclaims", "evicted", "refaults",
                "unshares",
            ],
        );
        for (record, mem_frames, r) in cells.iter().filter(|(n, _, _)| n.starts_with(&prefix)) {
            let blabel = record.strip_prefix(&prefix).expect("filtered on prefix");
            t.row(vec![
                blabel.to_string(),
                mem_frames.map_or_else(|| "-".to_string(), count),
                count(r.p50),
                count(r.p95),
                count(r.p99),
                count(r.reclaims),
                count(r.reclaimed_pages),
                count(r.refaults),
                count(r.ptp_unshares),
            ]);
        }
        s.push_str(&t.render());
    }
    s.push_str(&summary(peak, &budgets, &cells));
    Ok((s, cells))
}

/// The cross-kernel closing paragraph: how the starved tail moved and
/// how each kernel paid for its evictions.
fn summary(peak: u64, budgets: &[(&'static str, u64)], cells: &[PressureCell]) -> String {
    let get = |name: &str| -> &ServeReport {
        &cells
            .iter()
            .find(|(n, _, _)| n == name)
            .expect("grid ran every cell")
            .2
    };
    let (_, starved_frames) = *budgets.last().expect("LEVELS is never empty");
    let stock = get("pressure_stock_starved");
    let shared = get("pressure_shared_starved");
    format!(
        "Under the starved budget ({} frames, {} of the {}-frame peak), stock\n\
         pays for its {} evictions with {} private PTE tears, while sharing\n\
         repairs its victims with {} shared-PTP tears (one per PTP slot, all\n\
         sharers at once) plus {} private tears; p99 moves from {} (stock) to\n\
         {} cycles ({} of stock). Trace the run and use `repro tails` for the\n\
         per-cause blame behind the pressure tail.\n\n",
        count(starved_frames),
        pct(starved_frames as f64 / peak.max(1) as f64),
        count(peak),
        count(stock.reclaimed_pages),
        count(stock.reclaim_pte_tears),
        count(shared.reclaim_shared_tears),
        count(shared.reclaim_pte_tears),
        count(stock.p99),
        count(shared.p99),
        pct(shared.p99 as f64 / stock.p99.max(1) as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_sched::run_serve;

    #[test]
    fn pressure_grid_reclaims_under_finite_budgets_and_renders() {
        let (text, cells) = grid(Scale::Quick, |_, opts, config| run_serve(config, opts)).unwrap();
        assert!(text.contains("serving under memory pressure"), "{text}");
        assert!(text.contains("starved"), "{text}");
        assert!(text.contains("shared-PTP tears"), "{text}");
        assert_eq!(cells.len(), 6, "2 kernels x (inf + 2 finite budgets)");
        assert_eq!(
            cells.iter().map(|(n, _, _)| n.clone()).collect::<Vec<_>>(),
            record_names()
        );
        for (name, mem_frames, r) in &cells {
            assert_eq!(
                r.requests,
                pressure_opts(Scale::Quick, None).requests as u64,
                "{name} must drain"
            );
            match mem_frames {
                None => assert_eq!(r.reclaims, 0, "{name}: no budget, no reclaim"),
                Some(_) => assert!(r.reclaims > 0, "{name} must reclaim: {r:?}"),
            }
            // Only the starved budget is guaranteed to evict pages the
            // workload touches again; tight may bite once near the end
            // of the run and never see a refault at quick scale.
            if name.ends_with("_starved") {
                assert!(r.refaults > 0, "{name} must refault: {r:?}");
            }
        }
        // The teardown split matches the kernels: stock never tears
        // through a shared PTP; sharing must.
        let get = |n: &str| &cells.iter().find(|(c, _, _)| c == n).unwrap().2;
        assert_eq!(get("pressure_stock_starved").reclaim_shared_tears, 0);
        assert!(get("pressure_shared_starved").reclaim_shared_tears > 0);
    }

    #[test]
    fn pressure_grid_is_deterministic() {
        // The grid is serial by construction (budgets depend on the
        // uncapped wave), so thread-count cannot perturb it; repeated
        // runs must be byte-identical.
        let run = || grid(Scale::Quick, |_, opts, config| run_serve(config, opts)).unwrap();
        let (a, ar) = run();
        let (b, br) = run();
        assert_eq!(a, b, "pressure grid text changed between runs");
        assert_eq!(ar, br, "pressure grid reports changed between runs");
    }
}
