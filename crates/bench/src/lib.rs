//! The experiment harness: one module per group of tables/figures
//! from the paper's evaluation, plus ablations.
//!
//! Every experiment has a paper-scale and a quick-scale variant
//! (see [`Scale`]); the `repro` binary drives them and renders the
//! same rows/series the paper reports. Absolute cycle counts differ
//! from the Nexus 7 — the reproduction target is the *shape*: who
//! wins, by roughly what factor, and where the crossovers are.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod extensions;
pub mod fleetbench;
pub mod ipcbench;
pub mod launchbench;
pub mod motivation;
pub mod pool;
pub mod pressurebench;
pub mod reachbench;
pub mod render;
pub mod servebench;
pub mod snapshot;
pub mod steadybench;
pub mod timesharebench;
pub mod zygotebench;

/// Experiment scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Paper-calibrated sizing (seconds to minutes per experiment).
    Paper,
    /// Scaled-down sizing for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Parses `--quick` style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}
