//! Timesharing extension: N co-resident applications round-robin
//! scheduled over four cores by `sat-sched`, under the three kernels
//! the paper compares. This is the multi-core follow-up to the
//! pinned-workload figures: context switches every few hundred
//! instructions, binder calls between siblings, and enough process
//! churn to roll the 8-bit ASID space over.

use sat_core::KernelConfig;
use sat_sched::{run_timeshare, TimeshareOptions, TimeshareReport};

use crate::motivation::SEED;
use crate::render::{count, pct, Table};
use crate::Scale;

/// App counts of the timesharing sweep per scale (the sweep's
/// worker-pool grid is one cell per count per kernel config).
pub fn timeshare_counts(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Paper => &[4, 16, 64],
        Scale::Quick => &[4, 16],
    }
}

/// The three kernels under comparison.
fn configs() -> [(&'static str, KernelConfig); 3] {
    [
        ("Stock Android", KernelConfig::stock()),
        ("Shared PTP & TLB", KernelConfig::shared_ptp_tlb()),
        (
            "Shared, no ASID",
            KernelConfig::shared_ptp_tlb().without_asid(),
        ),
    ]
}

/// Workload sizing for one grid cell. The largest app count of each
/// scale also churns 260 extra processes through exit-and-respawn, so
/// every run exercises at least one ASID rollover (>255 cumulative
/// processes through a 255-value space).
fn cell_opts(apps: usize, scale: Scale) -> TimeshareOptions {
    let largest = *timeshare_counts(scale).last().unwrap();
    let (rounds, quantum_events, ws_pages) = match scale {
        Scale::Paper => (16, 300, 48),
        Scale::Quick => (8, 120, 24),
    };
    TimeshareOptions {
        rounds,
        quantum_events,
        ws_pages,
        churn: if apps == largest { 260 } else { apps },
        ipc_every: 3,
        seed: SEED,
        ..TimeshareOptions::new(apps)
    }
}

/// The timesharing sweep: every (app count, kernel) cell boots its own
/// system and runs the identical seeded schedule, fanned out on the
/// worker pool; reassembly in grid order keeps the table byte-identical
/// to a serial run.
pub fn timeshare(scale: Scale) -> sat_types::SatResult<String> {
    let counts = timeshare_counts(scale);
    let mut t = Table::new(
        "Extension: timesharing N apps on 4 cores (sat-sched, round-robin)",
        &[
            "apps",
            "kernel",
            "inst TLB stalls",
            "cross-ASID hits",
            "shootdown IPIs",
            "avoided flushes",
            "rollovers",
            "procs created",
        ],
    );
    let cell = |apps: usize, config: KernelConfig, scale: Scale| {
        run_timeshare(config, cell_opts(apps, scale))
    };
    let jobs: Vec<_> = counts
        .iter()
        .flat_map(|&apps| configs().map(|(_, config)| move || cell(apps, config, scale)))
        .collect();
    let mut results = crate::pool::run_cells(jobs).into_iter();
    let mut stock_stalls_at_largest = 0u64;
    let mut shared_at_largest: Option<TimeshareReport> = None;
    for &apps in counts {
        for (label, _) in configs() {
            let r: TimeshareReport = results.next().expect("one cell per grid point")?;
            // The rollover bookkeeping must reconcile in every cell.
            assert_eq!(r.asid_generation, 1 + r.asid_rollovers);
            if apps == *counts.last().unwrap() {
                match label {
                    "Stock Android" => stock_stalls_at_largest = r.inst_tlb_stall,
                    "Shared PTP & TLB" => shared_at_largest = Some(r),
                    _ => {}
                }
            }
            t.row(vec![
                apps.to_string(),
                label.into(),
                count(r.inst_tlb_stall),
                count(r.cross_asid_hits),
                count(r.shootdown_ipis),
                count(r.avoided_flushes),
                count(r.asid_rollovers),
                count(r.processes_created),
            ]);
        }
    }
    let mut out = t.render();
    let shared = shared_at_largest.expect("grid includes the largest count");
    let broadcast_ipis = shared.shootdown_ipis + shared.avoided_flushes;
    out.push_str(&format!(
        "With {} timeshared apps, shared translation cuts instruction main-TLB stalls by\n\
         {} vs stock; precise shootdown IPIs {} of the {} cores broadcast would, and the\n\
         {} rollovers ({} processes through 255 ASIDs) kept every global entry live.\n\n",
        counts.last().unwrap(),
        pct(1.0 - shared.inst_tlb_stall as f64 / stock_stalls_at_largest.max(1) as f64),
        count(shared.shootdown_ipis),
        count(broadcast_ipis),
        count(shared.asid_rollovers),
        count(shared.processes_created),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_value(out: &str, apps: &str, kernel: &str, col: usize) -> u64 {
        out.lines()
            .find(|l| {
                let mut cells = l.split('|').map(str::trim);
                cells.nth(1) == Some(apps) && l.contains(kernel)
            })
            .unwrap_or_else(|| panic!("no row for {apps}/{kernel}"))
            .split('|')
            .nth(col)
            .unwrap()
            .trim()
            .replace(',', "")
            .parse()
            .unwrap()
    }

    #[test]
    fn shared_beats_stock_at_sixteen_apps() {
        let out = timeshare(Scale::Quick).unwrap();
        let stock = cell_value(&out, "16", "Stock Android", 3);
        let shared = cell_value(&out, "16", "Shared PTP & TLB", 3);
        assert!(
            shared < stock,
            "shared inst-TLB stalls {shared} not below stock {stock}"
        );
    }

    #[test]
    fn precise_shootdown_skips_cores_and_rollovers_happen() {
        let out = timeshare(Scale::Quick).unwrap();
        let avoided = cell_value(&out, "16", "Shared PTP & TLB", 6);
        let rollovers = cell_value(&out, "16", "Shared PTP & TLB", 7);
        let procs = cell_value(&out, "16", "Shared PTP & TLB", 8);
        assert!(avoided > 0, "no shootdown ever skipped a core");
        assert!(rollovers >= 1, "no rollover despite {procs} processes");
        assert!(procs > 255);
    }
}
