//! Ablations for the design choices discussed in Sections 3.1.3 and
//! 3.2.3.

use sat_android::{launch_app, AndroidSystem, LibraryLayout};
use sat_core::{CopyOnUnshare, KernelConfig, TlbProtection};
use sat_types::{AccessType, Perms, SatResult, VirtAddr, PAGE_SIZE};
use sat_vm::MmapRequest;

use crate::launchbench::launch_opts;
use crate::motivation::SEED;
use crate::render::Table;
use crate::zygotebench::{boot_opts, profiles};
use crate::Scale;

/// Ablation 1 (Section 3.1.3, "Whether Page Table Entries Should Be
/// Copied Upon Unsharing"): copy all valid PTEs vs only referenced
/// ones. Copying less makes the unshare cheaper but re-introduces
/// soft faults for the skipped PTEs.
pub fn ablation_unshare(scale: Scale) -> SatResult<String> {
    let mut t = Table::new(
        "Ablation: copy-on-unshare policy",
        &[
            "Policy",
            "PTEs copied by unshares",
            "file faults",
            "unshares",
        ],
    );
    for (label, policy) in [
        ("Copy all (paper)", CopyOnUnshare::All),
        ("Referenced only", CopyOnUnshare::ReferencedOnly),
    ] {
        let config = KernelConfig {
            copy_on_unshare: policy,
            ..KernelConfig::shared_ptp()
        };
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let p = profiles(&sys, scale).remove(0);
        let (pid, _) = launch_app(&mut sys, &launch_opts(scale))?;
        let slot = sys.attach_app(pid, p)?;
        sys.run_steady(slot, crate::steadybench::steady_events(scale))?;
        let r = sys.steady_report(slot)?;
        let mm = sys.machine.kernel.mm(pid)?;
        t.row(vec![
            label.to_string(),
            format!("{}", mm.counters.ptes_copied_unshare),
            format!("{}", r.file_faults),
            format!("{}", r.unshares),
        ]);
    }
    Ok(t.render())
}

/// Ablation 2 (Section 3.1.3, "Hardware Support"): if level-1 PTEs
/// could write-protect their whole range (as x86 PDEs can), the
/// per-PTE write-protect pass at share time would be unnecessary,
/// making fork cheaper still.
pub fn ablation_hw_assist(scale: Scale) -> SatResult<String> {
    let mut t = Table::new(
        "Ablation: level-1 write-protect hardware assist",
        &["Kernel", "fork cycles (x10^6)", "write-protect ops at fork"],
    );
    for (label, l1_wp) in [
        ("ARM (per-PTE pass)", false),
        ("Hypothetical L1 assist", true),
    ] {
        let config = KernelConfig {
            l1_write_protect: l1_wp,
            ..KernelConfig::shared_ptp()
        };
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let (outcome, cycles) = sys.machine.fork(0, sys.zygote)?;
        t.row(vec![
            label.to_string(),
            format!("{:.2}", cycles as f64 / 1e6),
            format!("{}", outcome.write_protect_ops),
        ]);
    }
    Ok(t.render())
}

/// Ablation 3 (Table 4's design choice): sharing the stack PTP too.
/// The stack is written as soon as the child runs, so the share is
/// immediately undone by an unshare — pure overhead.
pub fn ablation_stack(scale: Scale) -> SatResult<String> {
    let mut t = Table::new(
        "Ablation: sharing the stack PTP",
        &[
            "Policy",
            "PTEs copied at fork",
            "PTPs shared",
            "unshares after first stack write",
        ],
    );
    for (label, share_stack) in [("Exclude stack (paper)", false), ("Share stack", true)] {
        let config = KernelConfig {
            share_stack,
            ..KernelConfig::shared_ptp()
        };
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        let (outcome, _) = sys.machine.fork(0, sys.zygote)?;
        sys.machine.context_switch(0, outcome.child)?;
        // The child touches its stack immediately.
        sys.machine
            .access(0, VirtAddr::new(0xBF00_0000), AccessType::Write)?;
        let unshares = sys.machine.kernel.mm(outcome.child)?.counters.ptps_unshared;
        t.row(vec![
            label.to_string(),
            format!("{}", outcome.ptes_copied),
            format!("{}", outcome.ptps_shared),
            format!("{unshares}"),
        ]);
    }
    Ok(t.render())
}

/// Ablation 4 (Section 3.2.3): protecting shared global TLB entries
/// with the domain model (precise faults) vs flushing the whole TLB
/// when switching from a zygote-like to a non-zygote process.
pub fn ablation_tlb_protection(scale: Scale) -> SatResult<String> {
    let iterations = match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 300,
    };
    let mut t = Table::new(
        "Ablation: shared-TLB-entry protection scheme",
        &[
            "Scheme",
            "app inst-TLB stall cycles",
            "domain faults",
            "full TLB flushes",
        ],
    );
    for (label, protection) in [
        ("Domain faults (paper)", TlbProtection::DomainFault),
        ("Flush on switch", TlbProtection::FlushOnSwitch),
    ] {
        let config = KernelConfig {
            tlb_protection: protection,
            ..KernelConfig::shared_ptp_tlb()
        };
        let mut sys =
            AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
        // A zygote-child app alternating with a non-zygote daemon that
        // runs its own code at non-overlapping addresses.
        let (app_outcome, _) = sys.machine.fork(0, sys.zygote)?;
        let app = app_outcome.child;
        let daemon = sys.machine.kernel.create_process()?;
        let dfile = sys
            .machine
            .kernel
            .files
            .register("daemon".to_string(), 32 * PAGE_SIZE);
        // The app's working set: the first pages of a large preloaded
        // library (global entries under shared TLB).
        let lib = *sys
            .catalog
            .zygote_native
            .iter()
            .find(|id| sys.catalog.lib(**id).code_pages >= 32)
            .expect("large library");
        let lib_base = sys.map.code_base(lib).unwrap();
        // The daemon maps its own code at the SAME virtual addresses
        // (a non-zygote process's mmap area naturally collides with
        // zygote-preloaded library addresses), so global entries left
        // by the app would translate the daemon's fetches WRONGLY —
        // the protection scheme must intervene.
        let dreq = MmapRequest::file(
            32 * PAGE_SIZE,
            Perms::RX,
            dfile,
            0,
            sat_types::RegionTag::AppCode,
            "daemon",
        )
        .at(lib_base);
        sys.machine.syscall(|k, tlb| k.mmap(daemon, &dreq, tlb))?;

        let stall0 = sys.machine.cores[0].stats.inst_main_tlb_stall_cycles;
        let mut app_stall = 0;
        for _ in 0..iterations {
            sys.machine.context_switch(0, app)?;
            let s0 = sys.machine.cores[0].stats.inst_main_tlb_stall_cycles;
            for p in 0..16u32 {
                sys.machine.access(
                    0,
                    VirtAddr::new(lib_base.raw() + p * PAGE_SIZE),
                    AccessType::Execute,
                )?;
            }
            app_stall += sys.machine.cores[0].stats.inst_main_tlb_stall_cycles - s0;
            sys.machine.context_switch(0, daemon)?;
            for p in 0..8u32 {
                sys.machine.access(
                    0,
                    VirtAddr::new(lib_base.raw() + p * PAGE_SIZE),
                    AccessType::Execute,
                )?;
            }
        }
        let _ = stall0;
        let stats = sys.machine.cores[0].main_tlb.stats();
        t.row(vec![
            label.to_string(),
            format!("{app_stall}"),
            format!("{}", sys.machine.kernel.stats.domain_faults),
            format!("{}", stats.full_flushes),
        ]);
    }
    Ok(t.render())
}

/// Runs every ablation.
pub fn all(scale: Scale) -> SatResult<String> {
    let mut out = String::new();
    out.push_str(&ablation_unshare(scale)?);
    out.push_str(&ablation_hw_assist(scale)?);
    out.push_str(&ablation_stack(scale)?);
    out.push_str(&ablation_tlb_protection(scale)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_assist_removes_write_protect_pass() {
        let out = ablation_hw_assist(Scale::Quick).unwrap();
        // The assist row reports zero write-protect operations.
        let assist_line = out
            .lines()
            .find(|l| l.contains("Hypothetical"))
            .unwrap()
            .to_string();
        assert!(
            assist_line.trim_end().ends_with("| 0 |") || assist_line.contains("| 0 "),
            "{assist_line}"
        );
    }

    #[test]
    fn sharing_stack_forces_immediate_unshare() {
        let out = ablation_stack(Scale::Quick).unwrap();
        let share_line = out.lines().find(|l| l.contains("Share stack")).unwrap();
        let cells: Vec<&str> = share_line.split('|').map(str::trim).collect();
        // PTEs copied at fork drops to 0, but the first write unshares.
        let copied: u64 = cells[2].parse().unwrap();
        let unshares: u64 = cells[4].parse().unwrap();
        assert_eq!(copied, 0);
        assert!(unshares >= 1);
    }

    #[test]
    fn flush_on_switch_flushes_more() {
        let out = ablation_tlb_protection(Scale::Quick).unwrap();
        let get = |label: &str, col: usize| -> u64 {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            cells[col].parse().unwrap()
        };
        let domain_flushes = get("Domain faults", 4);
        let switch_flushes = get("Flush on switch", 4);
        assert!(switch_flushes > domain_flushes);
        // The precise scheme actually takes domain faults.
        assert!(get("Domain faults", 3) > 0);
        assert_eq!(get("Flush on switch", 3), 0);
        // Domain-fault mode costs the app fewer TLB stalls.
        let domain_stall = get("Domain faults", 2);
        let switch_stall = get("Flush on switch", 2);
        assert!(
            domain_stall <= switch_stall,
            "{domain_stall} vs {switch_stall}"
        );
    }

    #[test]
    fn unshare_policy_tradeoff_visible() {
        let out = ablation_unshare(Scale::Quick).unwrap();
        let get = |label: &str, col: usize| -> u64 {
            let line = out.lines().find(|l| l.contains(label)).unwrap();
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            cells[col].parse().unwrap()
        };
        let all_copied = get("Copy all", 2);
        let ref_copied = get("Referenced only", 2);
        assert!(ref_copied <= all_copied);
    }
}
