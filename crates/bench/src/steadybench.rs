//! Steady-state experiments over the whole application suite:
//! Figures 10, 11, 12 and the PTEs-copied cost of Section 4.2.3.

use sat_android::{launch_app, AndroidSystem, LibraryLayout, SteadyReport};
use sat_core::KernelConfig;
use sat_types::SatResult;

use crate::launchbench::launch_opts;
use crate::motivation::SEED;
use crate::render::{pct, Table};
use crate::zygotebench::{boot_opts, profiles};
use crate::Scale;

/// Steady-state fetch events per application.
pub fn steady_events(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 2_500,
    }
}

/// Runs the full suite (launch + steady state for all eleven
/// applications, all kept alive) under one configuration and returns
/// the per-app reports in suite order.
pub fn run_suite(
    config: KernelConfig,
    layout: LibraryLayout,
    scale: Scale,
) -> SatResult<Vec<SteadyReport>> {
    let mut sys = AndroidSystem::boot(config, layout, SEED, 11, boot_opts(scale))?;
    let apps = profiles(&sys, scale);
    let events = steady_events(scale);
    let opts = launch_opts(scale);
    let mut slots = Vec::new();
    for p in apps {
        let (pid, _) = launch_app(&mut sys, &opts)?;
        let slot = sys.attach_app(pid, p)?;
        slots.push(slot);
    }
    for &slot in &slots {
        sys.run_steady(slot, events)?;
    }
    slots.iter().map(|&s| sys.steady_report(s)).collect()
}

/// The four suite configurations.
fn suite_configs() -> [(&'static str, KernelConfig, LibraryLayout); 4] {
    [
        (
            "Stock Android",
            KernelConfig::stock(),
            LibraryLayout::Original,
        ),
        (
            "Shared PTP",
            KernelConfig::shared_ptp(),
            LibraryLayout::Original,
        ),
        (
            "Stock Android-2MB",
            KernelConfig::stock(),
            LibraryLayout::Aligned2Mb,
        ),
        (
            "Shared PTP-2MB",
            KernelConfig::shared_ptp(),
            LibraryLayout::Aligned2Mb,
        ),
    ]
}

/// Figures 10-12 plus the Section 4.2.3 PTE-copy cost, in one sweep.
/// The four suite cells are independent (each boots its own system
/// from [`SEED`]) and run on the worker pool; reassembly in grid
/// order keeps the rendered tables byte-identical to a serial run.
pub fn steady_experiment(scale: Scale) -> SatResult<String> {
    let names: Vec<&str> = sat_trace::APP_NAMES.to_vec();
    let jobs: Vec<_> = suite_configs()
        .into_iter()
        .map(|(label, config, layout)| move || (label, run_suite(config, layout, scale)))
        .collect();
    let mut results = Vec::new();
    for (label, reports) in crate::pool::run_cells(jobs) {
        results.push((label, reports?));
    }
    let (stock, shared, _stock2, shared2) =
        (&results[0].1, &results[1].1, &results[2].1, &results[3].1);

    let mut out = String::new();

    // Figure 10: percent reduction in file-backed page faults.
    let mut t10 = Table::new(
        "Figure 10: % reduction in page faults for file-based mappings (vs stock)",
        &["Benchmark", "stock faults", "Shared PTP", "Shared PTP-2MB"],
    );
    let mut avg = 0.0;
    for i in 0..names.len() {
        let base = stock[i].file_faults.max(1) as f64;
        let red = 1.0 - shared[i].file_faults as f64 / base;
        let red2 = 1.0 - shared2[i].file_faults as f64 / base;
        avg += red / names.len() as f64;
        t10.row(vec![
            names[i].to_string(),
            format!("{}", stock[i].file_faults),
            pct(red),
            pct(red2),
        ]);
    }
    out.push_str(&t10.render());
    out.push_str(&format!(
        "Average reduction (Shared PTP): {} (paper: 38%)\n\n",
        pct(avg)
    ));

    // Figure 11: PTPs allocated, normalized to stock-original.
    let mut t11 = Table::new(
        "Figure 11: # PTPs allocated (normalized to stock, original alignment)",
        &[
            "Benchmark",
            "Stock",
            "Shared PTP",
            "Stock-2MB",
            "Shared PTP-2MB",
        ],
    );
    let mut reduction_sum = 0.0;
    for i in 0..names.len() {
        let base = results[0].1[i].ptps_allocated as f64;
        reduction_sum += (1.0 - results[1].1[i].ptps_allocated as f64 / base) / names.len() as f64;
        t11.row(vec![
            names[i].to_string(),
            "100%".to_string(),
            format!(
                "{:.0}%",
                100.0 * results[1].1[i].ptps_allocated as f64 / base
            ),
            format!(
                "{:.0}%",
                100.0 * results[2].1[i].ptps_allocated as f64 / base
            ),
            format!(
                "{:.0}%",
                100.0 * results[3].1[i].ptps_allocated as f64 / base
            ),
        ]);
    }
    out.push_str(&t11.render());
    out.push_str(&format!(
        "Average PTP reduction (Shared PTP, original alignment): {} (paper: 35%)\n\n",
        pct(reduction_sum)
    ));

    // Figure 12: % of PTPs shared.
    let mut t12 = Table::new(
        "Figure 12: % of each app's PTPs that are shared across address spaces",
        &["Benchmark", "Shared PTP", "Shared PTP-2MB"],
    );
    let (mut f_orig, mut f_2mb) = (0.0, 0.0);
    for i in 0..names.len() {
        let orig = shared[i].ptps_shared_now as f64 / shared[i].ptps_total_now.max(1) as f64;
        let two = shared2[i].ptps_shared_now as f64 / shared2[i].ptps_total_now.max(1) as f64;
        f_orig += orig / names.len() as f64;
        f_2mb += two / names.len() as f64;
        t12.row(vec![names[i].to_string(), pct(orig), pct(two)]);
    }
    out.push_str(&t12.render());
    out.push_str(&format!(
        "Average shared fraction: original {} (paper: 39%), 2MB-aligned {} (paper: 60%)\n\n",
        pct(f_orig),
        pct(f_2mb)
    ));

    // Section 4.2.3: PTEs copied (fork + unshares).
    let mut tc = Table::new(
        "Section 4.2.3: PTEs copied over the course of execution",
        &["Benchmark", "Stock", "Shared PTP", "Shared PTP-2MB"],
    );
    for i in 0..names.len() {
        tc.row(vec![
            names[i].to_string(),
            format!("{}", stock[i].ptes_copied),
            format!("{}", shared[i].ptes_copied),
            format!("{}", shared2[i].ptes_copied),
        ]);
    }
    out.push_str(&tc.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_suite_quick_directional_checks() {
        let stock =
            run_suite(KernelConfig::stock(), LibraryLayout::Original, Scale::Quick).unwrap();
        let shared = run_suite(
            KernelConfig::shared_ptp(),
            LibraryLayout::Original,
            Scale::Quick,
        )
        .unwrap();
        let shared2 = run_suite(
            KernelConfig::shared_ptp(),
            LibraryLayout::Aligned2Mb,
            Scale::Quick,
        )
        .unwrap();
        let mut reduced = 0;
        for i in 0..stock.len() {
            if shared[i].file_faults < stock[i].file_faults {
                reduced += 1;
            }
            assert!(
                shared[i].ptps_allocated <= stock[i].ptps_allocated,
                "app {i}"
            );
        }
        assert!(reduced >= 9, "only {reduced}/11 apps saw fault reductions");
        // Figure 12: the 2MB layout keeps a larger fraction shared.
        let frac = |r: &[SteadyReport]| {
            r.iter()
                .map(|x| x.ptps_shared_now as f64 / x.ptps_total_now.max(1) as f64)
                .sum::<f64>()
                / r.len() as f64
        };
        assert!(
            frac(&shared2) > frac(&shared),
            "2MB {:.2} vs orig {:.2}",
            frac(&shared2),
            frac(&shared)
        );
    }
}
