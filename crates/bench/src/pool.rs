//! A scoped worker pool for fanning independent experiment cells
//! across cores.
//!
//! Each sweep in the harness runs a grid of fully independent cells —
//! every (configuration, layout) cell boots its own [`AndroidSystem`]
//! from the same seed, so cells share no state and their results do
//! not depend on execution order. The pool runs them on
//! `std::thread::scope` threads and reassembles results in submission
//! order, which keeps `repro` output byte-identical to a serial run:
//! parallelism changes wall time, never bytes.
//!
//! Sizing comes from `SAT_BENCH_THREADS` (default: all cores;
//! `SAT_BENCH_THREADS=1` forces the serial path, which runs jobs
//! inline in submission order with no threads spawned at all).
//!
//! [`AndroidSystem`]: sat_android::AndroidSystem

use parking_lot::Mutex;

/// Parses a `SAT_BENCH_THREADS` value. `Ok(None)` means unset (use
/// the machine's available parallelism); `Err` carries the warning
/// for an unparseable or zero value — the fallback is never silent.
pub fn parse_thread_count(var: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = var else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "sat-bench: ignoring SAT_BENCH_THREADS={raw:?} (want a positive integer); \
             using all available cores"
        )),
    }
}

/// Worker count: `SAT_BENCH_THREADS` if set and valid, otherwise the
/// machine's available parallelism. An unparseable value warns on
/// stderr once per process.
pub fn thread_count() -> usize {
    let var = std::env::var("SAT_BENCH_THREADS").ok();
    let parsed = match parse_thread_count(var.as_deref()) {
        Ok(n) => n,
        Err(warning) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| eprintln!("{warning}"));
            None
        }
    };
    parsed.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs every job and returns their results in submission order.
///
/// With one worker (or one job) the jobs run inline, serially, in
/// order. Otherwise workers pull jobs from a shared queue and write
/// results back by index, so the returned `Vec` is identical to the
/// serial run's regardless of completion order. A panicking job
/// propagates after the scope joins, as `std::thread::scope` does.
pub fn run_cells<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_cells_with(thread_count(), jobs)
}

fn run_cells_with<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = workers.min(n);
    if workers <= 1 {
        // Inline path: events flow straight into the caller's
        // recorder; a `bench` span brackets each cell.
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                emit_cell_begin(i);
                let t0 = std::time::Instant::now();
                let out = job();
                emit_cell_end(i, t0.elapsed());
                out
            })
            .collect();
    }
    // Indexed job queue (order of *execution* is irrelevant) and an
    // indexed result store (order of *reassembly* is everything).
    //
    // The recorder is thread-local, so each worker installs its own
    // ring (mirroring the caller's capacity) and hands the finished
    // recording back with the result; the caller absorbs them in
    // submission order. The *event stream* is therefore identical to
    // the inline path's — only the Cell wall-clock durations differ.
    let tracing = sat_obs::enabled();
    let capacity = sat_obs::ring_capacity().unwrap_or(sat_obs::DEFAULT_RING_CAPACITY);
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    type CellResult<T> = (T, Option<sat_obs::Recording>, std::time::Duration);
    let results: Mutex<Vec<Option<CellResult<T>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().pop();
                let Some((i, job)) = job else { break };
                if tracing {
                    sat_obs::install(capacity);
                }
                let t0 = std::time::Instant::now();
                let out = job();
                let elapsed = t0.elapsed();
                let rec = if tracing { sat_obs::uninstall() } else { None };
                results.lock()[i] = Some((out, rec, elapsed));
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let (out, rec, elapsed) = r.expect("scope joined with every job completed");
            // Bracket the absorbed worker events with the cell's span,
            // so the merged stream nests exactly like the inline one.
            emit_cell_begin(i);
            if let Some(rec) = rec {
                sat_obs::absorb(rec);
            }
            emit_cell_end(i, elapsed);
            out
        })
        .collect()
}

/// Opens cell `i`'s `bench` span.
fn emit_cell_begin(i: usize) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Bench,
            0,
            0,
            sat_obs::Payload::SpanBegin {
                name: format!("cell.{i}"),
            },
        );
    }
}

/// Closes cell `i`'s `bench` span with its wall-clock duration (µs).
fn emit_cell_end(i: usize, elapsed: std::time::Duration) {
    if sat_obs::enabled() {
        sat_obs::emit(
            sat_obs::Subsystem::Bench,
            0,
            0,
            sat_obs::Payload::SpanEnd {
                name: format!("cell.{i}"),
                value: elapsed.as_micros() as u64,
                unit: sat_obs::SpanUnit::Micros,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Force the threaded path even on single-core machines.
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Stagger completion so late submissions finish
                    // first under any worker count.
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) as u64 * 50));
                    i * 10
                }
            })
            .collect();
        let got = run_cells_with(4, jobs);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let got = run_cells(vec![|| 7]);
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn empty_grid_is_fine() {
        let got: Vec<i32> = run_cells(Vec::<fn() -> i32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn thread_count_parse_path() {
        assert_eq!(parse_thread_count(None), Ok(None));
        assert_eq!(parse_thread_count(Some("4")), Ok(Some(4)));
        assert_eq!(parse_thread_count(Some(" 1 ")), Ok(Some(1)));
        for bad in ["", "auto", "0", "-2", "2.5"] {
            let err = parse_thread_count(Some(bad)).unwrap_err();
            assert!(err.contains("SAT_BENCH_THREADS"), "{err}");
            assert!(err.contains("available cores"), "{err}");
        }
    }
}
