//! Zygote-fork experiments: Table 3, Table 4, and the soft-fault
//! latency anchor (Section 4.2.1).

use sat_android::{AndroidSystem, BootOptions, LibraryLayout};
use sat_core::{KernelConfig, NoTlb};
use sat_sim::measure_soft_fault_cycles;
use sat_trace::{app_specs, AppProfile};
use sat_types::{AccessType, SatResult, VirtAddr};

use crate::motivation::SEED;
use crate::render::{count, Table};
use crate::Scale;

/// Boot sizing per scale.
pub fn boot_opts(scale: Scale) -> BootOptions {
    match scale {
        Scale::Paper => BootOptions::paper(),
        Scale::Quick => BootOptions::small(),
    }
}

fn boot(config: KernelConfig, scale: Scale) -> SatResult<AndroidSystem> {
    AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))
}

/// Table 4: zygote fork performance under the three kernels.
pub fn table4(scale: Scale) -> SatResult<String> {
    let mut t = Table::new(
        "Table 4: zygote fork performance",
        &[
            "Kernel",
            "Execution cycles (x10^6)",
            "# PTPs allocated",
            "# shared PTPs",
            "# PTEs copied",
        ],
    );
    let configs = [
        ("Shared PTPs", KernelConfig::shared_ptp()),
        ("Stock Android", KernelConfig::stock()),
        ("Copied PTEs", KernelConfig::copied_ptes()),
    ];
    let mut cycles_by_label = Vec::new();
    for (label, config) in configs {
        let mut sys = boot(config, scale)?;
        let (outcome, cycles) = sys.machine.fork(0, sys.zygote)?;
        cycles_by_label.push((label, cycles));
        t.row(vec![
            label.to_string(),
            format!("{:.1}", cycles as f64 / 1e6),
            count(outcome.ptps_allocated),
            count(outcome.ptps_shared),
            count(outcome.ptes_copied),
        ]);
    }
    let mut out = t.render();
    let shared = cycles_by_label[0].1 as f64;
    let stock = cycles_by_label[1].1 as f64;
    let copied = cycles_by_label[2].1 as f64;
    out.push_str(&format!(
        "Fork speedup with shared PTPs: {:.1}x (paper: 2.1x); Copied-PTEs slowdown: +{:.1}% (paper: +58.6%)\n\n",
        stock / shared,
        100.0 * (copied / stock - 1.0),
    ));
    Ok(out)
}

/// Builds the per-app profiles, shrunk at quick scale.
pub fn profiles(sys: &AndroidSystem, scale: Scale) -> Vec<AppProfile> {
    app_specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut spec = spec.clone();
            if scale == Scale::Quick {
                spec.footprint_pages = 300;
            }
            AppProfile::generate(&sys.catalog, &spec, i, SEED)
        })
        .collect()
}

/// Counts how many of `profile`'s zygote-preloaded code pages already
/// have a PTE in `pid`'s page tables.
fn inherited_ptes(
    sys: &mut AndroidSystem,
    pid: sat_types::Pid,
    profile: &AppProfile,
) -> SatResult<u64> {
    let mut n = 0;
    for page in profile.zygote_preloaded_pages() {
        let va = sys
            .map
            .code_page_va(page, VirtAddr::new(0))
            .expect("zygote-preloaded page has a mapping");
        if sys.machine.kernel.pte(pid, va)?.is_some() {
            n += 1;
        }
    }
    Ok(n)
}

/// Table 3: instruction PTEs inherited from the zygote with shared
/// PTPs, for a cold start (first run ever) and a warm start
/// (reinvocation after the first instantiation).
pub fn table3(scale: Scale) -> SatResult<String> {
    let mut sys = boot(KernelConfig::shared_ptp(), scale)?;
    let profiles = profiles(&sys, scale);

    // Cold pass: fork, count, exit — before any application has run.
    let mut cold = Vec::new();
    for p in &profiles {
        let (outcome, _) = sys.machine.fork(0, sys.zygote)?;
        cold.push(inherited_ptes(&mut sys, outcome.child, p)?);
        sys.machine
            .syscall(|k, _tlb| k.exit(outcome.child, &mut NoTlb))?;
    }

    // Warm pass: run each application once (touch its preloaded
    // pages, populating the shared PTPs), exit it, then fork again
    // and count.
    let mut warm = Vec::new();
    for p in &profiles {
        let (outcome, _) = sys.machine.fork(0, sys.zygote)?;
        sys.machine.context_switch(0, outcome.child)?;
        for page in p.zygote_preloaded_pages() {
            let va = sys
                .map
                .code_page_va(page, VirtAddr::new(0))
                .expect("mapped");
            sys.machine.access(0, va, AccessType::Execute)?;
        }
        sys.machine
            .syscall(|k, _tlb| k.exit(outcome.child, &mut NoTlb))?;
        // Relaunch.
        let (outcome2, _) = sys.machine.fork(0, sys.zygote)?;
        warm.push(inherited_ptes(&mut sys, outcome2.child, p)?);
        sys.machine
            .syscall(|k, _tlb| k.exit(outcome2.child, &mut NoTlb))?;
    }

    let mut t = Table::new(
        "Table 3: instruction PTEs inherited from the zygote (shared PTPs)",
        &["Benchmark", "Cold start (x10^2)", "Warm start (x10^2)"],
    );
    for ((p, c), w) in profiles.iter().zip(&cold).zip(&warm) {
        t.row(vec![
            p.spec.name.to_string(),
            format!("{:.1}", *c as f64 / 100.0),
            format!("{:.0}", *w as f64 / 100.0),
        ]);
    }
    let mut out = t.render();
    out.push_str("Paper range: cold 6.4-23.0 (x10^2), warm 10-59 (x10^2)\n\n");
    Ok(out)
}

/// The LMbench `lat_pagefault` anchor.
pub fn latfault(scale: Scale) -> SatResult<String> {
    let pages = match scale {
        Scale::Paper => 2_048,
        Scale::Quick => 256,
    };
    let (mean, faults) = measure_soft_fault_cycles(pages)?;
    Ok(format!(
        "## Soft page-fault latency (lat_pagefault analogue)\n\n\
         {faults} soft faults, mean {mean:.0} cycles ≈ {:.2}us at 1.2GHz \
         (paper: ~2,700 cycles / 2.25us)\n\n",
        mean / 1.2e3
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_quick_has_expected_shape() {
        let out = table4(Scale::Quick).unwrap();
        assert!(out.contains("Shared PTPs"));
        assert!(out.contains("Fork speedup"));
        // Extract the speedup and check it beats 1.5x even at quick
        // scale.
        let speedup: f64 = out
            .split("shared PTPs: ")
            .nth(1)
            .unwrap()
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // At quick scale the fixed fork cost dominates (few PTEs to
        // copy), so the speedup is small but must still be positive;
        // the paper-scale 2.1x is asserted against the calibrated
        // model in `sat-sim::model` and measured by `repro table4`.
        assert!(speedup > 1.0, "speedup {speedup}");
    }

    #[test]
    fn table3_quick_warm_exceeds_cold() {
        let out = table3(Scale::Quick).unwrap();
        assert!(out.contains("Cold start"));
        // Parse rows: warm >= cold for every app.
        for line in out
            .lines()
            .filter(|l| l.starts_with('|') && !l.contains("Benchmark") && !l.contains('-'))
        {
            let cells: Vec<&str> = line
                .split('|')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if cells.len() == 3 {
                let cold: f64 = cells[1].parse().unwrap();
                let warm: f64 = cells[2].parse().unwrap();
                assert!(warm >= cold, "{line}");
            }
        }
    }

    #[test]
    fn latfault_quick_reports_mean() {
        let out = latfault(Scale::Quick).unwrap();
        assert!(out.contains("soft faults"));
    }
}
