//! The `BENCH_repro.json` snapshot: schema, validation (`repro
//! check`), and metric-by-metric comparison (`repro diff`).
//!
//! `repro diff old.json new.json` is the perf-regression gate: the
//! verify smoke compares a fresh `repro all --quick` snapshot against
//! the committed `BENCH_baseline.json` and fails loudly when wall
//! times or event-counter volumes move past the threshold. Counters
//! are deterministic for a given command and scale, so *any*
//! above-threshold counter growth means the simulator started doing
//! more work — that is either a bug or an intentional change that
//! must refresh the baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sat_obs::json::Json;

/// The snapshot schema written (and required by `repro check`).
///
/// History: `repro-v1` carried command/scale/threads/experiments/
/// total_wall_ms; `repro-v2` added per-experiment `"events"` counter
/// deltas and the run-wide `"obs"` section; `repro-v3` added `"p50"`/
/// `"p95"` summaries to every exported histogram; `repro-v4` added
/// `"p99"`, per-experiment `"gauges"` high-water marks, and the
/// run-wide `"gauges"` section; `repro-v5` added per-experiment
/// `"latency"` request percentiles (serve cells) — in simulated
/// cycles, deterministic, and gated by the diff like wall times;
/// `repro-v6` added per-experiment `"mem_frames"` budgets and
/// `"reclaim"` totals (passes/pages/pte_tears/shared_tears/refaults)
/// for budgeted serve and pressure cells, gated like counters;
/// `repro-v7` adds per-experiment `"translation"` totals (promotions/
/// demotions/splits/waste_frames) for the reach cells, gated the same
/// way.
pub const SCHEMA: &str = "sat-bench/repro-v7";

/// Schemas `repro diff` can compare (the diff reads only fields that
/// exist since v2; gauge gating engages from v4, latency from v5,
/// reclaim from v6, translation from v7).
const DIFFABLE_SCHEMAS: [&str; 6] = [
    "sat-bench/repro-v2",
    "sat-bench/repro-v3",
    "sat-bench/repro-v4",
    "sat-bench/repro-v5",
    "sat-bench/repro-v6",
    "sat-bench/repro-v7",
];

/// Subsystems `repro all --trace` must cover for the trace to count as
/// healthy (the acceptance floor; `sim` and `bench` ride along).
pub const REQUIRED_SUBSYSTEMS: [&str; 5] = ["kernel", "share", "vm-fault", "tlb", "android"];

/// Coverage floor for a `repro fleet --trace` run: the fleet drives
/// fork/timeshare/reap through the scheduler and never walks the
/// app-launch sequence, so no `android` events are expected.
pub const FLEET_REQUIRED_SUBSYSTEMS: [&str; 5] = ["kernel", "share", "tlb", "sched", "bench"];

/// Coverage floor for a `repro serve --trace` run: request flows
/// arrive through the scheduler (`sched`), every charge site is
/// machine-level (`sim`), and the servers boot from the zygote
/// (`android`, `kernel`, `share`, `tlb`).
pub const SERVE_REQUIRED_SUBSYSTEMS: [&str; 6] =
    ["kernel", "share", "tlb", "sched", "sim", "android"];

/// Coverage floor for a `repro reach --trace` run: the reach grid
/// drives demand faults, the promotion scanner, fork sharing, and
/// size-tagged flushes — but never walks the app-launch sequence, so
/// no `android` or `sched` events are expected.
pub const REACH_REQUIRED_SUBSYSTEMS: [&str; 4] = ["kernel", "share", "vm-fault", "tlb"];

/// Experiments whose wall time is too small to gate on: below this
/// floor, scheduler noise dominates and a 25% swing means nothing.
const WALL_FLOOR_MS: f64 = 25.0;

/// Counters below this volume (in both snapshots) are ignored by the
/// diff — a handful of events swinging 25% is noise, not a signal.
const COUNTER_FLOOR: u64 = 100;

/// Gauge high-water marks below this level (in both snapshots) never
/// gate: a tiny occupancy doubling is noise, a big one is a leak.
const GAUGE_FLOOR: u64 = 64;

/// Latency percentiles below this many cycles (in both snapshots)
/// never gate. Request walls are deterministic, but a sub-floor
/// percentile swinging past the threshold is a few kernel lines, not
/// a tail regression.
const LATENCY_FLOOR_CYCLES: u64 = 10_000;

/// Reclaim totals below this volume (in both snapshots) never gate:
/// a budgeted cell evicting a handful more pages is quantisation, a
/// big swing means the pressure the workload faces actually changed.
const RECLAIM_FLOOR: u64 = 50;

/// Translation totals below this volume (in both snapshots) never
/// gate. The floor is deliberately low: even the quick reach grid
/// promotes ~96 groups, and a silent halving of promotions or a
/// doubling of waste is exactly the regression this block exists to
/// catch.
const TRANSLATION_FLOOR: u64 = 8;

/// One parsed experiment record.
#[derive(Clone, Debug, Default)]
pub struct Experiment {
    pub wall_ms: f64,
    pub cells: u64,
    /// Per-gauge high-water marks over the experiment's sampling
    /// window (v4 traced runs; empty otherwise).
    pub gauges: BTreeMap<String, u64>,
    /// Request-latency percentiles `(p50, p95, p99)` in simulated
    /// cycles (v5 serve cells; absent otherwise).
    pub latency: Option<(u64, u64, u64)>,
    /// Physical-frame budget the cell ran under (v6 budgeted serve /
    /// pressure cells; absent otherwise).
    pub mem_frames: Option<u64>,
    /// Reclaim totals (v6 budgeted cells; empty otherwise):
    /// passes, pages, pte_tears, shared_tears, refaults.
    pub reclaim: BTreeMap<String, u64>,
    /// Translation totals (v7 reach cells; empty otherwise):
    /// promotions, demotions, splits, waste_frames.
    pub translation: BTreeMap<String, u64>,
}

/// The parts of a snapshot the diff compares.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub schema: String,
    pub command: String,
    pub scale: String,
    pub experiments: BTreeMap<String, Experiment>,
    pub total_wall_ms: f64,
    pub obs_enabled: bool,
    pub counters: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Parses a snapshot document, validating the schema is diffable.
    pub fn parse(text: &str, label: &str) -> Result<Snapshot, String> {
        let doc = Json::parse(text).map_err(|e| format!("{label}: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: missing \"schema\""))?;
        if !DIFFABLE_SCHEMAS.contains(&schema) {
            return Err(format!(
                "{label}: schema \"{schema}\" (expected one of {DIFFABLE_SCHEMAS:?})"
            ));
        }
        let mut experiments = BTreeMap::new();
        for exp in doc
            .get("experiments")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{label}: missing \"experiments\" array"))?
        {
            let name = exp
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{label}: experiment without \"name\""))?;
            let mut gauges = BTreeMap::new();
            if let Some(map) = exp.get("gauges").and_then(Json::as_object) {
                for (k, v) in map {
                    if let Some(n) = v.as_u64() {
                        gauges.insert(k.clone(), n);
                    }
                }
            }
            let latency = exp.get("latency").and_then(|l| {
                Some((
                    l.get("p50").and_then(Json::as_u64)?,
                    l.get("p95").and_then(Json::as_u64)?,
                    l.get("p99").and_then(Json::as_u64)?,
                ))
            });
            let mut reclaim = BTreeMap::new();
            if let Some(map) = exp.get("reclaim").and_then(Json::as_object) {
                for (k, v) in map {
                    if let Some(n) = v.as_u64() {
                        reclaim.insert(k.clone(), n);
                    }
                }
            }
            let mut translation = BTreeMap::new();
            if let Some(map) = exp.get("translation").and_then(Json::as_object) {
                for (k, v) in map {
                    if let Some(n) = v.as_u64() {
                        translation.insert(k.clone(), n);
                    }
                }
            }
            experiments.insert(
                name.to_string(),
                Experiment {
                    wall_ms: exp.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                    cells: exp.get("cells").and_then(Json::as_u64).unwrap_or(0),
                    gauges,
                    latency,
                    mem_frames: exp.get("mem_frames").and_then(Json::as_u64),
                    reclaim,
                    translation,
                },
            );
        }
        let obs = doc.get("obs");
        let obs_enabled = obs
            .and_then(|o| o.get("enabled"))
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let mut counters = BTreeMap::new();
        if let Some(map) = obs
            .and_then(|o| o.get("counters"))
            .and_then(Json::as_object)
        {
            for (k, v) in map {
                if let Some(n) = v.as_u64() {
                    counters.insert(k.clone(), n);
                }
            }
        }
        Ok(Snapshot {
            schema: schema.to_string(),
            command: doc
                .get("command")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            scale: doc
                .get("scale")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            experiments,
            total_wall_ms: doc
                .get("total_wall_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            obs_enabled,
            counters,
        })
    }
}

/// One line of the diff, classified.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiffClass {
    /// Fails the gate.
    Regression,
    /// Informational: the new snapshot got faster / smaller.
    Improvement,
    /// Informational: structure changed without regressing.
    Note,
}

/// The rendered comparison of two snapshots.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    pub lines: Vec<(DiffClass, String)>,
    /// Metrics compared (regardless of outcome).
    pub compared: usize,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.lines
            .iter()
            .filter(|(c, _)| *c == DiffClass::Regression)
            .count()
    }

    /// Human-readable summary; one line per finding, stable order.
    pub fn render(&self, threshold_pct: f64) -> String {
        let mut out = String::new();
        for (class, line) in &self.lines {
            let tag = match class {
                DiffClass::Regression => "REGRESSION",
                DiffClass::Improvement => "improvement",
                DiffClass::Note => "note",
            };
            let _ = writeln!(out, "{tag:<12} {line}");
        }
        let _ = writeln!(
            out,
            "repro diff: {} metrics compared, {} regression(s) at +{threshold_pct}% threshold",
            self.compared,
            self.regressions()
        );
        out
    }
}

fn pct_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (new - old) / old
    }
}

/// Compares two snapshots metric by metric. A wall-time or counter
/// increase beyond `threshold_pct` is a regression; decreases are
/// reported as improvements; an experiment that vanished between runs
/// of the *same* command is a regression (when the commands differ the
/// experiment lists are expected to differ, so it is informational).
/// Sub-floor metrics (see [`WALL_FLOOR_MS`], [`COUNTER_FLOOR`]) are
/// compared but never gate.
pub fn diff(old: &Snapshot, new: &Snapshot, threshold_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();

    if old.command != new.command || old.scale != new.scale {
        report.lines.push((
            DiffClass::Note,
            format!(
                "comparing different runs: {} ({}) vs {} ({})",
                old.command, old.scale, new.command, new.scale
            ),
        ));
    }

    for (name, old_exp) in &old.experiments {
        report.compared += 1;
        let Some(new_exp) = new.experiments.get(name) else {
            if old.command == new.command {
                report.lines.push((
                    DiffClass::Regression,
                    format!("experiment \"{name}\" missing from the new snapshot"),
                ));
            } else {
                report.lines.push((
                    DiffClass::Note,
                    format!("experiment \"{name}\" not in the new snapshot (different command)"),
                ));
            }
            continue;
        };
        let change = pct_change(old_exp.wall_ms, new_exp.wall_ms);
        let line = format!(
            "{name}.wall_ms: {:.1} -> {:.1} ({change:+.1}%)",
            old_exp.wall_ms, new_exp.wall_ms
        );
        if change > threshold_pct {
            if old_exp.wall_ms >= WALL_FLOOR_MS {
                report.lines.push((DiffClass::Regression, line));
            } else {
                report.lines.push((
                    DiffClass::Note,
                    format!("{line} — below {WALL_FLOOR_MS}ms floor"),
                ));
            }
        } else if change < -threshold_pct && old_exp.wall_ms >= WALL_FLOOR_MS {
            report.lines.push((DiffClass::Improvement, line));
        }
        if old_exp.cells != new_exp.cells {
            report.lines.push((
                DiffClass::Note,
                format!("{name}.cells: {} -> {}", old_exp.cells, new_exp.cells),
            ));
        }
        // Gauge high-water marks gate peak occupancy the same way
        // counters gate volume: above-threshold growth in peak frame /
        // slab / registry population is a leak or a regression.
        for (key, &old_hw) in &old_exp.gauges {
            let Some(&new_hw) = new_exp.gauges.get(key) else {
                continue;
            };
            report.compared += 1;
            if old_hw.max(new_hw) < GAUGE_FLOOR {
                continue;
            }
            let change = pct_change(old_hw as f64, new_hw as f64);
            let line =
                format!("{name}.gauge {key} high water: {old_hw} -> {new_hw} ({change:+.1}%)");
            if change > threshold_pct {
                report.lines.push((DiffClass::Regression, line));
            } else if change < -threshold_pct {
                report.lines.push((DiffClass::Improvement, line));
            }
        }
        // Reclaim totals of budgeted cells are deterministic, so they
        // gate like counters: above-threshold eviction growth under
        // the *same* frame budget means reclaim got hungrier. A budget
        // change makes old and new incomparable — note it instead.
        if old_exp.mem_frames != new_exp.mem_frames {
            if old_exp.mem_frames.is_some() || new_exp.mem_frames.is_some() {
                report.lines.push((
                    DiffClass::Note,
                    format!(
                        "{name}.mem_frames: {:?} -> {:?} (budget changed; reclaim not compared)",
                        old_exp.mem_frames, new_exp.mem_frames
                    ),
                ));
            }
        } else {
            for (key, &old_n) in &old_exp.reclaim {
                let Some(&new_n) = new_exp.reclaim.get(key) else {
                    continue;
                };
                report.compared += 1;
                if old_n.max(new_n) < RECLAIM_FLOOR {
                    continue;
                }
                let change = pct_change(old_n as f64, new_n as f64);
                let line = format!("{name}.reclaim {key}: {old_n} -> {new_n} ({change:+.1}%)");
                if change > threshold_pct {
                    report.lines.push((DiffClass::Regression, line));
                } else if change < -threshold_pct {
                    report.lines.push((DiffClass::Improvement, line));
                }
            }
        }
        // Translation totals of the reach cells are deterministic, so
        // they gate like counters: waste or splits growing past the
        // threshold fails on its own, and any above-threshold movement
        // (a promotion drop included) is surfaced. A scanner that
        // never fires at all is `repro check`'s warning.
        for (key, &old_n) in &old_exp.translation {
            let Some(&new_n) = new_exp.translation.get(key) else {
                continue;
            };
            report.compared += 1;
            if old_n.max(new_n) < TRANSLATION_FLOOR {
                continue;
            }
            let change = pct_change(old_n as f64, new_n as f64);
            let line = format!("{name}.translation {key}: {old_n} -> {new_n} ({change:+.1}%)");
            if change > threshold_pct {
                report.lines.push((DiffClass::Regression, line));
            } else if change < -threshold_pct {
                report.lines.push((DiffClass::Improvement, line));
            }
        }
        // Serve latency percentiles are deterministic simulated
        // cycles: an above-threshold p99 (or p95/p50) growth means the
        // critical path of the tail actually got longer.
        if let (Some(old_lat), Some(new_lat)) = (old_exp.latency, new_exp.latency) {
            let olds = [old_lat.0, old_lat.1, old_lat.2];
            let news = [new_lat.0, new_lat.1, new_lat.2];
            for (pname, (o, n)) in ["p50", "p95", "p99"].iter().zip(olds.into_iter().zip(news)) {
                report.compared += 1;
                if o.max(n) < LATENCY_FLOOR_CYCLES {
                    continue;
                }
                let change = pct_change(o as f64, n as f64);
                let line = format!("{name}.latency {pname}: {o} -> {n} cycles ({change:+.1}%)");
                if change > threshold_pct {
                    report.lines.push((DiffClass::Regression, line));
                } else if change < -threshold_pct {
                    report.lines.push((DiffClass::Improvement, line));
                }
            }
        }
    }
    for name in new.experiments.keys() {
        if !old.experiments.contains_key(name) {
            report.lines.push((
                DiffClass::Note,
                format!("new experiment \"{name}\" (not in the baseline)"),
            ));
        }
    }

    report.compared += 1;
    let total_change = pct_change(old.total_wall_ms, new.total_wall_ms);
    let total_line = format!(
        "total_wall_ms: {:.1} -> {:.1} ({total_change:+.1}%)",
        old.total_wall_ms, new.total_wall_ms
    );
    if total_change > threshold_pct && old.total_wall_ms >= WALL_FLOOR_MS {
        report.lines.push((DiffClass::Regression, total_line));
    } else if total_change < -threshold_pct && old.total_wall_ms >= WALL_FLOOR_MS {
        report.lines.push((DiffClass::Improvement, total_line));
    }

    // Event counters only compare when both runs recorded them (an
    // untraced run has an empty, disabled registry).
    if old.obs_enabled && new.obs_enabled {
        for (key, &old_n) in &old.counters {
            let new_n = new.counters.get(key).copied().unwrap_or(0);
            report.compared += 1;
            if old_n.max(new_n) < COUNTER_FLOOR {
                continue;
            }
            let change = pct_change(old_n as f64, new_n as f64);
            let line = format!("counter {key}: {old_n} -> {new_n} ({change:+.1}%)");
            if change > threshold_pct {
                report.lines.push((DiffClass::Regression, line));
            } else if change < -threshold_pct {
                report.lines.push((DiffClass::Improvement, line));
            }
        }
        for (key, &new_n) in &new.counters {
            if !old.counters.contains_key(key) && new_n >= COUNTER_FLOOR {
                report.lines.push((
                    DiffClass::Note,
                    format!("new counter {key}: {new_n} (not in the baseline)"),
                ));
            }
        }
    }

    report
}

/// Validates the artifacts a traced run wrote: the snapshot's schema
/// and experiment list, and — when `trace` names the trace file — a
/// re-ingest of the full event stream with subsystem coverage, tick
/// monotonicity, and span begin/end pairing enforced.
pub fn check(trace: Option<&str>, out: &str) -> Result<String, String> {
    let mut report = String::new();

    let text = std::fs::read_to_string(out).map_err(|e| format!("read {out}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{out}: missing \"schema\""))?;
    if schema != SCHEMA {
        return Err(format!(
            "{out}: schema \"{schema}\" (expected \"{SCHEMA}\")"
        ));
    }
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{out}: missing \"experiments\" array"))?;
    if experiments.is_empty() {
        return Err(format!("{out}: empty \"experiments\" array"));
    }
    let command = doc
        .get("command")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let obs = doc
        .get("obs")
        .and_then(Json::as_object)
        .ok_or_else(|| format!("{out}: missing \"obs\" section"))?;
    let obs_enabled = obs.get("enabled").and_then(Json::as_bool).unwrap_or(false);
    let _ = writeln!(
        report,
        "repro check: {out} ok ({} experiments, obs {})",
        experiments.len(),
        if obs_enabled { "enabled" } else { "disabled" }
    );

    // A run under a frame budget that never reclaimed proves nothing
    // about behaviour under pressure: the budget sat above the peak
    // footprint the whole time. Warn, mirroring the partial-blame
    // warning (works untraced — the totals live in the snapshot).
    let budgeted: Vec<&Json> = experiments
        .iter()
        .filter(|e| e.get("mem_frames").and_then(Json::as_u64).is_some())
        .collect();
    if !budgeted.is_empty() {
        let pages: u64 = budgeted
            .iter()
            .filter_map(|e| e.get("reclaim"))
            .filter_map(|r| r.get("pages"))
            .filter_map(Json::as_u64)
            .sum();
        if pages == 0 {
            let _ = writeln!(
                report,
                "repro check: warning: the frame budget never bit ({} budgeted \
                 experiment(s) reclaimed zero pages; lower --mem-frames below the \
                 uncapped peak for real pressure)",
                budgeted.len()
            );
        }
    }

    // A reach run whose promoted cell collapsed nothing measured only
    // 4KB paging three times: the waste-vs-reach trade the experiment
    // exists for never happened. Warn, mirroring the budget warning
    // (works untraced — the totals live in the snapshot).
    if command == "reach" {
        let promoted_fired = experiments.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("reach_promoted")
                && e.get("translation")
                    .and_then(|t| t.get("promotions"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    > 0
        });
        if !promoted_fired {
            let _ = writeln!(
                report,
                "repro check: warning: the promotion scanner never fired (the \
                 reach_promoted cell reports zero promotions; every cell ran plain \
                 4KB paging, so the reach-vs-waste trade was not measured)"
            );
        }
    }

    if let Some(trace_path) = trace {
        let text =
            std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{trace_path}: {e}"))?;
        let parsed = sat_obs::parse_chrome_trace(&doc).map_err(|e| format!("{trace_path}: {e}"))?;
        if parsed.events.is_empty() {
            return Err(format!("{trace_path}: empty event stream"));
        }
        sat_obs::analyze::validate_ticks(&parsed.events)
            .map_err(|e| format!("{trace_path}: {e}"))?;
        // Counter-track samples must carry non-empty gauge names on
        // strictly increasing per-gauge ticks (exact even under ring
        // overflow: a monotone series minus a prefix stays monotone).
        sat_obs::analyze::validate_samples(&parsed.events)
            .map_err(|e| format!("{trace_path}: {e}"))?;
        // Span pairing is only checkable on a lossless stream: ring
        // overflow drops the oldest events, begins first.
        let spans_note = if parsed.dropped == 0 {
            sat_obs::analyze::validate_spans(&parsed.events)
                .map_err(|e| format!("{trace_path}: {e}"))?;
            "spans paired"
        } else {
            "span pairing skipped (ring overflow)"
        };
        // A lossy ring under a charge-carrying trace means blame can
        // no longer be reconstructed exactly: some `CycleCharge`
        // events are gone, so per-request sums understate their walls.
        let has_charges = parsed
            .events
            .iter()
            .any(|e| matches!(e.payload, sat_obs::Payload::CycleCharge { .. }));
        if parsed.dropped > 0 && has_charges {
            let _ = writeln!(
                report,
                "repro check: warning: blame attribution is partial ({} events dropped \
                 from a stream carrying cycle charges; raise SAT_OBS_RING for exact tails)",
                parsed.dropped
            );
        }
        let cats: std::collections::BTreeSet<&str> =
            parsed.events.iter().map(|e| e.subsystem.as_str()).collect();
        let required: &[&str] = match command.as_str() {
            "fleet" => &FLEET_REQUIRED_SUBSYSTEMS,
            "serve" => &SERVE_REQUIRED_SUBSYSTEMS,
            "reach" => &REACH_REQUIRED_SUBSYSTEMS,
            _ => &REQUIRED_SUBSYSTEMS,
        };
        let missing: Vec<&str> = required
            .iter()
            .filter(|s| !cats.contains(**s))
            .copied()
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "{trace_path}: no events from subsystem(s) {} (saw: {})",
                missing.join(", "),
                cats.into_iter().collect::<Vec<_>>().join(", ")
            ));
        }
        if !obs_enabled {
            return Err(format!(
                "{out}: obs section disabled although a trace was produced"
            ));
        }
        let (samples, gauges) = {
            let mut n = 0usize;
            let mut names = std::collections::BTreeSet::new();
            for e in &parsed.events {
                if let sat_obs::Payload::Sample { gauge, .. } = &e.payload {
                    n += 1;
                    names.insert(gauge.as_str());
                }
            }
            (n, names.len())
        };
        let _ = writeln!(
            report,
            "repro check: {trace_path} ok ({} events, {} dropped, ticks monotonic, \
             {spans_note}, {samples} samples over {gauges} gauges, subsystems: {})",
            parsed.events.len(),
            parsed.dropped,
            cats.into_iter().collect::<Vec<_>>().join(", ")
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_json(wall_a: f64, total: f64, flushes: u64) -> String {
        format!(
            r#"{{
  "schema": "sat-bench/repro-v3",
  "command": "all",
  "scale": "quick",
  "threads": 4,
  "experiments": [
    {{"name": "launch", "wall_ms": {wall_a:.3}, "cells": 6, "events": {{}}}},
    {{"name": "steady", "wall_ms": 40.000, "cells": 4, "events": {{}}}}
  ],
  "total_wall_ms": {total:.3},
  "obs": {{"enabled": true, "dropped_events": 0,
           "counters": {{"tlb.flush": {flushes}, "tiny.counter": 3}},
           "histograms": {{}}}}
}}
"#
        )
    }

    fn parse(text: &str) -> Snapshot {
        Snapshot::parse(text, "test").unwrap()
    }

    #[test]
    fn identical_snapshots_produce_no_regressions() {
        let a = parse(&snapshot_json(100.0, 150.0, 5000));
        let report = diff(&a, &a, 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report.compared >= 4);
    }

    #[test]
    fn doctored_wall_time_regresses() {
        let old = parse(&snapshot_json(100.0, 150.0, 5000));
        let new = parse(&snapshot_json(150.0, 210.0, 5000));
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 2, "{:?}", report.lines);
        let text = report.render(25.0);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("launch.wall_ms"), "{text}");
        assert!(text.contains("total_wall_ms"), "{text}");
    }

    #[test]
    fn counter_growth_regresses_and_shrinkage_improves() {
        let old = parse(&snapshot_json(100.0, 150.0, 5000));
        let grown = parse(&snapshot_json(100.0, 150.0, 8000));
        let report = diff(&old, &grown, 25.0);
        assert_eq!(report.regressions(), 1, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Regression && l.contains("tlb.flush")));

        let shrunk = parse(&snapshot_json(100.0, 150.0, 1000));
        let report = diff(&old, &shrunk, 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, _)| *c == DiffClass::Improvement));
    }

    #[test]
    fn sub_floor_metrics_never_gate() {
        // launch at 10ms (below the 25ms floor) doubling is a note,
        // and tiny.counter (3 -> 6) stays ignored.
        let old = parse(&snapshot_json(10.0, 150.0, 5000));
        let mut new = parse(&snapshot_json(20.0, 150.0, 5000));
        new.counters.insert("tiny.counter".to_string(), 6);
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Note && l.contains("floor")));
    }

    #[test]
    fn missing_experiment_is_a_regression() {
        let old = parse(&snapshot_json(100.0, 150.0, 5000));
        let mut new = parse(&snapshot_json(100.0, 150.0, 5000));
        new.experiments.remove("steady");
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 1);
        assert!(report.lines[0].1.contains("steady"));
    }

    #[test]
    fn cross_command_missing_experiment_is_informational() {
        // Diffing a full-suite baseline against a single-experiment
        // run: the absent experiments are expected, not regressions.
        let old = parse(&snapshot_json(100.0, 150.0, 5000));
        let mut new = parse(&snapshot_json(100.0, 150.0, 5000));
        new.command = "launch".to_string();
        new.experiments.remove("steady");
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Note
            && l.contains("steady")
            && l.contains("different command")));
    }

    #[test]
    fn fleet_regression_at_one_n_is_not_masked_by_the_aggregate() {
        // The fleet grid writes one record per N. A 3x wall-time blowup
        // at N=4096 with every other cell *faster* keeps the aggregate
        // total inside the threshold — the per-N record must still fail
        // the gate on its own.
        let fleet = |n256: f64, n4096: f64, total: f64| -> Snapshot {
            parse(&format!(
                r#"{{
  "schema": "sat-bench/repro-v3",
  "command": "fleet",
  "scale": "paper",
  "threads": 4,
  "experiments": [
    {{"name": "fleet_n256", "wall_ms": {n256:.3}, "cells": 2, "events": {{}}}},
    {{"name": "fleet_n4096", "wall_ms": {n4096:.3}, "cells": 2, "events": {{}}}}
  ],
  "total_wall_ms": {total:.3},
  "obs": {{"enabled": false, "dropped_events": 0, "counters": {{}}, "histograms": {{}}}}
}}
"#
            ))
        };
        let old = fleet(400.0, 400.0, 800.0);
        let new = fleet(100.0, 800.0, 900.0);
        let total_change = pct_change(old.total_wall_ms, new.total_wall_ms);
        assert!(total_change < 25.0, "aggregate must stay inside threshold");
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 1, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Regression && l.contains("fleet_n4096")));
    }

    #[test]
    fn doctored_gauge_high_water_regresses_and_tiny_gauges_never_gate() {
        let v4 = |slab_hw: u64, runq_hw: u64| -> Snapshot {
            parse(&format!(
                r#"{{
  "schema": "sat-bench/repro-v4",
  "command": "fleet",
  "scale": "quick",
  "threads": 4,
  "experiments": [
    {{"name": "fleet_n256", "wall_ms": 100.000, "cells": 2, "events": {{}},
      "gauges": {{"phys.slab.live": {slab_hw}, "sched.runq.c0": {runq_hw}}}}}
  ],
  "total_wall_ms": 100.000,
  "obs": {{"enabled": true, "dropped_events": 0, "counters": {{}}, "histograms": {{}}}}
}}
"#
            ))
        };
        let old = v4(1000, 3);
        assert_eq!(old.experiments["fleet_n256"].gauges["phys.slab.live"], 1000);

        // A +50% slab high-water mark fails the 25% gate.
        let doctored = v4(1500, 3);
        let report = diff(&old, &doctored, 25.0);
        assert_eq!(report.regressions(), 1, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Regression
            && l.contains("phys.slab.live")
            && l.contains("1000 -> 1500")));

        // A sub-floor gauge doubling (3 -> 6 run-queue peak) is noise.
        let report = diff(&old, &v4(1000, 6), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);

        // Shrinkage is an improvement, not a failure.
        let report = diff(&old, &v4(600, 3), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, _)| *c == DiffClass::Improvement));
    }

    #[test]
    fn doctored_serve_p99_regresses_and_sub_floor_latency_never_gates() {
        let v5 = |p99: u64, p50: u64| -> Snapshot {
            parse(&format!(
                r#"{{
  "schema": "sat-bench/repro-v5",
  "command": "serve",
  "scale": "quick",
  "threads": 4,
  "experiments": [
    {{"name": "serve_shared", "wall_ms": 100.000, "cells": 1,
      "latency": {{"p50": {p50}, "p95": 90000, "p99": {p99}}}, "events": {{}}, "gauges": {{}}}}
  ],
  "total_wall_ms": 100.000,
  "obs": {{"enabled": false, "dropped_events": 0, "counters": {{}}, "histograms": {{}}}}
}}
"#
            ))
        };
        let old = v5(120_000, 500);
        assert_eq!(
            old.experiments["serve_shared"].latency,
            Some((500, 90_000, 120_000))
        );

        // A +50% p99 tail fails the 25% gate on its own.
        let report = diff(&old, &v5(180_000, 500), 25.0);
        assert_eq!(report.regressions(), 1, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Regression
            && l.contains("serve_shared.latency p99")
            && l.contains("120000 -> 180000")));

        // A sub-floor p50 doubling (500 -> 1000 cycles) is noise.
        let report = diff(&old, &v5(120_000, 1000), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);

        // A shrinking tail is an improvement, not a failure.
        let report = diff(&old, &v5(60_000, 500), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Improvement && l.contains("p99")));
    }

    fn v6(budget: u64, pages: u64, shared_tears: u64) -> Snapshot {
        parse(&format!(
            r#"{{
  "schema": "sat-bench/repro-v6",
  "command": "pressure",
  "scale": "quick",
  "threads": 4,
  "experiments": [
    {{"name": "pressure_shared_starved", "wall_ms": 100.000, "cells": 1,
      "latency": {{"p50": 20000, "p95": 90000, "p99": 120000}},
      "mem_frames": {budget},
      "reclaim": {{"passes": 40, "pages": {pages}, "pte_tears": 30,
                   "shared_tears": {shared_tears}, "refaults": {pages}}},
      "events": {{}}, "gauges": {{}}}}
  ],
  "total_wall_ms": 100.000,
  "obs": {{"enabled": false, "dropped_events": 0, "counters": {{}}, "histograms": {{}}}}
}}
"#
        ))
    }

    #[test]
    fn doctored_reclaim_totals_regress_under_the_same_budget() {
        let old = v6(900, 400, 120);
        let exp = &old.experiments["pressure_shared_starved"];
        assert_eq!(exp.mem_frames, Some(900));
        assert_eq!(exp.reclaim["pages"], 400);

        // +50% eviction volume under the same budget fails the gate.
        let report = diff(&old, &v6(900, 600, 120), 25.0);
        assert_eq!(report.regressions(), 2, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Regression
            && l.contains("pressure_shared_starved.reclaim pages")
            && l.contains("400 -> 600")));
        // (refaults mirror pages in this fixture, hence the second.)

        // Shrinking shared tears is an improvement, not a failure.
        let report = diff(&old, &v6(900, 400, 60), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Improvement && l.contains("shared_tears")));

        // Sub-floor totals never gate (passes 40 stays under 50).
        let report = diff(&old, &v6(900, 400, 120), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
    }

    #[test]
    fn changed_budget_notes_instead_of_comparing_reclaim() {
        let old = v6(900, 400, 120);
        let new = v6(600, 4000, 1200);
        let report = diff(&old, &new, 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Note
            && l.contains("mem_frames")
            && l.contains("budget changed")));
    }

    fn v7(promotions: u64, waste: u64) -> Snapshot {
        parse(&format!(
            r#"{{
  "schema": "sat-bench/repro-v7",
  "command": "reach",
  "scale": "quick",
  "threads": 4,
  "experiments": [
    {{"name": "reach_promoted", "wall_ms": 100.000, "cells": 1,
      "translation": {{"promotions": {promotions}, "demotions": 2,
                       "splits": 32, "waste_frames": {waste}}},
      "events": {{}}, "gauges": {{}}}}
  ],
  "total_wall_ms": 100.000,
  "obs": {{"enabled": false, "dropped_events": 0, "counters": {{}}, "histograms": {{}}}}
}}
"#
        ))
    }

    #[test]
    fn doctored_translation_totals_gate_like_counters() {
        let old = v7(96, 960);
        let exp = &old.experiments["reach_promoted"];
        assert_eq!(exp.translation["promotions"], 96);
        assert_eq!(exp.translation["waste_frames"], 960);

        // +50% promotion fill waste fails the 25% gate on its own.
        let report = diff(&old, &v7(96, 1440), 25.0);
        assert_eq!(report.regressions(), 1, "{:?}", report.lines);
        assert!(report.lines.iter().any(|(c, l)| *c == DiffClass::Regression
            && l.contains("reach_promoted.translation waste_frames")
            && l.contains("960 -> 1440")));

        // The scanner halving its collapses is surfaced (improvement
        // direction — `repro check` owns the never-fired warning).
        let report = diff(&old, &v7(48, 960), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
        assert!(report
            .lines
            .iter()
            .any(|(c, l)| *c == DiffClass::Improvement && l.contains("promotions")));

        // Sub-floor totals never gate (demotions 2 stays under 8).
        let report = diff(&old, &v7(96, 960), 25.0);
        assert_eq!(report.regressions(), 0, "{:?}", report.lines);
    }

    #[test]
    fn old_v2_snapshots_remain_diffable() {
        let v2 = snapshot_json(100.0, 150.0, 5000).replace("repro-v3", "repro-v2");
        let old = Snapshot::parse(&v2, "old").unwrap();
        assert_eq!(old.schema, "sat-bench/repro-v2");
        let new = parse(&snapshot_json(100.0, 150.0, 5000));
        assert_eq!(diff(&old, &new, 25.0).regressions(), 0);
        let v1 = snapshot_json(100.0, 150.0, 5000).replace("repro-v3", "repro-v1");
        assert!(Snapshot::parse(&v1, "old").is_err());
    }
}
