//! The motivation-study experiments: Table 1, Figures 2-4, Table 2
//! (Section 2.3 of the paper).

use sat_trace::{
    app_specs, fetch_breakdown, page_breakdown, pairwise_overlap, zygote_preload_pages, AppProfile,
    Catalog, CodePage, SparsityReport,
};

use crate::render::{pct, Table};

/// Default seed used across the experiment suite.
pub const SEED: u64 = 1;

/// Builds the catalog and the eleven application profiles.
pub fn suite() -> (Catalog, Vec<AppProfile>) {
    let specs = app_specs();
    let catalog = Catalog::generate(SEED, specs.len());
    let profiles = specs
        .iter()
        .enumerate()
        .map(|(i, s)| AppProfile::generate(&catalog, s, i, SEED))
        .collect();
    (catalog, profiles)
}

/// Table 1: % of instruction fetches in user vs kernel space.
pub fn table1() -> String {
    let (_c, profiles) = suite();
    let mut t = Table::new(
        "Table 1: % of instructions fetched (user vs kernel space)",
        &["Benchmark", "User space (%)", "Kernel space (%)"],
    );
    for (name, user, kernel) in sat_trace::analysis::user_kernel_split(&profiles) {
        t.row(vec![name, format!("{user:.1}"), format!("{kernel:.1}")]);
    }
    t.render()
}

/// Figure 2: breakdown of the instruction pages accessed.
pub fn fig2() -> String {
    let (_c, profiles) = suite();
    let mut t = Table::new(
        "Figure 2: breakdown of instruction pages accessed",
        &[
            "Benchmark",
            "total pages",
            "zygote .so",
            "zygote Java",
            "app_process",
            "other libs",
            "private",
        ],
    );
    let rows = page_breakdown(&profiles);
    let mut avg = [0.0f64; 5];
    for (name, counts, shares) in &rows {
        t.row(vec![
            name.clone(),
            counts.iter().sum::<usize>().to_string(),
            pct(shares.zygote_native),
            pct(shares.zygote_java),
            pct(shares.app_process),
            pct(shares.other_libs),
            pct(shares.private),
        ]);
        for (a, s) in avg.iter_mut().zip([
            shares.zygote_native,
            shares.zygote_java,
            shares.app_process,
            shares.other_libs,
            shares.private,
        ]) {
            *a += s / rows.len() as f64;
        }
    }
    t.row(vec![
        "AVERAGE (paper: 35.4/32.4/0.1/24.9/7.2)".into(),
        String::new(),
        pct(avg[0]),
        pct(avg[1]),
        pct(avg[2]),
        pct(avg[3]),
        pct(avg[4]),
    ]);
    t.render()
}

/// Figure 3: breakdown of instruction fetches by category.
pub fn fig3() -> String {
    let (_c, profiles) = suite();
    let mut t = Table::new(
        "Figure 3: breakdown of % of instructions fetched (user space)",
        &[
            "Benchmark",
            "zygote .so",
            "zygote Java",
            "app_process",
            "other libs",
            "private",
        ],
    );
    let rows = fetch_breakdown(&profiles);
    let mut shared_avg = 0.0;
    for (name, s) in &rows {
        shared_avg += s.shared() / rows.len() as f64;
        t.row(vec![
            name.clone(),
            pct(s.zygote_native),
            pct(s.zygote_java),
            pct(s.app_process),
            pct(s.other_libs),
            pct(s.private),
        ]);
    }
    t.row(vec![
        format!("AVERAGE shared = {} (paper: 98%)", pct(shared_avg)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t.render()
}

/// Table 2: pairwise intersection of instruction footprints.
pub fn table2() -> String {
    let (_c, profiles) = suite();
    let m = pairwise_overlap(&profiles);
    // The paper prints 4 applications; we print the same 4 plus the
    // suite averages.
    let picks = [
        "Adobe Reader",
        "Android Browser",
        "MX Player",
        "Laya Music Player",
    ];
    let idx: Vec<usize> = picks
        .iter()
        .map(|p| m.names.iter().position(|n| n == p).expect("app present"))
        .collect();
    let mut header: Vec<&str> = vec!["(zygote-preloaded (all shared))"];
    header.extend(picks.iter().copied());
    let mut t = Table::new(
        "Table 2: % of the row app's footprint intersecting the column app's",
        &header,
    );
    for &i in &idx {
        let mut row = vec![m.names[i].clone()];
        for &j in &idx {
            if i == j {
                row.push("-".into());
            } else {
                let (zyg, all) = m.matrix[i][j];
                row.push(format!("{zyg:.1} ({all:.1})"));
            }
        }
        t.row(row);
    }
    let (zyg_avg, all_avg) = m.averages();
    let mut out = t.render();
    out.push_str(&format!(
        "Suite average: zygote-preloaded {zyg_avg:.1}% (paper: 37.9%), all shared {all_avg:.1}% (paper: 45.7%)\n\n",
    ));
    out
}

/// Figure 4: sparsity of zygote-preloaded shared code within 64KB
/// pages, per application and for the union.
pub fn fig4() -> String {
    let (_catalog, profiles) = suite();
    let mut t = Table::new(
        "Figure 4: 4KB pages untouched within each 64KB page (zygote-preloaded shared code)",
        &[
            "Benchmark",
            ">=4 untouched",
            ">=7 untouched",
            ">=10 untouched",
            "4KB MB",
            "64KB MB",
            "blow-up",
        ],
    );
    let mut union: std::collections::BTreeSet<CodePage> = std::collections::BTreeSet::new();
    let mut blowups = Vec::new();
    for p in &profiles {
        let zyg = p.zygote_preloaded_pages();
        union.extend(zyg.iter().copied());
        let r = SparsityReport::from_pages(zyg.iter());
        blowups.push(r.blowup());
        t.row(vec![
            p.spec.name.to_string(),
            pct(r.cdf_at_least(4)),
            pct(r.cdf_at_least(7)),
            pct(r.cdf_at_least(10)),
            format!("{:.1}", r.bytes_4k() as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", r.bytes_64k() as f64 / (1024.0 * 1024.0)),
            format!("{:.2}x", r.blowup()),
        ]);
    }
    let ru = SparsityReport::from_pages(union.iter());
    t.row(vec![
        "UNION (paper: 18MB vs 36MB)".into(),
        pct(ru.cdf_at_least(4)),
        pct(ru.cdf_at_least(7)),
        pct(ru.cdf_at_least(10)),
        format!("{:.1}", ru.bytes_4k() as f64 / (1024.0 * 1024.0)),
        format!("{:.1}", ru.bytes_64k() as f64 / (1024.0 * 1024.0)),
        format!("{:.2}x", ru.blowup()),
    ]);
    let avg_blowup: f64 = blowups.iter().sum::<f64>() / blowups.len() as f64;
    let mut out = t.render();
    out.push_str(&format!(
        "Average per-app 64KB blow-up: {avg_blowup:.2}x (paper: 2.6x)\n\n"
    ));
    out
}

/// Size of the zygote preload set in pages (sanity/reporting helper).
pub fn preload_size(catalog: &Catalog) -> usize {
    zygote_preload_pages(catalog, 5_900).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_motivation_tables_render() {
        for s in [table1(), fig2(), fig3(), table2(), fig4()] {
            assert!(s.len() > 200, "suspiciously short output:\n{s}");
            assert!(s.contains('|'));
        }
    }

    #[test]
    fn table2_quotes_suite_averages_in_paper_range() {
        let s = table2();
        assert!(s.contains("Suite average"));
    }

    #[test]
    fn preload_set_is_5900ish() {
        let (catalog, _) = suite();
        let n = preload_size(&catalog);
        assert!((5_300..=6_500).contains(&n), "preload {n}");
    }
}
