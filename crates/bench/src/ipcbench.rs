//! The binder IPC experiment: Figure 13 (Section 4.2.4).

use sat_android::{
    run_binder_benchmark, AndroidSystem, BinderOptions, BinderReport, LibraryLayout,
};
use sat_core::KernelConfig;
use sat_types::SatResult;

use crate::motivation::SEED;
use crate::render::Table;
use crate::zygotebench::boot_opts;
use crate::Scale;

/// Binder sizing per scale.
pub fn binder_opts(scale: Scale) -> BinderOptions {
    match scale {
        Scale::Paper => BinderOptions::paper(),
        Scale::Quick => BinderOptions::small(),
    }
}

/// Runs the microbenchmark under one configuration.
pub fn run_config(config: KernelConfig, scale: Scale) -> SatResult<BinderReport> {
    let mut sys = AndroidSystem::boot(config, LibraryLayout::Original, SEED, 11, boot_opts(scale))?;
    run_binder_benchmark(&mut sys, &binder_opts(scale))
}

/// Figure 13: instruction main-TLB stall cycles for client and
/// server, normalized to the stock kernel.
pub fn fig13(scale: Scale) -> SatResult<String> {
    let configs = [
        ("Stock Android", KernelConfig::stock()),
        ("Disabled ASID", KernelConfig::stock().without_asid()),
        ("Shared PTP", KernelConfig::shared_ptp()),
        ("Shared PTP & TLB", KernelConfig::shared_ptp_tlb()),
    ];
    let mut reports = Vec::new();
    for (label, config) in configs {
        reports.push((label, run_config(config, scale)?));
    }
    let base_client = reports[0].1.client_tlb_stall as f64;
    let base_server = reports[0].1.server_tlb_stall as f64;

    let mut t = Table::new(
        "Figure 13: instruction main-TLB stall cycles (normalized to stock)",
        &[
            "Config",
            "Client",
            "Server",
            "client faults",
            "cross-ASID hits",
        ],
    );
    for (label, r) in &reports {
        t.row(vec![
            label.to_string(),
            format!("{:.0}%", 100.0 * r.client_tlb_stall as f64 / base_client),
            format!("{:.0}%", 100.0 * r.server_tlb_stall as f64 / base_server),
            format!("{}", r.client_file_faults),
            format!("{}", r.cross_asid_hits),
        ]);
    }
    let mut out = t.render();
    let full = &reports[3].1;
    out.push_str(&format!(
        "Shared PTP & TLB improvement: client {:.0}%, server {:.0}% (paper: 36% and 19%)\n\n",
        100.0 * (1.0 - full.client_tlb_stall as f64 / base_client),
        100.0 * (1.0 - full.server_tlb_stall as f64 / base_server),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_quick_ordering() {
        let out = fig13(Scale::Quick).unwrap();
        assert!(out.contains("Disabled ASID"));
        assert!(out.contains("Shared PTP & TLB"));
    }
}
