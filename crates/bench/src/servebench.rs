//! The serving extension: a bursty open-loop request workload over a
//! pool of forked server processes (`sat-sched`'s `run_serve`), under
//! the stock and shared-translation kernels. This is the tail-latency
//! experiment behind `repro serve`: request walls are measured in
//! simulated cycles, every cycle on the critical path is blame-tagged
//! by cause when a recorder is installed, and `repro tails` breaks the
//! slowest requests down cause by cause from the trace.

use sat_core::KernelConfig;
use sat_sched::{run_serve, ServeOptions, ServeReport};

use crate::motivation::SEED;
use crate::render::{count, pct, Table};
use crate::Scale;

/// Server-pool sizes of the serve sweep per scale (one cell per size
/// per kernel).
pub fn serve_counts(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Paper => &[8, 16],
        Scale::Quick => &[8],
    }
}

/// The two kernels the serving comparison runs: snapshot record name,
/// table label, config.
pub fn serve_kernels() -> [(&'static str, &'static str, KernelConfig); 2] {
    [
        ("serve_stock", "Stock Android", KernelConfig::stock()),
        (
            "serve_shared",
            "Shared PTP & TLB",
            KernelConfig::shared_ptp_tlb(),
        ),
    ]
}

/// Workload sizing for one serve cell. Requests outlive their quantum
/// (`work_min > quantum`), so every run exercises preemption and the
/// `RunqWait` blame bucket; churn re-forks idle servers so fork cost
/// lands on queued requests' critical paths.
pub fn serve_opts(servers: usize, scale: Scale) -> ServeOptions {
    let (requests, work_min, work_spread, quantum, ws_pages) = match scale {
        Scale::Paper => (384, 160, 320, 100, 48),
        Scale::Quick => (96, 120, 260, 90, 32),
    };
    ServeOptions {
        requests,
        work_min,
        work_spread,
        quantum,
        ws_pages,
        churn: servers / 2,
        seed: SEED,
        ..ServeOptions::new(servers)
    }
}

/// Runs the serve sweep for one kernel (one worker-pool cell per
/// server count) and renders its table. Returns the report at the
/// largest count alongside, so the caller can record latency
/// percentiles and compare kernels.
///
/// With `mem_frames` set (`repro serve --mem-frames N`), every cell
/// runs under that physical-frame budget and the table grows reclaim
/// columns; without it the output is byte-identical to the budget-less
/// serve table.
pub fn serve_kernel(
    scale: Scale,
    label: &str,
    config: KernelConfig,
    mem_frames: Option<u64>,
) -> sat_types::SatResult<(String, ServeReport)> {
    let counts = serve_counts(scale);
    let title = match mem_frames {
        Some(budget) => format!(
            "Extension: serving bursty requests, {label} ({} frame budget)",
            count(budget)
        ),
        None => format!("Extension: serving bursty requests, {label} (sat-sched, open loop)"),
    };
    let mut header = vec![
        "servers",
        "requests",
        "p50",
        "p95",
        "p99",
        "max wall",
        "preempted",
        "faults",
        "unshares",
    ];
    if mem_frames.is_some() {
        header.extend(["reclaims", "evicted", "refaults"]);
    }
    let mut t = Table::new(&title, &header);
    let jobs: Vec<_> = counts
        .iter()
        .map(|&servers| {
            move || {
                let mut opts = serve_opts(servers, scale);
                opts.mem_frames = mem_frames;
                run_serve(config, opts)
            }
        })
        .collect();
    let mut results = crate::pool::run_cells(jobs).into_iter();
    let mut largest: Option<ServeReport> = None;
    for &servers in counts {
        let r: ServeReport = results.next().expect("one cell per server count")?;
        assert_eq!(
            r.requests,
            serve_opts(servers, scale).requests as u64,
            "serve run must drain every request"
        );
        let mut row = vec![
            servers.to_string(),
            count(r.requests),
            count(r.p50),
            count(r.p95),
            count(r.p99),
            count(r.max_wall),
            count(r.preempted_quanta),
            count(r.page_faults),
            count(r.ptp_unshares),
        ];
        if mem_frames.is_some() {
            row.extend([
                count(r.reclaims),
                count(r.reclaimed_pages),
                count(r.refaults),
            ]);
        }
        t.row(row);
        largest = Some(r);
    }
    Ok((t.render(), largest.expect("serve_counts is never empty")))
}

/// The cross-kernel closing line: how the tail moved, in cycles.
pub fn serve_summary(scale: Scale, stock: &ServeReport, shared: &ServeReport) -> String {
    let largest = *serve_counts(scale).last().unwrap();
    format!(
        "With {largest} servers, shared translation moves the serve tail from p99 {} to\n\
         {} cycles ({} of stock) and p50 from {} to {}; run `repro tails` on a\n\
         traced serve run for the per-cause blame behind the slowest requests.\n\n",
        count(stock.p99),
        count(shared.p99),
        pct(shared.p99 as f64 / stock.p99.max(1) as f64),
        count(stock.p50),
        count(shared.p50),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_tables_render_and_reports_return() {
        let kernels = serve_kernels();
        let (out_stock, stock) =
            serve_kernel(Scale::Quick, kernels[0].1, kernels[0].2, None).unwrap();
        let (out_shared, shared) =
            serve_kernel(Scale::Quick, kernels[1].1, kernels[1].2, None).unwrap();
        assert!(out_stock.contains("Stock Android"), "{out_stock}");
        assert!(out_shared.contains("Shared PTP & TLB"), "{out_shared}");
        assert_eq!(stock.requests, 96);
        assert_eq!(shared.requests, 96);
        assert!(stock.preempted_quanta > 0);
        assert!(shared.ptp_unshares > 0, "shared serve must unshare PTPs");
        let summary = serve_summary(Scale::Quick, &stock, &shared);
        assert!(summary.contains("p99"), "{summary}");
    }

    #[test]
    fn serve_cells_are_deterministic_across_pool_runs() {
        let (_, a) =
            serve_kernel(Scale::Quick, "Stock Android", KernelConfig::stock(), None).unwrap();
        let (_, b) =
            serve_kernel(Scale::Quick, "Stock Android", KernelConfig::stock(), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_serve_table_grows_reclaim_columns_and_unbudgeted_does_not() {
        let (plain, r) =
            serve_kernel(Scale::Quick, "Stock Android", KernelConfig::stock(), None).unwrap();
        assert!(!plain.contains("reclaims"), "{plain}");
        assert_eq!(r.reclaims, 0);

        // A budget at 3/4 of the uncapped peak must bite and render.
        let budget = r.frames_peak * 3 / 4;
        let (capped, rc) = serve_kernel(
            Scale::Quick,
            "Stock Android",
            KernelConfig::stock(),
            Some(budget),
        )
        .unwrap();
        assert!(capped.contains("frame budget"), "{capped}");
        assert!(capped.contains("reclaims"), "{capped}");
        assert!(capped.contains("refaults"), "{capped}");
        assert!(rc.reclaims > 0, "the budget must force reclaim: {rc:?}");
        assert!(rc.refaults > 0, "evicted pages must refault: {rc:?}");
    }
}
