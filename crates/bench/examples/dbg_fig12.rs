use sat_android::*;
use sat_core::KernelConfig;
fn main() {
    for layout in [LibraryLayout::Original, LibraryLayout::Aligned2Mb] {
        let mut sys = AndroidSystem::boot(
            KernelConfig::shared_ptp(),
            layout,
            1,
            11,
            BootOptions::paper(),
        )
        .unwrap();
        let spec = &sat_trace::app_specs()[0];
        let p = sat_trace::AppProfile::generate(&sys.catalog, spec, 0, 1);
        let (pid, _) = launch_app(&mut sys, &LaunchOptions::paper()).unwrap();
        let slot = sys.attach_app(pid, p).unwrap();
        sys.run_steady(slot, 20_000).unwrap();
        let r = sys.steady_report(slot).unwrap();
        println!(
            "{layout:?}: shared {} / total {} | unshares {} | alloc {} | faults {}",
            r.ptps_shared_now, r.ptps_total_now, r.unshares, r.ptps_allocated, r.file_faults
        );
    }
}
